"""Alpha sweep: the energy/performance trade-off as a Pareto curve.

Eq. 5's alpha weighs data-correlation attraction (performance) against
CPU-correlation repulsion (energy).  Figs. 5-6 of the paper show two
points of this trade-off space; sweeping alpha draws the whole curve
and marks the Pareto-efficient settings.

Run:  python examples/pareto_tradeoff.py [horizon_slots]
"""

import sys

from repro.analysis.pareto import alpha_sweep, pareto_front
from repro.sim.config import scaled_config


def main() -> None:
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 36
    config = scaled_config("small").with_horizon(horizon)
    alphas = (0.0, 0.25, 0.5, 0.75, 1.0)
    print(f"Sweeping alpha over {alphas} ({horizon} slots each)...\n")

    points = alpha_sweep(config, alphas)
    front = {point.alpha for point in pareto_front(points)}

    print(f"{'alpha':>6} {'cost EUR':>10} {'energy GJ':>10} {'p99 RT s':>9}  front")
    for point in points:
        marker = "  *" if point.alpha in front else ""
        print(
            f"{point.alpha:>6.2f} {point.cost_eur:>10.2f} "
            f"{point.energy_gj:>10.3f} {point.response_p99_s:>9.4f}{marker}"
        )

    # ASCII scatter: energy (x) vs response time (y).
    xs = [point.energy_gj for point in points]
    ys = [point.response_p99_s for point in points]
    width, height = 56, 14
    x0, x1 = min(xs), max(xs) or 1.0
    y0, y1 = min(ys), max(ys) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for point in points:
        col = int((point.energy_gj - x0) / max(x1 - x0, 1e-12) * (width - 1))
        row = int((point.response_p99_s - y0) / max(y1 - y0, 1e-12) * (height - 1))
        glyph = "*" if point.alpha in front else "o"
        grid[height - 1 - row][col] = glyph
    print("\np99 response time (up) vs energy (right); * = Pareto front")
    for line in grid:
        print("  |" + "".join(line))
    print("  +" + "-" * width)


if __name__ == "__main__":
    main()
