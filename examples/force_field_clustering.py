"""Inside the global phase: forces, the 2D plane, clustering, migration.

Walks one slot of the proposed controller step by step on a handmade
workload whose structure is easy to eyeball:

* three services (web / batch / HPC) whose members exchange data
  (attraction) and whose same-type peers peak together (repulsion);
* the force-directed embedding separates CPU-correlated groups while
  pulling communicating VMs together;
* the capacity-constrained k-means carves the plane into DC clusters;
* Algorithm 2 turns the clustering into latency-feasible migrations.

Run:  python examples/force_field_clustering.py
"""

import numpy as np

from repro.core.capacity import compute_capacity_caps
from repro.core.correlation import attraction_matrix, repulsion_matrix
from repro.core.forces import ForceDirectedEmbedding, ForceParameters
from repro.core.kmeans import constrained_kmeans, warm_start_centroids
from repro.core.migration import revise_migrations
from repro.datacenter.datacenter import Datacenter
from repro.network.ber import BERProcess
from repro.network.latency import LatencyModel
from repro.network.topology import GeoTopology
from repro.sim.config import scaled_config
from repro.workload.arrivals import ArrivalModel, VMPopulation
from repro.workload.datacorr import DataCorrelationProcess
from repro.workload.traces import TraceLibrary


def ascii_scatter(positions, assignment, width=64, height=20):
    """Plot cluster membership in the 2D plane with ASCII glyphs."""
    glyphs = "ABC"
    xs, ys = positions[:, 0], positions[:, 1]
    x0, x1 = xs.min(), xs.max() + 1e-9
    y0, y1 = ys.min(), ys.max() + 1e-9
    grid = [[" "] * width for _ in range(height)]
    for (x, y), cluster in zip(positions, assignment):
        col = int((x - x0) / (x1 - x0) * (width - 1))
        row = int((y - y0) / (y1 - y0) * (height - 1))
        grid[height - 1 - row][col] = glyphs[cluster % 3]
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    rng_config = scaled_config("small")
    population = VMPopulation.generate(
        ArrivalModel(initial_services=9, arrival_rate=0.0), 4, seed=11
    )
    vms = population.alive(1)
    library = TraceLibrary(steps_per_slot=60, seed=3)
    volumes = DataCorrelationProcess(seed=5)

    demand = library.demand_matrix(vms, 0)
    volume_matrix = volumes.volumes(vms, 0)

    print(f"{len(vms)} VMs in {len({vm.service_id for vm in vms})} services\n")

    # Step 1: forces.
    attraction = attraction_matrix(volume_matrix.volumes)
    repulsion = repulsion_matrix(demand)
    print(f"attraction range: [{attraction.min():.2f}, {attraction.max():.2f}]")
    print(f"repulsion  range: [{repulsion[repulsion > 0].min():.2f}, "
          f"{repulsion.max():.2f}]")

    embedding = ForceDirectedEmbedding(ForceParameters(alpha=0.5))
    start = np.random.default_rng(1).normal(size=(len(vms), 2))
    result = embedding.run(start, attraction, repulsion)
    print(f"embedding: {result.iterations} iterations, "
          f"converged={result.converged}\n")

    # Step 2: capacity caps + clustering.
    dcs = [
        Datacenter(spec, index, seed=7)
        for index, spec in enumerate(rng_config.specs)
    ]
    caps = compute_capacity_caps(dcs, slot=12)
    print("capacity caps (core units):",
          [f"{cap.cap_cores:.0f}" for cap in caps])
    loads = demand.mean(axis=1)
    centroids = warm_start_centroids(result.positions, None, 3)
    clustering = constrained_kmeans(
        result.positions,
        loads,
        np.array([cap.cap_cores for cap in caps]),
        centroids,
    )
    print("cluster loads:", np.round(clustering.loads, 1).tolist())
    print("\nthe 2D plane (letter = assigned DC):")
    print(ascii_scatter(result.positions, clustering.assignment))

    # Step 3: migration revision against the previous placement.
    previous = np.array([vm.vm_id % 3 for vm in vms])
    latency_model = LatencyModel(
        GeoTopology(list(rng_config.specs)), BERProcess(seed=9)
    )
    plan = revise_migrations(
        vms=vms,
        target=clustering.assignment,
        previous=previous,
        positions=result.positions,
        centroids=clustering.centroids,
        loads=loads,
        caps_cores=np.array([cap.cap_cores for cap in caps]),
        latency_model=latency_model,
        slot=1,
        latency_constraint_s=72.0,
    )
    print(f"\nAlgorithm 2: {len(plan.moves)} migrations executed, "
          f"{len(plan.rejected_vm_ids)} rejected by the 72 s window")
    for move in plan.moves[:10]:
        print(f"  vm {move.vm_id}: DC{move.src_dc + 1} -> DC{move.dst_dc + 1} "
              f"({move.image_mb / 1000:.0f} GB image)")


if __name__ == "__main__":
    main()
