"""Green controller walkthrough: one DC, two days, hour by hour.

Shows the Section IV-B.3 rules in action for a single data center with
a PV array and a battery bank under a two-level tariff:

* daylight surplus charges the battery,
* high-price deficits discharge it,
* low-price periods buy cheap grid energy for the load *and* the
  battery.

Run:  python examples/green_energy_walkthrough.py
"""

import numpy as np

from repro.core.green import GreenController
from repro.datacenter.datacenter import Datacenter
from repro.sim.config import scaled_config
from repro.units import SECONDS_PER_HOUR, joules_to_kwh


def main() -> None:
    spec = scaled_config("small").specs[0]  # Lisbon
    dc = Datacenter(spec, index=0, seed=42)
    controller = GreenController(step_s=60.0)

    # A plausible diurnal facility load for a fraction of the fleet.
    hours = np.arange(48)
    base_watts = 0.35 * spec.max_it_power_watts()
    swing = 0.20 * spec.max_it_power_watts()
    load_watts = base_watts + swing * np.sin(2 * np.pi * (hours - 9) / 24.0)

    print(f"Site: {spec.name}  PV {spec.pv_kwp:.1f} kWp  "
          f"battery {spec.battery_kwh:.1f} kWh (DoD 50 %)")
    print(f"Tariff: {spec.tariff.peak_price:.2f} EUR/kWh peak / "
          f"{spec.tariff.offpeak_price:.2f} off-peak\n")
    header = (
        f"{'hour':>4} {'tariff':>7} {'load kWh':>9} {'pv kWh':>7} "
        f"{'batt kWh':>9} {'grid kWh':>9} {'cost EUR':>9} {'SoC %':>6}"
    )
    print(header)
    print("-" * len(header))

    total_cost = 0.0
    for slot in range(48):
        power = np.full(60, load_watts[slot])
        ledger = controller.run_slot(dc, slot, power)
        dc.record_slot(slot, ledger.facility_energy, ledger.pv_generated)
        total_cost += ledger.grid_cost_eur
        tariff = "peak" if spec.tariff.is_peak((slot + 0.5) * SECONDS_PER_HOUR) else "off"
        soc_pct = 100.0 * dc.battery.soc_joules / dc.battery.capacity_joules
        print(
            f"{slot:>4} {tariff:>7} {joules_to_kwh(ledger.facility_energy):>9.2f} "
            f"{joules_to_kwh(ledger.pv_generated):>7.2f} "
            f"{joules_to_kwh(ledger.battery_discharged - ledger.pv_stored - ledger.grid_to_battery):>9.2f} "
            f"{joules_to_kwh(ledger.grid_energy):>9.2f} "
            f"{ledger.grid_cost_eur:>9.3f} {soc_pct:>6.1f}"
        )

    print(f"\ntwo-day grid cost: {total_cost:.2f} EUR")
    print("(battery column: + means net discharge toward the load, "
          "- means net charging)")


if __name__ == "__main__":
    main()
