"""Full reproduction driver: all figures from one week-long comparison.

Runs the paper's complete evaluation protocol (Section V) and prints
every figure's paper-vs-measured report.  By default this uses the
laptop-scale fleet (48 servers, 60 s sampling, ~70 s runtime); pass
``--paper`` for the literal Table I configuration (1500/1000/500
servers, 5 s sampling -- hours of runtime, for workstations).

Run:  python examples/full_week.py [--paper] [--horizon N]
"""

import argparse

from repro.experiments.figures import (
    fig1_operational_cost,
    fig2_energy,
    fig3_response_time,
    fig4_totals,
    fig5_cost_performance,
    fig6_energy_performance,
    render,
    table1_rows,
)
from repro.experiments.runner import run_comparison
from repro.sim.config import paper_config, scaled_config
from repro.sim.metrics import format_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the literal Table I fleet (very slow)",
    )
    parser.add_argument(
        "--horizon", type=int, default=None, help="override horizon in slots"
    )
    parser.add_argument(
        "--alpha", type=float, default=0.5, help="Eq. 5 trade-off weight"
    )
    args = parser.parse_args()

    config = paper_config() if args.paper else scaled_config("small")
    if args.horizon:
        config = config.with_horizon(args.horizon)

    table = table1_rows(config)
    print("== Table I (measured config) ==")
    for row in table["measured"]:
        print(
            f"  {row['dc']} {row['site']:<10} servers={row['servers']:<5} "
            f"PV={row['pv_kwp']:.0f} kWp battery={row['battery_kwh']:.0f} kWh"
        )

    print(f"\nRunning the 4-method comparison over {config.horizon_slots} "
          f"slots (alpha={args.alpha})...\n")
    results = run_comparison(config, alpha=args.alpha)

    print(format_comparison(results))
    print()
    for report in (
        fig1_operational_cost(results),
        fig2_energy(results),
        fig3_response_time(results),
        fig4_totals(results),
        fig5_cost_performance(results),
        fig6_energy_performance(results),
    ):
        print(render(report))
        print()


if __name__ == "__main__":
    main()
