"""Compare the four methods of the paper on one workload.

Reproduces the Section V-B comparison protocol at example scale: the
proposed two-phase controller against Ener-aware (Kim DATE'13),
Pri-aware (Gu ICNC'15) and Net-aware (Biran CCGRID'12), all sharing
the same workload, weather, prices and channel realizations, and the
same green controller.

Run:  python examples/policy_comparison.py [horizon_slots]
"""

import sys

from repro import run_policies, scaled_config
from repro.baselines import EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy
from repro.core.controller import ProposedPolicy
from repro.sim.metrics import (
    cost_improvements,
    energy_improvements,
    format_comparison,
    performance_improvements,
)


def main() -> None:
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    config = scaled_config("small").with_horizon(horizon)
    print(f"Running 4 policies over {horizon} slots "
          f"({len(config.specs)} DCs)...\n")

    results = run_policies(
        config,
        [ProposedPolicy(), EnerAwarePolicy(), PriAwarePolicy(), NetAwarePolicy()],
    )

    print(format_comparison(results))

    print("\nImprovements of Proposed (positive = Proposed better):")
    print(f"  cost savings:   {cost_improvements(results)}")
    print(f"  energy savings: {energy_improvements(results)}")
    print(f"  perf (p99 RT):  {performance_improvements(results)}")

    print(
        "\nPaper (full Table I scale, one week): 55 % cost vs Ener-aware, "
        "25 % vs Pri-aware, 35 % vs Net-aware; 15 % energy and 12 % "
        "performance vs the weakest baselines."
    )


if __name__ == "__main__":
    main()
