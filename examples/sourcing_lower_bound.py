"""How optimal is the rule-based green controller?

The paper argues for a deliberately simple online controller (Section
IV-B.3): the global phase plans with forecasts, and a rule-based
compensator absorbs the forecast error.  This example quantifies the
claim by solving the offline energy-sourcing problem (an LP with
perfect knowledge of demand and PV for the whole horizon) and
comparing each policy's realized grid cost against it.

Run:  python examples/sourcing_lower_bound.py [horizon_slots]
"""

import sys

from repro.analysis.lower_bound import operational_cost_lower_bound
from repro.experiments.runner import run_comparison
from repro.sim.config import scaled_config


def main() -> None:
    horizon = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    config = scaled_config("small").with_horizon(horizon)
    print(f"Running the 4-method comparison over {horizon} slots...\n")
    results = run_comparison(config)

    print(f"{'policy':<12} {'cost EUR':>10} {'LP bound':>10} {'gap %':>7}")
    for result in results:
        bound = operational_cost_lower_bound(result, config)
        print(
            f"{result.policy_name:<12} {bound.actual_cost_eur:>10.2f} "
            f"{bound.total_cost_eur:>10.2f} {bound.gap_pct:>7.1f}"
        )

    print(
        "\nReading: the gap is the cost of sourcing *myopically* (the"
        "\nrule-based controller) instead of with perfect knowledge, for"
        "\nthe same placement decisions.  A small gap for 'Proposed'"
        "\nsupports the paper's two-level design: once placement follows"
        "\nforecasted free energy, simple source rules are nearly optimal."
    )


if __name__ == "__main__":
    main()
