"""Quickstart: run the proposed placement over one simulated day.

Builds the scaled 3-site fleet (same shape as the paper's Table I),
runs the two-phase multi-objective controller for 24 hourly slots and
prints the operational ledger.

Run:  python examples/quickstart.py
"""

from repro import ProposedPolicy, SimulationEngine, scaled_config


def main() -> None:
    config = scaled_config("small").with_horizon(24)
    print(f"Fleet: {[spec.name for spec in config.specs]}")
    print(f"Servers per DC: {[spec.n_servers for spec in config.specs]}")
    print(f"Horizon: {config.horizon_slots} hourly slots\n")

    engine = SimulationEngine(config, ProposedPolicy())
    result = engine.run()

    summary = result.summary()
    print("--- one day with the Proposed controller ---")
    print(f"operational cost:        {summary['cost_eur']:8.2f} EUR")
    print(f"facility energy:         {summary['energy_gj']:8.3f} GJ")
    print(f"grid energy:             {summary['grid_energy_gj']:8.3f} GJ")
    print(f"renewable utilization:   {summary['renewable_utilization']:8.1%}")
    print(f"mean response time:      {summary['mean_rt_s']:8.4f} s")
    print(f"worst response time:     {summary['worst_rt_s']:8.4f} s")
    print(f"inter-DC migrations:     {summary['migrations']:8d}")
    print(f"mean active servers:     {summary['mean_active_servers']:8.1f}")

    print("\nhourly grid cost (EUR):")
    for slot, cost in enumerate(result.hourly_cost_eur()):
        bar = "#" * int(40 * cost / max(result.hourly_cost_eur().max(), 1e-9))
        print(f"  h{slot:02d} {cost:6.3f} |{bar}")


if __name__ == "__main__":
    main()
