"""Trace library: shapes, ranges, determinism, diurnal structure."""

import numpy as np
import pytest

from tests.conftest import make_vm
from repro.workload.traces import (
    PROFILES,
    SLOTS_PER_DAY,
    TraceLibrary,
    diurnal_mean,
)
from repro.workload.vm import AppType


@pytest.fixture
def library() -> TraceLibrary:
    return TraceLibrary(steps_per_slot=60, seed=11)


class TestDiurnalMean:
    def test_peak_at_peak_hour(self):
        profile = PROFILES[AppType.WEB]
        at_peak = diurnal_mean(profile, profile.peak_hour)
        off_peak = diurnal_mean(profile, (profile.peak_hour + 12.0) % 24.0)
        assert at_peak > off_peak

    def test_wraps_24h(self):
        profile = PROFILES[AppType.BATCH]
        assert diurnal_mean(profile, 1.0) == pytest.approx(
            float(diurnal_mean(profile, 25.0))
        )

    def test_within_unit_interval(self):
        hours = np.linspace(0, 24, 97)
        for profile in PROFILES.values():
            means = diurnal_mean(profile, hours)
            assert np.all(means > 0.0)
            assert np.all(means < 1.0)

    def test_hpc_flatter_than_web(self):
        hours = np.linspace(0, 24, 97)
        web = diurnal_mean(PROFILES[AppType.WEB], hours)
        hpc = diurnal_mean(PROFILES[AppType.HPC], hours)
        assert np.ptp(web) > np.ptp(hpc)


class TestSlotTrace:
    def test_shape(self, library):
        trace = library.slot_trace(make_vm(), 0)
        assert trace.shape == (60,)

    def test_bounded(self, library):
        for slot in (0, 30, 100):
            trace = library.slot_trace(make_vm(seed=5), slot)
            assert np.all(trace >= 0.0)
            assert np.all(trace <= 1.0)

    def test_deterministic(self, library):
        vm = make_vm(seed=5)
        assert np.array_equal(library.slot_trace(vm, 3), library.slot_trace(vm, 3))

    def test_different_slots_differ(self, library):
        vm = make_vm(seed=5)
        assert not np.array_equal(library.slot_trace(vm, 3), library.slot_trace(vm, 4))

    def test_different_vms_differ(self, library):
        a = make_vm(vm_id=0, seed=5)
        b = make_vm(vm_id=1, seed=6)
        assert not np.array_equal(library.slot_trace(a, 3), library.slot_trace(b, 3))

    def test_library_seed_changes_traces(self):
        vm = make_vm(seed=5)
        a = TraceLibrary(steps_per_slot=30, seed=1).slot_trace(vm, 0)
        b = TraceLibrary(steps_per_slot=30, seed=2).slot_trace(vm, 0)
        assert not np.array_equal(a, b)

    def test_invalid_steps_rejected(self):
        with pytest.raises(ValueError):
            TraceLibrary(steps_per_slot=0)


class TestWeekExtension:
    def test_same_mean_across_days(self, library):
        """Days 1..6 replay day 0's hourly mean (the paper's extension)."""
        vm = make_vm(seed=21, app_type=AppType.BATCH)
        for hour in (2, 14):
            assert library.slot_mean(vm, hour) == pytest.approx(
                library.slot_mean(vm, hour + SLOTS_PER_DAY)
            )

    def test_extension_adds_variance(self):
        library = TraceLibrary(steps_per_slot=400, extension_sigma=0.2, seed=2)
        vm = make_vm(seed=8, app_type=AppType.HPC)
        day0 = library.slot_trace(vm, 9)
        day3 = library.slot_trace(vm, 9 + 3 * SLOTS_PER_DAY)
        assert day3.std() > day0.std()

    def test_realized_trace_tracks_slot_mean(self, library):
        vm = make_vm(seed=31, app_type=AppType.HPC)
        trace = library.slot_trace(vm, 9)
        assert trace.mean() == pytest.approx(library.slot_mean(vm, 9), abs=0.1)


class TestDemand:
    def test_demand_scales_with_cores(self, library):
        vm = make_vm(cores=3.0, seed=4)
        assert np.allclose(
            library.slot_demand(vm, 2), library.slot_trace(vm, 2) * 3.0
        )

    def test_demand_matrix_alignment(self, library, six_vms):
        matrix = library.demand_matrix(six_vms, 1)
        assert matrix.shape == (6, 60)
        assert np.array_equal(matrix[2], library.slot_demand(six_vms[2], 1))

    def test_demand_matrix_empty(self, library):
        assert library.demand_matrix([], 0).shape == (0, 60)

    def test_phase_shifts_peak(self):
        library = TraceLibrary(steps_per_slot=30, seed=3)
        base = make_vm(vm_id=0, seed=9, phase_hours=0.0, app_type=AppType.WEB)
        shifted = make_vm(vm_id=0, seed=9, phase_hours=6.0, app_type=AppType.WEB)
        means_base = [library.slot_mean(base, s) for s in range(24)]
        means_shift = [library.slot_mean(shifted, s) for s in range(24)]
        assert int(np.argmax(means_base)) != int(np.argmax(means_shift))


class TestCorrelationStructure:
    def test_same_type_vms_positively_correlated(self):
        """Same archetype + phase -> coincident diurnal peaks."""
        library = TraceLibrary(steps_per_slot=30, seed=13)
        a = make_vm(vm_id=0, seed=1, app_type=AppType.WEB)
        b = make_vm(vm_id=1, seed=2, app_type=AppType.WEB)
        c = make_vm(vm_id=2, seed=3, app_type=AppType.BATCH)
        day_a = np.concatenate([library.slot_trace(a, s) for s in range(24)])
        day_b = np.concatenate([library.slot_trace(b, s) for s in range(24)])
        day_c = np.concatenate([library.slot_trace(c, s) for s in range(24)])
        same = np.corrcoef(day_a, day_b)[0, 1]
        cross = np.corrcoef(day_a, day_c)[0, 1]
        assert same > 0.5
        assert same > cross
