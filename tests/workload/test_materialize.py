"""Workload materializations: keys, slot cache, LRU, engine identity."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.runner import default_policies
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine
from repro.workload.materialize import (
    MaterializationCache,
    SlotDataCache,
    build_materialization,
    configure_process_cache,
    materialization_key,
    process_cache,
)
from repro.workload.packs import (
    RecordedTraceSource,
    TracePack,
    default_pack,
    get_pack,
)


def tiny(horizon=3):
    return scaled_config("tiny").with_horizon(horizon)


def recorded_pack(seed=11, n_vms=6, days=1):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.05, 0.95, size=(n_vms, days * 24 * 30))
    return TracePack(
        name="rec-test",
        source=RecordedTraceSource(utilization=matrix, steps_per_slot=30),
    )


class TestMaterializationKey:
    def test_deterministic(self):
        config = tiny()
        assert materialization_key(config, None) == materialization_key(
            config, None
        )

    def test_none_pack_is_default_pack(self):
        config = tiny()
        assert materialization_key(config, None) == materialization_key(
            config, default_pack()
        )

    def test_seed_changes_key(self):
        config = tiny()
        reseeded = dataclasses.replace(config, seed=config.seed + 1)
        assert materialization_key(config, None) != materialization_key(
            reseeded, None
        )

    def test_horizon_changes_key(self):
        assert materialization_key(tiny(3), None) != materialization_key(
            tiny(4), None
        )

    def test_vectorized_flag_changes_key(self):
        config = tiny()
        assert materialization_key(
            config, None, vectorized=True
        ) != materialization_key(config, None, vectorized=False)

    def test_pack_content_changes_key(self):
        config = tiny()
        assert materialization_key(
            config, recorded_pack(seed=1)
        ) != materialization_key(config, recorded_pack(seed=2))

    def test_pack_name_does_not_change_key(self):
        config = tiny()
        pack = recorded_pack()
        renamed = dataclasses.replace(pack, name="other-name")
        assert materialization_key(config, pack) == materialization_key(
            config, renamed
        )

    def test_scenario_mix_distinct_from_synthetic(self):
        # Scenario packs rewrite the arrival model in configure();
        # their realized workloads differ, so their keys must too.
        config = tiny()
        assert materialization_key(
            config, get_pack("synthetic")
        ) != materialization_key(config, get_pack("scenario-hpc"))

    def test_workload_irrelevant_fields_do_not_change_key(self):
        config = tiny()
        renamed = dataclasses.replace(config, name="renamed-experiment")
        assert materialization_key(config, None) == materialization_key(
            renamed, None
        )


class TestSlotDataCache:
    def materialized(self, horizon=3, **kwargs):
        return build_materialization(tiny(horizon), None, **kwargs)

    def test_demand_hit_returns_same_frozen_array(self):
        mat = self.materialized()
        vms = mat.population.alive(0)
        first = mat.demand(vms, 0)
        second = mat.demand(vms, 0)
        assert first is second
        assert not first.flags.writeable
        assert mat.slots.hits == 1
        assert mat.slots.misses == 1

    def test_demand_matches_trace_provider_exactly(self):
        mat = self.materialized()
        vms = mat.population.alive(1)
        matrix = mat.demand(vms, 1)
        for row, vm in zip(matrix, vms):
            assert np.array_equal(row, mat.traces.slot_demand(vm, 1))

    def test_volume_hit_and_freeze(self):
        mat = self.materialized()
        vms = mat.population.alive(0)
        first = mat.volume_matrix(vms, 0)
        second = mat.volume_matrix(vms, 0)
        assert first is second
        assert not first.volumes.flags.writeable

    def test_volume_matches_fresh_process(self):
        mat = self.materialized()
        vms = mat.population.alive(2)
        cached = mat.volume_matrix(vms, 2)
        fresh = (
            default_pack()
            .build_volumes(mat.config, vectorized=True)
            .volumes(vms, 2)
        )
        assert np.array_equal(cached.volumes, fresh.volumes)

    def test_tiny_budget_declines_instead_of_evicting(self):
        mat = self.materialized(slot_budget_bytes=1)
        vms = mat.population.alive(0)
        assert mat.demand(vms, 0) is None
        assert mat.volume_matrix(vms, 0) is None
        assert mat.slots.declined == 2
        assert mat.slots.bytes == 0

    def test_budget_admits_prefix_then_declines(self):
        mat = self.materialized()
        vms = mat.population.alive(0)
        one_matrix = len(vms) * mat.config.steps_per_slot * 8
        mat.slots.budget_bytes = one_matrix
        assert mat.demand(vms, 0) is not None  # fills the budget...
        assert mat.demand(vms, 0) is not None  # ...hits stay served
        assert mat.demand(vms, 1) is None  # ...new slots decline
        assert mat.slots.declined == 1

    def test_empty_population_shortcut(self):
        mat = self.materialized()
        empty = mat.demand([], 0)
        assert empty.shape == (0, mat.config.steps_per_slot)

    def test_per_row_memo_reuses_overlapping_population(self):
        mat = self.materialized()
        vms = mat.population.alive(0)
        assert len(vms) >= 2
        full = mat.demand(vms, 0)
        subset = mat.demand(vms[:-1], 0)
        assert np.array_equal(subset, full[:-1])
        # The subset matrix reassembles from row memos: no fresh
        # slot_demand work, visible as rows equal to the full matrix's.
        assert mat.slots.misses == 2

    def test_cache_decline_is_engine_fallback_not_error(self):
        config = tiny()
        mat = build_materialization(config, None, slot_budget_bytes=1)
        policy = default_policies()[1]
        starved = SimulationEngine(config, policy, materialization=mat).run()
        policy = default_policies()[1]
        plain = SimulationEngine(config, policy).run()
        assert starved.slots == plain.slots

    def test_stats_shape(self):
        cache = SlotDataCache(budget_bytes=123)
        stats = cache.stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "declined": 0,
            "bytes": 0,
            "demand_entries": 0,
            "volume_entries": 0,
        }


class TestMaterializationCache:
    def test_lru_eviction_under_small_cap(self):
        cache = MaterializationCache(size=1)
        config_a = tiny(2)
        config_b = dataclasses.replace(config_a, seed=config_a.seed + 7)
        first = cache.materialize(config_a, None)
        assert cache.materialize(config_a, None) is first
        cache.materialize(config_b, None)  # evicts config_a's entry
        assert cache.keys() == [materialization_key(config_b, None)]
        rebuilt = cache.materialize(config_a, None)
        assert rebuilt is not first
        assert cache.stats()["entries"] == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 3

    def test_lru_refreshes_on_hit(self):
        cache = MaterializationCache(size=2)
        config_a = tiny(2)
        config_b = dataclasses.replace(config_a, seed=config_a.seed + 7)
        config_c = dataclasses.replace(config_a, seed=config_a.seed + 8)
        kept = cache.materialize(config_a, None)
        cache.materialize(config_b, None)
        cache.materialize(config_a, None)  # refresh: b is now oldest
        cache.materialize(config_c, None)  # evicts b, not a
        assert cache.materialize(config_a, None) is kept

    def test_key_mismatch_raises(self):
        cache = MaterializationCache(size=2)
        config = tiny(2)
        with pytest.raises(ValueError, match="key mismatch"):
            cache.get(
                "0" * 64, lambda: build_materialization(config, None)
            )

    def test_configure_process_cache_replaces_global(self):
        original = process_cache()
        replaced = configure_process_cache(size=2)
        try:
            assert process_cache() is replaced
            assert replaced is not original
            assert replaced.size == 2
        finally:
            configure_process_cache()


class TestEngineBitIdentity:
    """Materialized runs are byte-identical to self-built runs."""

    def run_pair(self, pack, policy_index=1, horizon=3, vectorized=True):
        config = tiny(horizon)
        mat = build_materialization(config, pack, vectorized=vectorized)
        policy = default_policies()[policy_index]
        shared = SimulationEngine(
            config, policy, materialization=mat, vectorized=vectorized
        ).run()
        policy = default_policies()[policy_index]
        plain = SimulationEngine(
            config, policy, workload=pack, vectorized=vectorized
        ).run()
        return shared, plain, mat

    @pytest.mark.parametrize(
        "pack_name", ["synthetic", "synthetic-dense", "scenario-hpc"]
    )
    def test_registered_packs(self, pack_name):
        shared, plain, _ = self.run_pair(get_pack(pack_name))
        assert shared.slots == plain.slots
        assert np.array_equal(
            shared.response_samples(), plain.response_samples()
        )

    def test_recorded_pack(self):
        shared, plain, _ = self.run_pair(recorded_pack())
        assert shared.slots == plain.slots

    def test_loop_engine(self):
        shared, plain, _ = self.run_pair(None, vectorized=False)
        assert shared.slots == plain.slots

    def test_reuse_across_engines_stays_identical(self):
        config = tiny(3)
        mat = build_materialization(config, None)
        results = []
        for _ in range(2):
            policy = default_policies()[2]
            results.append(
                SimulationEngine(config, policy, materialization=mat).run()
            )
        policy = default_policies()[2]
        plain = SimulationEngine(config, policy).run()
        assert results[0].slots == results[1].slots == plain.slots
        assert mat.slots.hits > 0  # the second run was served warm

    def test_wrong_workload_config_rejected(self):
        mat = build_materialization(tiny(3), None)
        with pytest.raises(ValueError, match="different workload"):
            SimulationEngine(
                tiny(4), default_policies()[1], materialization=mat
            )

    def test_workload_irrelevant_config_change_shares(self):
        """A battery sweep's configs share one materialization: fleet
        fields stay out of the key, and the engine keeps its own
        config for the physics."""
        config = tiny(3)
        specs = tuple(
            dataclasses.replace(spec, battery_kwh=spec.battery_kwh * 2.0)
            for spec in config.specs
        )
        doubled = dataclasses.replace(config, specs=specs)
        mat = build_materialization(config, None)
        shared = SimulationEngine(
            doubled, default_policies()[1], materialization=mat
        ).run()
        plain = SimulationEngine(doubled, default_policies()[1]).run()
        assert shared.slots == plain.slots
        assert shared.slots != SimulationEngine(
            config, default_policies()[1]
        ).run().slots  # the battery change did take effect

    def test_wrong_vectorized_flag_rejected(self):
        mat = build_materialization(tiny(3), None, vectorized=True)
        with pytest.raises(ValueError, match="vectorized"):
            SimulationEngine(
                tiny(3),
                default_policies()[1],
                materialization=mat,
                vectorized=False,
            )

    def test_materialization_excludes_other_workload_sources(self):
        mat = build_materialization(tiny(3), None)
        with pytest.raises(ValueError, match="already carries"):
            SimulationEngine(
                tiny(3),
                default_policies()[1],
                workload=recorded_pack(),
                materialization=mat,
            )
