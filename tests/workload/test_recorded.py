"""Recorded (external) trace ingestion."""

import numpy as np
import pytest

from tests.conftest import make_vm
from repro.baselines.pri_aware import PriAwarePolicy
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine
from repro.workload.recorded import RecordedTraceLibrary, load_utilization_csv


@pytest.fixture
def matrix() -> np.ndarray:
    rng = np.random.default_rng(5)
    return rng.uniform(0.1, 0.9, size=(4, 120))  # 4 VMs, 4 slots of 30


@pytest.fixture
def library(matrix) -> RecordedTraceLibrary:
    return RecordedTraceLibrary(matrix, steps_per_slot=30)


class TestCsvLoading:
    def test_round_trip(self, tmp_path, matrix):
        path = tmp_path / "traces.csv"
        np.savetxt(path, matrix, delimiter=",")
        loaded = load_utilization_csv(path)
        assert np.allclose(loaded, matrix)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "traces.csv"
        path.write_text("0.1,0.2\n\n0.3,0.4\n")
        assert load_utilization_csv(path).shape == (2, 2)

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "traces.csv"
        path.write_text("0.1,0.2\n0.3\n")
        with pytest.raises(ValueError, match="ragged"):
            load_utilization_csv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "traces.csv"
        path.write_text("0.1,oops\n")
        with pytest.raises(ValueError, match="traces.csv:1"):
            load_utilization_csv(path)

    def test_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "traces.csv"
        path.write_text("0.1,1.2\n")
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            load_utilization_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "traces.csv"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no utilization"):
            load_utilization_csv(path)

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "traces.csv"
        path.write_text(
            "# recorded at DC-1, 5 s sampling\n"
            "0.1,0.2\n"
            "  # mid-file annotation\n"
            "0.3,0.4\n"
        )
        assert load_utilization_csv(path).shape == (2, 2)

    def test_out_of_range_names_file_line_column(self, tmp_path):
        path = tmp_path / "traces.csv"
        path.write_text("# header\n0.1,0.2\n0.3,1.7\n")
        with pytest.raises(ValueError, match=r"traces\.csv:3:2: .*1\.7"):
            load_utilization_csv(path)

    def test_non_numeric_names_file_line_column(self, tmp_path):
        path = tmp_path / "traces.csv"
        path.write_text("0.1,0.2\n0.3,oops\n")
        with pytest.raises(ValueError, match=r"traces\.csv:2:2: .*'oops'"):
            load_utilization_csv(path)

    def test_nan_rejected_as_out_of_range(self, tmp_path):
        path = tmp_path / "traces.csv"
        path.write_text("0.1,nan\n")
        with pytest.raises(ValueError, match=r"traces\.csv:1:2"):
            load_utilization_csv(path)


class TestLibrary:
    def test_shape_properties(self, library):
        assert library.recorded_vms == 4
        assert library.recorded_slots == 4

    def test_slot_trace_matches_window(self, library, matrix):
        vm = make_vm(vm_id=1)
        assert np.array_equal(library.slot_trace(vm, 2), matrix[1, 60:90])

    def test_vm_rows_wrap(self, library, matrix):
        vm = make_vm(vm_id=5)  # 5 % 4 == 1
        assert np.array_equal(library.slot_trace(vm, 0), matrix[1, :30])

    def test_slots_wrap(self, library, matrix):
        vm = make_vm(vm_id=0)
        assert np.array_equal(
            library.slot_trace(vm, 4), library.slot_trace(vm, 0)
        )

    def test_demand_scales_cores(self, library):
        vm = make_vm(vm_id=0, cores=3.0)
        assert np.allclose(
            library.slot_demand(vm, 1), library.slot_trace(vm, 1) * 3.0
        )

    def test_demand_matrix_alignment(self, library):
        vms = [make_vm(vm_id=i) for i in range(3)]
        stacked = library.demand_matrix(vms, 0)
        assert stacked.shape == (3, 30)

    def test_validation(self, matrix):
        with pytest.raises(ValueError, match="multiple"):
            RecordedTraceLibrary(matrix, steps_per_slot=50)
        with pytest.raises(ValueError, match="non-empty"):
            RecordedTraceLibrary(np.zeros((0, 0)), steps_per_slot=1)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            RecordedTraceLibrary(matrix * 2.0, steps_per_slot=30)


class TestWeekExtension:
    def test_extension_multiplies_length(self, library):
        week = library.extend_days(7)
        assert week.recorded_slots == 4 * 7

    def test_day_zero_preserved(self, library, matrix):
        week = library.extend_days(3)
        assert np.array_equal(week.utilization[:, :120], matrix)

    def test_same_mean_other_days(self, library):
        week = library.extend_days(5, extension_sigma=0.02, seed=3)
        day0 = week.utilization[:, :120]
        day3 = week.utilization[:, 3 * 120 : 4 * 120]
        assert day3.mean() == pytest.approx(day0.mean(), abs=0.01)
        assert not np.array_equal(day0, day3)

    def test_days_validated(self, library):
        with pytest.raises(ValueError):
            library.extend_days(0)


class TestEngineIntegration:
    def test_engine_runs_on_recorded_traces(self):
        rng = np.random.default_rng(9)
        config = scaled_config("tiny").with_horizon(4)
        recording = RecordedTraceLibrary(
            rng.uniform(0.05, 0.95, size=(8, config.steps_per_slot * 2)),
            steps_per_slot=config.steps_per_slot,
        ).extend_days(2)
        engine = SimulationEngine(
            config, PriAwarePolicy(), trace_library=recording
        )
        result = engine.run()
        assert result.total_facility_energy_joules() > 0.0
        assert result.horizon == 4
