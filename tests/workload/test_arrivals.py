"""Arrival process: determinism, service structure, population queries."""

import numpy as np
import pytest

from repro.workload.arrivals import ArrivalModel, VMPopulation


@pytest.fixture(scope="module")
def population() -> VMPopulation:
    model = ArrivalModel(initial_services=10, arrival_rate=1.5)
    return VMPopulation.generate(model, horizon_slots=48, seed=42)


class TestArrivalModel:
    def test_defaults_valid(self):
        ArrivalModel()

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="arrival_rate"):
            ArrivalModel(arrival_rate=-1.0)

    def test_zero_lifetime_rejected(self):
        with pytest.raises(ValueError, match="lifetime"):
            ArrivalModel(mean_lifetime_slots=0.0)

    def test_bad_service_size_rejected(self):
        with pytest.raises(ValueError, match="service size"):
            ArrivalModel(min_service_size=5, max_service_size=2)

    def test_bad_cores_rejected(self):
        with pytest.raises(ValueError, match="core"):
            ArrivalModel(min_cores=0.0)


class TestGeneration:
    def test_deterministic(self):
        model = ArrivalModel(initial_services=5)
        a = VMPopulation.generate(model, 24, seed=1)
        b = VMPopulation.generate(model, 24, seed=1)
        assert [vm.vm_id for vm in a.vms] == [vm.vm_id for vm in b.vms]
        assert [vm.seed for vm in a.vms] == [vm.seed for vm in b.vms]

    def test_seed_changes_population(self):
        model = ArrivalModel(initial_services=5)
        a = VMPopulation.generate(model, 24, seed=1)
        b = VMPopulation.generate(model, 24, seed=2)
        assert [vm.departure_slot for vm in a.vms] != [
            vm.departure_slot for vm in b.vms
        ]

    def test_unique_vm_ids(self, population):
        ids = [vm.vm_id for vm in population.vms]
        assert len(ids) == len(set(ids))

    def test_initial_services_alive_at_zero(self, population):
        services_at_zero = {vm.service_id for vm in population.alive(0)}
        assert len(services_at_zero) == 10

    def test_service_members_share_type_and_phase(self, population):
        by_service = {}
        for vm in population.vms:
            by_service.setdefault(vm.service_id, []).append(vm)
        for members in by_service.values():
            assert len({vm.app_type for vm in members}) == 1
            assert len({vm.phase_hours for vm in members}) == 1

    def test_service_sizes_within_bounds(self, population):
        by_service = {}
        for vm in population.vms:
            by_service.setdefault(vm.service_id, []).append(vm)
        model = ArrivalModel(initial_services=10, arrival_rate=1.5)
        for members in by_service.values():
            assert model.min_service_size <= len(members) <= model.max_service_size

    def test_cores_within_bounds(self, population):
        for vm in population.vms:
            assert 1.0 <= vm.cores <= 4.0

    def test_lifetimes_at_least_one(self, population):
        assert all(vm.lifetime_slots >= 1 for vm in population.vms)

    def test_horizon_validation(self):
        with pytest.raises(ValueError, match="horizon"):
            VMPopulation.generate(ArrivalModel(), 0)


class TestQueries:
    def test_alive_consistent_with_flags(self, population):
        for slot in (0, 10, 47):
            alive = population.alive(slot)
            expected = [vm for vm in population.vms if vm.alive_at(slot)]
            assert alive == expected

    def test_alive_is_cached(self, population):
        assert population.alive(5) is population.alive(5)

    def test_arrivals_match_alive_transitions(self, population):
        arrivals = population.arrivals(10)
        assert all(vm.arrival_slot == 10 for vm in arrivals)

    def test_departures(self, population):
        departures = population.departures(10)
        assert all(vm.departure_slot == 10 for vm in departures)

    def test_peak_alive_positive(self, population):
        assert population.peak_alive() >= len(population.alive(0))

    def test_arrival_counts_roughly_poisson(self):
        model = ArrivalModel(initial_services=0, arrival_rate=2.0)
        population = VMPopulation.generate(model, 200, seed=3)
        service_arrivals = {}
        for vm in population.vms:
            service_arrivals[vm.service_id] = vm.arrival_slot
        counts = np.bincount(
            np.array(list(service_arrivals.values())), minlength=200
        )
        # Mean services per slot should be near the Poisson rate.
        assert counts[1:].mean() == pytest.approx(2.0, rel=0.2)
