"""Shared-memory pack fan-out: publish/restore identity and lifecycle."""

import multiprocessing

import numpy as np
import pytest

from repro.sim.config import scaled_config
from repro.workload.packs import (
    RecordedTraceSource,
    TracePack,
    default_pack,
)
from repro.workload.shm import (
    MIN_SHARED_BYTES,
    SharedPackStub,
    SharedWorkloadPublisher,
    _attach_segment,
)


def recorded_pack(seed=11, n_vms=8, days=1, name="rec-shm"):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.05, 0.95, size=(n_vms, days * 24 * 30))
    return TracePack(
        name=name,
        source=RecordedTraceSource(utilization=matrix, steps_per_slot=30),
    )


@pytest.fixture
def publisher():
    publisher = SharedWorkloadPublisher(min_bytes=0)
    yield publisher
    publisher.close()


class TestPublish:
    def test_roundtrip_is_byte_identical(self, publisher):
        pack = recorded_pack()
        stub = publisher.publish_pack(pack)
        assert stub is not None
        restored = stub.restore()
        assert restored.sha256 == pack.sha256
        assert restored.content_descriptor() == pack.content_descriptor()
        assert np.array_equal(
            restored.source.utilization, pack.source.utilization
        )

    def test_restored_matrix_is_read_only_zero_copy(self, publisher):
        pack = recorded_pack()
        restored = publisher.publish_pack(pack).restore()
        matrix = restored.source.utilization
        assert not matrix.flags.writeable
        assert not matrix.flags.owndata  # a view over the segment
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0

    def test_restored_library_output_identical(self, publisher):
        config = scaled_config("tiny").with_horizon(2)
        pack = recorded_pack()
        restored = publisher.publish_pack(pack).restore()
        original_traces = pack.build_traces(config)
        restored_traces = restored.build_traces(config)
        from repro.workload.vm import AppType, VirtualMachine

        vm = VirtualMachine(
            vm_id=3, app_type=AppType.WEB, cores=2, image_gb=4,
            arrival_slot=0, departure_slot=4, service_id=0,
        )
        assert np.array_equal(
            original_traces.slot_demand(vm, 1),
            restored_traces.slot_demand(vm, 1),
        )

    def test_stub_is_tiny_on_the_wire(self, publisher):
        import pickle

        pack = recorded_pack()
        stub = publisher.publish_pack(pack)
        assert len(pickle.dumps(stub)) < 2048
        assert len(pickle.dumps(stub)) < len(pickle.dumps(pack)) / 50

    def test_idempotent_per_content(self, publisher):
        pack = recorded_pack()
        first = publisher.publish_pack(pack)
        second = publisher.publish_pack(pack)
        assert first is second
        assert publisher.stats()["segments"] == 1

    def test_stats_report_bytes(self, publisher):
        pack = recorded_pack()
        publisher.publish_pack(pack)
        assert (
            publisher.stats()["bytes"] == pack.source.utilization.nbytes
        )


class TestDeclines:
    def test_synthetic_pack_declined(self, publisher):
        assert publisher.publish_pack(default_pack()) is None

    def test_non_pack_declined(self, publisher):
        assert publisher.publish_pack(object()) is None

    def test_small_matrix_declined_by_default_threshold(self):
        publisher = SharedWorkloadPublisher()  # default MIN_SHARED_BYTES
        try:
            pack = recorded_pack()
            assert pack.source.utilization.nbytes < MIN_SHARED_BYTES
            assert publisher.publish_pack(pack) is None
        finally:
            publisher.close()

    def test_closed_publisher_declines(self, publisher):
        publisher.close()
        assert publisher.publish_pack(recorded_pack()) is None


class TestLifecycle:
    def test_close_unlinks_segments(self):
        publisher = SharedWorkloadPublisher(min_bytes=0)
        stub = publisher.publish_pack(recorded_pack(seed=23, name="gone"))
        publisher.close()
        with pytest.raises(FileNotFoundError):
            _attach_segment(stub.ref.name)
        assert publisher.stats()["segments"] == 0

    def test_close_is_idempotent(self, publisher):
        publisher.publish_pack(recorded_pack())
        publisher.close()
        publisher.close()


def _worker_probe(stub: SharedPackStub, queue) -> None:
    restored = stub.restore()
    queue.put(
        (
            restored.sha256,
            restored.source.utilization.copy(),
            bool(restored.source.utilization.flags.owndata),
        )
    )


class TestWorkerProcessRestore:
    def test_child_process_sees_identical_bytes(self, publisher):
        pack = recorded_pack(seed=42)
        stub = publisher.publish_pack(pack)
        context = multiprocessing.get_context("spawn")
        queue = context.Queue()
        child = context.Process(target=_worker_probe, args=(stub, queue))
        child.start()
        sha, matrix, owndata = queue.get(timeout=60)
        child.join(timeout=60)
        assert child.exitcode == 0
        assert sha == pack.sha256
        assert not owndata  # the child adopted the segment, no copy
        assert np.array_equal(matrix, pack.source.utilization)
        # The parent's segment survived the child's exit (the child
        # must close, never unlink).
        again = publisher.publish_pack(pack)
        assert again is stub
        assert np.array_equal(
            stub.restore().source.utilization, pack.source.utilization
        )


class TestNoCopyAdoption:
    def test_read_only_array_is_adopted_not_copied(self):
        rng = np.random.default_rng(5)
        matrix = rng.uniform(0.1, 0.9, size=(4, 60))
        matrix.flags.writeable = False
        source = RecordedTraceSource(utilization=matrix, steps_per_slot=30)
        assert source.utilization is matrix

    def test_writeable_array_still_defensively_copied(self):
        rng = np.random.default_rng(5)
        matrix = rng.uniform(0.1, 0.9, size=(4, 60))
        source = RecordedTraceSource(utilization=matrix, steps_per_slot=30)
        assert source.utilization is not matrix
        matrix[0, 0] = 9.9
        assert source.utilization[0, 0] != 9.9
