"""Data correlation process: structure, statistics, VolumeMatrix."""

import numpy as np
import pytest

from tests.conftest import make_vm
from repro.workload.datacorr import (
    MEAN_VOLUME_MB,
    DataCorrelationProcess,
    VolumeMatrix,
)


@pytest.fixture
def process() -> DataCorrelationProcess:
    return DataCorrelationProcess(seed=17)


class TestVolumeMatrix:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            VolumeMatrix(vm_ids=[1, 2], volumes=np.zeros((3, 3)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            VolumeMatrix(vm_ids=[1, 2], volumes=np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_volume_lookup_by_id(self):
        matrix = VolumeMatrix(
            vm_ids=[10, 20], volumes=np.array([[0.0, 3.0], [7.0, 0.0]])
        )
        assert matrix.volume(10, 20) == 3.0
        assert matrix.volume(20, 10) == 7.0

    def test_pair_volume_is_bidirectional(self):
        matrix = VolumeMatrix(
            vm_ids=[10, 20], volumes=np.array([[0.0, 3.0], [7.0, 0.0]])
        )
        assert matrix.pair_volume(10, 20) == 10.0

    def test_symmetric(self):
        matrix = VolumeMatrix(
            vm_ids=[10, 20], volumes=np.array([[0.0, 3.0], [7.0, 0.0]])
        )
        sym = matrix.symmetric()
        assert sym[0, 1] == sym[1, 0] == 10.0

    def test_total(self):
        matrix = VolumeMatrix(
            vm_ids=[10, 20], volumes=np.array([[0.0, 3.0], [7.0, 0.0]])
        )
        assert matrix.total_mb() == 10.0


class TestPairBases:
    def test_intra_service_always_communicates(self, process):
        a = make_vm(vm_id=0, service_id=3)
        b = make_vm(vm_id=1, service_id=3)
        assert process.pair_base_mb(a, b) > 0.0

    def test_self_pair_zero(self, process):
        a = make_vm(vm_id=0)
        assert process.pair_base_mb(a, a) == 0.0

    def test_bidirectional_asymmetry(self, process):
        a = make_vm(vm_id=0, service_id=3)
        b = make_vm(vm_id=1, service_id=3)
        assert process.pair_base_mb(a, b) != process.pair_base_mb(b, a)

    def test_base_cached(self, process):
        a = make_vm(vm_id=0, service_id=3)
        b = make_vm(vm_id=1, service_id=3)
        assert process.pair_base_mb(a, b) == process.pair_base_mb(a, b)

    def test_cross_service_mostly_silent(self, process):
        bases = [
            process.pair_base_mb(
                make_vm(vm_id=i, service_id=0), make_vm(vm_id=1000 + i, service_id=1)
            )
            for i in range(200)
        ]
        silent_fraction = sum(1 for base in bases if base == 0.0) / len(bases)
        assert silent_fraction > 0.9

    def test_cross_service_scaled_down(self):
        loud = DataCorrelationProcess(
            background_fraction=1.0, background_scale=0.1, seed=5
        )
        intra = [
            loud.pair_base_mb(
                make_vm(vm_id=2 * i, service_id=7),
                make_vm(vm_id=2 * i + 1, service_id=7),
            )
            for i in range(300)
        ]
        cross = [
            loud.pair_base_mb(
                make_vm(vm_id=10_000 + 2 * i, service_id=0),
                make_vm(vm_id=10_001 + 2 * i, service_id=1),
            )
            for i in range(300)
        ]
        assert np.mean(cross) < np.mean(intra)

    def test_lognormal_mean_near_10mb(self):
        """Intra-service base volumes average to the paper's 10 MB."""
        process = DataCorrelationProcess(seed=23)
        bases = [
            process.pair_base_mb(
                make_vm(vm_id=2 * i, service_id=i),
                make_vm(vm_id=2 * i + 1, service_id=i),
            )
            for i in range(4000)
        ]
        # Heavy-tailed: compare the median of batch means, loosely.
        assert np.mean(bases) == pytest.approx(MEAN_VOLUME_MB, rel=0.5)

    def test_dense_mode_all_pairs(self):
        dense = DataCorrelationProcess(dense=True, seed=3)
        a = make_vm(vm_id=0, service_id=0)
        b = make_vm(vm_id=1, service_id=99)
        assert dense.pair_base_mb(a, b) > 0.0


class TestVolumesMatrixGeneration:
    def test_alignment_and_diagonal(self, process, six_vms):
        matrix = process.volumes(six_vms, 4)
        assert matrix.vm_ids == [vm.vm_id for vm in six_vms]
        assert np.all(np.diag(matrix.volumes) == 0.0)

    def test_deterministic(self, six_vms):
        a = DataCorrelationProcess(seed=17).volumes(six_vms, 4)
        b = DataCorrelationProcess(seed=17).volumes(six_vms, 4)
        assert np.array_equal(a.volumes, b.volumes)

    def test_varies_over_slots(self, process, six_vms):
        a = process.volumes(six_vms, 4)
        b = process.volumes(six_vms, 5)
        assert not np.array_equal(a.volumes, b.volumes)

    def test_nonnegative(self, process, six_vms):
        matrix = process.volumes(six_vms, 4)
        assert np.all(matrix.volumes >= 0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="background_fraction"):
            DataCorrelationProcess(background_fraction=1.5)
        with pytest.raises(ValueError, match="background_scale"):
            DataCorrelationProcess(background_scale=-0.1)


class TestVolumeMatrixEdgeCases:
    def test_single_vm_population(self, process):
        matrix = process.volumes([make_vm(vm_id=3)], 0)
        assert matrix.vm_ids == [3]
        assert matrix.volumes.shape == (1, 1)
        assert matrix.total_mb() == 0.0
        assert matrix.pair_volume(3, 3) == 0.0

    def test_empty_pair_set(self, process):
        matrix = process.volumes([], 0)
        assert matrix.vm_ids == []
        assert matrix.volumes.shape == (0, 0)
        assert matrix.total_mb() == 0.0
        assert matrix.symmetric().shape == (0, 0)

    def test_directed_volumes_asymmetric(self, process, six_vms):
        matrix = process.volumes(six_vms, 2)
        a, b = six_vms[0].vm_id, six_vms[1].vm_id
        assert matrix.volume(a, b) != matrix.volume(b, a)

    def test_pair_volume_symmetric(self, process, six_vms):
        matrix = process.volumes(six_vms, 2)
        for a in six_vms:
            for b in six_vms:
                assert matrix.pair_volume(a.vm_id, b.vm_id) == (
                    matrix.pair_volume(b.vm_id, a.vm_id)
                )


def make_population(n: int) -> list:
    """Mixed-service population with non-contiguous vm ids."""
    return [
        make_vm(vm_id=3 + 7 * i, service_id=i // 4, seed=i) for i in range(n)
    ]


class TestVectorizedEquivalence:
    """The batched path must be bit-identical to the reference loop."""

    @pytest.mark.parametrize("n", [1, 2, 50, 200])
    def test_bit_identical_across_sizes(self, n):
        vms = make_population(n)
        loop = DataCorrelationProcess(seed=17, vectorized=False)
        vectorized = DataCorrelationProcess(seed=17, vectorized=True)
        for slot in (0, 7):
            reference = loop.volumes(vms, slot)
            batched = vectorized.volumes(vms, slot)
            assert batched.vm_ids == reference.vm_ids
            assert np.array_equal(batched.volumes, reference.volumes)

    def test_bit_identical_dense(self):
        vms = make_population(12)
        loop = DataCorrelationProcess(dense=True, seed=5, vectorized=False)
        vectorized = DataCorrelationProcess(dense=True, seed=5, vectorized=True)
        assert np.array_equal(
            vectorized.volumes(vms, 3).volumes, loop.volumes(vms, 3).volumes
        )

    def test_population_change_invalidates_nothing(self):
        """Shrinking/growing the alive set keeps results loop-identical."""
        process = DataCorrelationProcess(seed=9)
        loop = DataCorrelationProcess(seed=9, vectorized=False)
        full = make_population(10)
        for vms in (full, full[:6], full[2:9], full):
            assert np.array_equal(
                process.volumes(vms, 4).volumes, loop.volumes(vms, 4).volumes
            )

    def test_population_cache_bounded(self):
        process = DataCorrelationProcess(seed=9)
        for start in range(process.POPULATION_CACHE_SIZE + 4):
            process.volumes(make_population(12)[start % 6 :], 0)
        assert len(process._population_cache) <= process.POPULATION_CACHE_SIZE

    def test_default_is_vectorized(self):
        assert DataCorrelationProcess().vectorized is True
