"""VM model: validation, lifetimes, sampling distributions."""

import numpy as np
import pytest

from tests.conftest import make_vm
from repro.workload.vm import (
    APP_TYPE_PROBS,
    IMAGE_SIZE_PROBS,
    IMAGE_SIZES_GB,
    AppType,
    sample_app_type,
    sample_image_size_gb,
)


class TestValidation:
    def test_valid_vm_constructs(self):
        vm = make_vm(vm_id=7)
        assert vm.vm_id == 7

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            make_vm(cores=0.0)

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            make_vm(cores=-1.0)

    def test_departure_before_arrival_rejected(self):
        with pytest.raises(ValueError, match="departure"):
            make_vm(arrival_slot=10, departure_slot=10)

    def test_zero_image_rejected(self):
        with pytest.raises(ValueError, match="image"):
            make_vm(image_gb=0.0)


class TestLifecycle:
    def test_lifetime_slots(self):
        vm = make_vm(arrival_slot=3, departure_slot=10)
        assert vm.lifetime_slots == 7

    def test_alive_at_arrival(self):
        vm = make_vm(arrival_slot=3, departure_slot=10)
        assert vm.alive_at(3)

    def test_not_alive_before_arrival(self):
        vm = make_vm(arrival_slot=3, departure_slot=10)
        assert not vm.alive_at(2)

    def test_not_alive_at_departure(self):
        vm = make_vm(arrival_slot=3, departure_slot=10)
        assert not vm.alive_at(10)

    def test_alive_last_slot(self):
        vm = make_vm(arrival_slot=3, departure_slot=10)
        assert vm.alive_at(9)


class TestSampling:
    def test_image_sizes_from_support(self, rng):
        sizes = {sample_image_size_gb(rng) for _ in range(200)}
        assert sizes <= set(IMAGE_SIZES_GB)

    def test_image_size_distribution(self, rng):
        draws = np.array([sample_image_size_gb(rng) for _ in range(4000)])
        for size, prob in zip(IMAGE_SIZES_GB, IMAGE_SIZE_PROBS):
            frequency = float(np.mean(draws == size))
            assert frequency == pytest.approx(prob, abs=0.05)

    def test_image_probs_sum_to_one(self):
        assert sum(IMAGE_SIZE_PROBS) == pytest.approx(1.0)

    def test_app_types_from_enum(self, rng):
        draws = {sample_app_type(rng) for _ in range(100)}
        assert draws <= set(AppType)

    def test_app_type_distribution(self, rng):
        draws = [sample_app_type(rng) for _ in range(4000)]
        for app_type, prob in APP_TYPE_PROBS.items():
            frequency = draws.count(app_type) / len(draws)
            assert frequency == pytest.approx(prob, abs=0.05)

    def test_app_type_probs_sum_to_one(self):
        assert sum(APP_TYPE_PROBS.values()) == pytest.approx(1.0)

    def test_frozen_dataclass(self):
        vm = make_vm()
        with pytest.raises(AttributeError):
            vm.cores = 4.0
