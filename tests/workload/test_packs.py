"""Trace packs: content hashing, registry, provider behavior."""

import numpy as np
import pytest

from repro.baselines.pri_aware import PriAwarePolicy
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine
from repro.workload.packs import (
    DataCorrelationParams,
    LibraryWorkload,
    RecordedTraceSource,
    SyntheticTraceSource,
    TracePack,
    available_packs,
    default_pack,
    get_pack,
    register_pack,
)
from repro.workload.recorded import RecordedTraceLibrary
from repro.workload.vm import AppType


@pytest.fixture
def matrix() -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.uniform(0.1, 0.9, size=(4, 120))


def recorded_pack(matrix, **kwargs) -> TracePack:
    return TracePack(
        name=kwargs.pop("name", "rec"),
        source=RecordedTraceSource(
            utilization=matrix, steps_per_slot=kwargs.pop("steps_per_slot", 30)
        ),
        **kwargs,
    )


class TestContentHash:
    def test_same_content_same_hash(self, matrix):
        assert recorded_pack(matrix).sha256 == recorded_pack(matrix.copy()).sha256

    def test_name_not_hashed(self, matrix):
        assert (
            recorded_pack(matrix, name="a").sha256
            == recorded_pack(matrix, name="b").sha256
        )

    def test_matrix_change_changes_hash(self, matrix):
        other = matrix.copy()
        other[0, 0] += 1e-9
        assert recorded_pack(matrix).sha256 != recorded_pack(other).sha256

    def test_version_changes_hash(self, matrix):
        assert (
            recorded_pack(matrix, version=1).sha256
            != recorded_pack(matrix, version=2).sha256
        )

    def test_datacorr_params_change_hash(self, matrix):
        tweaked = recorded_pack(
            matrix, datacorr=DataCorrelationParams(jitter_sigma=0.4)
        )
        assert recorded_pack(matrix).sha256 != tweaked.sha256

    def test_app_mix_changes_hash(self, matrix):
        mixed = recorded_pack(matrix).with_app_mix({AppType.HPC: 1.0})
        assert recorded_pack(matrix).sha256 != mixed.sha256

    def test_app_mix_key_order_irrelevant(self, matrix):
        forward = recorded_pack(matrix).with_app_mix(
            {AppType.WEB: 0.5, AppType.HPC: 0.5}
        )
        backward = recorded_pack(matrix).with_app_mix(
            {AppType.HPC: 0.5, AppType.WEB: 0.5}
        )
        assert forward.sha256 == backward.sha256

    def test_synthetic_vs_recorded_differ(self, matrix):
        synthetic = TracePack(name="s", source=SyntheticTraceSource())
        assert synthetic.sha256 != recorded_pack(matrix).sha256

    def test_extension_params_change_hash(self, matrix):
        base = recorded_pack(matrix)
        extended = TracePack(
            name="rec",
            source=RecordedTraceSource(
                utilization=matrix, steps_per_slot=30, extend_days=7
            ),
        )
        assert base.sha256 != extended.sha256

    def test_descriptor_shape(self, matrix):
        descriptor = recorded_pack(matrix).descriptor()
        assert descriptor["name"] == "rec"
        assert descriptor["kind"] == "recorded"
        assert len(descriptor["sha256"]) == 64
        import json

        json.dumps(descriptor)  # JSON-stable

    def test_source_snapshots_caller_array(self, matrix):
        """Mutating the input after construction cannot skew the hash."""
        original = matrix.copy()
        pack = recorded_pack(matrix)  # sha256 not yet computed (lazy)
        matrix[0, 0] = 0.0
        assert pack.sha256 == recorded_pack(original).sha256
        assert pack.source.utilization[0, 0] == original[0, 0]
        with pytest.raises(ValueError):
            pack.source.utilization[0, 0] = 0.5  # read-only snapshot

    def test_content_descriptor_omits_name(self, matrix):
        pack = recorded_pack(matrix)
        content = pack.content_descriptor()
        assert "name" not in content
        assert content["sha256"] == pack.sha256
        assert (
            recorded_pack(matrix, name="other").content_descriptor() == content
        )


class TestRegistry:
    def test_default_pack_registered(self):
        assert default_pack().name == "synthetic"
        assert get_pack("synthetic").kind == "synthetic"

    def test_scenario_packs_registered(self):
        packs = available_packs()
        assert "scenario-hpc" in packs
        assert packs["scenario-hpc"].app_mix[AppType.HPC] == 0.7

    def test_registry_visible_from_package_top_level(self):
        import repro

        assert repro.get_pack("scenario-hpc").kind == "synthetic"
        assert "scenario-mixed" in repro.available_packs()

    def test_unknown_pack_names_alternatives(self):
        with pytest.raises(KeyError, match="synthetic"):
            get_pack("nope")

    def test_duplicate_registration_rejected(self, matrix):
        with pytest.raises(ValueError, match="already registered"):
            register_pack(recorded_pack(matrix, name="synthetic"))

    def test_replace_allows_reregistration(self, matrix):
        from repro.workload import packs as packs_module

        pack = recorded_pack(matrix, name="test-replace")
        try:
            register_pack(pack, replace=True)
            assert get_pack("test-replace") is pack
            register_pack(pack, replace=True)
        finally:
            packs_module._REGISTRY.pop("test-replace", None)


class TestFromCsv:
    def test_named_after_file(self, tmp_path, matrix):
        path = tmp_path / "mydc.csv"
        np.savetxt(path, matrix, delimiter=",")
        pack = TracePack.from_csv(path, steps_per_slot=30)
        assert pack.name == "mydc"
        assert pack.kind == "recorded"

    def test_hash_survives_reload(self, tmp_path, matrix):
        path = tmp_path / "traces.csv"
        np.savetxt(path, matrix, delimiter=",")
        first = TracePack.from_csv(path, steps_per_slot=30)
        second = TracePack.from_csv(path, steps_per_slot=30)
        assert first.sha256 == second.sha256

    def test_extend_days_forwarded(self, tmp_path, matrix):
        path = tmp_path / "traces.csv"
        np.savetxt(path, matrix, delimiter=",")
        pack = TracePack.from_csv(path, steps_per_slot=30, extend_days=7)
        config = scaled_config("tiny")
        library = pack.build_traces(config)
        assert library.recorded_slots == 4 * 7


class TestProviderBehavior:
    def test_configure_applies_app_mix(self, matrix):
        config = scaled_config("tiny")
        pack = recorded_pack(matrix).with_app_mix({AppType.HPC: 1.0})
        configured = pack.configure(config)
        assert configured.arrival_model.app_mix == {AppType.HPC: 1.0}
        assert config.arrival_model.app_mix != {AppType.HPC: 1.0}

    def test_configure_without_mix_is_identity(self, matrix):
        config = scaled_config("tiny")
        assert recorded_pack(matrix).configure(config) is config

    def test_steps_per_slot_mismatch_rejected(self, matrix):
        config = scaled_config("tiny")  # 30 steps per slot
        pack = TracePack(
            name="bad",
            source=RecordedTraceSource(utilization=matrix, steps_per_slot=40),
        )
        with pytest.raises(ValueError, match="steps per slot"):
            pack.build_traces(config)

    def test_build_volumes_uses_engine_seed_convention(self, matrix):
        config = scaled_config("tiny", seed=5)
        process = recorded_pack(matrix).build_volumes(config)
        assert process.seed == config.seed + 2

    def test_invalid_matrix_rejected_at_construction(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            RecordedTraceSource(
                utilization=np.full((2, 30), 1.5), steps_per_slot=30
            )

    def test_extend_days_validated(self, matrix):
        with pytest.raises(ValueError, match="extend_days"):
            RecordedTraceSource(
                utilization=matrix, steps_per_slot=30, extend_days=0
            )


class TestEngineIntegration:
    def test_default_pack_matches_implicit_default(self):
        config = scaled_config("tiny").with_horizon(3)
        implicit = SimulationEngine(config, PriAwarePolicy()).run()
        explicit = SimulationEngine(
            config, PriAwarePolicy(), workload=default_pack()
        ).run()
        assert implicit.slots == explicit.slots

    def test_pack_matches_equivalent_trace_library(self, matrix):
        config = scaled_config("tiny").with_horizon(3)
        pack = recorded_pack(matrix)
        via_pack = SimulationEngine(
            config, PriAwarePolicy(), workload=pack
        ).run()
        via_library = SimulationEngine(
            config,
            PriAwarePolicy(),
            trace_library=RecordedTraceLibrary(matrix, steps_per_slot=30),
        ).run()
        assert via_pack.slots == via_library.slots

    def test_workload_and_trace_library_exclusive(self, matrix):
        config = scaled_config("tiny").with_horizon(2)
        with pytest.raises(ValueError, match="not both"):
            SimulationEngine(
                config,
                PriAwarePolicy(),
                trace_library=RecordedTraceLibrary(matrix, steps_per_slot=30),
                workload=recorded_pack(matrix),
            )

    def test_scenario_pack_changes_population_mix(self):
        config = scaled_config("tiny").with_horizon(2)
        hpc = SimulationEngine(
            config, PriAwarePolicy(), workload=get_pack("scenario-hpc")
        )
        vms = hpc.population.alive(0)
        hpc_fraction = sum(
            1 for vm in vms if vm.app_type is AppType.HPC
        ) / len(vms)
        assert hpc_fraction > 0.3

    def test_library_workload_descriptor_is_opaque(self, matrix):
        provider = LibraryWorkload(
            RecordedTraceLibrary(matrix, steps_per_slot=30)
        )
        assert provider.descriptor()["sha256"] is None
