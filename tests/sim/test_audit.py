"""Post-run auditor."""

import pytest

from repro.baselines.net_aware import NetAwarePolicy
from repro.core.controller import ProposedPolicy
from repro.sim.audit import AuditReport, audit_run
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine


@pytest.fixture(scope="module")
def run_and_config():
    config = scaled_config("tiny").with_horizon(6)
    result = SimulationEngine(config, ProposedPolicy()).run()
    return result, config


class TestCleanRuns:
    def test_proposed_run_passes(self, run_and_config):
        result, config = run_and_config
        report = audit_run(result, config)
        assert report.passed, report.violations
        assert report.checks_run > 100

    def test_baseline_run_passes(self):
        config = scaled_config("tiny").with_horizon(4)
        result = SimulationEngine(config, NetAwarePolicy()).run()
        report = audit_run(result, config)
        assert report.passed, report.violations

    def test_raise_if_failed_noop_when_clean(self, run_and_config):
        result, config = run_and_config
        audit_run(result, config).raise_if_failed()


class TestViolationDetection:
    def test_horizon_mismatch_detected(self, run_and_config):
        result, config = run_and_config
        short = config.with_horizon(99)
        report = audit_run(result, short)
        assert not report.passed
        assert any("horizon" in violation for violation in report.violations)

    def test_corrupted_ledger_detected(self, run_and_config):
        result, config = run_and_config
        green = result.slots[2].dc_records[0].green
        original = green.grid_to_load
        green.grid_to_load = original + 1.0e6
        try:
            report = audit_run(result, config)
            assert not report.passed
            assert any("sources" in violation for violation in report.violations)
        finally:
            green.grid_to_load = original

    def test_negative_cost_detected(self, run_and_config):
        result, config = run_and_config
        green = result.slots[1].dc_records[1].green
        original = green.grid_cost_eur
        green.grid_cost_eur = -1.0
        try:
            report = audit_run(result, config)
            assert any("cost" in violation for violation in report.violations)
        finally:
            green.grid_cost_eur = original

    def test_soc_discontinuity_detected(self, run_and_config):
        result, config = run_and_config
        green = result.slots[3].dc_records[0].green
        original = green.soc_start
        green.soc_start = original + 5.0e6
        try:
            report = audit_run(result, config)
            assert any(
                "discontinuity" in violation for violation in report.violations
            )
        finally:
            green.soc_start = original

    def test_raise_lists_violations(self):
        report = AuditReport(policy_name="X")
        report.record(False, "boom")
        with pytest.raises(AssertionError, match="boom"):
            report.raise_if_failed()
