"""Result ledgers: aggregations from hand-built records."""

import numpy as np
import pytest

from repro.core.green import GreenSlotResult
from repro.sim.results import DCSlotRecord, RunResult, SlotRecord


def green(facility=1000.0, grid_load=600.0, grid_batt=100.0, cost=0.05,
          pv_gen=500.0, pv_used=300.0, pv_stored=100.0):
    return GreenSlotResult(
        facility_energy=facility,
        pv_generated=pv_gen,
        pv_used=pv_used,
        pv_stored=pv_stored,
        pv_curtailed=pv_gen - pv_used - pv_stored,
        battery_discharged=facility - pv_used - grid_load,
        grid_to_load=grid_load,
        grid_to_battery=grid_batt,
        grid_energy=grid_load + grid_batt,
        grid_cost_eur=cost,
        soc_start=0.0,
        soc_end=0.0,
    )


def record(slot, latencies=(0.5, 1.0), receiving=(3, 2), migrations=1):
    dc_records = [
        DCSlotRecord(
            green=green(),
            it_energy_joules=800.0,
            active_servers=2,
            response_latency_s=latency,
            receiving_vms=count,
        )
        for latency, count in zip(latencies, receiving)
    ]
    return SlotRecord(
        slot=slot,
        n_vms=5,
        migrations=migrations,
        migration_volume_mb=2000.0,
        dc_records=dc_records,
    )


@pytest.fixture
def run() -> RunResult:
    return RunResult(
        policy_name="Test",
        config_name="unit",
        slots=[record(0), record(1, latencies=(2.0, 0.1), receiving=(1, 4))],
    )


class TestSlotRecord:
    def test_grid_cost_sums_dcs(self):
        slot = record(0)
        assert slot.grid_cost_eur == pytest.approx(0.10)

    def test_facility_energy_sums_dcs(self):
        slot = record(0)
        assert slot.facility_energy_joules == pytest.approx(2000.0)

    def test_grid_energy_sums_dcs(self):
        slot = record(0)
        assert slot.grid_energy_joules == pytest.approx(1400.0)

    def test_response_samples_weighted_by_receivers(self):
        samples = record(0).response_samples()
        assert samples.shape == (5,)
        assert np.sum(samples == 0.5) == 3
        assert np.sum(samples == 1.0) == 2

    def test_no_receivers_no_samples(self):
        slot = record(0, receiving=(0, 0))
        assert slot.response_samples().size == 0


class TestRunResult:
    def test_total_cost(self, run):
        assert run.total_grid_cost_eur() == pytest.approx(0.20)

    def test_hourly_cost_series(self, run):
        assert np.allclose(run.hourly_cost_eur(), [0.10, 0.10])

    def test_total_energy(self, run):
        assert run.total_facility_energy_joules() == pytest.approx(4000.0)
        assert run.total_energy_gj() == pytest.approx(4000.0 / 1e9)

    def test_hourly_energy_series(self, run):
        assert np.allclose(run.hourly_energy_joules(), [2000.0, 2000.0])

    def test_grid_energy_total(self, run):
        assert run.total_grid_energy_joules() == pytest.approx(2800.0)

    def test_renewable_utilization(self, run):
        # (pv_used + pv_stored) / generated per the fixture's green ledger.
        assert run.renewable_utilization() == pytest.approx(400.0 / 500.0)

    def test_response_samples_concatenated(self, run):
        assert run.response_samples().shape == (10,)

    def test_mean_and_worst_response(self, run):
        samples = run.response_samples()
        assert run.mean_response_s() == pytest.approx(float(samples.mean()))
        assert run.worst_response_s() == pytest.approx(2.0)

    def test_percentile_response(self, run):
        assert run.percentile_response_s(50.0) <= run.percentile_response_s(99.0)

    def test_migration_totals(self, run):
        assert run.total_migrations() == 2
        assert run.total_migration_volume_mb() == pytest.approx(4000.0)

    def test_mean_active_servers(self, run):
        assert run.mean_active_servers() == pytest.approx(4.0)

    def test_summary_keys(self, run):
        summary = run.summary()
        for key in (
            "policy",
            "cost_eur",
            "energy_gj",
            "mean_rt_s",
            "worst_rt_s",
            "migrations",
        ):
            assert key in summary

    def test_empty_run_safe(self):
        empty = RunResult(policy_name="Empty", config_name="unit")
        assert empty.total_grid_cost_eur() == 0.0
        assert empty.mean_response_s() == 0.0
        assert empty.worst_response_s() == 0.0
        assert empty.mean_active_servers() == 0.0
        assert empty.renewable_utilization() == 0.0


class TestSerialization:
    def test_roundtrip_identity(self):
        run = RunResult(
            policy_name="Proposed",
            config_name="unit",
            slots=[record(0), record(1, latencies=(0.25, 2.0), migrations=3)],
        )
        clone = RunResult.from_dict(run.to_dict())
        assert clone.policy_name == run.policy_name
        assert clone.config_name == run.config_name
        assert clone.slots == run.slots

    def test_roundtrip_through_json_is_bit_exact(self):
        import json

        run = RunResult(
            policy_name="Net-aware",
            config_name="unit",
            slots=[record(0, latencies=(1 / 3, 0.1 + 0.2))],
        )
        clone = RunResult.from_dict(json.loads(json.dumps(run.to_dict())))
        assert clone.slots == run.slots
        assert clone.summary() == run.summary()

    def test_dc_record_roundtrip(self):
        original = record(0).dc_records[0]
        clone = DCSlotRecord.from_dict(original.to_dict())
        assert clone == original
        assert isinstance(clone.green, GreenSlotResult)

    def test_empty_run_roundtrip(self):
        empty = RunResult(policy_name="Empty", config_name="unit")
        assert RunResult.from_dict(empty.to_dict()) == empty
