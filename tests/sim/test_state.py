"""Observation helpers and placement validation."""

import numpy as np
import pytest

from tests.conftest import make_observation, make_vm
from repro.core.local import ServerAllocation, allocate_first_fit
from repro.datacenter.server import XEON_E5410
from repro.sim.state import FleetPlacement


class TestObservation:
    def test_vm_index(self, observation):
        index = observation.vm_index()
        for row, vm in enumerate(observation.vms):
            assert index[vm.vm_id] == row

    def test_previous_array_marks_new(
        self, six_vms, datacenters, latency_model, trace_library, volume_process
    ):
        observation = make_observation(
            six_vms,
            datacenters,
            latency_model,
            trace_library,
            volume_process,
            previous_assignment={six_vms[0].vm_id: 2},
        )
        previous = observation.previous_array()
        assert previous[0] == 2
        assert np.all(previous[1:] == -1)

    def test_loads_are_trace_means(self, observation):
        assert np.allclose(
            observation.loads(), observation.demand_traces.mean(axis=1)
        )

    def test_n_dcs(self, observation):
        assert observation.n_dcs == 3


def valid_placement(observation):
    assignment = {vm.vm_id: 0 for vm in observation.vms}
    allocations = []
    for dc in observation.dcs:
        rows = [
            row
            for row, vm in enumerate(observation.vms)
            if assignment[vm.vm_id] == dc.index
        ]
        allocations.append(
            allocate_first_fit(
                [observation.vms[row].vm_id for row in rows],
                observation.demand_traces[rows],
                dc.spec.server_model,
                dc.spec.n_servers,
            )
        )
    return FleetPlacement(assignment=assignment, allocations=allocations)


class TestPlacementValidation:
    def test_valid_passes(self, observation):
        valid_placement(observation).validate(observation)

    def test_missing_vm_fails(self, observation):
        placement = valid_placement(observation)
        del placement.assignment[observation.vms[0].vm_id]
        with pytest.raises(ValueError, match="missing"):
            placement.validate(observation)

    def test_extra_vm_fails(self, observation):
        placement = valid_placement(observation)
        placement.assignment[12345] = 0
        with pytest.raises(ValueError, match="extra"):
            placement.validate(observation)

    def test_wrong_allocation_count_fails(self, observation):
        placement = valid_placement(observation)
        placement.allocations.pop()
        with pytest.raises(ValueError, match="per DC"):
            placement.validate(observation)

    def test_vm_on_wrong_dc_fails(self, observation):
        placement = valid_placement(observation)
        moved = observation.vms[0].vm_id
        placement.assignment[moved] = 1  # still allocated on DC0's servers
        with pytest.raises(ValueError, match="assigned"):
            placement.validate(observation)

    def test_unallocated_vm_fails(self, observation):
        placement = valid_placement(observation)
        victim = placement.allocations[0].server_vms[0].pop(0)
        if not placement.allocations[0].server_vms[0]:
            placement.allocations[0].server_vms.pop(0)
            placement.allocations[0].frequencies.pop(0)
            placement.allocations[0].saturated.pop(0)
        with pytest.raises(ValueError):
            placement.validate(observation)
