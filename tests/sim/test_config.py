"""Experiment configurations: Table I fidelity and scaled variants."""

import pytest

from repro.sim.config import (
    ExperimentConfig,
    build_datacenters,
    build_latency_model,
    paper_config,
    scaled_config,
)


class TestPaperConfig:
    def test_table1_servers(self):
        config = paper_config()
        assert [spec.n_servers for spec in config.specs] == [1500, 1000, 500]

    def test_table1_pv(self):
        config = paper_config()
        assert [spec.pv_kwp for spec in config.specs] == [150.0, 100.0, 50.0]

    def test_table1_battery(self):
        config = paper_config()
        assert [spec.battery_kwh for spec in config.specs] == [960.0, 720.0, 480.0]

    def test_sites(self):
        config = paper_config()
        assert [spec.name for spec in config.specs] == [
            "Lisbon",
            "Zurich",
            "Helsinki",
        ]

    def test_five_second_sampling(self):
        assert paper_config().steps_per_slot == 720

    def test_one_week_horizon(self):
        assert paper_config().horizon_slots == 168

    def test_qos_window_is_72s(self):
        assert paper_config().latency_constraint_s == pytest.approx(72.0)

    def test_time_zones_increase_eastward(self):
        config = paper_config()
        offsets = [spec.tz_offset_hours for spec in config.specs]
        assert offsets == sorted(offsets)


class TestScaledConfig:
    def test_small_keeps_server_ratio(self):
        config = scaled_config("small")
        servers = [spec.n_servers for spec in config.specs]
        assert servers[0] == 3 * servers[2]
        assert servers[1] == 2 * servers[2]

    def test_energy_densities_preserved(self):
        config = scaled_config("small")
        paper = paper_config()
        for spec, paper_spec in zip(config.specs, paper.specs):
            assert spec.pv_kwp == pytest.approx(0.1 * spec.n_servers)
            density = paper_spec.battery_kwh / paper_spec.n_servers
            assert spec.battery_kwh == pytest.approx(density * spec.n_servers)

    def test_tiny_is_smaller(self):
        small = scaled_config("small")
        tiny = scaled_config("tiny")
        assert tiny.specs[0].n_servers < small.specs[0].n_servers
        assert tiny.horizon_slots < small.horizon_slots

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            scaled_config("enormous")

    def test_seed_propagates(self):
        assert scaled_config("tiny", seed=9).seed == 9


class TestConfigValidation:
    def test_with_horizon(self):
        config = scaled_config("tiny").with_horizon(5)
        assert config.horizon_slots == 5

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(name="bad", specs=())

    def test_bad_horizon_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            ExperimentConfig(name="bad", specs=tiny_config.specs, horizon_slots=0)

    def test_bad_qos_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            ExperimentConfig(name="bad", specs=tiny_config.specs, qos=1.0)


class TestBuilders:
    def test_build_datacenters_indexes(self, tiny_config):
        dcs = build_datacenters(tiny_config)
        assert [dc.index for dc in dcs] == [0, 1, 2]
        assert all(
            dc.battery.soc_joules == dc.battery.capacity_joules for dc in dcs
        )

    def test_build_latency_model(self, tiny_config):
        model = build_latency_model(tiny_config)
        assert model.topology.n_dcs == 3
        assert model.topology.distance_m(0, 2) > 3.0e6  # Lisbon-Helsinki
