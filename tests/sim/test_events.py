"""Event-driven engine core: heap ordering, equivalence, validation."""

from __future__ import annotations

import json

import pytest

from repro.baselines import EnerAwarePolicy
from repro.sim.config import EngineCoreConfig, scaled_config
from repro.sim.engine import SimulationEngine
from repro.sim.events import (
    ARRIVAL,
    BATTERY,
    DEPARTURE,
    MEASURE,
    MIGRATION,
    REQUEST,
    TARIFF,
    EventCore,
    EventHeap,
)
from repro.workload.arrivals import (
    EVENT_ARRIVAL,
    EVENT_DEPARTURE,
    VMPopulation,
)
from repro.workload.packs import default_pack


@pytest.fixture(scope="module")
def config():
    return scaled_config("tiny").with_horizon(8)


@pytest.fixture(scope="module")
def slot_result(config):
    return SimulationEngine(config, EnerAwarePolicy()).run()


@pytest.fixture(scope="module")
def event_engine(config):
    return SimulationEngine(
        config, EnerAwarePolicy(), engine=EngineCoreConfig(kind="event")
    )


@pytest.fixture(scope="module")
def event_result(event_engine):
    return event_engine.run()


def slot_dicts(result) -> list[dict]:
    return [record.to_dict() for record in result.slots]


class TestEventHeap:
    def test_orders_by_time(self):
        heap = EventHeap()
        heap.push(2.0, MEASURE, "late")
        heap.push(0.5, REQUEST, "early")
        heap.push(1.0, MEASURE, "middle")
        assert [heap.pop()[2] for _ in range(3)] == [
            "early", "middle", "late",
        ]

    def test_same_time_drains_in_lifecycle_order(self):
        heap = EventHeap()
        for kind in (REQUEST, MEASURE, ARRIVAL, DEPARTURE):
            heap.push(3.0, kind, kind)
        drained = [heap.pop()[1] for _ in range(4)]
        assert drained == [DEPARTURE, ARRIVAL, MEASURE, REQUEST]

    def test_same_time_same_kind_keeps_push_order(self):
        heap = EventHeap()
        for label in ("a", "b", "c"):
            heap.push(1.0, MIGRATION, label)
        assert [heap.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_len_peek_and_bool(self):
        heap = EventHeap()
        assert not heap and len(heap) == 0
        heap.push(4.0, TARIFF)
        heap.push(1.5, BATTERY)
        assert heap and len(heap) == 2
        assert heap.peek_time() == 1.5


class TestEngineCoreConfig:
    def test_defaults(self):
        core = EngineCoreConfig()
        assert core.kind == "slot"
        assert core.requests_per_vm_hour > 0

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            EngineCoreConfig(kind="warp")

    def test_rejects_non_positive_request_rate(self):
        with pytest.raises(ValueError, match="requests_per_vm_hour"):
            EngineCoreConfig(requests_per_vm_hour=0.0)


class TestPopulationEvents:
    def test_events_cover_the_population(self, config):
        population = VMPopulation.generate(
            config.arrival_model, config.horizon_slots, seed=config.seed
        )
        events = population.events()
        arrivals = [e for e in events if e[1] == EVENT_ARRIVAL]
        departures = [e for e in events if e[1] == EVENT_DEPARTURE]
        assert len(arrivals) == len(population.vms)
        assert len(departures) == sum(
            1
            for vm in population.vms
            if vm.departure_slot < population.horizon_slots
        )
        slots = [e[0] for e in events]
        assert slots == sorted(slots)

    def test_alive_replay_matches_alive_query(self, config):
        """The incremental alive dict reproduces ``alive(slot)`` exactly."""
        population = VMPopulation.generate(
            config.arrival_model, config.horizon_slots, seed=config.seed
        )
        alive: dict[int, object] = {}
        by_slot: dict[int, list] = {
            slot: [] for slot in range(config.horizon_slots)
        }
        for slot, kind, vm in population.events():
            by_slot[slot].append((kind, vm))
        for slot in range(config.horizon_slots):
            for kind, vm in sorted(by_slot[slot], key=lambda e: e[0]):
                if kind == EVENT_DEPARTURE:
                    del alive[vm.vm_id]
                else:
                    alive[vm.vm_id] = vm
            assert list(alive.values()) == population.alive(slot)


class TestSlotBoundaryEquivalence:
    def test_all_four_policies_byte_identical(self):
        from repro.experiments.runner import default_policies
        from repro.sim.engine import run_policies

        config = scaled_config("tiny").with_horizon(4)
        slot_runs = run_policies(config, default_policies())
        event_runs = run_policies(
            config,
            default_policies(),
            engine=EngineCoreConfig(kind="event"),
        )
        for slot_run, event_run in zip(slot_runs, event_runs):
            assert json.dumps(slot_dicts(event_run)) == json.dumps(
                slot_dicts(slot_run)
            ), slot_run.policy_name

    def test_slot_ledgers_byte_identical(self, slot_result, event_result):
        slot_bytes = json.dumps(slot_dicts(slot_result), sort_keys=True)
        event_bytes = json.dumps(slot_dicts(event_result), sort_keys=True)
        assert slot_bytes == event_bytes

    def test_event_counts_match_population(
        self, config, event_engine, event_result
    ):
        core = EventCore(
            SimulationEngine(
                config,
                EnerAwarePolicy(),
                engine=EngineCoreConfig(kind="event"),
            )
        )
        result = core.run()
        population = core.engine.kernel.population
        assert core.event_counts["arrival"] == len(population.vms)
        assert core.event_counts["measure"] == config.horizon_slots
        assert core.event_counts["departure"] == sum(
            1
            for vm in population.vms
            if vm.departure_slot < population.horizon_slots
        )
        assert core.event_counts["migration"] == result.total_migrations()
        assert core.event_counts["request"] == len(result.requests)

    def test_request_ledger_is_deterministic(self, config, event_result):
        again = SimulationEngine(
            config, EnerAwarePolicy(), engine=EngineCoreConfig(kind="event")
        ).run()
        assert again.requests == event_result.requests

    def test_request_rows_reference_the_run(self, config, event_result):
        assert event_result.requests
        for slot, dc_index, latency_s, count in event_result.requests:
            assert 0 <= slot < config.horizon_slots
            assert 0 <= dc_index < config.n_dcs
            assert latency_s >= 0.0
            assert count > 0


class TestPercentileAccessors:
    def test_slot_engine_degrades_to_none(self, slot_result):
        assert slot_result.requests is None
        assert slot_result.total_requests() is None
        assert slot_result.p50_request_s() is None
        assert slot_result.p99_request_s() is None
        assert slot_result.p999_request_s() is None

    def test_event_engine_percentiles_are_ordered(self, event_result):
        p50 = event_result.p50_request_s()
        p99 = event_result.p99_request_s()
        p999 = event_result.p999_request_s()
        assert p50 <= p99 <= p999
        assert event_result.total_requests() > 0

    def test_round_trip_preserves_the_ledger(self, event_result):
        from repro.sim.results import RunResult

        back = RunResult.from_dict(
            json.loads(json.dumps(event_result.to_dict()))
        )
        assert back.requests == event_result.requests
        assert back.p99_request_s() == event_result.p99_request_s()

    def test_slot_engine_dump_has_no_requests_key(self, slot_result):
        assert "requests" not in slot_result.to_dict()

    def test_headline_carries_request_percentiles(
        self, slot_result, event_result
    ):
        event_headline = event_result.headline()
        assert event_headline["total_requests"] == (
            event_result.total_requests()
        )
        assert event_headline["p99.9_request_s"] == (
            event_result.p999_request_s()
        )
        slot_headline = slot_result.headline()
        assert slot_headline["total_requests"] is None
        assert slot_headline["p50_request_s"] is None


class TestValidation:
    def test_policy_requiring_slot_engine_is_rejected(self, config):
        class SlotOnlyPolicy(EnerAwarePolicy):
            requires_slot_engine = True

        with pytest.raises(ValueError, match="requires the slot engine"):
            SimulationEngine(
                config,
                SlotOnlyPolicy(),
                engine=EngineCoreConfig(kind="event"),
            )

    def test_workload_without_event_support_is_rejected(self, config):
        class NoEventWorkload:
            supports_event_core = False

            def __init__(self, inner):
                self._inner = inner

            def configure(self, config):
                return self._inner.configure(config)

            def build_traces(self, config):
                return self._inner.build_traces(config)

            def build_volumes(self, config, vectorized=True):
                return self._inner.build_volumes(config, vectorized)

            def descriptor(self):
                return self._inner.descriptor()

        with pytest.raises(ValueError, match="does not support the event"):
            SimulationEngine(
                config,
                EnerAwarePolicy(),
                workload=NoEventWorkload(default_pack()),
                engine=EngineCoreConfig(kind="event"),
            )

    def test_slot_engine_accepts_both(self, config):
        class SlotOnlyPolicy(EnerAwarePolicy):
            requires_slot_engine = True

        engine = SimulationEngine(config, SlotOnlyPolicy())
        assert engine.engine_config.kind == "slot"
