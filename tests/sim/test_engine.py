"""Simulation engine: slot loop invariants and reproducibility."""

import numpy as np
import pytest

from repro.baselines.pri_aware import PriAwarePolicy
from repro.core.controller import ProposedPolicy
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine, run_policies


@pytest.fixture(scope="module")
def short_config():
    return scaled_config("tiny").with_horizon(6)


@pytest.fixture(scope="module")
def proposed_run(short_config):
    return SimulationEngine(short_config, ProposedPolicy()).run()


class TestRunShape:
    def test_one_record_per_slot(self, proposed_run, short_config):
        assert proposed_run.horizon == short_config.horizon_slots

    def test_one_dc_record_per_dc(self, proposed_run, short_config):
        for slot in proposed_run.slots:
            assert len(slot.dc_records) == short_config.n_dcs

    def test_policy_and_config_names(self, proposed_run):
        assert proposed_run.policy_name == "Proposed"
        assert proposed_run.config_name == "tiny"

    def test_vm_counts_positive(self, proposed_run):
        assert all(slot.n_vms > 0 for slot in proposed_run.slots)


class TestPhysics:
    def test_energy_positive_when_loaded(self, proposed_run):
        assert proposed_run.total_facility_energy_joules() > 0.0

    def test_cost_non_negative(self, proposed_run):
        assert all(slot.grid_cost_eur >= 0.0 for slot in proposed_run.slots)

    def test_it_below_facility_energy(self, proposed_run):
        for slot in proposed_run.slots:
            for dc_record in slot.dc_records:
                assert (
                    dc_record.it_energy_joules
                    <= dc_record.green.facility_energy + 1e-6
                )

    def test_green_ledgers_conserve(self, proposed_run):
        for slot in proposed_run.slots:
            for dc_record in slot.dc_records:
                dc_record.green.sanity_check()

    def test_response_latencies_non_negative(self, proposed_run):
        assert np.all(proposed_run.response_samples() >= 0.0)

    def test_active_servers_bounded(self, proposed_run, short_config):
        for slot in proposed_run.slots:
            for dc_record, spec in zip(slot.dc_records, short_config.specs):
                assert dc_record.active_servers <= spec.n_servers


class TestReproducibility:
    def test_same_seed_same_result(self, short_config):
        a = SimulationEngine(short_config, ProposedPolicy()).run()
        b = SimulationEngine(short_config, ProposedPolicy()).run()
        assert a.total_grid_cost_eur() == b.total_grid_cost_eur()
        assert a.total_facility_energy_joules() == b.total_facility_energy_joules()
        assert np.array_equal(a.response_samples(), b.response_samples())

    def test_different_seed_different_workload(self, short_config):
        other = scaled_config("tiny", seed=99).with_horizon(6)
        a = SimulationEngine(short_config, PriAwarePolicy()).run()
        b = SimulationEngine(other, PriAwarePolicy()).run()
        assert a.total_facility_energy_joules() != b.total_facility_energy_joules()

    def test_engine_reset_policy_between_runs(self, short_config):
        policy = ProposedPolicy()
        engine = SimulationEngine(short_config, policy)
        engine.run()
        first_positions = dict(policy._positions)
        engine.run()
        assert set(policy._positions) == set(first_positions)


class TestRunPolicies:
    def test_same_workload_across_policies(self, short_config):
        results = run_policies(
            short_config, [ProposedPolicy(), PriAwarePolicy()]
        )
        vms_a = [slot.n_vms for slot in results[0].slots]
        vms_b = [slot.n_vms for slot in results[1].slots]
        assert vms_a == vms_b

    def test_policy_names_preserved(self, short_config):
        results = run_policies(
            short_config, [ProposedPolicy(), PriAwarePolicy()]
        )
        assert [result.policy_name for result in results] == [
            "Proposed",
            "Pri-aware",
        ]


class TestCaching:
    def test_demand_cache_evicts_old_slots(self, short_config):
        engine = SimulationEngine(short_config, PriAwarePolicy())
        engine.run()
        slots_cached = {slot for _, slot in engine._demand_cache}
        assert all(slot >= short_config.horizon_slots - 1 for slot in slots_cached)
