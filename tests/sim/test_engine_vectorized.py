"""Vectorized engine hot paths: bit-exact equivalence with the loops."""

import numpy as np
import pytest

from repro.experiments.runner import default_policies
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine, run_policies


def run_pair(policy_a, policy_b, horizon=6):
    config = scaled_config("tiny").with_horizon(horizon)
    loops = SimulationEngine(config, policy_a, vectorized=False).run()
    vectorized = SimulationEngine(config, policy_b, vectorized=True).run()
    return loops, vectorized


@pytest.mark.parametrize("index", range(4))
def test_full_run_bit_identical(index):
    """Every per-slot ledger float matches the loop reference exactly."""
    loops, vectorized = run_pair(
        default_policies()[index], default_policies()[index]
    )
    assert loops.horizon == vectorized.horizon
    for slot_a, slot_b in zip(loops.slots, vectorized.slots):
        assert slot_a.migration_volume_mb == slot_b.migration_volume_mb
        assert slot_a.dc_records == slot_b.dc_records


def test_summary_metrics_identical():
    loops, vectorized = run_pair(default_policies()[0], default_policies()[0])
    assert loops.summary() == vectorized.summary()
    assert np.array_equal(loops.response_samples(), vectorized.response_samples())


def test_dc_it_power_paths_agree_per_slot():
    config = scaled_config("tiny").with_horizon(2)
    engine = SimulationEngine(config, default_policies()[1])
    vms = engine.population.alive(0)
    vm_rows = {vm.vm_id: row for row, vm in enumerate(vms)}
    demand = engine._demand(vms, 0)
    observation_policy = default_policies()[1]
    observation_policy.reset()
    from repro.sim.config import build_datacenters
    from repro.sim.state import SlotObservation

    observation = SlotObservation(
        slot=0,
        vms=vms,
        demand_traces=demand,
        volumes=engine.volumes.volumes(vms, 0),
        previous_assignment={},
        dcs=build_datacenters(config),
        latency_model=engine.latency_model,
        latency_constraint_s=config.latency_constraint_s,
    )
    placement = observation_policy.place(observation)
    for dc_index in range(config.n_dcs):
        loop = engine._dc_it_power_loop(placement, dc_index, vm_rows, demand)
        fast = engine._dc_it_power_vectorized(
            placement, dc_index, vm_rows, demand
        )
        assert np.array_equal(loop[0], fast[0])
        assert loop[1] == fast[1]


def test_response_latency_paths_agree_per_slot():
    config = scaled_config("tiny").with_horizon(2)
    engine = SimulationEngine(config, default_policies()[1])
    vms = engine.population.alive(1)
    volumes = engine.volumes.volumes(vms, 1).volumes
    rng = np.random.default_rng(7)
    placement_stub = type(
        "Stub",
        (),
        {"assignment": {vm.vm_id: int(rng.integers(0, 3)) for vm in vms}},
    )()
    loop = engine._response_latencies_loop(placement_stub, vms, volumes, 1)
    fast = engine._response_latencies_vectorized(placement_stub, vms, volumes, 1)
    assert loop == fast


def test_response_latency_empty_fleet():
    config = scaled_config("tiny").with_horizon(2)
    engine = SimulationEngine(config, default_policies()[1])
    placement_stub = type("Stub", (), {"assignment": {}})()
    empty = np.zeros((0, 0))
    loop = engine._response_latencies_loop(placement_stub, [], empty, 0)
    fast = engine._response_latencies_vectorized(placement_stub, [], empty, 0)
    assert loop == fast == [(0.0, 0)] * config.n_dcs


class TestRunPoliciesOptions:
    """run_policies forwards engine options to every engine it builds."""

    def test_clairvoyant_threaded_through(self):
        config = scaled_config("tiny").with_horizon(4)
        policies = default_policies()[1:2]
        via_runner = run_policies(config, policies, clairvoyant=True)
        direct = SimulationEngine(
            config, default_policies()[1], clairvoyant=True
        ).run()
        assert via_runner[0].slots == direct.slots

    def test_vectorized_flag_threaded_through(self):
        config = scaled_config("tiny").with_horizon(3)
        loops = run_policies(config, default_policies()[2:3], vectorized=False)
        fast = run_policies(config, default_policies()[2:3], vectorized=True)
        assert loops[0].slots == fast[0].slots

    def test_validate_flag_threaded_through(self):
        config = scaled_config("tiny").with_horizon(2)
        results = run_policies(config, default_policies()[1:2], validate=False)
        assert results[0].horizon == 2

    def test_trace_library_threaded_through(self):
        from repro.workload.traces import TraceLibrary

        config = scaled_config("tiny").with_horizon(2)
        alternate = TraceLibrary(
            steps_per_slot=config.steps_per_slot, seed=config.seed + 99
        )
        default = run_policies(config, default_policies()[1:2])
        swapped = run_policies(
            config, default_policies()[1:2], trace_library=alternate
        )
        assert default[0].total_facility_energy_joules() != pytest.approx(
            swapped[0].total_facility_energy_joules()
        )


class TestDemandCacheEviction:
    def test_eviction_is_bucketed_per_slot(self):
        config = scaled_config("tiny").with_horizon(3)
        engine = SimulationEngine(config, default_policies()[1])
        vms = engine.population.alive(0)
        engine._demand(vms, 0)
        engine._demand(vms, 1)
        assert set(engine._demand_cache_slots) == {0, 1}
        engine._evict_cache(1)
        assert set(engine._demand_cache_slots) == {1}
        assert all(slot == 1 for _, slot in engine._demand_cache)

    def test_cache_consistent_after_run(self):
        config = scaled_config("tiny").with_horizon(4)
        engine = SimulationEngine(config, default_policies()[1])
        engine.run()
        bucketed = {
            key
            for keys in engine._demand_cache_slots.values()
            for key in keys
        }
        assert bucketed == set(engine._demand_cache)
        assert {slot for _, slot in engine._demand_cache} <= {2, 3}


class TestFleetItPower:
    """The one-shot fleet CSR product equals the per-DC paths exactly."""

    def physics_inputs(self, slot=0):
        config = scaled_config("tiny").with_horizon(2)
        engine = SimulationEngine(config, default_policies()[1])
        vms = engine.population.alive(slot)
        vm_rows = {vm.vm_id: row for row, vm in enumerate(vms)}
        demand = engine._demand(vms, slot)
        policy = default_policies()[1]
        policy.reset()
        from repro.sim.config import build_datacenters
        from repro.sim.state import SlotObservation

        observation = SlotObservation(
            slot=slot,
            vms=vms,
            demand_traces=demand,
            volumes=engine.volumes.volumes(vms, slot),
            previous_assignment={},
            dcs=build_datacenters(config),
            latency_model=engine.latency_model,
            latency_constraint_s=config.latency_constraint_s,
        )
        placement = policy.place(observation)
        return config, engine, placement, vm_rows, demand

    def test_matches_per_dc_paths(self):
        config, engine, placement, vm_rows, demand = self.physics_inputs()
        power, actives = engine._fleet_it_power(placement, vm_rows, demand)
        assert power.shape == (config.n_dcs, config.steps_per_slot)
        for dc_index in range(config.n_dcs):
            loop = engine._dc_it_power_loop(
                placement, dc_index, vm_rows, demand
            )
            per_dc = engine._dc_it_power_vectorized(
                placement, dc_index, vm_rows, demand
            )
            assert np.array_equal(power[dc_index], loop[0])
            assert np.array_equal(power[dc_index], per_dc[0])
            assert actives[dc_index] == loop[1] == per_dc[1]

    def test_empty_placement(self):
        from repro.core.local import ServerAllocation
        from repro.datacenter.server import XEON_E5410

        config, engine, placement, vm_rows, demand = self.physics_inputs()
        placement.allocations = [
            ServerAllocation(model=XEON_E5410, n_servers=4)
            for _ in range(config.n_dcs)
        ]
        power, actives = engine._fleet_it_power(
            placement, vm_rows, np.zeros((0, config.steps_per_slot))
        )
        assert not power.any()
        assert actives == [0] * config.n_dcs


class TestFleetGreenPathsInRun:
    """Full runs agree across every battery-kernel variant."""

    def test_struct_of_arrays_green_full_run(self):
        config = scaled_config("tiny").with_horizon(6)
        loops = SimulationEngine(
            config, default_policies()[1], vectorized=False
        ).run()
        fleet_engine = SimulationEngine(config, default_policies()[1])
        fleet_engine.green.scalar_replay_max_dcs = 0
        batched = fleet_engine.run()
        assert loops.slots == batched.slots


class TestPairVolumes:
    """The grouped pair-volume gather (satellite of the workload-cache
    PR) must stay bit-identical to the reference block sums -- and the
    tempting reduceat alternative provably cannot."""

    def _blocked_case(self, n_vms, n_dcs, seed=11):
        rng = np.random.default_rng(seed)
        volumes = rng.uniform(0.0, 40.0, (n_vms, n_vms))
        np.fill_diagonal(volumes, 0.0)
        dc_of = rng.integers(0, n_dcs, n_vms)
        return volumes, dc_of

    def _reference_pairs(self, volumes, dc_of, n_dcs):
        pair = np.zeros((n_dcs, n_dcs))
        for src in range(n_dcs):
            senders = np.nonzero(dc_of == src)[0]
            for dst in range(n_dcs):
                members = np.nonzero(dc_of == dst)[0]
                if senders.size and members.size:
                    pair[src, dst] = volumes[np.ix_(senders, members)].sum()
        return pair

    @pytest.mark.parametrize("slot", [0, 1])
    def test_grouped_path_bit_identical_to_loop(self, slot):
        """Engine path vs per-pair nonzero reference, elementwise exact."""
        config = scaled_config("tiny").with_horizon(2)
        engine = SimulationEngine(config, default_policies()[1])
        vms = engine.population.alive(slot)
        # Drive the real entry points with a stub placement over the
        # engine's own population (identity must hold end to end).
        rng = np.random.default_rng(3)
        stub = type(
            "Stub",
            (),
            {
                "assignment": {
                    vm.vm_id: int(rng.integers(0, engine.config.n_dcs))
                    for vm in vms
                }
            },
        )()
        real = engine.volumes.volumes(vms, slot).volumes
        loop = engine._response_latencies_loop(stub, vms, real, slot)
        fast = engine._response_latencies_vectorized(stub, vms, real, slot)
        assert loop == fast

    def test_grouped_blocks_match_reference_at_large_sizes(self):
        """Blocks beyond numpy's buffered-iteration threshold (8192
        elements) are exactly where strided shortcuts break; the
        np.ix_ gather must stay exact there."""
        volumes, dc_of = self._blocked_case(300, 2)
        reference = self._reference_pairs(volumes, dc_of, 2)
        order = np.argsort(dc_of, kind="stable")
        counts = np.bincount(dc_of, minlength=2)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        groups = [order[bounds[dc]: bounds[dc + 1]] for dc in range(2)]
        for src in range(2):
            for dst in range(2):
                block_sum = volumes[np.ix_(groups[src], groups[dst])].sum()
                assert block_sum == reference[src, dst]

    def test_reduceat_is_not_bit_identical(self):
        """Documents why the engine does NOT use np.add.reduceat: its
        strict left-to-right accumulation diverges (in the last ulps)
        from ndarray.sum()'s pairwise reduction on realistic blocks,
        so a reduceat implementation would break the engine's
        bit-identity contract between vectorized and loop paths."""
        volumes, dc_of = self._blocked_case(300, 2, seed=5)
        reference = self._reference_pairs(volumes, dc_of, 2)
        order = np.argsort(dc_of, kind="stable")
        counts = np.bincount(dc_of, minlength=2)
        bounds = np.concatenate(([0], np.cumsum(counts)))[:-1]
        blocked = volumes[np.ix_(order, order)]
        # The classic two-pass reduceat: columns, then rows.
        by_cols = np.add.reduceat(blocked, bounds, axis=1)
        pair = np.add.reduceat(by_cols, bounds, axis=0)
        assert pair == pytest.approx(reference)  # close...
        assert not np.array_equal(pair, reference)  # ...but not equal
