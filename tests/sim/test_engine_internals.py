"""Engine internals: power aggregation and response-latency wiring."""

import numpy as np
import pytest

from tests.conftest import make_vm
from repro.baselines.pri_aware import PriAwarePolicy
from repro.core.local import ServerAllocation
from repro.datacenter.server import XEON_E5410
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine
from repro.sim.state import FleetPlacement


@pytest.fixture
def engine():
    return SimulationEngine(
        scaled_config("tiny").with_horizon(4), PriAwarePolicy()
    )


def manual_placement(vms, dc_of: dict[int, int], n_dcs=3):
    """A hand-built placement: one server per DC, top frequency."""
    allocations = []
    for dc in range(n_dcs):
        members = [vm.vm_id for vm in vms if dc_of[vm.vm_id] == dc]
        allocations.append(
            ServerAllocation(
                model=XEON_E5410,
                n_servers=8,
                server_vms=[members] if members else [],
                frequencies=[1] if members else [],
                saturated=[False] if members else [],
            )
        )
    return FleetPlacement(assignment=dict(dc_of), allocations=allocations)


class TestITPower:
    def test_matches_hand_computation(self, engine):
        vms = [make_vm(vm_id=0, seed=1), make_vm(vm_id=1, seed=2)]
        placement = manual_placement(vms, {0: 0, 1: 0})
        vm_rows = {0: 0, 1: 1}
        demand = engine._demand(vms, 0)
        power, active = engine._dc_it_power(placement, 0, vm_rows, demand)
        expected = XEON_E5410.power_trace(1, demand[0] + demand[1])
        assert active == 1
        assert np.allclose(power, expected)

    def test_empty_dc_zero_power(self, engine):
        vms = [make_vm(vm_id=0, seed=1)]
        placement = manual_placement(vms, {0: 0})
        demand = engine._demand(vms, 0)
        power, active = engine._dc_it_power(placement, 2, {0: 0}, demand)
        assert active == 0
        assert np.all(power == 0.0)

    def test_two_servers_sum(self, engine):
        vms = [make_vm(vm_id=0, seed=1), make_vm(vm_id=1, seed=2)]
        allocation = ServerAllocation(
            model=XEON_E5410,
            n_servers=8,
            server_vms=[[0], [1]],
            frequencies=[0, 1],
            saturated=[False, False],
        )
        placement = FleetPlacement(
            assignment={0: 0, 1: 0},
            allocations=[
                allocation,
                ServerAllocation(model=XEON_E5410, n_servers=8),
                ServerAllocation(model=XEON_E5410, n_servers=8),
            ],
        )
        demand = engine._demand(vms, 0)
        power, active = engine._dc_it_power(placement, 0, {0: 0, 1: 1}, demand)
        expected = XEON_E5410.power_trace(0, demand[0]) + XEON_E5410.power_trace(
            1, demand[1]
        )
        assert active == 2
        assert np.allclose(power, expected)


class TestResponseLatencies:
    def test_matches_latency_model(self, engine):
        vms = [
            make_vm(vm_id=0, service_id=0, seed=1),
            make_vm(vm_id=1, service_id=0, seed=2),
            make_vm(vm_id=2, service_id=0, seed=3),
        ]
        placement = manual_placement(vms, {0: 0, 1: 1, 2: 1})
        volumes = engine.volumes.volumes(vms, 2).volumes
        latencies = engine._response_latencies(placement, vms, volumes, 2)

        # DC1 receives from vm0 (DC0) and internally from vm2<->vm1.
        expected_sources = {
            0: float(volumes[0, 1] + volumes[0, 2]),
            1: float(volumes[1, 2] + volumes[2, 1]),
        }
        expected = engine.latency_model.destination_latency(
            1, expected_sources, 2
        ).total_s
        assert latencies[1][0] == pytest.approx(expected)

    def test_receiving_vm_counts(self, engine):
        vms = [
            make_vm(vm_id=0, service_id=0, seed=1),
            make_vm(vm_id=1, service_id=0, seed=2),
        ]
        placement = manual_placement(vms, {0: 0, 1: 0})
        volumes = engine.volumes.volumes(vms, 1).volumes
        latencies = engine._response_latencies(placement, vms, volumes, 1)
        receiving = [count for _, count in latencies]
        # Both VMs exchange intra-service data, both sit in DC0.
        assert receiving[0] == 2
        assert receiving[1] == 0
        assert receiving[2] == 0

    def test_empty_dc_zero_latency(self, engine):
        vms = [make_vm(vm_id=0, seed=1)]
        placement = manual_placement(vms, {0: 0})
        volumes = np.zeros((1, 1))
        latencies = engine._response_latencies(placement, vms, volumes, 0)
        assert latencies[1] == (0.0, 0)
        assert latencies[2] == (0.0, 0)


class TestDemandCache:
    def test_rows_cached(self, engine):
        vm = make_vm(vm_id=0, seed=1)
        first = engine._demand_row(vm, 2)
        second = engine._demand_row(vm, 2)
        assert first is second

    def test_eviction_keeps_recent(self, engine):
        vm = make_vm(vm_id=0, seed=1)
        engine._demand_row(vm, 0)
        engine._demand_row(vm, 5)
        engine._evict_cache(5)
        assert (0, 0) not in engine._demand_cache
        assert (0, 5) in engine._demand_cache
