"""Cross-run metrics: normalization, improvements, PDFs."""

import numpy as np
import pytest

from tests.sim.test_results import record
from repro.sim.metrics import (
    cost_improvements,
    energy_improvements,
    format_comparison,
    improvement_pct,
    normalized_costs,
    performance_improvements,
    response_time_pdf,
)
from repro.sim.results import RunResult


def run_named(name, n_slots=2):
    return RunResult(
        policy_name=name,
        config_name="unit",
        slots=[record(slot) for slot in range(n_slots)],
    )


@pytest.fixture
def results():
    cheap = run_named("Proposed", n_slots=1)
    pricey = run_named("Ener-aware", n_slots=2)
    return [cheap, pricey]


class TestNormalizedCosts:
    def test_worst_is_one(self, results):
        norms = normalized_costs(results)
        assert norms["Ener-aware"] == pytest.approx(1.0)
        assert norms["Proposed"] == pytest.approx(0.5)

    def test_empty(self):
        assert normalized_costs([]) == {}

    def test_zero_worst_cost_reports_parity(self):
        """All-green scenarios: every policy ties at 1.0, not 0.0."""
        free = [run_named("Proposed"), run_named("Ener-aware")]
        for result in free:
            for slot in result.slots:
                for record_ in slot.dc_records:
                    record_.green.grid_cost_eur = 0.0
        norms = normalized_costs(free)
        assert norms == {"Proposed": 1.0, "Ener-aware": 1.0}


class TestImprovements:
    def test_improvement_pct(self):
        assert improvement_pct(100.0, 75.0) == pytest.approx(25.0)
        assert improvement_pct(100.0, 120.0) == pytest.approx(-20.0)
        assert improvement_pct(0.0, 5.0) == 0.0

    def test_cost_improvements(self, results):
        savings = cost_improvements(results, reference="Proposed")
        assert savings["Ener-aware"] == pytest.approx(50.0)

    def test_energy_improvements(self, results):
        savings = energy_improvements(results, reference="Proposed")
        assert savings["Ener-aware"] == pytest.approx(50.0)

    def test_performance_improvements(self, results):
        # Identical distributions -> zero improvement.
        perf = performance_improvements(results, reference="Proposed")
        assert perf["Ener-aware"] == pytest.approx(0.0, abs=1e-9)

    def test_missing_reference_raises(self, results):
        with pytest.raises(KeyError):
            cost_improvements(results, reference="Nope")


class TestResponsePdf:
    def test_density_integrates_to_one(self):
        samples = np.random.default_rng(0).uniform(0.0, 2.0, 5000)
        centers, density = response_time_pdf(samples, bins=20)
        width = centers[1] - centers[0]
        assert float((density * width).sum()) == pytest.approx(1.0, rel=1e-6)

    def test_common_upper_normalization(self):
        samples = np.array([0.4, 0.9])
        centers, density = response_time_pdf(samples, bins=4, upper=2.0)
        # Normalized samples are 0.2 and 0.45: lower half of [0, 1] only.
        assert density[centers > 0.5].sum() == 0.0

    def test_empty_samples(self):
        centers, density = response_time_pdf(np.zeros(0))
        assert centers.size == 0
        assert density.size == 0

    def test_zero_upper_is_not_unset(self):
        """``upper=0.0`` must not silently fall back to the sample max."""
        samples = np.array([0.5, 2.0])
        centers, with_zero = response_time_pdf(samples, bins=4, upper=0.0)
        # Degenerate scale falls back to 1.0: 0.5 stays, 2.0 clips.
        _, explicit_one = response_time_pdf(samples, bins=4, upper=1.0)
        assert np.array_equal(with_zero, explicit_one)
        _, unset = response_time_pdf(samples, bins=4)
        assert not np.array_equal(with_zero, unset)

    def test_samples_above_upper_clip_into_top_bin(self):
        """Out-of-range samples keep the density integrating to 1."""
        samples = np.concatenate(
            [np.full(50, 0.2), np.full(50, 3.0)]  # half beyond upper
        )
        centers, density = response_time_pdf(samples, bins=10, upper=1.0)
        width = centers[1] - centers[0]
        assert float((density * width).sum()) == pytest.approx(1.0)
        assert density[-1] > 0.0  # the clipped mass lands in the top bin


class TestFormatting:
    def test_format_contains_all_policies(self, results):
        table = format_comparison(results)
        assert "Proposed" in table
        assert "Ener-aware" in table

    def test_format_has_header(self, results):
        table = format_comparison(results)
        assert "cost EUR" in table.splitlines()[0]


class TestReplication:
    def make_run(self, seed):
        from repro.experiments.runner import default_policies
        from repro.sim.config import scaled_config
        from repro.sim.engine import SimulationEngine

        config = scaled_config("tiny", seed=seed).with_horizon(2)
        return SimulationEngine(config, default_policies()[1]).run()

    def test_mean_ci_single_value(self):
        from repro.sim.metrics import mean_ci

        stats = mean_ci([4.2])
        assert stats.mean == 4.2
        assert stats.ci95 == 0.0
        assert stats.n == 1

    def test_mean_ci_matches_normal_formula(self):
        from repro.sim.metrics import mean_ci

        values = [1.0, 2.0, 3.0, 4.0]
        stats = mean_ci(values)
        expected = 1.959963984540054 * np.std(values, ddof=1) / np.sqrt(4)
        assert stats.mean == pytest.approx(2.5)
        assert stats.ci95 == pytest.approx(expected)

    def test_mean_ci_empty_raises(self):
        from repro.sim.metrics import mean_ci

        with pytest.raises(ValueError):
            mean_ci([])

    def test_aggregate_replicates_metrics(self):
        from repro.sim.metrics import REPLICATE_METRICS, aggregate_replicates

        runs = [self.make_run(seed) for seed in (0, 1)]
        stats = aggregate_replicates(runs)
        assert set(stats) == set(REPLICATE_METRICS)
        assert stats["cost_eur"].n == 2

    def test_aggregate_replicates_rejects_mixed_policies(self):
        from repro.experiments.runner import default_policies
        from repro.sim.config import scaled_config
        from repro.sim.engine import SimulationEngine
        from repro.sim.metrics import aggregate_replicates

        config = scaled_config("tiny").with_horizon(2)
        runs = [
            SimulationEngine(config, default_policies()[1]).run(),
            SimulationEngine(config, default_policies()[2]).run(),
        ]
        with pytest.raises(ValueError):
            aggregate_replicates(runs)

    def test_format_replicated_comparison(self):
        from repro.sim.metrics import format_replicated_comparison

        replicates = {"Ener-aware": [self.make_run(seed) for seed in (0, 1)]}
        table = format_replicated_comparison(replicates)
        assert "Ener-aware" in table
        assert "+-" in table
