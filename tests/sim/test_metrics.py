"""Cross-run metrics: normalization, improvements, PDFs."""

import numpy as np
import pytest

from tests.sim.test_results import record
from repro.sim.metrics import (
    cost_improvements,
    energy_improvements,
    format_comparison,
    improvement_pct,
    normalized_costs,
    performance_improvements,
    response_time_pdf,
)
from repro.sim.results import RunResult


def run_named(name, n_slots=2):
    return RunResult(
        policy_name=name,
        config_name="unit",
        slots=[record(slot) for slot in range(n_slots)],
    )


@pytest.fixture
def results():
    cheap = run_named("Proposed", n_slots=1)
    pricey = run_named("Ener-aware", n_slots=2)
    return [cheap, pricey]


class TestNormalizedCosts:
    def test_worst_is_one(self, results):
        norms = normalized_costs(results)
        assert norms["Ener-aware"] == pytest.approx(1.0)
        assert norms["Proposed"] == pytest.approx(0.5)

    def test_empty(self):
        assert normalized_costs([]) == {}


class TestImprovements:
    def test_improvement_pct(self):
        assert improvement_pct(100.0, 75.0) == pytest.approx(25.0)
        assert improvement_pct(100.0, 120.0) == pytest.approx(-20.0)
        assert improvement_pct(0.0, 5.0) == 0.0

    def test_cost_improvements(self, results):
        savings = cost_improvements(results, reference="Proposed")
        assert savings["Ener-aware"] == pytest.approx(50.0)

    def test_energy_improvements(self, results):
        savings = energy_improvements(results, reference="Proposed")
        assert savings["Ener-aware"] == pytest.approx(50.0)

    def test_performance_improvements(self, results):
        # Identical distributions -> zero improvement.
        perf = performance_improvements(results, reference="Proposed")
        assert perf["Ener-aware"] == pytest.approx(0.0, abs=1e-9)

    def test_missing_reference_raises(self, results):
        with pytest.raises(KeyError):
            cost_improvements(results, reference="Nope")


class TestResponsePdf:
    def test_density_integrates_to_one(self):
        samples = np.random.default_rng(0).uniform(0.0, 2.0, 5000)
        centers, density = response_time_pdf(samples, bins=20)
        width = centers[1] - centers[0]
        assert float((density * width).sum()) == pytest.approx(1.0, rel=1e-6)

    def test_common_upper_normalization(self):
        samples = np.array([0.4, 0.9])
        centers, density = response_time_pdf(samples, bins=4, upper=2.0)
        # Normalized samples are 0.2 and 0.45: lower half of [0, 1] only.
        assert density[centers > 0.5].sum() == 0.0

    def test_empty_samples(self):
        centers, density = response_time_pdf(np.zeros(0))
        assert centers.size == 0
        assert density.size == 0


class TestFormatting:
    def test_format_contains_all_policies(self, results):
        table = format_comparison(results)
        assert "Proposed" in table
        assert "Ener-aware" in table

    def test_format_has_header(self, results):
        table = format_comparison(results)
        assert "cost EUR" in table.splitlines()[0]
