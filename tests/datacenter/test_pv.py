"""PV array: daylight window, scaling, weather determinism."""

import numpy as np
import pytest

from repro.datacenter.pv import PVArray
from repro.units import SECONDS_PER_HOUR


@pytest.fixture
def array() -> PVArray:
    return PVArray(kwp=10.0, seed=4)


class TestClearSky:
    def test_zero_at_night(self, array):
        assert float(array.clear_sky_fraction(2 * SECONDS_PER_HOUR)) == 0.0
        assert float(array.clear_sky_fraction(23 * SECONDS_PER_HOUR)) == 0.0

    def test_peak_near_midday(self, array):
        noon = float(array.clear_sky_fraction(13 * SECONDS_PER_HOUR))
        morning = float(array.clear_sky_fraction(8 * SECONDS_PER_HOUR))
        assert noon > morning > 0.0

    def test_bounded_unit(self, array):
        times = np.arange(0, 24) * SECONDS_PER_HOUR
        fractions = array.clear_sky_fraction(times)
        assert np.all(fractions >= 0.0)
        assert np.all(fractions <= 1.0)

    def test_timezone_shifts_window(self):
        utc = PVArray(kwp=1.0, tz_offset_hours=0.0)
        east = PVArray(kwp=1.0, tz_offset_hours=6.0)
        time_s = 6.5 * SECONDS_PER_HOUR  # 06:30 UTC = 12:30 at UTC+6
        assert float(east.clear_sky_fraction(time_s)) > float(
            utc.clear_sky_fraction(time_s)
        )


class TestWeather:
    def test_factor_deterministic(self, array):
        assert array.weather_factor(3) == array.weather_factor(3)

    def test_factor_bounded(self, array):
        factors = [array.weather_factor(day) for day in range(50)]
        assert all(0.0 < factor <= 1.0 for factor in factors)

    def test_seed_changes_weather(self):
        a = PVArray(kwp=1.0, seed=1)
        b = PVArray(kwp=1.0, seed=2)
        days = range(30)
        assert [a.weather_factor(d) for d in days] != [
            b.weather_factor(d) for d in days
        ]

    def test_some_overcast_days_exist(self, array):
        factors = [array.weather_factor(day) for day in range(60)]
        assert min(factors) < 0.6


class TestPower:
    def test_scales_with_kwp(self):
        small = PVArray(kwp=1.0, seed=9)
        large = PVArray(kwp=10.0, seed=9)
        t = 12 * SECONDS_PER_HOUR
        assert float(large.power_watts(t)) == pytest.approx(
            10.0 * float(small.power_watts(t))
        )

    def test_never_negative(self, array):
        times = np.linspace(0, 72 * SECONDS_PER_HOUR, 500)
        assert np.all(array.power_watts(times) >= 0.0)

    def test_zero_kwp_always_zero(self):
        dark = PVArray(kwp=0.0)
        times = np.linspace(0, 24 * SECONDS_PER_HOUR, 100)
        assert np.all(dark.power_watts(times) == 0.0)

    def test_slot_energy_positive_at_noon(self, array):
        assert array.slot_energy_joules(12) > 0.0

    def test_slot_energy_zero_at_night(self, array):
        assert array.slot_energy_joules(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PVArray(kwp=-1.0)
        with pytest.raises(ValueError):
            PVArray(kwp=1.0, sunrise_hour=20.0, sunset_hour=6.0)


class TestFleetPowerWatts:
    """Batched fleet PV evaluation is bit-identical to per-array calls."""

    def arrays(self):
        from repro.datacenter.pv import PVArray

        return [
            PVArray(kwp=150.0, tz_offset_hours=0.0, seed=1),
            PVArray(kwp=100.0, tz_offset_hours=1.0, seed=2),
            PVArray(kwp=50.0, tz_offset_hours=2.0, seed=3),
        ]

    def test_rows_match_per_array_power(self):
        import numpy as np

        from repro.datacenter.pv import fleet_power_watts
        from repro.units import SECONDS_PER_HOUR

        arrays = self.arrays()
        # Spans a midnight day boundary so two weather days contribute.
        times = 23.5 * SECONDS_PER_HOUR + np.linspace(
            0.0, SECONDS_PER_HOUR, 720
        )
        batch = fleet_power_watts(arrays, times)
        assert batch.shape == (3, times.size)
        for row, array in enumerate(arrays):
            assert np.array_equal(batch[row], array.power_watts(times))

    def test_empty_fleet(self):
        import numpy as np

        from repro.datacenter.pv import fleet_power_watts

        batch = fleet_power_watts([], np.linspace(0.0, 3600.0, 10))
        assert batch.shape == (0, 10)

    def test_empty_times(self):
        import numpy as np

        from repro.datacenter.pv import fleet_power_watts

        batch = fleet_power_watts(self.arrays(), np.zeros(0))
        assert batch.shape == (3, 0)
