"""Server model: capacities, power, DVFS selection."""

import numpy as np
import pytest

from repro.datacenter.server import XEON_E5410, FrequencyLevel, ServerModel


@pytest.fixture
def model() -> ServerModel:
    return XEON_E5410


class TestValidation:
    def test_frequency_positive(self):
        with pytest.raises(ValueError):
            FrequencyLevel(ghz=0.0, idle_watts=10.0, peak_watts=20.0)

    def test_idle_not_above_peak(self):
        with pytest.raises(ValueError):
            FrequencyLevel(ghz=2.0, idle_watts=30.0, peak_watts=20.0)

    def test_levels_must_be_sorted(self):
        levels = (
            FrequencyLevel(ghz=2.3, idle_watts=180.0, peak_watts=265.0),
            FrequencyLevel(ghz=2.0, idle_watts=165.0, peak_watts=230.0),
        )
        with pytest.raises(ValueError, match="sorted"):
            ServerModel(name="bad", cores=8, levels=levels)

    def test_needs_at_least_one_level(self):
        with pytest.raises(ValueError, match="level"):
            ServerModel(name="bad", cores=8, levels=())

    def test_cores_positive(self, model):
        with pytest.raises(ValueError, match="cores"):
            ServerModel(name="bad", cores=0, levels=model.levels)


class TestCapacity:
    def test_paper_reference_levels(self, model):
        assert model.cores == 8
        assert [level.ghz for level in model.levels] == [2.0, 2.3]

    def test_max_capacity_is_cores(self, model):
        assert model.max_capacity == 8.0

    def test_low_level_capacity_scaled_by_frequency(self, model):
        assert model.capacity(0) == pytest.approx(8.0 * 2.0 / 2.3)

    def test_top_level_capacity_full(self, model):
        assert model.capacity(1) == 8.0


class TestPower:
    def test_idle_power_at_zero_load(self, model):
        assert model.power(0, 0.0) == model.levels[0].idle_watts

    def test_peak_power_at_capacity(self, model):
        assert model.power(1, 8.0) == model.levels[1].peak_watts

    def test_linear_in_between(self, model):
        level = model.levels[1]
        half = model.power(1, 4.0)
        expected = level.idle_watts + 0.5 * (level.peak_watts - level.idle_watts)
        assert half == pytest.approx(expected)

    def test_clipped_beyond_capacity(self, model):
        assert model.power(1, 100.0) == model.levels[1].peak_watts

    def test_negative_load_rejected(self, model):
        with pytest.raises(ValueError):
            model.power(0, -1.0)

    def test_power_trace_matches_scalar(self, model):
        loads = np.array([0.0, 2.0, 5.0, 9.0])
        trace = model.power_trace(1, loads)
        scalars = [model.power(1, load) for load in loads]
        assert np.allclose(trace, scalars)

    def test_higher_level_higher_idle(self, model):
        assert model.levels[1].idle_watts > model.levels[0].idle_watts


class TestFrequencySelection:
    def test_low_load_picks_low_level(self, model):
        assert model.min_level_for(2.0) == 0

    def test_high_load_picks_high_level(self, model):
        assert model.min_level_for(7.5) == 1

    def test_overload_falls_back_to_top(self, model):
        assert model.min_level_for(20.0) == len(model.levels) - 1

    def test_boundary_exact_capacity(self, model):
        assert model.min_level_for(model.capacity(0)) == 0

    def test_energy_per_core_hour_positive(self, model):
        assert model.energy_per_core_hour(0) > 0.0
        assert model.energy_per_core_hour(1) > 0.0
