"""Battery bank: DoD floor, efficiency, C-rate, conservation."""

import pytest

from repro.datacenter.battery import Battery
from repro.units import kwh_to_joules


@pytest.fixture
def bank() -> Battery:
    return Battery(capacity_joules=1.0e6, dod=0.5, max_c_rate=0.5)


class TestConstruction:
    def test_defaults_full(self, bank):
        assert bank.soc_joules == bank.capacity_joules

    def test_from_kwh(self):
        bank = Battery.from_kwh(2.0)
        assert bank.capacity_joules == kwh_to_joules(2.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=-1.0)

    def test_bad_dod_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, dod=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, dod=1.5)

    def test_soc_above_capacity_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, soc_joules=2.0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, charge_efficiency=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, discharge_efficiency=1.5)


class TestDoD:
    def test_floor_respects_dod(self, bank):
        assert bank.floor_joules == pytest.approx(0.5e6)

    def test_usable_excludes_floor(self, bank):
        expected = (1.0e6 - 0.5e6) * bank.discharge_efficiency
        assert bank.usable_joules == pytest.approx(expected)

    def test_discharge_never_crosses_floor(self, bank):
        bank.discharge(1.0e9, duration_s=3600.0 * 100)
        assert bank.soc_joules >= bank.floor_joules - 1e-9

    def test_empty_battery_zero_usable(self):
        bank = Battery(capacity_joules=1.0e6, dod=0.5, soc_joules=0.5e6)
        assert bank.usable_joules == 0.0


class TestDischarge:
    def test_delivers_requested_when_available(self, bank):
        delivered = bank.discharge(1000.0)
        assert delivered == pytest.approx(1000.0)

    def test_soc_drops_by_more_than_delivered(self, bank):
        start = bank.soc_joules
        delivered = bank.discharge(1000.0)
        assert start - bank.soc_joules == pytest.approx(
            delivered / bank.discharge_efficiency
        )

    def test_c_rate_limits_burst(self, bank):
        # 0.5 C over one second: at most capacity * 0.5 / 3600 deliverable.
        delivered = bank.discharge(1.0e9, duration_s=1.0)
        limit = 0.5 * bank.capacity_joules / 3600.0 * bank.discharge_efficiency
        assert delivered == pytest.approx(limit)

    def test_negative_request_rejected(self, bank):
        with pytest.raises(ValueError):
            bank.discharge(-1.0)


class TestCharge:
    def test_accepts_offer_with_headroom(self):
        bank = Battery(capacity_joules=1.0e6, soc_joules=0.5e6)
        accepted = bank.charge(1000.0)
        assert accepted == pytest.approx(1000.0)

    def test_full_bank_accepts_nothing(self, bank):
        assert bank.charge(1000.0) == 0.0

    def test_soc_rises_by_efficiency_scaled(self):
        bank = Battery(capacity_joules=1.0e6, soc_joules=0.5e6)
        start = bank.soc_joules
        accepted = bank.charge(1000.0)
        assert bank.soc_joules - start == pytest.approx(
            accepted * bank.charge_efficiency
        )

    def test_c_rate_limits_charge(self):
        bank = Battery(capacity_joules=1.0e6, soc_joules=0.0, max_c_rate=0.5)
        accepted = bank.charge(1.0e9, duration_s=1.0)
        assert accepted == pytest.approx(0.5 * bank.capacity_joules / 3600.0)

    def test_negative_offer_rejected(self, bank):
        with pytest.raises(ValueError):
            bank.charge(-1.0)


class TestRoundTrip:
    def test_round_trip_loses_energy(self):
        bank = Battery(capacity_joules=1.0e6, soc_joules=0.5e6)
        accepted = bank.charge(10_000.0)
        delivered = bank.discharge(10_000.0)
        assert delivered < accepted

    def test_clone_independent(self, bank):
        twin = bank.clone()
        bank.discharge(1000.0)
        assert twin.soc_joules == twin.capacity_joules
        assert twin.soc_joules != bank.soc_joules


class TestBatteryArray:
    """Struct-of-arrays batch ops mirror the scalar bank bit for bit."""

    def banks(self):
        import numpy as np  # noqa: F401  (kept local to the new tests)

        return [
            Battery(capacity_joules=1.0e6, dod=0.5, max_c_rate=0.5),
            Battery(
                capacity_joules=2.0e6,
                dod=0.6,
                charge_efficiency=0.9,
                discharge_efficiency=0.85,
                max_c_rate=0.25,
                soc_joules=1.2e6,
            ),
            Battery(capacity_joules=0.0),
        ]

    def test_limits_match_scalar(self):
        import numpy as np

        from repro.datacenter.battery import BatteryArray

        scalars = self.banks()
        batch = BatteryArray.from_batteries(scalars)
        for duration in (5.0, 60.0, 3600.0):
            assert np.array_equal(
                batch.max_charge_joules(duration),
                [bank.max_charge_joules(duration) for bank in scalars],
            )
            assert np.array_equal(
                batch.max_discharge_joules(duration),
                [bank.max_discharge_joules(duration) for bank in scalars],
            )

    def test_charge_discharge_sequence_matches_scalar(self):
        import numpy as np

        from repro.datacenter.battery import BatteryArray

        scalars = self.banks()
        batch = BatteryArray.from_batteries(scalars)
        rng = np.random.default_rng(3)
        for _ in range(50):
            offers = rng.uniform(0.0, 2.0e5, 3)
            requests = rng.uniform(0.0, 2.0e5, 3)
            accepted = batch.charge(offers, 60.0)
            delivered = batch.discharge(requests, 60.0)
            for index, bank in enumerate(scalars):
                assert accepted[index] == bank.charge(float(offers[index]), 60.0)
                assert delivered[index] == bank.discharge(
                    float(requests[index]), 60.0
                )
        batch.store_to(copies := self.banks())
        for copy, bank in zip(copies, scalars):
            assert copy.soc_joules == bank.soc_joules

    def test_zero_amounts_preserve_soc_bits(self):
        import numpy as np

        from repro.datacenter.battery import BatteryArray

        batch = BatteryArray.from_batteries(self.banks())
        before = batch.soc_joules.copy()
        batch.charge(np.zeros(3), 60.0)
        batch.discharge(np.zeros(3), 60.0)
        assert np.array_equal(batch.soc_joules, before)

    def test_negative_amounts_rejected(self):
        import numpy as np

        from repro.datacenter.battery import BatteryArray

        batch = BatteryArray.from_batteries(self.banks())
        with pytest.raises(ValueError):
            batch.charge(np.array([-1.0, 0.0, 0.0]), 60.0)
        with pytest.raises(ValueError):
            batch.discharge(np.array([0.0, -1.0, 0.0]), 60.0)

    def test_store_to_rejects_mismatch(self):
        from repro.datacenter.battery import BatteryArray

        batch = BatteryArray.from_batteries(self.banks())
        with pytest.raises(ValueError):
            batch.store_to(self.banks()[:2])
