"""Battery bank: DoD floor, efficiency, C-rate, conservation."""

import pytest

from repro.datacenter.battery import Battery
from repro.units import kwh_to_joules


@pytest.fixture
def bank() -> Battery:
    return Battery(capacity_joules=1.0e6, dod=0.5, max_c_rate=0.5)


class TestConstruction:
    def test_defaults_full(self, bank):
        assert bank.soc_joules == bank.capacity_joules

    def test_from_kwh(self):
        bank = Battery.from_kwh(2.0)
        assert bank.capacity_joules == kwh_to_joules(2.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=-1.0)

    def test_bad_dod_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, dod=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, dod=1.5)

    def test_soc_above_capacity_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, soc_joules=2.0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, charge_efficiency=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_joules=1.0, discharge_efficiency=1.5)


class TestDoD:
    def test_floor_respects_dod(self, bank):
        assert bank.floor_joules == pytest.approx(0.5e6)

    def test_usable_excludes_floor(self, bank):
        expected = (1.0e6 - 0.5e6) * bank.discharge_efficiency
        assert bank.usable_joules == pytest.approx(expected)

    def test_discharge_never_crosses_floor(self, bank):
        bank.discharge(1.0e9, duration_s=3600.0 * 100)
        assert bank.soc_joules >= bank.floor_joules - 1e-9

    def test_empty_battery_zero_usable(self):
        bank = Battery(capacity_joules=1.0e6, dod=0.5, soc_joules=0.5e6)
        assert bank.usable_joules == 0.0


class TestDischarge:
    def test_delivers_requested_when_available(self, bank):
        delivered = bank.discharge(1000.0)
        assert delivered == pytest.approx(1000.0)

    def test_soc_drops_by_more_than_delivered(self, bank):
        start = bank.soc_joules
        delivered = bank.discharge(1000.0)
        assert start - bank.soc_joules == pytest.approx(
            delivered / bank.discharge_efficiency
        )

    def test_c_rate_limits_burst(self, bank):
        # 0.5 C over one second: at most capacity * 0.5 / 3600 deliverable.
        delivered = bank.discharge(1.0e9, duration_s=1.0)
        limit = 0.5 * bank.capacity_joules / 3600.0 * bank.discharge_efficiency
        assert delivered == pytest.approx(limit)

    def test_negative_request_rejected(self, bank):
        with pytest.raises(ValueError):
            bank.discharge(-1.0)


class TestCharge:
    def test_accepts_offer_with_headroom(self):
        bank = Battery(capacity_joules=1.0e6, soc_joules=0.5e6)
        accepted = bank.charge(1000.0)
        assert accepted == pytest.approx(1000.0)

    def test_full_bank_accepts_nothing(self, bank):
        assert bank.charge(1000.0) == 0.0

    def test_soc_rises_by_efficiency_scaled(self):
        bank = Battery(capacity_joules=1.0e6, soc_joules=0.5e6)
        start = bank.soc_joules
        accepted = bank.charge(1000.0)
        assert bank.soc_joules - start == pytest.approx(
            accepted * bank.charge_efficiency
        )

    def test_c_rate_limits_charge(self):
        bank = Battery(capacity_joules=1.0e6, soc_joules=0.0, max_c_rate=0.5)
        accepted = bank.charge(1.0e9, duration_s=1.0)
        assert accepted == pytest.approx(0.5 * bank.capacity_joules / 3600.0)

    def test_negative_offer_rejected(self, bank):
        with pytest.raises(ValueError):
            bank.charge(-1.0)


class TestRoundTrip:
    def test_round_trip_loses_energy(self):
        bank = Battery(capacity_joules=1.0e6, soc_joules=0.5e6)
        accepted = bank.charge(10_000.0)
        delivered = bank.discharge(10_000.0)
        assert delivered < accepted

    def test_clone_independent(self, bank):
        twin = bank.clone()
        bank.discharge(1000.0)
        assert twin.soc_joules == twin.capacity_joules
        assert twin.soc_joules != bank.soc_joules
