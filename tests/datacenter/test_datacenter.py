"""Datacenter spec + live aggregate."""

import pytest

from tests.conftest import make_specs
from repro.datacenter.datacenter import Datacenter, DatacenterSpec


@pytest.fixture
def spec():
    return make_specs()[0]


@pytest.fixture
def live(spec) -> Datacenter:
    return Datacenter(spec, index=0, seed=1)


class TestSpec:
    def test_capacity_cores(self, spec):
        assert spec.total_capacity_cores == spec.n_servers * 8

    def test_max_it_power(self, spec):
        per_server = spec.server_model.levels[-1].peak_watts
        assert spec.max_it_power_watts() == spec.n_servers * per_server

    def test_max_slot_energy_above_it(self, spec):
        assert spec.max_slot_energy_joules() > spec.max_it_power_watts() * 3600.0

    def test_servers_required(self, spec):
        with pytest.raises(ValueError):
            DatacenterSpec(name="x", latitude=0.0, longitude=0.0, n_servers=0)

    def test_latitude_bounds(self):
        with pytest.raises(ValueError):
            DatacenterSpec(name="x", latitude=99.0, longitude=0.0, n_servers=1)

    def test_bandwidth_positive(self):
        with pytest.raises(ValueError):
            DatacenterSpec(
                name="x",
                latitude=0.0,
                longitude=0.0,
                n_servers=1,
                local_bandwidth_bps=0.0,
            )


class TestLive:
    def test_battery_sized_from_spec(self, live, spec):
        assert live.battery.capacity_joules == pytest.approx(
            spec.battery_kwh * 3.6e6
        )

    def test_pv_sized_from_spec(self, live, spec):
        assert live.pv.kwp == spec.pv_kwp

    def test_name_passthrough(self, live, spec):
        assert live.name == spec.name

    def test_grid_price_tracks_tariff(self, live, spec):
        assert live.grid_price_at(12) == spec.tariff.price_at_slot(12)

    def test_record_slot_updates_predictor(self, live):
        live.record_slot(3, facility_energy_joules=5.0e6, pv_energy_joules=1.0e6)
        assert live.last_slot_energy_joules == 5.0e6

    def test_record_slot_feeds_forecaster(self, live):
        before = live.renewable_forecast_joules(36)
        for day in range(4):
            live.record_slot(12 + 24 * day, 1.0, before * 0.05)
        assert live.renewable_forecast_joules(12 + 24 * 4) < max(before, 1.0)

    def test_record_negative_rejected(self, live):
        with pytest.raises(ValueError):
            live.record_slot(0, -1.0, 0.0)

    def test_zero_battery_dc(self):
        spec = make_specs()[0]
        bare = DatacenterSpec(
            name="bare",
            latitude=0.0,
            longitude=0.0,
            n_servers=2,
            battery_kwh=0.0,
        )
        dc = Datacenter(bare, index=0)
        assert dc.battery.usable_joules == 0.0
