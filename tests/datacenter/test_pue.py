"""Free-cooling PUE: floor, slope, ceiling, daily variation."""

import numpy as np
import pytest

from repro.datacenter.pue import FreeCoolingPUE
from repro.units import SECONDS_PER_HOUR


class TestPUE:
    def test_floor_when_cold(self):
        cold = FreeCoolingPUE(mean_temp_c=0.0, daily_swing_c=2.0)
        times = np.arange(24) * SECONDS_PER_HOUR
        assert np.all(cold.pue(times) == cold.floor)

    def test_rises_with_heat(self):
        hot = FreeCoolingPUE(mean_temp_c=30.0, daily_swing_c=2.0)
        cold = FreeCoolingPUE(mean_temp_c=5.0, daily_swing_c=2.0)
        t = 15 * SECONDS_PER_HOUR
        assert float(hot.pue(t)) > float(cold.pue(t))

    def test_ceiling_clamps(self):
        scorching = FreeCoolingPUE(mean_temp_c=80.0, ceiling=1.5)
        assert float(scorching.pue(15 * SECONDS_PER_HOUR)) == 1.5

    def test_daily_variation_present(self):
        mild = FreeCoolingPUE(mean_temp_c=18.0, daily_swing_c=8.0)
        times = np.arange(24) * SECONDS_PER_HOUR
        pues = mild.pue(times)
        assert pues.max() > pues.min()

    def test_afternoon_hotter_than_dawn(self):
        model = FreeCoolingPUE(mean_temp_c=15.0, daily_swing_c=8.0)
        afternoon = float(model.ambient_c(15 * SECONDS_PER_HOUR))
        dawn = float(model.ambient_c(4 * SECONDS_PER_HOUR))
        assert afternoon > dawn

    def test_facility_power_scales_it(self):
        model = FreeCoolingPUE(mean_temp_c=25.0)
        t = 15 * SECONDS_PER_HOUR
        assert float(model.facility_power(1000.0, t)) == pytest.approx(
            1000.0 * float(model.pue(t))
        )

    def test_pue_at_least_floor(self):
        model = FreeCoolingPUE()
        times = np.linspace(0, 7 * 24 * SECONDS_PER_HOUR, 400)
        assert np.all(model.pue(times) >= model.floor)

    def test_timezone_shifts_peak_hour(self):
        utc = FreeCoolingPUE(mean_temp_c=20.0, tz_offset_hours=0.0)
        east = FreeCoolingPUE(mean_temp_c=20.0, tz_offset_hours=6.0)
        times = np.arange(24) * SECONDS_PER_HOUR
        assert int(np.argmax(utc.ambient_c(times))) != int(
            np.argmax(east.ambient_c(times))
        )


class TestFleetPue:
    """Batched fleet PUE broadcast is bit-identical to per-model calls."""

    def models(self):
        return [
            FreeCoolingPUE(tz_offset_hours=0.0),
            FreeCoolingPUE(
                mean_temp_c=20.0,
                daily_swing_c=8.0,
                free_cooling_threshold_c=14.0,
                tz_offset_hours=1.0,
            ),
            FreeCoolingPUE(mean_temp_c=5.0, tz_offset_hours=2.0),
        ]

    def test_rows_match_per_model_pue(self):
        import numpy as np

        from repro.datacenter.pue import fleet_pue
        from repro.units import SECONDS_PER_HOUR

        models = self.models()
        times = np.linspace(0.0, 48 * SECONDS_PER_HOUR, 720)
        batch = fleet_pue(models, times)
        assert batch.shape == (3, times.size)
        for row, model in enumerate(models):
            assert np.array_equal(batch[row], model.pue(times))

    def test_empty_fleet(self):
        import numpy as np

        from repro.datacenter.pue import fleet_pue

        assert fleet_pue([], np.zeros(5)).shape == (0, 5)
