"""Two-level tariffs: windows, time zones, cost accounting."""

import pytest

from repro.datacenter.price import TwoLevelTariff
from repro.units import SECONDS_PER_HOUR, kwh_to_joules


@pytest.fixture
def tariff() -> TwoLevelTariff:
    return TwoLevelTariff(
        peak_price=0.20, offpeak_price=0.10, peak_start_hour=8.0, peak_end_hour=22.0
    )


class TestWindows:
    def test_peak_inside_window(self, tariff):
        assert tariff.is_peak(12 * SECONDS_PER_HOUR)

    def test_offpeak_outside_window(self, tariff):
        assert not tariff.is_peak(2 * SECONDS_PER_HOUR)

    def test_start_inclusive(self, tariff):
        assert tariff.is_peak(8 * SECONDS_PER_HOUR)

    def test_end_exclusive(self, tariff):
        assert not tariff.is_peak(22 * SECONDS_PER_HOUR)

    def test_wrapping_window(self):
        night_peak = TwoLevelTariff(peak_start_hour=22.0, peak_end_hour=6.0)
        assert night_peak.is_peak(23 * SECONDS_PER_HOUR)
        assert night_peak.is_peak(3 * SECONDS_PER_HOUR)
        assert not night_peak.is_peak(12 * SECONDS_PER_HOUR)

    def test_next_day_repeats(self, tariff):
        assert tariff.is_peak((24 + 12) * SECONDS_PER_HOUR)


class TestTimeZone:
    def test_tz_shifts_window(self):
        east = TwoLevelTariff(tz_offset_hours=2.0)
        # 07:00 UTC is 09:00 local at UTC+2 -> peak.
        assert east.is_peak(7 * SECONDS_PER_HOUR)
        assert not TwoLevelTariff(tz_offset_hours=0.0).is_peak(7 * SECONDS_PER_HOUR)

    def test_local_hour(self):
        east = TwoLevelTariff(tz_offset_hours=2.0)
        assert east.local_hour(1 * SECONDS_PER_HOUR) == pytest.approx(3.0)


class TestPricing:
    def test_price_levels(self, tariff):
        assert tariff.price_per_kwh(12 * SECONDS_PER_HOUR) == 0.20
        assert tariff.price_per_kwh(2 * SECONDS_PER_HOUR) == 0.10

    def test_price_at_slot_mid_slot(self, tariff):
        # Slot 7 spans 07:00-08:00; mid-slot 07:30 is off-peak.
        assert tariff.price_at_slot(7) == 0.10
        assert tariff.price_at_slot(8) == 0.20

    def test_cost_of_one_kwh(self, tariff):
        cost = tariff.cost_of(kwh_to_joules(1.0), 12 * SECONDS_PER_HOUR)
        assert cost == pytest.approx(0.20)

    def test_cost_negative_energy_rejected(self, tariff):
        with pytest.raises(ValueError):
            tariff.cost_of(-1.0, 0.0)


class TestValidation:
    def test_negative_prices_rejected(self):
        with pytest.raises(ValueError):
            TwoLevelTariff(peak_price=-0.1)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            TwoLevelTariff(peak_start_hour=25.0)
        with pytest.raises(ValueError):
            TwoLevelTariff(peak_end_hour=0.0)


class TestArrayTariff:
    """Array-valued tariff evaluation matches the scalar path exactly."""

    def times(self):
        import numpy as np

        return np.linspace(0.0, 72 * SECONDS_PER_HOUR, 500)

    def test_is_peak_array_matches_scalars(self, tariff):
        import numpy as np

        times = self.times()
        batch = tariff.is_peak(times)
        assert isinstance(batch, np.ndarray) and batch.dtype == bool
        assert batch.tolist() == [
            tariff.is_peak(float(t)) for t in times
        ]

    def test_is_peak_scalar_still_returns_bool(self, tariff):
        assert isinstance(tariff.is_peak(12 * SECONDS_PER_HOUR), bool)

    def test_wrapping_window_array(self):
        import numpy as np

        night = TwoLevelTariff(peak_start_hour=22.0, peak_end_hour=6.0)
        times = self.times()
        assert night.is_peak(times).tolist() == [
            night.is_peak(float(t)) for t in times
        ]
        assert isinstance(night.is_peak(times), np.ndarray)

    def test_price_array_matches_scalars(self, tariff):
        import numpy as np

        times = self.times()
        assert np.array_equal(
            tariff.price_per_kwh(times),
            [tariff.price_per_kwh(float(t)) for t in times],
        )

    def test_cost_array_matches_scalars(self, tariff):
        import numpy as np

        times = self.times()
        joules = np.linspace(0.0, 5.0e6, times.size)
        assert np.array_equal(
            tariff.cost_of(joules, times),
            [
                tariff.cost_of(float(j), float(t))
                for j, t in zip(joules, times)
            ],
        )

    def test_cost_array_rejects_negative_energy(self, tariff):
        import numpy as np

        with pytest.raises(ValueError):
            tariff.cost_of(np.array([1.0, -1.0]), np.array([0.0, 0.0]))
