"""WCMA forecaster: priors, profile updates, weather conditioning."""

import pytest

from repro.datacenter.forecast import WCMAForecaster
from repro.datacenter.pv import PVArray


@pytest.fixture
def array() -> PVArray:
    return PVArray(kwp=5.0, seed=2)


@pytest.fixture
def forecaster(array) -> WCMAForecaster:
    return WCMAForecaster(array)


class TestPriors:
    def test_cold_start_uses_clear_sky(self, forecaster, array):
        noon = forecaster.forecast(12)
        assert noon > 0.0

    def test_cold_start_night_zero(self, forecaster):
        assert forecaster.forecast(2) == 0.0

    def test_gap_factor_defaults_to_one(self, forecaster):
        assert forecaster.gap_factor() == 1.0


class TestRecording:
    def test_record_updates_profile(self, forecaster):
        prior = forecaster.forecast(12)
        for day in range(5):
            forecaster.record(12 + 24 * day, prior * 0.2)
        assert forecaster.forecast(12 + 24 * 5) < prior

    def test_overcast_run_lowers_gap(self, forecaster):
        prior = forecaster.forecast(12)
        forecaster.record(12, prior * 0.1)
        assert forecaster.gap_factor() < 1.0

    def test_sunny_run_raises_gap(self, forecaster):
        prior = forecaster.forecast(12)
        forecaster.record(12, prior * 1.5)
        assert forecaster.gap_factor() > 1.0

    def test_night_slots_do_not_move_gap(self, forecaster):
        forecaster.record(2, 0.0)
        assert forecaster.gap_factor() == 1.0

    def test_negative_actual_rejected(self, forecaster):
        with pytest.raises(ValueError):
            forecaster.record(12, -1.0)

    def test_forecast_never_negative(self, forecaster):
        prior = forecaster.forecast(12)
        forecaster.record(12, prior * 0.01)
        for slot in range(24):
            assert forecaster.forecast(slot) >= 0.0


class TestValidation:
    def test_alpha_bounds(self, array):
        with pytest.raises(ValueError):
            WCMAForecaster(array, profile_alpha=0.0)
        with pytest.raises(ValueError):
            WCMAForecaster(array, profile_alpha=1.5)

    def test_gap_window_bounds(self, array):
        with pytest.raises(ValueError):
            WCMAForecaster(array, gap_window=0)

    def test_gap_window_rolls(self, array):
        forecaster = WCMAForecaster(array, gap_window=2)
        prior = forecaster.forecast(12)
        forecaster.record(12, prior * 0.1)
        low_gap = forecaster.gap_factor()
        # Two sunny observations push the overcast one out of the window.
        forecaster.record(36, forecaster._profile_energy(36) * 1.2)
        forecaster.record(60, forecaster._profile_energy(60) * 1.2)
        assert forecaster.gap_factor() > low_gap
