"""Property-based tests on the network/latency substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_specs
from repro.network.ber import BERProcess
from repro.network.latency import LatencyModel, global_data_latency
from repro.network.topology import GeoTopology


@pytest.fixture(scope="module")
def model():
    return LatencyModel(GeoTopology(make_specs()), BERProcess(seed=5))


class TestAlgorithm1Properties:
    @given(
        volume=st.floats(0.0, 1e5, allow_nan=False),
        bandwidth=st.floats(1e6, 1e11, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_latency_non_negative_and_finite(self, volume, bandwidth):
        latency = global_data_latency(volume, bandwidth, np.array([1e-4]))
        assert latency >= 0.0
        assert np.isfinite(latency)

    @given(
        volume=st.floats(0.1, 1e4, allow_nan=False),
        bandwidth=st.floats(1e7, 1e11, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_higher_ber_never_faster(self, volume, bandwidth):
        clean = global_data_latency(volume, bandwidth, np.array([1e-6]))
        dirty = global_data_latency(volume, bandwidth, np.array([1e-2]))
        assert dirty >= clean

    @given(
        small=st.floats(0.1, 100.0, allow_nan=False),
        extra=st.floats(0.1, 100.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_volume(self, small, extra):
        bandwidth = 1e9
        samples = np.array([1e-4])
        a = global_data_latency(small, bandwidth, samples)
        b = global_data_latency(small + extra, bandwidth, samples)
        assert b >= a

    @given(volume=st.floats(0.1, 1e4, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_at_least_ideal_transfer_time(self, volume):
        bandwidth = 1e9
        latency = global_data_latency(volume, bandwidth, np.array([0.5]))
        ideal = volume * 8e6 / bandwidth
        assert latency >= ideal - 1e-12


class TestDestinationLatencyProperties:
    @given(
        volumes=st.dictionaries(
            st.integers(0, 2), st.floats(0.0, 5e3, allow_nan=False), max_size=3
        ),
        dst=st.integers(0, 2),
        slot=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_at_least_each_component(self, model, volumes, dst, slot):
        result = model.destination_latency(dst, volumes, slot)
        assert result.total_s >= result.dest_local_s - 1e-12
        for term in result.source_terms.values():
            assert result.total_s >= term - 1e-12

    @given(
        volume=st.floats(0.1, 5e3, allow_nan=False),
        slot=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_migration_latency_positive_between_dcs(self, model, volume, slot):
        latency = model.migration_latency(0, 1, volume, slot)
        assert latency > 0.0
        assert np.isfinite(latency)
