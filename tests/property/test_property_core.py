"""Property-based tests (hypothesis) on the core algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.correlation import (
    attraction_matrix,
    peak_coincidence,
    pearson_cpu_correlation,
    total_force_matrix,
)
from repro.core.forces import ForceDirectedEmbedding, ForceParameters
from repro.core.kmeans import constrained_kmeans
from repro.datacenter.battery import Battery

finite_traces = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 6), st.integers(2, 20)),
    elements=st.floats(0.0, 8.0, allow_nan=False),
)

volume_matrices = st.integers(1, 6).flatmap(
    lambda n: arrays(
        dtype=float,
        shape=(n, n),
        elements=st.floats(0.0, 1e4, allow_nan=False),
    )
)


class TestCorrelationProperties:
    @given(traces=finite_traces)
    @settings(max_examples=60, deadline=None)
    def test_peak_coincidence_bounded(self, traces):
        matrix = peak_coincidence(traces)
        assert np.all(matrix >= 0.0)
        assert np.all(matrix <= 1.0 + 1e-12)
        assert np.allclose(matrix, matrix.T)

    @given(traces=finite_traces)
    @settings(max_examples=60, deadline=None)
    def test_pearson_bounded_and_nan_free(self, traces):
        corr = pearson_cpu_correlation(traces)
        assert not np.any(np.isnan(corr))
        assert np.all(corr >= -1.0 - 1e-12)
        assert np.all(corr <= 1.0 + 1e-12)

    @given(volumes=volume_matrices)
    @settings(max_examples=60, deadline=None)
    def test_attraction_range(self, volumes):
        np.fill_diagonal(volumes, 0.0)
        matrix = attraction_matrix(volumes)
        assert np.all(matrix <= 0.0)
        assert np.all(matrix >= -1.0 - 1e-12)
        assert np.allclose(matrix, matrix.T)

    @given(
        volumes=volume_matrices,
        alpha=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_total_force_bounded_by_components(self, volumes, alpha):
        np.fill_diagonal(volumes, 0.0)
        attraction = attraction_matrix(volumes)
        repulsion = -attraction  # any matrix in [0, 1] works
        total = total_force_matrix(attraction, repulsion, alpha)
        assert np.all(total >= attraction - 1e-12)
        assert np.all(total <= repulsion + 1e-12)


class TestEmbeddingProperties:
    @given(
        positions=arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 8), st.just(2)),
            elements=st.floats(-5.0, 5.0, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_embedding_output_finite(self, positions):
        n = positions.shape[0]
        rng = np.random.default_rng(0)
        attraction = -rng.uniform(0.0, 1.0, (n, n))
        repulsion = rng.uniform(0.0, 1.0, (n, n))
        np.fill_diagonal(attraction, 0.0)
        np.fill_diagonal(repulsion, 0.0)
        embedding = ForceDirectedEmbedding(ForceParameters(max_iterations=5))
        result = embedding.run(positions, attraction, repulsion)
        assert np.all(np.isfinite(result.positions))
        assert result.iterations <= 5


class TestKMeansProperties:
    @given(
        n=st.integers(1, 20),
        k=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_assignment_complete_and_in_range(self, n, k, seed):
        rng = np.random.default_rng(seed)
        positions = rng.normal(size=(n, 2))
        loads = rng.uniform(0.1, 2.0, n)
        capacities = rng.uniform(0.5, 10.0, k)
        initial = rng.normal(size=(k, 2))
        result = constrained_kmeans(positions, loads, capacities, initial)
        assert result.assignment.shape == (n,)
        assert np.all(result.assignment >= 0)
        assert np.all(result.assignment < k)
        assert result.loads.sum() == pytest.approx(loads.sum())

    @given(
        n=st.integers(1, 15),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_overflow_only_when_capacity_short(self, n, seed):
        rng = np.random.default_rng(seed)
        positions = rng.normal(size=(n, 2))
        loads = rng.uniform(0.1, 1.0, n)
        capacities = np.array([loads.sum() + 1.0, loads.sum() + 1.0])
        initial = rng.normal(size=(2, 2))
        result = constrained_kmeans(positions, loads, capacities, initial)
        assert np.all(result.overflow == 0.0)


class TestBatteryProperties:
    @given(
        capacity=st.floats(1.0, 1e9, allow_nan=False),
        dod=st.floats(0.05, 1.0, allow_nan=False),
        request=st.floats(0.0, 1e9, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_discharge_invariants(self, capacity, dod, request):
        bank = Battery(capacity_joules=capacity, dod=dod)
        delivered = bank.discharge(request, duration_s=3600.0)
        assert 0.0 <= delivered <= request + 1e-9
        assert bank.soc_joules >= bank.floor_joules - 1e-6 * capacity
        assert bank.soc_joules <= capacity + 1e-9

    @given(
        capacity=st.floats(1.0, 1e9, allow_nan=False),
        soc_fraction=st.floats(0.0, 1.0, allow_nan=False),
        offer=st.floats(0.0, 1e9, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_charge_invariants(self, capacity, soc_fraction, offer):
        bank = Battery(
            capacity_joules=capacity, soc_joules=capacity * soc_fraction
        )
        accepted = bank.charge(offer, duration_s=3600.0)
        assert 0.0 <= accepted <= offer + 1e-9
        assert bank.soc_joules <= capacity * (1.0 + 1e-12) + 1e-9

    @given(
        capacity=st.floats(10.0, 1e6, allow_nan=False),
        cycles=st.lists(st.floats(0.0, 1e5, allow_nan=False), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_never_gains(self, capacity, cycles):
        bank = Battery(capacity_joules=capacity, soc_joules=capacity / 2.0)
        total_in = total_out = 0.0
        for amount in cycles:
            total_in += bank.charge(amount)
            total_out += bank.discharge(amount)
        # Energy out can never exceed energy in plus the initial store.
        initial_store = capacity / 2.0
        assert total_out <= total_in + initial_store + 1e-6
