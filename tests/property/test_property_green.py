"""Property-based tests on the green controller and tariffs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_specs
from repro.core.green import GreenController
from repro.datacenter.datacenter import Datacenter
from repro.datacenter.price import TwoLevelTariff
from repro.units import SECONDS_PER_HOUR


def fresh_dc(site_index: int = 0) -> Datacenter:
    return Datacenter(make_specs()[site_index], index=site_index, seed=1)


class TestGreenControllerProperties:
    @given(
        watts=st.floats(0.0, 5000.0, allow_nan=False),
        slot=st.integers(0, 72),
        soc_fraction=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_ledger_conserves_for_any_state(self, watts, slot, soc_fraction):
        dc = fresh_dc()
        # Start anywhere in the *valid* SoC range [floor, capacity].
        floor = dc.battery.floor_joules
        dc.battery.soc_joules = floor + (
            dc.battery.capacity_joules - floor
        ) * soc_fraction
        controller = GreenController(step_s=120.0)
        ledger = controller.run_slot(dc, slot, np.full(30, watts))
        ledger.sanity_check()
        assert ledger.grid_cost_eur >= 0.0
        assert dc.battery.floor_joules - 1e-6 <= dc.battery.soc_joules
        assert dc.battery.soc_joules <= dc.battery.capacity_joules + 1e-6

    @given(
        watts=st.floats(10.0, 5000.0, allow_nan=False),
        slot=st.integers(0, 48),
    )
    @settings(max_examples=40, deadline=None)
    def test_more_load_never_cheaper(self, watts, slot):
        def cost_for(power_watts: float) -> float:
            dc = fresh_dc()
            controller = GreenController(step_s=120.0)
            return controller.run_slot(
                dc, slot, np.full(30, power_watts)
            ).grid_cost_eur

        assert cost_for(watts * 2.0) >= cost_for(watts) - 1e-9

    @given(slot=st.integers(0, 48))
    @settings(max_examples=30, deadline=None)
    def test_zero_load_never_discharges(self, slot):
        dc = fresh_dc()
        controller = GreenController(step_s=120.0)
        ledger = controller.run_slot(dc, slot, np.zeros(30))
        assert ledger.battery_discharged == 0.0
        assert ledger.grid_to_load == 0.0


class TestFleetKernelProperties:
    """GreenSlotResult invariants hold through the fleet kernel.

    The fleet slots sweep peak/off-peak tariff boundaries (slots cover
    three days across three time zones) and battery saturation (SoC
    from the DoD floor to full, loads from idle to far beyond PV), and
    every ledger must match the scalar reference bit for bit on both
    battery paths.
    """

    @given(
        watts=st.lists(
            st.floats(0.0, 50000.0, allow_nan=False), min_size=3, max_size=3
        ),
        slot=st.integers(0, 72),
        soc_fractions=st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=3, max_size=3
        ),
        batched_battery=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_fleet_ledgers_match_reference_and_conserve(
        self, watts, slot, soc_fractions, batched_battery
    ):
        def fleet(soc_fractions):
            dcs = [
                Datacenter(spec, index, seed=1)
                for index, spec in enumerate(make_specs())
            ]
            for dc, fraction in zip(dcs, soc_fractions):
                floor = dc.battery.floor_joules
                dc.battery.soc_joules = floor + (
                    dc.battery.capacity_joules - floor
                ) * fraction
            return dcs

        power = np.stack([np.full(30, value) for value in watts])
        controller = GreenController(step_s=120.0)
        reference_dcs = fleet(soc_fractions)
        reference = [
            controller.run_slot(dc, slot, power[dc.index])
            for dc in reference_dcs
        ]
        fleet_dcs = fleet(soc_fractions)
        if batched_battery:
            controller.scalar_replay_max_dcs = 0
        ledgers = controller.run_slot_fleet(fleet_dcs, slot, power)

        assert ledgers == reference
        for ledger, dc, ref_dc in zip(ledgers, fleet_dcs, reference_dcs):
            ledger.sanity_check()
            # Energy conservation and the PV split, spelled out.
            supplied = (
                ledger.pv_used + ledger.battery_discharged + ledger.grid_to_load
            )
            assert supplied == pytest.approx(ledger.facility_energy)
            split = ledger.pv_used + ledger.pv_stored + ledger.pv_curtailed
            assert split == pytest.approx(ledger.pv_generated)
            assert ledger.grid_energy == pytest.approx(
                ledger.grid_to_load + ledger.grid_to_battery
            )
            assert ledger.grid_cost_eur >= 0.0
            assert dc.battery.soc_joules == ref_dc.battery.soc_joules
            assert (
                dc.battery.floor_joules - 1e-6
                <= dc.battery.soc_joules
                <= dc.battery.capacity_joules + 1e-6
            )


class TestTariffProperties:
    @given(
        time_s=st.floats(0.0, 1e7, allow_nan=False),
        peak=st.floats(0.01, 1.0, allow_nan=False),
        ratio=st.floats(0.1, 1.0, allow_nan=False),
        tz=st.floats(-12.0, 12.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_price_is_one_of_two_levels(self, time_s, peak, ratio, tz):
        tariff = TwoLevelTariff(
            peak_price=peak, offpeak_price=peak * ratio, tz_offset_hours=tz
        )
        price = tariff.price_per_kwh(time_s)
        assert price in (tariff.peak_price, tariff.offpeak_price)

    @given(time_s=st.floats(0.0, 1e7, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_24h_periodicity(self, time_s):
        tariff = TwoLevelTariff()
        day = 24.0 * SECONDS_PER_HOUR
        assert tariff.is_peak(time_s) == tariff.is_peak(time_s + day)

    @given(
        joules=st.floats(0.0, 1e9, allow_nan=False),
        time_s=st.floats(0.0, 1e6, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_cost_linear_in_energy(self, joules, time_s):
        tariff = TwoLevelTariff()
        assert tariff.cost_of(2 * joules, time_s) == pytest.approx(
            2 * tariff.cost_of(joules, time_s)
        )
