"""Property tests: event-driver equivalence and weighted percentiles.

The discrete-event driver's contract is *byte-identical* slot-boundary
ledgers against the slot-stepped reference loop -- for any seed and
any workload pack kind (synthetic generator, recorded matrix, bare
trace library).  Hypothesis sweeps that product at tiny scale; each
example runs both drivers end to end and compares the serialized
ledgers, which covers battery state, cost ledgers and migration counts
in one equality.

``weighted_percentile`` backs the per-request latency accessors: its
pin is bit-exact agreement with ``np.percentile`` over the expanded
(``np.repeat``) sample array, for any weights.
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import EnerAwarePolicy
from repro.sim.config import EngineCoreConfig, scaled_config
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import weighted_percentile
from repro.workload.packs import RecordedTraceSource, TracePack
from repro.workload.recorded import RecordedTraceLibrary

#: Slots per example; long enough for arrivals, departures, tariff
#: edges and migrations to all occur, short enough for ~10 examples.
HORIZON = 6

PACK_KINDS = ("synthetic", "recorded", "library")


def _recorded_matrix(seed: int) -> np.ndarray:
    rng = np.random.default_rng([seed, 0xAB])
    return rng.uniform(0.1, 0.8, size=(3, 60))


def _engine_kwargs(kind: str, seed: int) -> dict:
    if kind == "synthetic":
        return {}
    if kind == "recorded":
        return {
            "workload": TracePack(
                name="prop-recorded",
                source=RecordedTraceSource(
                    utilization=_recorded_matrix(seed), steps_per_slot=30
                ),
            )
        }
    return {
        "trace_library": RecordedTraceLibrary(
            _recorded_matrix(seed), steps_per_slot=30
        )
    }


class TestEventDriverEquivalence:
    @given(
        seed=st.integers(0, 4),
        pack_kind=st.sampled_from(PACK_KINDS),
    )
    @settings(max_examples=12, deadline=None)
    def test_slot_ledgers_byte_identical(self, seed, pack_kind):
        config = scaled_config("tiny", seed=seed).with_horizon(HORIZON)
        kwargs = _engine_kwargs(pack_kind, seed)
        slot_run = SimulationEngine(
            config, EnerAwarePolicy(), **kwargs
        ).run()
        event_run = SimulationEngine(
            config,
            EnerAwarePolicy(),
            engine=EngineCoreConfig(kind="event"),
            **kwargs,
        ).run()
        slot_bytes = json.dumps(
            [record.to_dict() for record in slot_run.slots], sort_keys=True
        )
        event_bytes = json.dumps(
            [record.to_dict() for record in event_run.slots], sort_keys=True
        )
        assert event_bytes == slot_bytes
        # The ledgers' equality pins the derived aggregates too; spot
        # checks keep the failure message close to the physics.
        assert event_run.total_grid_cost_eur() == (
            slot_run.total_grid_cost_eur()
        )
        assert event_run.total_migrations() == slot_run.total_migrations()


class TestWeightedPercentile:
    @given(
        values=st.lists(
            st.floats(0.0, 1e3, allow_nan=False), min_size=1, max_size=30
        ),
        counts=st.data(),
        percentile=st.sampled_from((0.0, 12.5, 50.0, 75.0, 99.0, 99.9, 100.0)),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_numpy_on_expanded_samples(
        self, values, counts, percentile
    ):
        weights = counts.draw(
            st.lists(
                st.integers(1, 50),
                min_size=len(values),
                max_size=len(values),
            )
        )
        values = np.array(values)
        weights = np.array(weights)
        expanded = np.repeat(values, weights)
        assert weighted_percentile(values, weights, percentile) == (
            float(np.percentile(expanded, percentile))
        )

    def test_zero_weights_are_dropped(self):
        values = np.array([1.0, 5.0, 9.0])
        counts = np.array([3, 0, 2])
        expanded = np.repeat(values, counts)
        assert weighted_percentile(values, counts, 50.0) == (
            float(np.percentile(expanded, 50.0))
        )

    def test_all_zero_weights_raise(self):
        import pytest

        with pytest.raises(ValueError):
            weighted_percentile(
                np.array([1.0]), np.array([0]), 50.0
            )
