"""Property-based tests (hypothesis) on recorded-trace week extension.

The paper's extension rule -- replay the recorded day adding
statistical variance *with the same mean* -- pins three invariants for
any recording: shape (days x the recorded columns), mean preservation
within noise tolerance, and determinism under the ``rng_for`` seeded
streams.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.workload.recorded import RecordedTraceLibrary

#: Slot resolution used throughout; columns are multiples of this.
STEPS = 10

#: Interior utilizations keep the [0, 1] clip inactive (>= 10 sigma of
#: headroom at the extension sigma below), so the mean property is the
#: noise's, not the clip's.
recorded_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 4), st.integers(1, 3)).map(
        lambda dims: (dims[0], dims[1] * STEPS)
    ),
    elements=st.floats(0.25, 0.75, allow_nan=False),
)

EXTENSION_SIGMA = 0.02


class TestExtendDaysProperties:
    @given(matrix=recorded_matrices, days=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_shape_is_days_by_recorded_columns(self, matrix, days):
        library = RecordedTraceLibrary(matrix, steps_per_slot=STEPS)
        week = library.extend_days(days, extension_sigma=EXTENSION_SIGMA)
        assert week.utilization.shape == (
            matrix.shape[0],
            days * matrix.shape[1],
        )
        assert week.recorded_slots == days * library.recorded_slots
        assert np.array_equal(week.utilization[:, : matrix.shape[1]], matrix)

    @given(matrix=recorded_matrices, days=st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_mean_preserved_within_tolerance(self, matrix, days):
        library = RecordedTraceLibrary(matrix, steps_per_slot=STEPS)
        week = library.extend_days(days, extension_sigma=EXTENSION_SIGMA)
        columns = matrix.shape[1]
        for day in range(1, days):
            block = week.utilization[:, day * columns : (day + 1) * columns]
            # Zero-mean noise: the day mean moves by at most a few
            # standard errors (sigma / sqrt(cells), >= 10 cells here).
            tolerance = 6.0 * EXTENSION_SIGMA / np.sqrt(block.size)
            assert abs(block.mean() - matrix.mean()) < tolerance
            assert np.all(block >= 0.0)
            assert np.all(block <= 1.0)

    @given(
        matrix=recorded_matrices,
        days=st.integers(1, 5),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_deterministic_under_rng_for(self, matrix, days, seed):
        library = RecordedTraceLibrary(matrix, steps_per_slot=STEPS)
        first = library.extend_days(
            days, extension_sigma=EXTENSION_SIGMA, seed=seed
        )
        second = library.extend_days(
            days, extension_sigma=EXTENSION_SIGMA, seed=seed
        )
        assert np.array_equal(first.utilization, second.utilization)

    @given(matrix=recorded_matrices, days=st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_seed_changes_later_days_only(self, matrix, days):
        library = RecordedTraceLibrary(matrix, steps_per_slot=STEPS)
        a = library.extend_days(days, extension_sigma=EXTENSION_SIGMA, seed=0)
        b = library.extend_days(days, extension_sigma=EXTENSION_SIGMA, seed=1)
        columns = matrix.shape[1]
        assert np.array_equal(
            a.utilization[:, :columns], b.utilization[:, :columns]
        )
        assert not np.array_equal(
            a.utilization[:, columns:], b.utilization[:, columns:]
        )
