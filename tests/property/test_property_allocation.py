"""Property-based tests on the local allocators and Algorithm 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import make_specs, make_vm
from repro.core.local import allocate_correlation_aware, allocate_first_fit
from repro.core.migration import revise_migrations
from repro.datacenter.server import XEON_E5410
from repro.network.ber import BERProcess
from repro.network.latency import LatencyModel
from repro.network.topology import GeoTopology


@pytest.fixture(scope="module")
def latency_model():
    return LatencyModel(GeoTopology(make_specs()), BERProcess(seed=2))


allocation_cases = st.tuples(
    st.integers(0, 25),  # number of VMs
    st.integers(1, 12),  # number of servers
    st.integers(0, 10_000),  # seed
)


class TestAllocatorProperties:
    @given(case=allocation_cases)
    @settings(max_examples=60, deadline=None)
    def test_correlation_aware_invariants(self, case):
        n, servers, seed = case
        rng = np.random.default_rng(seed)
        demand = rng.uniform(0.0, 6.0, size=(n, 12))
        allocation = allocate_correlation_aware(
            list(range(n)), demand, XEON_E5410, servers
        )
        allocation.validate()
        placed = sorted(v for vms in allocation.server_vms for v in vms)
        assert placed == list(range(n))
        assert allocation.active_servers <= servers

    @given(case=allocation_cases)
    @settings(max_examples=60, deadline=None)
    def test_first_fit_invariants(self, case):
        n, servers, seed = case
        rng = np.random.default_rng(seed)
        demand = rng.uniform(0.0, 6.0, size=(n, 12))
        allocation = allocate_first_fit(
            list(range(n)), demand, XEON_E5410, servers
        )
        allocation.validate()
        assert allocation.vm_count() == n

    @given(case=allocation_cases)
    @settings(max_examples=40, deadline=None)
    def test_aware_never_uses_more_servers(self, case):
        """Combined-peak packing is at least as tight as sum-of-peaks."""
        n, servers, seed = case
        rng = np.random.default_rng(seed)
        demand = rng.uniform(0.0, 4.0, size=(n, 12))
        aware = allocate_correlation_aware(
            list(range(n)), demand, XEON_E5410, servers
        )
        blind = allocate_first_fit(list(range(n)), demand, XEON_E5410, servers)
        assert aware.active_servers <= blind.active_servers


class TestMigrationProperties:
    @given(
        n=st.integers(1, 25),
        seed=st.integers(0, 10_000),
        constraint=st.floats(1e-3, 200.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_plan_always_complete_and_in_range(
        self, latency_model, n, seed, constraint
    ):
        rng = np.random.default_rng(seed)
        vms = [
            make_vm(vm_id=i, image_gb=float(rng.choice([2.0, 4.0, 8.0])))
            for i in range(n)
        ]
        target = rng.integers(0, 3, n)
        previous = rng.integers(-1, 3, n)  # -1 = new arrival
        plan = revise_migrations(
            vms=vms,
            target=target,
            previous=previous,
            positions=rng.normal(size=(n, 2)),
            centroids=rng.normal(size=(3, 2)),
            loads=rng.uniform(0.1, 2.0, n),
            caps_cores=rng.uniform(0.5, 20.0, 3),
            latency_model=latency_model,
            slot=int(seed % 100),
            latency_constraint_s=constraint,
        )
        assert set(plan.assignment) == {vm.vm_id for vm in vms}
        assert all(0 <= dc < 3 for dc in plan.assignment.values())
        # Old VMs end up either at home or at their k-means target.
        for row, vm in enumerate(vms):
            final = plan.assignment[vm.vm_id]
            if previous[row] >= 0:
                assert final in (int(previous[row]), int(target[row]))
            else:
                assert final == int(target[row])
        # Executed moves and their volume ledger agree.
        volume_from_moves = sum(move.image_mb for move in plan.moves)
        assert plan.volumes_mb.sum() == pytest.approx(volume_from_moves)

    @given(n=st.integers(1, 15), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_zero_window_freezes_everything(self, latency_model, n, seed):
        rng = np.random.default_rng(seed)
        vms = [make_vm(vm_id=i) for i in range(n)]
        previous = rng.integers(0, 3, n)
        plan = revise_migrations(
            vms=vms,
            target=(previous + 1) % 3,
            previous=previous,
            positions=rng.normal(size=(n, 2)),
            centroids=rng.normal(size=(3, 2)),
            loads=np.ones(n),
            caps_cores=np.full(3, 100.0),
            latency_model=latency_model,
            slot=0,
            latency_constraint_s=1e-9,
        )
        assert not plan.moves
        for row, vm in enumerate(vms):
            assert plan.assignment[vm.vm_id] == int(previous[row])
