"""Campaign ledger: append/replay round trips and crash tolerance."""

from __future__ import annotations

import json

import pytest

from repro.suite import CampaignLedger, LedgerError
from repro.suite.ledger import list_campaigns, remove_campaign

FP = [f"{i:02d}" * 32 for i in range(8)]


def header(campaign="camp-0123456789"):
    return {
        "type": "campaign",
        "campaign": campaign,
        "suite": "camp",
        "suite_sha": "s" * 64,
        "code_sha": "c" * 40,
        "total": 2,
    }


def test_round_trip_plan_and_status(tmp_path):
    ledger = CampaignLedger.for_store(tmp_path, "camp-0123456789")
    with ledger:
        ledger.append(header())
        ledger.append_many(
            [
                {"type": "plan", "fingerprint": FP[0], "labels": {}},
                {"type": "plan", "fingerprint": FP[1], "labels": {}},
            ]
        )
        ledger.status(FP[0], "submitted")
        ledger.status(
            FP[0], "done", source="computed", daemon="local",
            pack_sha="p" * 64,
        )
    state = ledger.replay()
    assert state.campaign_id == "camp-0123456789"
    assert state.suite_sha == "s" * 64
    assert list(state.planned) == [FP[0], FP[1]]
    assert state.fingerprints("done") == [FP[0]]
    assert state.fingerprints("planned") == [FP[1]]
    assert state.pending() == [FP[1]]
    assert not state.complete
    assert state.counts() == {
        "total": 2, "planned": 1, "submitted": 0, "done": 1, "failed": 0,
    }


def test_batch_records_unroll_to_per_run_state(tmp_path):
    """plan_batch/status_batch fold exactly like per-run records."""
    ledger = CampaignLedger.for_store(tmp_path, "camp-0123456789")
    with ledger:
        ledger.append(header())
        ledger.append(
            {
                "type": "plan_batch",
                "runs": [
                    {"fingerprint": FP[0], "labels": {"seed": 0},
                     "pack_sha": "p" * 64},
                    {"fingerprint": FP[1], "labels": {"seed": 1},
                     "pack_sha": "p" * 64},
                ],
            }
        )
        ledger.append(
            {
                "type": "status_batch",
                "status": "submitted",
                "fingerprints": [FP[0], FP[1]],
                "time": 1.0,
            }
        )
        ledger.append(
            {
                "type": "status_batch",
                "status": "done",
                "suite_sha": "s" * 64,
                "code_sha": "c" * 40,
                "records": [
                    {"fingerprint": FP[0], "source": "computed",
                     "daemon": "local", "engine": "slot",
                     "pack_sha": "p" * 64, "elapsed_s": 0.1, "time": 2.0},
                ],
            }
        )
    state = ledger.replay()
    assert list(state.planned) == [FP[0], FP[1]]
    assert state.planned[FP[0]]["labels"] == {"seed": 0}
    assert state.fingerprints("done") == [FP[0]]
    assert state.fingerprints("submitted") == [FP[1]]
    # Envelope provenance merges into each unrolled entry: every done
    # record carries its full audit trail after replay.
    done = state.status[FP[0]]
    assert done["suite_sha"] == "s" * 64
    assert done["code_sha"] == "c" * 40
    assert done["pack_sha"] == "p" * 64
    assert done["daemon"] == "local"
    assert done["engine"] == "slot"
    assert done["elapsed_s"] == 0.1
    # Entry fields beat envelope fields (the entry's own time wins).
    assert done["time"] == 2.0


def test_done_is_terminal(tmp_path):
    ledger = CampaignLedger.for_store(tmp_path, "camp-0123456789")
    with ledger:
        ledger.append(header())
        ledger.append({"type": "plan", "fingerprint": FP[0]})
        ledger.status(FP[0], "done", source="computed")
        ledger.status(FP[0], "failed", error="racing duplicate")
    state = ledger.replay()
    assert state.status[FP[0]]["status"] == "done"
    assert state.complete


def test_torn_final_line_heals(tmp_path):
    ledger = CampaignLedger.for_store(tmp_path, "camp-0123456789")
    with ledger:
        ledger.append(header())
        ledger.append({"type": "plan", "fingerprint": FP[0]})
    with open(ledger.path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "status", "fingerprint": "ab')  # crash
    state = ledger.replay()
    assert state.torn_tail
    assert list(state.planned) == [FP[0]]
    # A resumed driver appends past the torn tail; replay still works.
    with ledger:
        ledger.append({"type": "plan", "fingerprint": FP[1]})


def test_mid_file_corruption_is_an_error(tmp_path):
    ledger = CampaignLedger.for_store(tmp_path, "camp-0123456789")
    with ledger:
        ledger.append(header())
    with open(ledger.path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps({"type": "plan", "fingerprint": FP[0]}) + "\n")
    with pytest.raises(LedgerError, match="corrupt ledger record"):
        ledger.replay()


def test_mixed_campaigns_rejected(tmp_path):
    ledger = CampaignLedger.for_store(tmp_path, "camp-0123456789")
    with ledger:
        ledger.append(header("camp-0123456789"))
        ledger.append(header("other-9876543210"))
    with pytest.raises(LedgerError, match="mixes campaigns"):
        ledger.replay()


def test_unknown_status_rejected(tmp_path):
    ledger = CampaignLedger.for_store(tmp_path, "camp-0123456789")
    with pytest.raises(ValueError, match="unknown status"):
        ledger.status(FP[0], "exploded")


def test_replay_of_missing_ledger_is_empty(tmp_path):
    ledger = CampaignLedger.for_store(tmp_path, "never-created")
    assert not ledger.exists()
    state = ledger.replay()
    assert state.header is None and not state.planned


def test_list_and_remove_campaigns(tmp_path):
    for name in ("b-1111111111", "a-0000000000"):
        with CampaignLedger.for_store(tmp_path, name) as ledger:
            ledger.append(header(name))
    names = [led.path.stem for led in list_campaigns(tmp_path)]
    assert names == ["a-0000000000", "b-1111111111"]
    assert remove_campaign(tmp_path, "a-0000000000")
    assert not remove_campaign(tmp_path, "a-0000000000")
    assert [led.path.stem for led in list_campaigns(tmp_path)] == [
        "b-1111111111"
    ]


def test_ledger_dir_is_invisible_to_store_backends(tmp_path):
    """Ledgers ride inside the store root without perturbing scans."""
    from repro.experiments.orchestrator import ResultStore

    store = ResultStore(tmp_path, backend="json")
    with CampaignLedger.for_store(tmp_path, "camp-0123456789") as ledger:
        ledger.append(header())
    assert list(store.documents()) == []
