"""Campaign driver semantics: run/resume/refusals and provenance."""

from __future__ import annotations

import pytest

from repro.experiments.orchestrator import Orchestrator, ResultStore
from repro.suite import (
    CampaignDriver,
    CampaignError,
    CampaignLedger,
    code_sha,
    parse_suite,
)

from repro.suite.ledger import CAMPAIGNS_DIR


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store", backend="segment")


def driver_for(spec, store, root):
    return CampaignDriver(spec, Orchestrator(store=store), root)


def test_fresh_run_executes_everything(mini_spec, store, tmp_path):
    report = driver_for(mini_spec, store, tmp_path / "store").run()
    assert report.total == 4
    assert report.executed == 4
    assert report.skipped == 0 and report.warm == 0 and report.failed == 0
    state = CampaignLedger.for_store(
        tmp_path / "store", mini_spec.campaign_id
    ).replay()
    assert state.complete
    assert state.counts()["done"] == 4


def test_done_entries_carry_full_provenance(mini_spec, store, tmp_path):
    """Acceptance: every artifact's ledger entry names what made it."""
    driver_for(mini_spec, store, tmp_path / "store").run()
    state = CampaignLedger.for_store(
        tmp_path / "store", mini_spec.campaign_id
    ).replay()
    expected_code = code_sha()
    by_fp = {run.fingerprint: run for run in mini_spec.expand()}
    assert set(state.status) == set(by_fp)
    for fingerprint, record in state.status.items():
        run = by_fp[fingerprint]
        assert record["status"] == "done"
        assert record["suite_sha"] == mini_spec.sha256
        assert record["code_sha"] == expected_code
        assert record["pack_sha"] == run.request.pack.sha256
        assert record["daemon"] == "local"
        assert record["engine"] == run.labels["engine"]
        assert record["source"] == "computed"
        assert record["elapsed_s"] >= 0.0


def test_rerun_of_complete_campaign_skips_everything(
    mini_spec, store, tmp_path
):
    driver_for(mini_spec, store, tmp_path / "store").run()
    report = driver_for(mini_spec, store, tmp_path / "store").run()
    assert report.skipped == 4
    assert report.executed == 0 and report.warm == 0


def test_run_refuses_interrupted_ledger(mini_spec, store, tmp_path):
    ledger = CampaignLedger.for_store(
        tmp_path / "store", mini_spec.campaign_id
    )
    with ledger:
        ledger.append(
            {
                "type": "campaign",
                "campaign": mini_spec.campaign_id,
                "suite_sha": mini_spec.sha256,
            }
        )
        ledger.append(
            {
                "type": "plan",
                "fingerprint": mini_spec.expand()[0].fingerprint,
            }
        )
    with pytest.raises(CampaignError, match="repro suite resume"):
        driver_for(mini_spec, store, tmp_path / "store").run()


def test_resume_refuses_missing_ledger(mini_spec, store, tmp_path):
    with pytest.raises(CampaignError, match="nothing to resume"):
        driver_for(mini_spec, store, tmp_path / "store").run(resume=True)


def test_suite_sha_mismatch_refused(store, tmp_path, mini_spec):
    """A hand-renamed ledger from another suite version is refused."""
    driver_for(mini_spec, store, tmp_path / "store").run()
    edited = parse_suite(
        mini_spec.raw + "\n# edited\n", mini_spec.path
    )
    ledger_dir = tmp_path / "store" / CAMPAIGNS_DIR
    old = ledger_dir / f"{mini_spec.campaign_id}.jsonl"
    old.rename(ledger_dir / f"{edited.campaign_id}.jsonl")
    with pytest.raises(CampaignError, match="suite sha"):
        driver_for(edited, store, tmp_path / "store").run()


def test_resume_reexecutes_when_store_lost(mini_spec, store, tmp_path):
    """Ledger-done is only a hint: a GC'd store must re-execute."""
    driver_for(mini_spec, store, tmp_path / "store").run()
    # Simulate a lost store root (ledger survives).
    fresh = ResultStore(tmp_path / "other-store", backend="segment")
    report = CampaignDriver(
        mini_spec, Orchestrator(store=fresh), tmp_path / "store"
    ).run(resume=True)
    assert report.skipped == 0
    assert report.executed == 4


def test_warm_runs_counted_separately(mini_spec, store, tmp_path):
    """Store hits without ledger-done records count as warm, not skips."""
    orchestrator = Orchestrator(store=store)
    for run in mini_spec.expand():
        orchestrator.run(run.request)
    report = driver_for(mini_spec, store, tmp_path / "store").run()
    assert report.warm == 4
    assert report.executed == 0 and report.skipped == 0


def test_failed_runs_raise_and_ledger_failed(mini_spec, store, tmp_path):
    class Exploding:
        """Consumer whose futures all fail."""

        def __init__(self, inner):
            self.inner = inner

        def submit_many(self, requests):
            return self.inner.submit_many(requests)

        def as_done(self, futures):
            import concurrent.futures

            for future in self.inner.as_done(futures):
                broken = concurrent.futures.Future()
                broken.set_exception(RuntimeError("daemon lost"))
                future._future = broken
                yield future

        def lookup(self, request, fingerprint):
            return self.inner.lookup(request, fingerprint)

    consumer = Exploding(Orchestrator(store=store))
    driver = CampaignDriver(mini_spec, consumer, tmp_path / "store")
    with pytest.raises(CampaignError, match="4 run\\(s\\) failed"):
        driver.run()
    state = CampaignLedger.for_store(
        tmp_path / "store", mini_spec.campaign_id
    ).replay()
    assert len(state.fingerprints("failed")) == 4
    assert "daemon lost" in next(iter(state.status.values()))["error"]
