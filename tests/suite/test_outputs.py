"""Output stage: figures/tables regenerate purely from the store."""

from __future__ import annotations

import json

import pytest

from repro.experiments.orchestrator import Orchestrator, ResultStore
from repro.suite import CampaignDriver, OutputError, generate_outputs


@pytest.fixture
def completed(mini_spec, tmp_path):
    store = ResultStore(tmp_path / "store", backend="segment")
    CampaignDriver(
        mini_spec, Orchestrator(store=store), tmp_path / "store"
    ).run()
    return mini_spec, store


def test_outputs_regenerate_from_store_only(completed, tmp_path):
    spec, store = completed
    out = tmp_path / "out"
    # A consumer that refuses to execute proves store purity: lookup
    # resolves everything, submit_many would explode.
    class LookupOnly:
        def __init__(self, inner):
            self.inner = inner

        def lookup(self, request, fingerprint):
            return self.inner.lookup(request, fingerprint)

        def submit_many(self, requests):
            raise AssertionError("output stage must never execute runs")

    files = generate_outputs(
        spec, LookupOnly(Orchestrator(store=store)), out
    )
    names = {f.rsplit("/", 1)[-1] for f in files}
    assert {"fig1.txt", "fig2.txt", "table1.txt", "MANIFEST.json"} <= names
    assert (out / "synthetic-slot" / "fig1.txt").read_text().strip()

    manifest = json.loads((out / "MANIFEST.json").read_text())
    assert manifest["suite"] == spec.name
    assert manifest["suite_sha"] == spec.sha256
    assert manifest["campaign"] == spec.campaign_id
    cell = manifest["cells"]["synthetic-slot"]
    expanded = {r.fingerprint for r in spec.expand()}
    assert set(cell["fingerprints"].values()) <= expanded


def test_missing_artifact_is_an_error(mini_spec, tmp_path):
    store = ResultStore(tmp_path / "empty-store", backend="segment")
    with pytest.raises(OutputError, match="run the campaign first"):
        generate_outputs(
            mini_spec, Orchestrator(store=store), tmp_path / "out"
        )


def test_export_writes_csvs(completed, tmp_path):
    spec, store = completed
    out = tmp_path / "out"
    files = generate_outputs(spec, Orchestrator(store=store), out)
    csvs = [f for f in files if f.endswith(".csv")]
    assert csvs, "export = true must produce CSV files"
