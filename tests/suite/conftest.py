"""Shared fixtures for the suite/campaign tests."""

from __future__ import annotations

import pytest

from repro.suite import parse_suite

#: A tiny four-policy suite (~2 s of simulation): the same shape as
#: examples/suites/mini.toml, inlined so tests control the sha.
MINI = """
[suite]
name = "mini"
description = "four-method comparison at tiny scale"

[matrix]
scale = "tiny"
horizon = 2
packs = ["synthetic"]
policies = ["Proposed", "Ener-aware", "Pri-aware", "Net-aware"]
seeds = [0]
alphas = [0.5]
engines = ["slot"]
vectorized = [true]
qos = [0.98]

[outputs]
figures = [1, 2]
tables = [1]
export = true
"""


@pytest.fixture
def mini_spec():
    return parse_suite(MINI, "mini.toml")


@pytest.fixture
def mini_no_outputs():
    text = MINI.split("[outputs]")[0]
    return parse_suite(text, "mini.toml")
