"""Crash drills: SIGKILL mid-campaign, then resume with zero re-runs.

The acceptance contract for the suite layer: a campaign killed hard
mid-flight and then resumed must (a) never re-execute a fingerprint
whose artifact already reached the store and (b) leave the store
byte-identical to an uninterrupted run of the same suite (the ledger
directory excluded -- it is the audit record *of* the two timelines,
so it legitimately differs).

Two drills: the in-process driver (``--store``) and a real ``repro
serve`` daemon subprocess killed under a live client (``--service``).
Both use the json store backend, whose atomic per-document files make
byte-level comparison meaningful.
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments.orchestrator import Orchestrator, ResultStore
from repro.suite import CampaignDriver, CampaignLedger, load_suite

SRC_DIR = pathlib.Path(__file__).resolve().parents[2] / "src"

_LISTENING = re.compile(r"listening on (http://\S+) ")

#: Eight tiny runs: enough room to die in the middle.
SUITE = """
[suite]
name = "drill"
description = "crash-resume drill"

[matrix]
scale = "tiny"
horizon = 2
seeds = [0, 1]
"""

TOTAL = 8
KILL_AFTER = 3

#: Child driver: runs one campaign; in store mode it SIGKILLs itself
#: after KILL_AFTER submissions (mid-submit_many -- runs beyond the
#: kill point have not even started).  Service mode runs to whatever
#: end the daemon's fate dictates.
CHILD = """
import os, signal, sys

mode, suite_path, root = sys.argv[1:4]

from repro.experiments.orchestrator import Orchestrator, ResultStore
from repro.suite import CampaignDriver, load_suite

spec = load_suite(suite_path)
if mode == "store":
    consumer = Orchestrator(store=ResultStore(root, backend="json"))
else:
    from repro.service.client import ServiceClient
    consumer = ServiceClient(sys.argv[4])

driver = CampaignDriver(spec, consumer, root)
if mode == "store":
    kill_after = int(sys.argv[4])
    real_submit = driver.consumer.submit
    seen = {"n": 0}

    def submit(request, use_store=None):
        if seen["n"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        seen["n"] += 1
        return real_submit(request, use_store=use_store)

    driver.consumer.submit = submit
driver.run()
"""


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _store_files(root: pathlib.Path) -> dict[str, bytes]:
    """Relative path -> bytes for every store file, ledgers excluded."""
    files = {}
    for path in sorted(root.rglob("*")):
        relative = path.relative_to(root)
        if not path.is_file() or relative.parts[0] == "campaigns":
            continue
        files[str(relative)] = path.read_bytes()
    return files


def _reference_store(spec_path, tmp_path) -> dict[str, bytes]:
    """One uninterrupted in-process run of the suite, for comparison."""
    root = tmp_path / "reference-store"
    spec = load_suite(spec_path)
    store = ResultStore(root, backend="json")
    report = CampaignDriver(spec, Orchestrator(store=store), root).run()
    assert report.executed == TOTAL
    return _store_files(root)


@pytest.fixture
def suite_file(tmp_path):
    path = tmp_path / "drill.toml"
    path.write_text(SUITE)
    return path


@pytest.fixture
def child_script(tmp_path):
    path = tmp_path / "child.py"
    path.write_text(CHILD)
    return path


def test_sigkill_in_process_then_resume(suite_file, child_script, tmp_path):
    root = tmp_path / "killed-store"
    proc = subprocess.run(
        [
            sys.executable, str(child_script), "store",
            str(suite_file), str(root), str(KILL_AFTER),
        ],
        env=_env(),
        timeout=300,
        capture_output=True,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

    # Exactly the pre-kill prefix reached the store; the ledger holds
    # the plans and the submitted batch but no terminal transitions.
    spec = load_suite(suite_file)
    survivors = {
        name for name in _store_files(root) if name.endswith(".json")
    }
    assert len(survivors) == KILL_AFTER
    state = CampaignLedger.for_store(root, spec.campaign_id).replay()
    assert len(state.planned) == TOTAL
    assert state.fingerprints("done") == []
    assert not state.complete

    # Resume: survivors resolve warm from the store, never re-execute.
    store = ResultStore(root, backend="json")
    report = CampaignDriver(
        spec, Orchestrator(store=store), root
    ).run(resume=True)
    assert report.executed == TOTAL - KILL_AFTER
    assert report.warm == KILL_AFTER
    assert report.skipped == 0 and report.failed == 0
    state = CampaignLedger.for_store(root, spec.campaign_id).replay()
    assert state.complete

    # The interrupted-then-resumed store is byte-identical to an
    # uninterrupted run's.
    assert _store_files(root) == _reference_store(suite_file, tmp_path)


class _DaemonProcess:
    """One ``repro serve`` subprocess bound to an ephemeral port."""

    def __init__(self, store_root, daemon_id):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(store_root),
                "--store-backend", "json",
                "--jobs", "1",
                "--port", "0",
                "--daemon-id", daemon_id,
            ],
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.url = self._await_url(timeout_s=60.0)

    def _await_url(self, timeout_s):
        found: list[str] = []

        def read():
            for line in self.proc.stderr:
                match = _LISTENING.search(line)
                if match and not found:
                    found.append(match.group(1))

        threading.Thread(target=read, daemon=True).start()
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if found:
                return found[0]
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited with {self.proc.returncode}"
                )
            time.sleep(0.05)
        self.proc.terminate()
        raise RuntimeError("daemon did not report its URL in time")

    def kill(self):
        self.proc.kill()
        self.proc.wait()

    def close(self):
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


def test_sigkill_daemon_then_resume(suite_file, child_script, tmp_path):
    from repro.service.client import ServiceClient

    root = tmp_path / "daemon-store"
    ledger_root = tmp_path / "client-ledger"
    daemon = _DaemonProcess(root, "drill-daemon")
    child = None
    try:
        child = subprocess.Popen(
            [
                sys.executable, str(child_script), "service",
                str(suite_file), str(ledger_root), daemon.url,
            ],
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # SIGKILL the daemon once a few artifacts have landed.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            stored = sum(
                1 for n in _store_files(root) if n.endswith(".json")
            )
            if stored >= KILL_AFTER:
                break
            if child.poll() is not None:
                pytest.fail("campaign finished before the kill fired")
            time.sleep(0.02)
        else:
            pytest.fail("daemon never stored enough artifacts to kill")
        daemon.kill()
        # The clientside driver dies with failed runs, nonzero.
        assert child.wait(timeout=120) != 0
    finally:
        if child is not None and child.poll() is None:
            child.kill()
            child.wait()
        daemon.close()

    spec = load_suite(suite_file)
    survivors = {
        name for name in _store_files(root) if name.endswith(".json")
    }
    assert 0 < len(survivors) < TOTAL
    state = CampaignLedger.for_store(
        ledger_root, spec.campaign_id
    ).replay()
    assert len(state.planned) == TOTAL
    assert not state.complete

    # Resume against a restarted daemon on the same store root (same
    # identity: provenance meta must not fork the byte comparison).
    restarted = _DaemonProcess(root, "drill-daemon")
    try:
        with ServiceClient(restarted.url) as client:
            report = CampaignDriver(
                spec, client, ledger_root
            ).run(resume=True)
        assert report.failed == 0
        # Zero re-execution: only the missing fingerprints computed.
        assert report.executed == TOTAL - len(survivors)
        assert report.skipped + report.warm == len(survivors)
    finally:
        restarted.close()
    state = CampaignLedger.for_store(
        ledger_root, spec.campaign_id
    ).replay()
    assert state.complete

    # Byte-identical to an uninterrupted daemon campaign on a fresh
    # store root, same daemon identity.
    reference_root = tmp_path / "reference-daemon-store"
    reference = _DaemonProcess(reference_root, "drill-daemon")
    try:
        with ServiceClient(reference.url) as client:
            report = CampaignDriver(
                spec, client, tmp_path / "reference-ledger"
            ).run()
        assert report.executed == TOTAL
    finally:
        reference.close()
    assert _store_files(root) == _store_files(reference_root)
