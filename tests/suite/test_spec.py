"""Suite spec parsing: the matrix contract and its failure modes.

Every rejection must point at ``file:line: [section].key`` -- an
operator fixing a 40-line suite file should never have to bisect it.
"""

from __future__ import annotations

import re

import pytest

from repro.suite import (
    COMPARISON_POLICIES,
    SuiteSpecError,
    load_suite,
    parse_suite,
)

MINI = """
[suite]
name = "mini"
description = "four-method comparison at tiny scale"

[matrix]
scale = "tiny"
horizon = 2
packs = ["synthetic"]
policies = ["Proposed", "Ener-aware", "Pri-aware", "Net-aware"]
seeds = [0]
alphas = [0.5]
engines = ["slot"]
vectorized = [true]
qos = [0.98]

[outputs]
figures = [1, 2]
tables = [1]
export = true
"""


def _error(text: str) -> str:
    with pytest.raises(SuiteSpecError) as excinfo:
        parse_suite(text, "suite.toml")
    return str(excinfo.value)


def _line_of(text: str, needle: str) -> int:
    for number, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return number
    raise AssertionError(f"{needle!r} not in text")


class TestParseHappyPath:
    def test_mini_round_trip(self):
        spec = parse_suite(MINI, "mini.toml")
        assert spec.name == "mini"
        assert spec.scale == "tiny"
        assert spec.horizon == 2
        assert spec.policies == COMPARISON_POLICIES
        assert spec.figures == (1, 2)
        assert spec.tables == (1,)
        assert spec.export is True
        assert spec.has_outputs

    def test_defaults_fill_unset_axes(self):
        spec = parse_suite(
            '[suite]\nname = "d"\n[matrix]\nscale = "tiny"\n'
        )
        assert spec.packs == ("synthetic",)
        assert spec.policies == COMPARISON_POLICIES
        assert spec.seeds == (0,)
        assert spec.alphas == (0.5,)
        assert spec.engines == ("slot",)
        assert spec.vectorized == (True,)
        assert spec.qos == (0.98,)
        assert not spec.has_outputs

    def test_campaign_id_tracks_content(self):
        a = parse_suite(MINI, "a.toml")
        b = parse_suite(MINI + "\n# trailing comment\n", "a.toml")
        assert a.campaign_id.startswith("mini-")
        assert a.campaign_id == f"mini-{a.sha256[:10]}"
        # Any byte change (even a comment) is a new campaign: the
        # ledger must never mix two grid definitions.
        assert a.campaign_id != b.campaign_id

    def test_load_suite_reads_the_file(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(MINI)
        spec = load_suite(path)
        assert spec.name == "mini"
        assert spec.path == str(path)


class TestExpansion:
    def test_expansion_is_deterministic(self):
        a = parse_suite(MINI, "a.toml").expand()
        b = parse_suite(MINI, "a.toml").expand()
        assert [r.fingerprint for r in a] == [r.fingerprint for r in b]

    def test_grid_size_and_labels(self):
        text = MINI.replace("seeds = [0]", "seeds = [0, 1, 2]")
        runs = parse_suite(text, "s.toml").expand()
        assert len(runs) == 12  # 4 policies x 3 seeds
        assert len({r.fingerprint for r in runs}) == 12
        labels = runs[0].labels
        assert set(labels) == {
            "pack", "policy", "seed", "alpha", "engine",
            "vectorized", "qos",
        }

    def test_baseline_policies_dedup_across_alphas(self):
        text = MINI.replace("alphas = [0.5]", "alphas = [0.3, 0.7]")
        runs = parse_suite(text, "s.toml").expand()
        # Proposed varies with alpha (2 runs); the three baselines
        # ignore it, so each plans once -- 5 runs, not 8.
        assert len(runs) == 5
        proposed = [r for r in runs if r.labels["policy"] == "Proposed"]
        assert {r.labels["alpha"] for r in proposed} == {0.3, 0.7}

    def test_output_cells_cover_the_comparison(self, mini_spec):
        cells = mini_spec.output_cells()
        assert [cell.key for cell in cells] == ["synthetic-slot"]
        assert tuple(cells[0].fingerprints()) == COMPARISON_POLICIES
        expanded = {r.fingerprint for r in mini_spec.expand()}
        assert set(cells[0].fingerprints().values()) <= expanded

    def test_no_outputs_means_no_cells(self, mini_no_outputs):
        assert mini_no_outputs.output_cells() == []


class TestFailureModes:
    """One test per rejection class, all asserting file:line:key."""

    def test_invalid_toml_syntax(self):
        message = _error("[suite\nname=")
        assert message.startswith("suite.toml: invalid TOML")

    def test_unknown_top_level_table(self):
        text = MINI + "\n[grid]\nrows = 3\n"
        message = _error(text)
        assert "[grid]" in message and "unknown table" in message
        assert f"suite.toml:{_line_of(text, '[grid]')}:" in message

    def test_missing_suite_table(self):
        message = _error('[matrix]\nscale = "tiny"\n')
        assert "missing required [suite] table" in message

    def test_missing_name(self):
        message = _error("[suite]\ndescription = \"x\"\n[matrix]\n")
        assert "[suite].name" in message
        assert "required string is missing" in message

    def test_name_rejects_path_hostile_labels(self):
        message = _error('[suite]\nname = "a/b"\n[matrix]\n')
        assert "[suite].name" in message and "'a/b'" in message

    def test_unknown_matrix_key_points_at_its_line(self):
        text = MINI.replace("seeds = [0]", "seeds = [0]\nseedz = [1]")
        message = _error(text)
        assert "[matrix].seedz" in message and "unknown key" in message
        assert f"suite.toml:{_line_of(text, 'seedz')}:" in message

    def test_unknown_scale(self):
        message = _error('[suite]\nname="s"\n[matrix]\nscale = "huge"\n')
        assert "[matrix].scale" in message and "'huge'" in message

    def test_bad_horizon(self):
        message = _error('[suite]\nname="s"\n[matrix]\nhorizon = 0\n')
        assert "[matrix].horizon" in message
        assert "positive integer" in message

    def test_unknown_pack(self):
        text = MINI.replace('packs = ["synthetic"]', 'packs = ["nope"]')
        message = _error(text)
        assert "[matrix].packs" in message and "unknown pack" in message
        assert f"suite.toml:{_line_of(text, 'packs')}:" in message

    def test_misspelled_policy(self):
        text = MINI.replace('"Ener-aware"', '"Enr-aware"')
        message = _error(text)
        assert "[matrix].policies" in message
        assert "unknown policy" in message

    def test_axis_must_be_a_list(self):
        text = MINI.replace("seeds = [0]", "seeds = 0")
        message = _error(text)
        assert "[matrix].seeds" in message and "expected a list" in message

    def test_axis_must_not_be_empty(self):
        text = MINI.replace("seeds = [0]", "seeds = []")
        message = _error(text)
        assert "[matrix].seeds" in message and "not be empty" in message

    def test_heterogeneous_axis_values(self):
        text = MINI.replace("seeds = [0]", 'seeds = [0, "one"]')
        message = _error(text)
        assert "[matrix].seeds" in message and "'one'" in message

    def test_bool_does_not_sneak_in_as_int(self):
        text = MINI.replace("seeds = [0]", "seeds = [true]")
        message = _error(text)
        assert "[matrix].seeds" in message and "True" in message

    def test_negative_seed(self):
        text = MINI.replace("seeds = [0]", "seeds = [-1]")
        message = _error(text)
        assert "[matrix].seeds" in message and ">= 0" in message

    def test_alpha_out_of_range(self):
        text = MINI.replace("alphas = [0.5]", "alphas = [1.5]")
        message = _error(text)
        assert "[matrix].alphas" in message and "out of [0, 1]" in message

    def test_qos_out_of_range(self):
        text = MINI.replace("qos = [0.98]", "qos = [1.0]")
        message = _error(text)
        assert "[matrix].qos" in message and "out of (0, 1)" in message

    def test_duplicate_axis_entries(self):
        text = MINI.replace("seeds = [0]", "seeds = [0, 0]")
        message = _error(text)
        assert "[matrix].seeds" in message and "duplicate" in message

    def test_unknown_engine(self):
        text = MINI.replace('engines = ["slot"]', 'engines = ["warp"]')
        message = _error(text)
        assert "[matrix].engines" in message and "unknown engine" in message

    def test_unknown_figure(self):
        text = MINI.replace("figures = [1, 2]", "figures = [7]")
        message = _error(text)
        assert "[outputs].figures" in message and "unknown figure" in message

    def test_unknown_output_key(self):
        text = MINI.replace("export = true", "export = true\ncsv = true")
        message = _error(text)
        assert "[outputs].csv" in message and "unknown key" in message

    def test_outputs_require_full_comparison(self):
        text = MINI.replace(
            'policies = ["Proposed", "Ener-aware", "Pri-aware", "Net-aware"]',
            'policies = ["Proposed"]',
        )
        message = _error(text)
        assert "[matrix].policies" in message
        assert "full four-policy comparison" in message

    def test_every_error_carries_position(self):
        """The file:line: prefix is structural, not incidental."""
        broken = [
            MINI + "\n[grid]\nrows = 3\n",
            MINI.replace("seeds = [0]", "seeds = [0]\nseedz = [1]"),
            MINI.replace('packs = ["synthetic"]', 'packs = ["nope"]'),
            MINI.replace("alphas = [0.5]", "alphas = [2.0]"),
        ]
        for text in broken:
            message = _error(text)
            assert re.match(r"^suite\.toml:\d+: \[", message), message
