"""The ``repro suite`` CLI surface and ``store ls --campaign``."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.suite import CampaignLedger, load_suite

SUITE = """
[suite]
name = "clidrill"
description = "CLI drill"

[matrix]
scale = "tiny"
horizon = 2
seeds = [0]
policies = ["Proposed", "Ener-aware", "Pri-aware", "Net-aware"]

[outputs]
figures = [1]
tables = [1]
"""


@pytest.fixture
def suite_file(tmp_path):
    path = tmp_path / "clidrill.toml"
    path.write_text(SUITE)
    return path


def test_suite_run_executes_and_writes_outputs(
    suite_file, tmp_path, capsys
):
    store = tmp_path / "store"
    out = tmp_path / "out"
    code = main(
        [
            "suite", "run", str(suite_file),
            "--store", str(store), "--out", str(out),
        ]
    )
    assert code == 0
    stdout = capsys.readouterr().out
    assert "4 executed" in stdout
    assert (out / "synthetic-slot" / "fig1.txt").exists()
    assert (out / "synthetic-slot" / "table1.txt").exists()
    assert (out / "MANIFEST.json").exists()

    spec = load_suite(suite_file)
    state = CampaignLedger.for_store(store, spec.campaign_id).replay()
    assert state.complete


def test_suite_rerun_is_idempotent(suite_file, tmp_path, capsys):
    store = tmp_path / "store"
    argv = [
        "suite", "run", str(suite_file),
        "--store", str(store), "--no-outputs",
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    stdout = capsys.readouterr().out
    assert "4 skipped" in stdout and "0 executed" in stdout


def test_suite_resume_without_ledger_fails(suite_file, tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(
            [
                "suite", "resume", str(suite_file),
                "--store", str(tmp_path / "store"), "--no-outputs",
            ]
        )
    assert "nothing to resume" in str(excinfo.value)


def test_suite_requires_a_ledger_location(suite_file, monkeypatch):
    monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
    with pytest.raises(SystemExit) as excinfo:
        main(["suite", "run", str(suite_file)])
    assert "--store" in str(excinfo.value)


def test_suite_status_renders_progress(suite_file, tmp_path, capsys):
    store = tmp_path / "store"
    # No ledgers yet: status exits nonzero.
    assert main(["suite", "status", "--store", str(store)]) == 1
    capsys.readouterr()
    main(
        [
            "suite", "run", str(suite_file),
            "--store", str(store), "--no-outputs",
        ]
    )
    capsys.readouterr()
    assert main(["suite", "status", "--store", str(store)]) == 0
    stdout = capsys.readouterr().out
    assert "clidrill-" in stdout
    assert "complete" in stdout


def test_spec_errors_exit_with_location(tmp_path):
    path = tmp_path / "broken.toml"
    path.write_text('[suite]\nname = "x"\n[matrix]\nseeds = []\n')
    with pytest.raises(SystemExit) as excinfo:
        main(
            [
                "suite", "run", str(path),
                "--store", str(tmp_path / "store"),
            ]
        )
    message = str(excinfo.value)
    assert "[matrix].seeds" in message and "broken.toml:4" in message


def test_store_ls_filters_by_campaign(suite_file, tmp_path, capsys):
    store = tmp_path / "store"
    main(
        [
            "suite", "run", str(suite_file),
            "--store", str(store), "--no-outputs",
        ]
    )
    capsys.readouterr()
    spec = load_suite(suite_file)

    assert main(["store", "ls", "--store", str(store)]) == 0
    everything = capsys.readouterr().out
    assert spec.campaign_id in everything

    assert (
        main(
            [
                "store", "ls", "--store", str(store),
                "--campaign", spec.campaign_id,
            ]
        )
        == 0
    )
    filtered = capsys.readouterr().out
    assert filtered.count(spec.campaign_id) >= 4

    assert (
        main(
            [
                "store", "ls", "--store", str(store),
                "--campaign", "no-such-campaign",
            ]
        )
        == 0
    )
    assert "0 document(s)" in capsys.readouterr().out


def test_store_gc_collects_a_campaign_as_a_unit(
    suite_file, tmp_path, capsys
):
    store = tmp_path / "store"
    main(
        [
            "suite", "run", str(suite_file),
            "--store", str(store), "--no-outputs",
        ]
    )
    capsys.readouterr()
    spec = load_suite(suite_file)

    argv = [
        "store", "gc", "--store", str(store),
        "--campaign", spec.campaign_id,
    ]
    assert main(argv + ["--dry-run"]) == 0
    assert "would delete 4 document(s)" in capsys.readouterr().out
    assert main(argv) == 0
    assert "deleted 4 document(s)" in capsys.readouterr().out

    assert main(["store", "ls", "--store", str(store)]) == 0
    assert "0 document(s)" in capsys.readouterr().out
