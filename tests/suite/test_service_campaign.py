"""Campaigns over the service path: meta stamping, headers, stats.

The driver treats every consumer uniformly through ``with_meta``: an
in-process ``Orchestrator`` stamps the campaign id into each store
document's meta envelope, while ``ServiceClient``/``FleetClient``
translate it to an ``X-Repro-Campaign`` header feeding the daemon's
per-campaign ``/stats`` counters.
"""

from __future__ import annotations

import pytest

from repro.experiments.orchestrator import Orchestrator, ResultStore
from repro.service import ExperimentDaemon, ServiceClient
from repro.service.fleet import FleetClient, rendezvous_member
from repro.suite import CampaignDriver, CampaignLedger


@pytest.fixture
def daemon_factory(tmp_path):
    """In-process daemons on ephemeral ports, closed at teardown."""
    daemons: list[ExperimentDaemon] = []
    roots = iter(range(100))

    def build(**daemon_kwargs) -> ExperimentDaemon:
        store = ResultStore(
            tmp_path / f"daemon-store-{next(roots)}", backend="segment"
        )
        daemon = ExperimentDaemon(
            Orchestrator(store=store, jobs=1), **daemon_kwargs
        )
        daemons.append(daemon)
        return daemon.start()

    yield build
    for daemon in daemons:
        daemon.close()


def test_orchestrator_with_meta_semantics(tmp_path):
    store = ResultStore(tmp_path / "store", backend="segment")
    orchestrator = Orchestrator(store=store)
    # A no-op merge hands back the same instance; a real one clones
    # with the store shared, leaving the original unstamped.
    assert orchestrator.with_meta({}) is orchestrator
    stamped = orchestrator.with_meta({"campaign": "camp-abc"})
    assert stamped is not orchestrator
    assert stamped.store is orchestrator.store
    assert stamped.meta["campaign"] == "camp-abc"
    assert "campaign" not in orchestrator.meta


def test_local_campaign_stamps_store_meta(mini_spec, tmp_path):
    store = ResultStore(tmp_path / "store", backend="segment")
    report = CampaignDriver(
        mini_spec, Orchestrator(store=store), tmp_path / "store"
    ).run()
    assert report.executed == report.total
    documents = list(store.documents())
    assert len(documents) == report.total
    for _fingerprint, document in documents:
        assert document["meta"]["campaign"] == mini_spec.campaign_id


def test_service_campaign_feeds_daemon_stats(
    mini_no_outputs, daemon_factory, tmp_path
):
    spec = mini_no_outputs
    daemon = daemon_factory(daemon_id="svc-a")
    ledger_root = tmp_path / "ledger"
    with ServiceClient(daemon.url) as client:
        report = CampaignDriver(spec, client, ledger_root).run()
        assert report.executed == spec_total(spec)
        assert report.failed == 0
        # The X-Repro-Campaign header tallied every submission.
        stats = client.stats()
        assert stats["campaigns"][spec.campaign_id] == report.total
    # Service-path done records carry the daemon's identity.
    state = CampaignLedger.for_store(
        ledger_root, spec.campaign_id
    ).replay()
    assert state.complete
    for record in state.status.values():
        assert record["daemon"] == "svc-a"


def test_service_rerun_skips_via_daemon_lookup(
    mini_no_outputs, daemon_factory, tmp_path
):
    spec = mini_no_outputs
    daemon = daemon_factory()
    ledger_root = tmp_path / "ledger"
    with ServiceClient(daemon.url) as client:
        CampaignDriver(spec, client, ledger_root).run()
        # Verification hits the daemon's store over the wire: zero
        # executions, zero submissions.
        report = CampaignDriver(spec, client, ledger_root).run()
    assert report.skipped == report.total
    assert report.executed == 0 and report.warm == 0


def test_fleet_campaign_headers_reach_every_member(
    mini_no_outputs, daemon_factory, tmp_path
):
    spec = mini_no_outputs
    first = daemon_factory(daemon_id="fleet-a")
    second = daemon_factory(daemon_id="fleet-b")
    with FleetClient([first.url, second.url]) as fleet:
        report = CampaignDriver(
            spec, fleet, tmp_path / "ledger"
        ).run()
    assert report.executed == report.total
    # Each member tallied exactly its routed share of the campaign.
    tallies = {
        daemon.url: daemon.campaigns.get(spec.campaign_id, 0)
        for daemon in (first, second)
    }
    assert sum(tallies.values()) == report.total
    # The ledger's planned route mirrors rendezvous hashing.
    state = CampaignLedger.for_store(
        tmp_path / "ledger", spec.campaign_id
    ).replay()
    urls = [first.url, second.url]
    for fingerprint, record in state.status.items():
        assert record["daemon"] == rendezvous_member(fingerprint, urls)


def spec_total(spec) -> int:
    return len(spec.expand())
