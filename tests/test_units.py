"""Unit-conversion helpers."""

import pytest

from repro import units


def test_mb_to_bits():
    assert units.mb_to_bits(1.0) == 8.0e6


def test_bits_to_mb_roundtrip():
    assert units.bits_to_mb(units.mb_to_bits(123.4)) == pytest.approx(123.4)


def test_gb_to_mb():
    assert units.gb_to_mb(2.0) == 2000.0


def test_kwh_to_joules():
    assert units.kwh_to_joules(1.0) == 3.6e6


def test_joules_to_kwh_roundtrip():
    assert units.joules_to_kwh(units.kwh_to_joules(42.0)) == pytest.approx(42.0)


def test_joules_to_gj():
    assert units.joules_to_gj(2.5e9) == pytest.approx(2.5)


def test_watts_over():
    assert units.watts_over(100.0, 3600.0) == pytest.approx(3.6e5)


def test_seconds_per_hour():
    assert units.SECONDS_PER_HOUR == 3600.0


def test_hours_per_week():
    assert units.HOURS_PER_WEEK == 168


def test_fiber_speed_below_vacuum_c():
    assert units.FIBER_LIGHT_SPEED < 3.0e8
