"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--scale", "galactic"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.scale == "small"
        assert args.alpha == 0.5
        assert args.seed == 0


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "DC1" in out
        assert "Lisbon" in out

    def test_compare(self, capsys):
        code = main(["compare", "--scale", "tiny", "--horizon", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Proposed" in out
        assert "normalized operational cost" in out

    def test_figures(self, capsys):
        code = main(["figures", "--scale", "tiny", "--horizon", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "Fig. 6" in out

    def test_alpha_sweep(self, capsys):
        code = main(
            ["alpha", "--scale", "tiny", "--horizon", "3", "--alphas", "0.2,0.8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0.20" in out
        assert "Pareto" in out

    def test_bound(self, capsys):
        code = main(["bound", "--scale", "tiny", "--horizon", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LP bound" in out

    def test_sweep_battery(self, capsys):
        code = main(["sweep", "battery", "--scale", "tiny", "--horizon", "3"])
        assert code == 0
        assert "battery_scale" in capsys.readouterr().out

    def test_scenarios(self, capsys):
        code = main(["scenarios", "--scale", "tiny", "--horizon", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scale-out" in out
        assert "hpc" in out

    def test_export(self, capsys, tmp_path):
        code = main(
            ["export", str(tmp_path / "csv"), "--scale", "tiny", "--horizon", "3"]
        )
        assert code == 0
        assert (tmp_path / "csv" / "summary.csv").exists()
