"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.sim.engine import SimulationEngine


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--scale", "galactic"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.scale == "small"
        assert args.alpha == 0.5
        assert args.seed == 0


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "DC1" in out
        assert "Lisbon" in out

    def test_compare(self, capsys):
        code = main(["compare", "--scale", "tiny", "--horizon", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Proposed" in out
        assert "normalized operational cost" in out

    def test_figures(self, capsys):
        code = main(["figures", "--scale", "tiny", "--horizon", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "Fig. 6" in out

    def test_alpha_sweep(self, capsys):
        code = main(
            ["alpha", "--scale", "tiny", "--horizon", "3", "--alphas", "0.2,0.8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0.20" in out
        assert "Pareto" in out

    def test_bound(self, capsys):
        code = main(["bound", "--scale", "tiny", "--horizon", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LP bound" in out

    def test_sweep_battery(self, capsys):
        code = main(["sweep", "battery", "--scale", "tiny", "--horizon", "3"])
        assert code == 0
        assert "battery_scale" in capsys.readouterr().out

    def test_scenarios(self, capsys):
        code = main(["scenarios", "--scale", "tiny", "--horizon", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scale-out" in out
        assert "hpc" in out

    def test_export(self, capsys, tmp_path):
        code = main(
            ["export", str(tmp_path / "csv"), "--scale", "tiny", "--horizon", "3"]
        )
        assert code == 0
        assert (tmp_path / "csv" / "summary.csv").exists()


class TestOrchestratorFlags:
    def test_defaults_include_orchestrator_flags(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 1
        assert args.seeds == 1
        assert args.no_cache is False
        assert args.store is None

    def test_seeds_rejected_outside_compare(self):
        with pytest.raises(SystemExit, match="compare command only"):
            main(["figures", "--scale", "tiny", "--horizon", "2",
                  "--seeds", "3"])

    def test_compare_replicated_seeds(self, capsys):
        code = main(
            ["compare", "--scale", "tiny", "--horizon", "2", "--seeds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "+-" in out
        assert "Proposed" in out

    def test_compare_no_cache(self, capsys):
        code = main(
            ["compare", "--scale", "tiny", "--horizon", "2", "--no-cache"]
        )
        assert code == 0
        assert "Proposed" in capsys.readouterr().out

    def test_store_persists_results(self, capsys, tmp_path):
        store = tmp_path / "store"
        argv = [
            "compare", "--scale", "tiny", "--horizon", "2", "--store", str(store),
        ]
        assert main(argv) == 0
        documents = list(store.rglob("*.json"))
        assert len(documents) == 4
        # Second invocation must resolve from disk and print the same table.
        first = capsys.readouterr().out
        from repro.experiments.runner import clear_cache

        clear_cache()
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_store_path_must_be_directory(self, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        with pytest.raises(SystemExit):
            main(
                ["compare", "--scale", "tiny", "--horizon", "2",
                 "--store", str(not_a_dir)]
            )


def write_recording(tmp_path, steps_per_slot: int = 30, slots: int = 2):
    """A small utilization CSV compatible with the tiny scale."""
    rng = np.random.default_rng(3)
    matrix = rng.uniform(0.1, 0.9, size=(4, steps_per_slot * slots))
    path = tmp_path / "recording.csv"
    np.savetxt(path, matrix, delimiter=",")
    return path


class TestPackFlags:
    def test_packs_command_lists_registry(self, capsys):
        assert main(["packs"]) == 0
        out = capsys.readouterr().out
        assert "synthetic" in out
        assert "scenario-hpc" in out
        assert "sha256" in out

    def test_named_pack_runs(self, capsys):
        code = main(
            ["compare", "--scale", "tiny", "--horizon", "2",
             "--pack", "scenario-hpc"]
        )
        assert code == 0
        assert "Proposed" in capsys.readouterr().out

    def test_unknown_pack_rejected(self):
        with pytest.raises(SystemExit, match="unknown pack"):
            main(["compare", "--scale", "tiny", "--horizon", "2",
                  "--pack", "nope"])

    def test_pack_and_pack_csv_exclusive(self, tmp_path):
        path = write_recording(tmp_path)
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["compare", "--scale", "tiny", "--horizon", "2",
                  "--pack", "synthetic", "--pack-csv", str(path)])

    def test_missing_pack_csv_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["compare", "--scale", "tiny", "--horizon", "2",
                  "--pack-csv", str(tmp_path / "absent.csv")])

    def test_pack_csv_runs_comparison(self, capsys, tmp_path):
        path = write_recording(tmp_path)
        code = main(
            ["compare", "--scale", "tiny", "--horizon", "2",
             "--pack-csv", str(path)]
        )
        assert code == 0
        assert "Proposed" in capsys.readouterr().out

    def test_pack_csv_warm_store_skips_engine(
        self, capsys, tmp_path, monkeypatch
    ):
        """Second recorded-CSV run must resolve every run from the store."""
        path = write_recording(tmp_path)
        store = tmp_path / "store"
        argv = [
            "compare", "--scale", "tiny", "--horizon", "2",
            "--pack-csv", str(path), "--store", str(store),
        ]
        invocations = []
        original = SimulationEngine.run

        def counting_run(self):
            invocations.append(self.policy.name)
            return original(self)

        monkeypatch.setattr(SimulationEngine, "run", counting_run)
        assert main(argv) == 0
        assert len(invocations) == 4
        first = capsys.readouterr().out

        invocations.clear()
        assert main(argv) == 0
        assert invocations == []  # zero engine invocations on the warm run
        assert capsys.readouterr().out == first
