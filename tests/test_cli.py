"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.sim.engine import SimulationEngine


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--scale", "galactic"])

    def test_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.scale == "small"
        assert args.alpha == 0.5
        assert args.seed == 0


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "DC1" in out
        assert "Lisbon" in out

    def test_compare(self, capsys):
        code = main(["compare", "--scale", "tiny", "--horizon", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Proposed" in out
        assert "normalized operational cost" in out

    def test_figures(self, capsys):
        code = main(["figures", "--scale", "tiny", "--horizon", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "Fig. 6" in out

    def test_alpha_sweep(self, capsys):
        code = main(
            ["alpha", "--scale", "tiny", "--horizon", "3", "--alphas", "0.2,0.8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0.20" in out
        assert "Pareto" in out

    def test_bound(self, capsys):
        code = main(["bound", "--scale", "tiny", "--horizon", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LP bound" in out

    def test_sweep_battery(self, capsys):
        code = main(["sweep", "battery", "--scale", "tiny", "--horizon", "3"])
        assert code == 0
        assert "battery_scale" in capsys.readouterr().out

    def test_scenarios(self, capsys):
        code = main(["scenarios", "--scale", "tiny", "--horizon", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scale-out" in out
        assert "hpc" in out

    def test_export(self, capsys, tmp_path):
        code = main(
            ["export", str(tmp_path / "csv"), "--scale", "tiny", "--horizon", "3"]
        )
        assert code == 0
        assert (tmp_path / "csv" / "summary.csv").exists()


class TestOrchestratorFlags:
    def test_defaults_include_orchestrator_flags(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 1
        assert args.seeds == 1
        assert args.no_cache is False
        assert args.store is None

    def test_seeds_rejected_outside_compare(self):
        with pytest.raises(SystemExit, match="compare command only"):
            main(["figures", "--scale", "tiny", "--horizon", "2",
                  "--seeds", "3"])

    def test_compare_replicated_seeds(self, capsys):
        code = main(
            ["compare", "--scale", "tiny", "--horizon", "2", "--seeds", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "+-" in out
        assert "Proposed" in out

    def test_compare_no_cache(self, capsys):
        code = main(
            ["compare", "--scale", "tiny", "--horizon", "2", "--no-cache"]
        )
        assert code == 0
        assert "Proposed" in capsys.readouterr().out

    def test_store_persists_results(self, capsys, tmp_path):
        store = tmp_path / "store"
        argv = [
            "compare", "--scale", "tiny", "--horizon", "2", "--store", str(store),
        ]
        assert main(argv) == 0
        documents = list(store.rglob("*.json"))
        assert len(documents) == 4
        # Second invocation must resolve from disk and print the same table.
        first = capsys.readouterr().out
        from repro.experiments.runner import clear_cache

        clear_cache()
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_store_path_must_be_directory(self, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        with pytest.raises(SystemExit):
            main(
                ["compare", "--scale", "tiny", "--horizon", "2",
                 "--store", str(not_a_dir)]
            )


def write_recording(tmp_path, steps_per_slot: int = 30, slots: int = 2):
    """A small utilization CSV compatible with the tiny scale."""
    rng = np.random.default_rng(3)
    matrix = rng.uniform(0.1, 0.9, size=(4, steps_per_slot * slots))
    path = tmp_path / "recording.csv"
    np.savetxt(path, matrix, delimiter=",")
    return path


class TestPackFlags:
    def test_packs_command_lists_registry(self, capsys):
        assert main(["packs"]) == 0
        out = capsys.readouterr().out
        assert "synthetic" in out
        assert "scenario-hpc" in out
        assert "sha256" in out

    def test_named_pack_runs(self, capsys):
        code = main(
            ["compare", "--scale", "tiny", "--horizon", "2",
             "--pack", "scenario-hpc"]
        )
        assert code == 0
        assert "Proposed" in capsys.readouterr().out

    def test_unknown_pack_rejected(self):
        with pytest.raises(SystemExit, match="unknown pack"):
            main(["compare", "--scale", "tiny", "--horizon", "2",
                  "--pack", "nope"])

    def test_pack_and_pack_csv_exclusive(self, tmp_path):
        path = write_recording(tmp_path)
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["compare", "--scale", "tiny", "--horizon", "2",
                  "--pack", "synthetic", "--pack-csv", str(path)])

    def test_missing_pack_csv_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["compare", "--scale", "tiny", "--horizon", "2",
                  "--pack-csv", str(tmp_path / "absent.csv")])

    def test_pack_csv_runs_comparison(self, capsys, tmp_path):
        path = write_recording(tmp_path)
        code = main(
            ["compare", "--scale", "tiny", "--horizon", "2",
             "--pack-csv", str(path)]
        )
        assert code == 0
        assert "Proposed" in capsys.readouterr().out

    def test_pack_csv_warm_store_skips_engine(
        self, capsys, tmp_path, monkeypatch
    ):
        """Second recorded-CSV run must resolve every run from the store."""
        path = write_recording(tmp_path)
        store = tmp_path / "store"
        argv = [
            "compare", "--scale", "tiny", "--horizon", "2",
            "--pack-csv", str(path), "--store", str(store),
        ]
        invocations = []
        original = SimulationEngine.run

        def counting_run(self):
            invocations.append(self.policy.name)
            return original(self)

        monkeypatch.setattr(SimulationEngine, "run", counting_run)
        assert main(argv) == 0
        assert len(invocations) == 4
        first = capsys.readouterr().out

        invocations.clear()
        assert main(argv) == 0
        assert invocations == []  # zero engine invocations on the warm run
        assert capsys.readouterr().out == first


class TestStoreBackendFlag:
    def argv(self, store, backend=None):
        argv = ["compare", "--scale", "tiny", "--horizon", "2",
                "--store", str(store)]
        if backend:
            argv += ["--store-backend", backend]
        return argv

    def test_segment_backend_cold_then_warm(
        self, capsys, tmp_path, monkeypatch
    ):
        store = tmp_path / "segstore"
        invocations = []
        original = SimulationEngine.run

        def counting_run(self):
            invocations.append(self.policy.name)
            return original(self)

        monkeypatch.setattr(SimulationEngine, "run", counting_run)
        assert main(self.argv(store, "segment")) == 0
        assert len(invocations) == 4
        assert list(store.glob("segments/*.seg"))
        first = capsys.readouterr().out

        from repro.experiments.runner import clear_cache

        clear_cache()
        invocations.clear()
        # Auto-detection: no --store-backend on the warm run.
        assert main(self.argv(store)) == 0
        assert invocations == []
        assert capsys.readouterr().out == first

    def test_sharded_backend_routes_by_config(self, capsys, tmp_path):
        store = tmp_path / "shstore"
        assert main(self.argv(store, "sharded")) == 0
        assert (store / "shards" / "tiny").is_dir()

    def test_backend_conflict_rejected(self, capsys, tmp_path):
        store = tmp_path / "plain"
        assert main(self.argv(store)) == 0  # per-file layout
        with pytest.raises(SystemExit, match="refusing"):
            main(self.argv(store, "segment"))


class TestProgressFlag:
    def test_progress_streams_counts_to_stderr(self, capsys):
        code = main(["compare", "--scale", "tiny", "--horizon", "2",
                     "--no-cache", "--progress"])
        assert code == 0
        captured = capsys.readouterr()
        assert "[4/4] runs complete" in captured.err
        assert "[4/4]" not in captured.out

    def test_no_progress_silences_stderr(self, capsys):
        code = main(["compare", "--scale", "tiny", "--horizon", "2",
                     "--no-cache", "--no-progress"])
        assert code == 0
        assert "runs complete" not in capsys.readouterr().err

    def test_sweep_streams_progress(self, capsys):
        code = main(["sweep", "battery", "--scale", "tiny", "--horizon", "2",
                     "--no-cache", "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "[1/4]" in err
        assert "[4/4]" in err


class TestStoreSubcommand:
    def warm_store(self, tmp_path, backend="json"):
        store = tmp_path / "warmstore"
        argv = ["compare", "--scale", "tiny", "--horizon", "2",
                "--store", str(store)]
        if backend != "json":
            argv += ["--store-backend", backend]
        assert main(argv) == 0
        from repro.experiments.runner import clear_cache

        clear_cache()
        return store

    def test_ls_lists_documents(self, capsys, tmp_path):
        store = self.warm_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "ls", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "4 document(s)" in out
        assert "Proposed" in out
        assert "[json backend]" in out

    def test_ls_fingerprint_filter(self, capsys, tmp_path):
        store = self.warm_store(tmp_path)
        capsys.readouterr()
        from repro.store import JsonFileBackend

        fingerprint = next(iter(JsonFileBackend(store).keys()))
        assert main(["store", "ls", "--store", str(store),
                     "--fingerprint", fingerprint[:8]]) == 0
        assert "1 document(s)" in capsys.readouterr().out

    def test_ls_requires_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULT_STORE", raising=False)
        with pytest.raises(SystemExit, match="no store root"):
            main(["store", "ls"])

    def test_gc_refuses_without_filters(self, tmp_path):
        store = self.warm_store(tmp_path)
        with pytest.raises(SystemExit, match="refusing to gc"):
            main(["store", "gc", "--store", str(store)])

    def test_gc_dry_run_keeps_documents(self, capsys, tmp_path):
        store = self.warm_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "gc", "--store", str(store),
                     "--all", "--dry-run"]) == 0
        assert "would delete 4 document(s)" in capsys.readouterr().out
        assert len(list(store.rglob("*.json"))) == 4

    def test_gc_all_deletes_documents(self, capsys, tmp_path):
        store = self.warm_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "gc", "--store", str(store), "--all"]) == 0
        assert "deleted 4 document(s)" in capsys.readouterr().out
        assert main(["store", "ls", "--store", str(store)]) == 0
        assert "0 document(s)" in capsys.readouterr().out

    def test_gc_by_pack_name(self, capsys, tmp_path):
        """Pack-aware GC: collect one recorded pack's runs only."""
        csv = write_recording(tmp_path)
        store = tmp_path / "packstore"
        assert main(["compare", "--scale", "tiny", "--horizon", "2",
                     "--store", str(store), "--pack-csv", str(csv)]) == 0
        assert main(["compare", "--scale", "tiny", "--horizon", "2",
                     "--store", str(store)]) == 0
        from repro.experiments.runner import clear_cache

        clear_cache()
        capsys.readouterr()
        assert main(["store", "gc", "--store", str(store),
                     "--pack", "recording"]) == 0
        assert "deleted 4 document(s)" in capsys.readouterr().out
        assert main(["store", "ls", "--store", str(store)]) == 0
        assert "4 document(s)" in capsys.readouterr().out  # synthetic runs stay

    def test_migrate_to_segment_and_rerun_warm(
        self, capsys, tmp_path, monkeypatch
    ):
        store = self.warm_store(tmp_path)
        dest = tmp_path / "migrated"
        capsys.readouterr()
        assert main(["store", "migrate", "--store", str(store),
                     "--dest", str(dest), "--to", "segment"]) == 0
        out = capsys.readouterr().out
        assert "migrated 4 document(s)" in out
        assert "bit-identically" in out
        invocations = []
        original = SimulationEngine.run

        def counting_run(self):
            invocations.append(self.policy.name)
            return original(self)

        monkeypatch.setattr(SimulationEngine, "run", counting_run)
        assert main(["compare", "--scale", "tiny", "--horizon", "2",
                     "--store", str(dest)]) == 0
        assert invocations == []  # the migrated root serves every run

    def test_migrate_onto_itself_refused(self, tmp_path):
        store = self.warm_store(tmp_path)
        with pytest.raises(SystemExit, match="overlapping"):
            main(["store", "migrate", "--store", str(store),
                  "--dest", str(store), "--to", "segment"])

    def test_migrate_into_nested_dest_refused(self, tmp_path):
        store = self.warm_store(tmp_path)
        nested = store / "migrated"
        with pytest.raises(SystemExit, match="overlapping"):
            main(["store", "migrate", "--store", str(store),
                  "--dest", str(nested), "--to", "segment"])
        assert not nested.exists()  # refused before any write

    def test_compact_segment_store(self, capsys, tmp_path):
        store = self.warm_store(tmp_path, backend="segment")
        capsys.readouterr()
        assert main(["store", "compact", "--store", str(store)]) == 0
        assert "compacted to 4 live document(s)" in capsys.readouterr().out

    def test_compact_rejects_non_segment(self, tmp_path):
        store = self.warm_store(tmp_path)
        with pytest.raises(SystemExit, match="segment stores"):
            main(["store", "compact", "--store", str(store)])


class TestEnvStoreRoot:
    def test_store_backend_flag_applies_to_env_root(
        self, capsys, tmp_path, monkeypatch
    ):
        """--store-backend must not be dropped when the root comes
        from $REPRO_RESULT_STORE rather than --store."""
        store = tmp_path / "envstore"
        store.mkdir()
        monkeypatch.setenv("REPRO_RESULT_STORE", str(store))
        assert main(["compare", "--scale", "tiny", "--horizon", "2",
                     "--store-backend", "segment"]) == 0
        assert list(store.glob("segments/*.seg"))


class TestServiceFlags:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8123
        assert args.jobs == 1
        assert args.store is None

    def test_service_flag_default_off(self):
        args = build_parser().parse_args(["compare"])
        assert args.service is None

    def test_service_and_store_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                ["compare", "--scale", "tiny", "--horizon", "2",
                 "--service", "http://127.0.0.1:1",
                 "--store", str(tmp_path / "store")]
            )

    def test_unreachable_service_is_clean_usage_error(self):
        """Connection failures exit nonzero with a message, no traceback."""
        with pytest.raises(SystemExit, match="cannot reach") as excinfo:
            main(["compare", "--scale", "tiny", "--horizon", "2",
                  "--service", "http://127.0.0.1:9"])
        assert excinfo.value.code != 0

    def test_commands_run_against_live_daemon(self, capsys, tmp_path):
        from repro.experiments.orchestrator import Orchestrator, ResultStore
        from repro.service import ExperimentDaemon

        store_root = tmp_path / "daemon-store"
        daemon = ExperimentDaemon(
            Orchestrator(store=ResultStore(store_root, backend="segment"),
                         jobs=2)
        ).start()
        try:
            argv = ["compare", "--scale", "tiny", "--horizon", "2",
                    "--service", daemon.url, "--no-progress"]
            assert main(argv) == 0
            remote = capsys.readouterr().out
            assert "Proposed" in remote
            assert main(["compare", "--scale", "tiny", "--horizon", "2",
                         "--no-progress"]) == 0
            assert capsys.readouterr().out == remote
            # The daemon's own store holds the four comparison runs.
            assert main(["store", "ls", "--store", str(store_root)]) == 0
            assert "4 document(s)" in capsys.readouterr().out
        finally:
            daemon.close()

    def test_daemon_death_mid_command_is_clean_error(self, tmp_path):
        """A daemon that dies after the health check exits cleanly too."""
        from repro.experiments.orchestrator import Orchestrator, ResultStore
        from repro.service import ExperimentDaemon, ServiceClient
        from repro.service.client import ServiceError

        daemon = ExperimentDaemon(Orchestrator(store=ResultStore())).start()
        url = daemon.url
        daemon.close()
        client = ServiceClient(url, timeout_s=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.ping()

    def test_service_and_jobs_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="--jobs"):
            main(["compare", "--scale", "tiny", "--horizon", "2",
                  "--service", "http://127.0.0.1:1", "--jobs", "4"])

    def test_bad_service_url_is_clean_usage_error(self):
        with pytest.raises(SystemExit, match="http"):
            main(["compare", "--scale", "tiny", "--horizon", "2",
                  "--service", "http://127.0.0.1:80x0"])
