"""Comparison runner: caching semantics."""

import pytest

from repro.experiments.runner import (
    clear_cache,
    default_policies,
    run_comparison,
)
from repro.sim.config import scaled_config


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_alpha_distinguishes_cache_entries():
    config = scaled_config("tiny").with_horizon(3)
    a = run_comparison(config, alpha=0.3)
    b = run_comparison(config, alpha=0.7)
    assert a is not b


def test_horizon_distinguishes_cache_entries():
    base = scaled_config("tiny")
    a = run_comparison(base.with_horizon(3))
    b = run_comparison(base.with_horizon(4))
    assert a is not b
    assert a[0].horizon == 3
    assert b[0].horizon == 4


def test_seed_distinguishes_cache_entries():
    a = run_comparison(scaled_config("tiny", seed=1).with_horizon(3))
    b = run_comparison(scaled_config("tiny", seed=2).with_horizon(3))
    assert a is not b


def test_cache_bypass():
    config = scaled_config("tiny").with_horizon(3)
    a = run_comparison(config)
    b = run_comparison(config, use_cache=False)
    assert a is not b
    assert a[0].total_grid_cost_eur() == b[0].total_grid_cost_eur()


def test_default_policies_order_and_names():
    policies = default_policies()
    assert [policy.name for policy in policies] == [
        "Proposed",
        "Ener-aware",
        "Pri-aware",
        "Net-aware",
    ]


def test_run_replicated_comparison_shape():
    from repro.experiments.runner import run_replicated_comparison

    config = scaled_config("tiny").with_horizon(2)
    replicates = run_replicated_comparison(config, seeds=(0, 1))
    assert set(replicates) == {
        "Proposed",
        "Ener-aware",
        "Pri-aware",
        "Net-aware",
    }
    assert all(len(runs) == 2 for runs in replicates.values())
    # Different seeds, different workloads, same policy order.
    costs = [run.total_grid_cost_eur() for run in replicates["Proposed"]]
    assert costs[0] != costs[1]


def test_jobs_parallel_comparison_identical():
    from repro.experiments.orchestrator import Orchestrator, ResultStore
    from repro.experiments.runner import run_comparison

    config = scaled_config("tiny").with_horizon(3)
    serial = run_comparison(
        config, orchestrator=Orchestrator(store=ResultStore())
    )
    parallel = run_comparison(
        config, jobs=2, orchestrator=Orchestrator(store=ResultStore())
    )
    for a, b in zip(serial, parallel):
        assert a.policy_name == b.policy_name
        assert a.slots == b.slots
