"""CSV figure exports."""

import csv

import pytest

from repro.experiments.export import export_all
from repro.experiments.runner import run_comparison
from repro.sim.config import scaled_config


@pytest.fixture(scope="module")
def results():
    return run_comparison(scaled_config("tiny").with_horizon(6))


@pytest.fixture(scope="module")
def exported(results, tmp_path_factory):
    directory = tmp_path_factory.mktemp("exports")
    return export_all(results, directory), directory


def read_csv(path):
    with path.open(newline="") as handle:
        return list(csv.reader(handle))


class TestExportAll:
    def test_four_files_written(self, exported):
        paths, _ = exported
        assert sorted(path.name for path in paths) == [
            "fig1_cost.csv",
            "fig2_energy.csv",
            "fig3_response.csv",
            "summary.csv",
        ]

    def test_cost_columns(self, exported, results):
        paths, directory = exported
        rows = read_csv(directory / "fig1_cost.csv")
        assert rows[0] == ["slot"] + [r.policy_name for r in results]
        assert len(rows) == 1 + 6  # header + one row per slot

    def test_cost_values_match(self, exported, results):
        _, directory = exported
        rows = read_csv(directory / "fig1_cost.csv")
        measured = float(rows[1][1])
        assert measured == pytest.approx(
            float(results[0].hourly_cost_eur()[0]), rel=1e-5
        )

    def test_energy_rows(self, exported):
        _, directory = exported
        rows = read_csv(directory / "fig2_energy.csv")
        assert len(rows) == 7
        assert all(float(cell) >= 0.0 for cell in rows[1][1:])

    def test_response_pdf_rows(self, exported):
        _, directory = exported
        rows = read_csv(directory / "fig3_response.csv")
        assert rows[0][0] == "normalized_rt"
        assert len(rows) == 41  # header + 40 bins

    def test_summary_rows(self, exported, results):
        _, directory = exported
        rows = read_csv(directory / "summary.csv")
        assert len(rows) == 1 + len(results)
        assert rows[1][0] == "Proposed"
        cost = float(rows[1][1])
        assert cost == pytest.approx(results[0].total_grid_cost_eur(), rel=1e-5)

    def test_directory_created(self, results, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_all(results, target)
        assert (target / "summary.csv").exists()
