"""Workload cache in the orchestrator: identity, sharing, plumbing."""

import dataclasses
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunRequest,
    grid_requests,
)
from repro.experiments.runner import default_policies
from repro.experiments.sticky import StickyPool
from repro.sim.config import scaled_config
from repro.workload.packs import RecordedTraceSource, TracePack, get_pack


def tiny(horizon: int = 3, seed: int = 0):
    return scaled_config("tiny", seed=seed).with_horizon(horizon)


def request(policy_index: int = 1, **kwargs):
    return RunRequest(
        config=kwargs.pop("config", tiny()),
        policy=kwargs.pop("policy", None)
        or default_policies()[policy_index],
        **kwargs,
    )


def big_recorded_pack(n_vms: int = 200):
    """A recorded pack whose matrix crosses the shared-memory floor."""
    rng = np.random.default_rng(17)
    matrix = rng.uniform(0.05, 0.95, size=(n_vms, 24 * 30))
    assert matrix.nbytes >= 1 << 20
    return TracePack(
        name="rec-big",
        source=RecordedTraceSource(utilization=matrix, steps_per_slot=30),
    )


def slots_of(artifacts):
    return [artifact.result.slots for artifact in artifacts]


class TestByteIdentity:
    """Cached, shared-memory and from-scratch paths emit equal runs."""

    def grid(self):
        return grid_requests([tiny()], lambda _: default_policies())

    def test_pooled_cached_equals_cache_off_equals_serial(self):
        with Orchestrator(jobs=2, workload_cache=4) as cached:
            warm = cached.run_many(self.grid())
            stats = cached.workload_cache_stats()
        with Orchestrator(jobs=2, workload_cache=0) as plain:
            cold = plain.run_many(self.grid())
        serial = Orchestrator(jobs=1, workload_cache=4).run_many(self.grid())
        assert slots_of(warm) == slots_of(cold) == slots_of(serial)
        assert [a.fingerprint for a in warm] == [
            a.fingerprint for a in cold
        ] == [a.fingerprint for a in serial]
        assert stats["enabled"] and stats["workers"] >= 1
        assert stats["misses"] >= 1

    def test_scenario_pack_identity_serial_cached(self):
        pack = get_pack("scenario-hpc")
        requests = [
            request(config=tiny(), policy=policy, pack=pack)
            for policy in default_policies()[:3]
        ]
        cached = Orchestrator(jobs=1, workload_cache=4)
        warm = cached.run_many(requests)
        cold = Orchestrator(jobs=1, workload_cache=0).run_many(
            [
                request(config=tiny(), policy=policy, pack=pack)
                for policy in default_policies()[:3]
            ]
        )
        assert slots_of(warm) == slots_of(cold)
        stats = cached.workload_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_shared_memory_pack_identity_and_engagement(self):
        pack = big_recorded_pack()
        requests = [
            request(config=tiny(2), policy=policy, pack=pack)
            for policy in default_policies()[1:3]
        ]
        with Orchestrator(jobs=2, workload_cache=4) as cached:
            warm = cached.run_many(requests)
            shared = cached.workload_cache_stats()["shared"]
        with Orchestrator(jobs=2, workload_cache=0) as plain:
            cold = plain.run_many(
                [
                    request(config=tiny(2), policy=policy, pack=pack)
                    for policy in default_policies()[1:3]
                ]
            )
        assert slots_of(warm) == slots_of(cold)
        assert shared["segments"] == 1
        assert shared["bytes"] == pack.source.utilization.nbytes


class TestSharing:
    def test_serial_runs_share_one_materialization(self):
        orchestrator = Orchestrator(jobs=1, use_store=False)
        for policy in default_policies():
            orchestrator.run(request(policy=policy))
        stats = orchestrator.workload_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == len(default_policies()) - 1
        assert stats["entries"] == 1
        assert stats["slot_hits"] > 0

    def test_concurrent_submissions_share_one_materialization(self):
        orchestrator = Orchestrator(jobs=1, use_store=False)
        orchestrator.run(request())  # warm the key
        with ThreadPoolExecutor(4) as pool:
            artifacts = list(
                pool.map(
                    lambda policy: orchestrator.run(request(policy=policy)),
                    default_policies(),
                )
            )
        stats = orchestrator.workload_cache_stats()
        assert stats["misses"] == 1  # every thread hit the warm entry
        serial = [
            Orchestrator(workload_cache=0).run(request(policy=policy))
            for policy in default_policies()
        ]
        assert slots_of(artifacts) == slots_of(serial)

    def test_lru_eviction_with_cap_one(self):
        orchestrator = Orchestrator(
            jobs=1, use_store=False, workload_cache=1
        )
        alternating = [
            request(config=tiny(2, seed=run % 2)) for run in range(4)
        ]
        for req in alternating:
            orchestrator.run(req)
        stats = orchestrator.workload_cache_stats()
        assert stats["entries"] == 1  # cap held
        assert stats["misses"] == 4  # every alternation rebuilt
        assert stats["hits"] == 0

    def test_seed_override_splits_keys(self):
        orchestrator = Orchestrator(jobs=1, use_store=False)
        orchestrator.run(request())
        orchestrator.run(request(seed=5))
        assert orchestrator.workload_cache_stats()["misses"] == 2


class TestPlumbing:
    def test_cache_off_uses_plain_pool(self):
        with Orchestrator(jobs=2, workload_cache=0) as orchestrator:
            assert isinstance(
                orchestrator._ensure_pool(), ProcessPoolExecutor
            )
            assert orchestrator._publisher is None

    def test_cache_on_uses_sticky_pool_and_publisher(self):
        with Orchestrator(jobs=2, workload_cache=4) as orchestrator:
            assert isinstance(orchestrator._ensure_pool(), StickyPool)
            assert orchestrator._publisher is not None

    def test_close_releases_pool_and_publisher(self):
        orchestrator = Orchestrator(jobs=2, workload_cache=4)
        orchestrator._ensure_pool()
        orchestrator.close()
        assert orchestrator._pool is None
        assert orchestrator._publisher is None

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "0")
        assert Orchestrator().workload_cache == 0
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "7")
        assert Orchestrator().workload_cache == 7
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "nonsense")
        assert (
            Orchestrator().workload_cache
            == Orchestrator(workload_cache=None).workload_cache
            == 4
        )

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "9")
        assert Orchestrator(workload_cache=2).workload_cache == 2

    def test_budget_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE_MB", "16")
        assert Orchestrator().slot_budget_bytes == 16 << 20

    def test_with_jobs_carries_cache_setting(self):
        orchestrator = Orchestrator(jobs=1, workload_cache=2)
        assert orchestrator.with_jobs(3).workload_cache == 2

    def test_stats_shape_when_disabled(self):
        stats = Orchestrator(workload_cache=0).workload_cache_stats()
        assert stats["enabled"] is False
        assert stats["hits"] == stats["misses"] == 0
        assert "shared" not in stats

    def test_cache_never_joins_fingerprint(self):
        assert (
            request().fingerprint()
            == RunRequest(
                config=tiny(), policy=default_policies()[1]
            ).fingerprint()
        )
        orchestrators = [
            Orchestrator(workload_cache=0),
            Orchestrator(workload_cache=8),
        ]
        fingerprints = {
            orchestrator.run(request(), use_store=False).fingerprint
            for orchestrator in orchestrators
        }
        assert len(fingerprints) == 1


class TestSubmitMany:
    def test_futures_return_in_request_order(self):
        requests = [
            request(config=tiny(2, seed=seed), policy=policy)
            for seed in (0, 1)
            for policy in default_policies()[:2]
        ]
        with Orchestrator(jobs=2, use_store=False) as orchestrator:
            futures = orchestrator.submit_many(requests)
            assert [f.request for f in futures] == requests
            artifacts = [future.result(timeout=300) for future in futures]
        serial = [
            Orchestrator(workload_cache=0).run(req, use_store=False)
            for req in requests
        ]
        assert slots_of(artifacts) == slots_of(serial)
