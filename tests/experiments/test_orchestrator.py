"""Orchestrator: fingerprints, result store, parallel equivalence."""

import dataclasses
import json

import numpy as np

import pytest

from repro.experiments.orchestrator import (
    EngineOptions,
    Orchestrator,
    ResultStore,
    RunRequest,
    canonical,
    grid_requests,
)
from repro.experiments.runner import default_policies
from repro.sim.config import scaled_config
from repro.sim.state import PlacementPolicy


def tiny(horizon: int = 3, seed: int = 0):
    return scaled_config("tiny", seed=seed).with_horizon(horizon)


def request(policy_index: int = 1, **kwargs):
    return RunRequest(
        config=kwargs.pop("config", tiny()),
        policy=kwargs.pop(
            "policy", None
        ) or default_policies(kwargs.pop("alpha", 0.5))[policy_index],
        **kwargs,
    )


class TestFingerprint:
    def test_stable_across_equal_requests(self):
        assert request().fingerprint() == request().fingerprint()

    def test_policy_distinguishes(self):
        assert request(1).fingerprint() != request(2).fingerprint()

    def test_alpha_distinguishes_proposed(self):
        assert (
            request(0, alpha=0.3).fingerprint()
            != request(0, alpha=0.7).fingerprint()
        )

    def test_seed_override_distinguishes(self):
        assert request().fingerprint() != request(seed=5).fingerprint()

    def test_seed_override_matching_config_seed_is_identity(self):
        assert request().fingerprint() == request(seed=0).fingerprint()

    def test_horizon_distinguishes(self):
        assert (
            request(config=tiny(3)).fingerprint()
            != request(config=tiny(4)).fingerprint()
        )

    def test_spec_change_distinguishes(self):
        config = tiny()
        specs = tuple(
            dataclasses.replace(spec, battery_kwh=spec.battery_kwh * 2.0)
            for spec in config.specs
        )
        scaled = dataclasses.replace(config, specs=specs)
        assert (
            request(config=config).fingerprint()
            != request(config=scaled).fingerprint()
        )

    def test_engine_options_distinguish(self):
        assert (
            request().fingerprint()
            != request(options=EngineOptions(clairvoyant=True)).fingerprint()
        )

    def test_descriptor_is_json_stable(self):
        descriptor = request(0).descriptor()
        assert json.dumps(descriptor, sort_keys=True) == json.dumps(
            request(0).descriptor(), sort_keys=True
        )


class TestCanonical:
    def test_scalars_pass_through(self):
        assert canonical(1.5) == 1.5
        assert canonical("x") == "x"
        assert canonical(None) is None

    def test_dataclass_includes_class_name(self):
        tree = canonical(EngineOptions())
        assert tree["__class__"] == "EngineOptions"
        assert tree["validate"] is True

    def test_function_canonicalized_by_qualname(self):
        from repro.core.local import allocate_first_fit

        tree = canonical(allocate_first_fit)
        assert "allocate_first_fit" in tree["__function__"]

    def test_config_canonicalizes(self):
        tree = canonical(tiny())
        assert tree["__class__"] == "ExperimentConfig"
        assert len(tree["specs"]) == 3


class TestResultStore:
    def test_memory_roundtrip(self):
        store = ResultStore()
        artifact = Orchestrator(store=store).run(request())
        assert artifact.source == "computed"
        again = Orchestrator(store=store).run(request())
        assert again.source == "memory"
        assert again.result is artifact.result

    def test_disk_roundtrip_bit_identical(self, tmp_path):
        cold = Orchestrator(store=ResultStore(tmp_path)).run(request())
        warm = Orchestrator(store=ResultStore(tmp_path)).run(request())
        assert warm.source == "disk"
        assert warm.result.slots == cold.result.slots
        assert warm.result.summary() == cold.result.summary()

    def test_disk_document_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        artifact = Orchestrator(store=store).run(request())
        path = store.path_for(artifact.fingerprint)
        assert path.exists()
        assert path.parent.name == artifact.fingerprint[:2]
        document = json.loads(path.read_text())
        assert document["fingerprint"] == artifact.fingerprint
        assert document["request"]["policy"]["name"] == "Ener-aware"

    def test_corrupt_document_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        artifact = Orchestrator(store=store).run(request())
        store.path_for(artifact.fingerprint).write_text("{not json")
        fresh = ResultStore(tmp_path)
        assert fresh.fetch(artifact.fingerprint) is None
        assert fresh.misses == 1

    def test_clear_memory_keeps_disk(self, tmp_path):
        store = ResultStore(tmp_path)
        orchestrator = Orchestrator(store=store)
        artifact = orchestrator.run(request())
        store.clear_memory()
        assert orchestrator.run(request()).source == "disk"
        assert artifact.fingerprint in store

    def test_stats_counters(self):
        store = ResultStore()
        orchestrator = Orchestrator(store=store)
        orchestrator.run(request())
        orchestrator.run(request())
        stats = store.stats()
        assert stats["misses"] == 1
        assert stats["hits_memory"] == 1
        assert stats["writes"] == 1


class TestOrchestrator:
    def test_parallel_matches_serial_exactly(self):
        requests = grid_requests([tiny()], lambda _: default_policies())
        serial = Orchestrator(jobs=1).run_many(requests)
        parallel = Orchestrator(jobs=2).run_many(
            grid_requests([tiny()], lambda _: default_policies())
        )
        for a, b in zip(serial, parallel):
            assert a.result.policy_name == b.result.policy_name
            assert a.result.slots == b.result.slots

    def test_duplicate_requests_simulated_once(self):
        store = ResultStore()
        artifacts = Orchestrator(store=store).run_many([request(), request()])
        assert store.stats()["writes"] == 1
        assert artifacts[0].result is artifacts[1].result

    def test_use_store_false_recomputes(self):
        store = ResultStore()
        orchestrator = Orchestrator(store=store)
        first = orchestrator.run(request())
        second = orchestrator.run(request(), use_store=False)
        assert second.source == "computed"
        assert second.result is not first.result
        assert second.result.slots == first.result.slots

    def test_order_preserved(self):
        requests = grid_requests([tiny()], lambda _: default_policies())
        artifacts = Orchestrator().run_many(requests)
        assert [a.result.policy_name for a in artifacts] == [
            "Proposed",
            "Ener-aware",
            "Pri-aware",
            "Net-aware",
        ]

    def test_from_cache_flag(self):
        orchestrator = Orchestrator()
        assert orchestrator.run(request()).from_cache is False
        assert orchestrator.run(request()).from_cache is True


class TestGridRequests:
    def test_crosses_configs_seeds_policies(self):
        configs = [tiny(), tiny(seed=1)]
        requests = grid_requests(
            configs, lambda _: default_policies(), seeds=[0, 1, 2]
        )
        assert len(requests) == 2 * 3 * 4
        assert requests[0].seed == 0
        assert requests[-1].config.seed == 1

    def test_fresh_policy_instances_per_cell(self):
        requests = grid_requests(
            [tiny()], lambda _: default_policies(), seeds=[0, 1]
        )
        policies = [req.policy for req in requests]
        assert len(set(map(id, policies))) == len(policies)


class TestUseStoreDefault:
    def test_orchestrator_level_bypass(self):
        store = ResultStore()
        first = Orchestrator(store=store).run(request())
        bypass = Orchestrator(store=store, use_store=False).run(request())
        assert bypass.source == "computed"
        assert bypass.result is not first.result

    def test_explicit_argument_overrides_default(self):
        store = ResultStore()
        orchestrator = Orchestrator(store=store, use_store=False)
        orchestrator.run(request())
        assert orchestrator.run(request(), use_store=True).source == "memory"


class TestPackFingerprints:
    def recorded(self, tweak: float = 0.0, name: str = "rec"):
        from repro.workload.packs import RecordedTraceSource, TracePack

        rng = np.random.default_rng(8)
        matrix = rng.uniform(0.1, 0.8, size=(3, 60))
        matrix[0, 0] += tweak
        return TracePack(
            name=name,
            source=RecordedTraceSource(utilization=matrix, steps_per_slot=30),
        )

    def test_pack_distinguishes_from_default(self):
        assert request().fingerprint() != request(pack=self.recorded()).fingerprint()

    def test_same_content_same_fingerprint(self):
        assert (
            request(pack=self.recorded()).fingerprint()
            == request(pack=self.recorded()).fingerprint()
        )

    def test_rename_keeps_fingerprint(self):
        """Pack names are labels, not content: renames stay cache-warm."""
        assert (
            request(pack=self.recorded(name="a")).fingerprint()
            == request(pack=self.recorded(name="b")).fingerprint()
        )

    def test_content_change_changes_fingerprint(self):
        assert (
            request(pack=self.recorded()).fingerprint()
            != request(pack=self.recorded(tweak=0.01)).fingerprint()
        )

    def test_pack_descriptor_stored(self):
        descriptor = request(pack=self.recorded()).descriptor()
        assert descriptor["pack"]["kind"] == "recorded"
        assert descriptor["pack"]["sha256"] == self.recorded().sha256

    def test_grid_requests_thread_pack(self):
        pack = self.recorded()
        requests = grid_requests(
            [tiny()], lambda _: default_policies(), seeds=[0, 1], pack=pack
        )
        assert all(req.pack is pack for req in requests)

    def test_recorded_pack_roundtrips_through_store(self, tmp_path):
        pack = self.recorded()
        cold = Orchestrator(store=ResultStore(tmp_path)).run(request(pack=pack))
        warm = Orchestrator(store=ResultStore(tmp_path)).run(
            request(pack=self.recorded())
        )
        assert warm.source == "disk"
        assert warm.result.slots == cold.result.slots

    def test_parallel_workers_receive_pack(self):
        pack = self.recorded()
        serial = Orchestrator(store=ResultStore(), jobs=1).run_many(
            [request(index, pack=pack) for index in range(2)]
        )
        parallel = Orchestrator(store=ResultStore(), jobs=2).run_many(
            [request(index, pack=pack) for index in range(2)]
        )
        for left, right in zip(serial, parallel):
            assert left.result.slots == right.result.slots


class ExplodingPolicy(PlacementPolicy):
    """Raises on first placement; picklable for pool workers."""

    name = "Exploding"

    def place(self, observation):
        raise RuntimeError("boom")


class TestParallelFailureIsolation:
    def test_completed_runs_persist_when_a_worker_fails(self, tmp_path):
        store = ResultStore(tmp_path)
        orchestrator = Orchestrator(store=store, jobs=2)
        batch = [request(1), request(2), request(policy=ExplodingPolicy())]
        with pytest.raises(RuntimeError, match="boom"):
            orchestrator.run_many(batch)
        # The two healthy runs streamed into the disk store before the
        # failure re-raised; a retry resolves them without simulating.
        assert batch[0].fingerprint() in store
        assert batch[1].fingerprint() in store
        retry = Orchestrator(store=ResultStore(tmp_path)).run(request(1))
        assert retry.source == "disk"


class TestWithJobs:
    def test_same_count_returns_self(self):
        orchestrator = Orchestrator(jobs=2)
        assert orchestrator.with_jobs(2) is orchestrator

    def test_new_count_shares_store_and_options(self):
        orchestrator = Orchestrator(jobs=1, use_store=False)
        rewrapped = orchestrator.with_jobs(4)
        assert rewrapped.jobs == 4
        assert rewrapped.store is orchestrator.store
        assert rewrapped.use_store is False
