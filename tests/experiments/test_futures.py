"""Futures-based orchestration: submit, as_resolved, progress, errors."""

import time

import pytest

from repro.baselines import EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy
from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunFuture,
    RunRequest,
    run_meta,
)
from repro.experiments.runner import default_policies
from repro.sim.config import scaled_config
from repro.sim.state import PlacementPolicy
from repro.workload.packs import RecordedTraceSource, TracePack

import numpy as np


def tiny(horizon: int = 2, seed: int = 0):
    return scaled_config("tiny", seed=seed).with_horizon(horizon)


def request(policy_index: int = 1, **kwargs):
    return RunRequest(
        config=kwargs.pop("config", tiny()),
        policy=kwargs.pop("policy", None)
        or default_policies()[policy_index],
        **kwargs,
    )


class StalledPolicy(PriAwarePolicy):
    """Sleeps every slot: a deliberately slow worker (picklable)."""

    name = "Stalled"

    def place(self, observation):
        time.sleep(1.5)
        return super().place(observation)


class ExplodingPolicy(PlacementPolicy):
    """Raises on first placement; picklable for pool workers."""

    name = "Exploding"

    def place(self, observation):
        raise RuntimeError("boom")


class TestSubmit:
    def test_serial_submit_returns_resolved_future(self):
        future = Orchestrator().submit(request())
        assert isinstance(future, RunFuture)
        assert future.done()
        artifact = future.result()
        assert artifact.source == "computed"
        assert artifact.fingerprint == future.fingerprint

    def test_cache_hit_resolves_immediately(self):
        orchestrator = Orchestrator()
        orchestrator.run(request())
        future = orchestrator.submit(request())
        assert future.done()
        assert future.result().source == "memory"
        assert future.exception() is None

    def test_submit_records_into_store(self, tmp_path):
        store = ResultStore(tmp_path)
        future = Orchestrator(store=store).submit(request())
        assert future.fingerprint in store

    def test_parallel_submit_streams_into_store_before_done(self, tmp_path):
        store = ResultStore(tmp_path)
        with Orchestrator(store=store, jobs=2) as orchestrator:
            future = orchestrator.submit(request())
            artifact = future.result()
        # Persistence callbacks run before the future resolves.
        assert artifact.fingerprint in store
        retry = Orchestrator(store=ResultStore(tmp_path)).run(request())
        assert retry.source == "disk"

    def test_inflight_deduplication(self):
        with Orchestrator(jobs=2) as orchestrator:
            first = orchestrator.submit(request())
            second = orchestrator.submit(request())
            assert first.result().result is second.result().result
        assert orchestrator.store.stats()["writes"] == 1

    def test_submit_many_shares_duplicate_futures(self):
        orchestrator = Orchestrator()
        futures = orchestrator.submit_many([request(), request()])
        assert futures[0] is futures[1]
        assert orchestrator.store.stats()["writes"] == 1


class TestAsResolved:
    def test_yields_in_completion_order_while_misses_execute(self):
        """The stalled-worker guarantee: fast artifacts stream out
        while a slow run is still executing; nothing waits for the
        whole batch."""
        slow = request(policy=StalledPolicy())
        fast = request(1)
        with Orchestrator(jobs=2) as orchestrator:
            futures = orchestrator.submit_many([slow, fast])
            stream = orchestrator.as_resolved(futures)
            first = next(stream)
            # The fast run resolved first -- and the stalled one is
            # genuinely still executing at this moment.
            assert first.fingerprint == futures[1].fingerprint
            assert not futures[0].done()
            rest = list(stream)
        assert [artifact.fingerprint for artifact in rest] == [
            futures[0].fingerprint
        ]

    def test_cache_hits_yield_before_pending_misses(self):
        with Orchestrator(jobs=2) as orchestrator:
            orchestrator.run(request(1))
            futures = orchestrator.submit_many(
                [request(policy=StalledPolicy()), request(1)]
            )
            first = next(orchestrator.as_resolved(futures))
            assert first.source == "memory"
            futures[0].result()  # drain

    def test_duplicates_yield_once(self):
        orchestrator = Orchestrator()
        futures = orchestrator.submit_many([request(), request()])
        artifacts = list(orchestrator.as_resolved(futures))
        assert len(artifacts) == 1

    def test_failed_run_raises_in_stream(self):
        with Orchestrator(jobs=2) as orchestrator:
            futures = orchestrator.submit_many(
                [request(policy=ExplodingPolicy())]
            )
            with pytest.raises(RuntimeError, match="boom"):
                list(orchestrator.as_resolved(futures))


class TestRunManyWrapper:
    def test_results_identical_to_serial_reference(self):
        """The futures-backed run_many stays byte-identical."""
        requests = [request(index) for index in range(3)]
        serial = [
            Orchestrator().run(req).result for req in requests
        ]
        with Orchestrator(jobs=2) as orchestrator:
            batch = orchestrator.run_many(
                [request(index) for index in range(3)]
            )
        for reference, artifact in zip(serial, batch):
            assert artifact.result.policy_name == reference.policy_name
            assert artifact.result.slots == reference.slots
            assert (
                artifact.result.to_dict() == reference.to_dict()
            )

    def test_order_preserved_despite_completion_order(self):
        slow_first = [request(policy=StalledPolicy()), request(1)]
        with Orchestrator(jobs=2) as orchestrator:
            artifacts = orchestrator.run_many(slow_first)
        assert artifacts[0].result.policy_name == "Stalled"
        assert artifacts[1].result.policy_name == "Ener-aware"

    def test_run_delegates_to_submit(self):
        artifact = Orchestrator().run(request())
        assert artifact.source == "computed"


class TestProgress:
    def test_progress_streams_per_completion(self):
        calls = []
        orchestrator = Orchestrator(progress=lambda d, t: calls.append((d, t)))
        orchestrator.run_many([request(1), request(2), request(3)])
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_progress_counts_unique_runs(self):
        calls = []
        orchestrator = Orchestrator(progress=lambda d, t: calls.append((d, t)))
        orchestrator.run_many([request(1), request(1), request(2)])
        assert calls == [(1, 2), (2, 2)]

    def test_progress_fires_while_stalled_worker_runs(self):
        snapshots = []
        with Orchestrator(jobs=2) as orchestrator:
            slow = request(policy=StalledPolicy())
            fast = request(1)
            futures = orchestrator.submit_many([slow, fast])
            orchestrator.progress = lambda done, total: snapshots.append(
                (done, total, futures[0].done())
            )
            orchestrator.run_many([slow, fast])
        # The first progress tick arrived before the stalled run ended.
        assert snapshots[0][:2] == (1, 2)
        assert snapshots[0][2] is False
        assert snapshots[-1][:2] == (2, 2)

    def test_with_jobs_carries_progress(self):
        callback = lambda done, total: None  # noqa: E731
        orchestrator = Orchestrator(jobs=1, progress=callback)
        assert orchestrator.with_jobs(3).progress is callback


class TestRunMeta:
    def test_synthetic_run_shards_by_config_name(self):
        meta = run_meta(request())
        assert meta["shard"] == "tiny"
        assert "pack" not in meta

    def test_pack_run_shards_by_pack_name(self):
        rng = np.random.default_rng(3)
        pack = TracePack(
            name="My Recorded Pack!",
            source=RecordedTraceSource(
                utilization=rng.uniform(0.1, 0.8, size=(3, 60)),
                steps_per_slot=30,
            ),
        )
        meta = run_meta(request(pack=pack))
        assert meta["shard"] == "My-Recorded-Pack"
        assert meta["pack"]["name"] == "My Recorded Pack!"
        assert meta["pack"]["sha256"] == pack.sha256
        assert meta["pack"]["version"] == pack.version

    def test_meta_travels_to_disk_documents(self, tmp_path):
        store = ResultStore(tmp_path)
        Orchestrator(store=store).run(request())
        ((_, document),) = list(store.documents())
        assert document["meta"]["shard"] == "tiny"


class TestLifecycle:
    def test_close_is_idempotent(self):
        orchestrator = Orchestrator(jobs=2)
        orchestrator.run_many([request(1), request(2)])
        orchestrator.close()
        orchestrator.close()

    def test_context_manager_closes_pool(self):
        with Orchestrator(jobs=2) as orchestrator:
            orchestrator.run_many([request(1), request(2)])
        assert orchestrator._pool is None

    def test_pool_survives_across_batches(self):
        with Orchestrator(jobs=2) as orchestrator:
            orchestrator.run_many([request(1)])
            pool = orchestrator._pool
            orchestrator.run_many([request(2)])
            assert orchestrator._pool is pool
