"""Per-figure experiment reports on a shared tiny run."""

import numpy as np
import pytest

from repro.experiments.figures import (
    PAPER_CLAIMS,
    fig1_operational_cost,
    fig2_energy,
    fig3_response_time,
    fig4_totals,
    fig5_cost_performance,
    fig6_energy_performance,
    render,
    table1_rows,
)
from repro.experiments.runner import clear_cache, default_policies, run_comparison
from repro.sim.config import paper_config, scaled_config


@pytest.fixture(scope="module")
def results():
    return run_comparison(scaled_config("tiny").with_horizon(8))


class TestRunner:
    def test_four_policies_in_order(self, results):
        assert [result.policy_name for result in results] == [
            "Proposed",
            "Ener-aware",
            "Pri-aware",
            "Net-aware",
        ]

    def test_cache_returns_same_objects(self):
        config = scaled_config("tiny").with_horizon(8)
        first = run_comparison(config)
        second = run_comparison(config)
        assert all(a is b for a, b in zip(first, second))

    def test_cache_clear(self):
        config = scaled_config("tiny").with_horizon(8)
        first = run_comparison(config)
        clear_cache()
        second = run_comparison(config)
        assert all(a is not b for a, b in zip(first, second))

    def test_default_policies_alpha(self):
        policies = default_policies(alpha=0.8)
        assert policies[0].force_params.alpha == 0.8


class TestTable1:
    def test_paper_rows_match_table(self):
        report = table1_rows(paper_config())
        measured = {row["dc"]: row for row in report["measured"]}
        for paper_row in report["paper"]:
            row = measured[paper_row["dc"]]
            assert row["servers"] == paper_row["servers"]
            assert row["pv_kwp"] == paper_row["pv_kwp"]
            assert row["battery_kwh"] == paper_row["battery_kwh"]

    def test_scaled_keeps_site_names(self):
        report = table1_rows(scaled_config("tiny"))
        assert [row["site"] for row in report["measured"]] == [
            "Lisbon",
            "Zurich",
            "Helsinki",
        ]


class TestFigureReports:
    def test_fig1_structure(self, results):
        report = fig1_operational_cost(results)
        assert set(report["normalized_cost"]) == {
            "Proposed",
            "Ener-aware",
            "Pri-aware",
            "Net-aware",
        }
        assert max(report["normalized_cost"].values()) == pytest.approx(1.0)
        assert set(report["measured_savings_pct"]) == set(
            PAPER_CLAIMS["fig1_cost_savings_pct"]
        )

    def test_fig1_hourly_series_lengths(self, results):
        report = fig1_operational_cost(results)
        for series in report["hourly_cost_eur"].values():
            assert len(series) == 8

    def test_fig2_totals_positive(self, results):
        report = fig2_energy(results)
        for total in report["measured_totals_gj"].values():
            assert total > 0.0

    def test_fig2_relative_normalized_to_proposed(self, results):
        report = fig2_energy(results)
        assert report["measured_relative"]["Proposed"] == pytest.approx(1.0)

    def test_fig3_pdfs_normalized(self, results):
        report = fig3_response_time(results, bins=10)
        for centers, density in report["pdfs"].values():
            if centers.size:
                width = centers[1] - centers[0]
                assert float((density * width).sum()) == pytest.approx(
                    1.0, rel=1e-6
                )

    def test_fig3_stats_normalized_by_common_upper(self, results):
        report = fig3_response_time(results)
        worsts = [stats["worst"] for stats in report["stats"].values()]
        assert max(worsts) == pytest.approx(1.0)

    def test_fig4_keys(self, results):
        report = fig4_totals(results)
        assert set(report["measured_pct"]) == {"cost", "energy", "performance"}

    def test_fig5_tradeoffs(self, results):
        report = fig5_cost_performance(results)
        assert set(report["measured_vs_pri"]) == {"cost", "performance"}
        assert set(report["measured_vs_net"]) == {"cost", "performance"}

    def test_fig6_tradeoffs(self, results):
        report = fig6_energy_performance(results)
        assert set(report["measured_vs_ener"]) == {"energy", "performance"}
        assert set(report["measured_vs_net"]) == {"energy", "performance"}

    def test_missing_policy_raises(self, results):
        with pytest.raises(KeyError):
            fig1_operational_cost(results[:2])

    def test_render_all_reports(self, results):
        for report in (
            fig1_operational_cost(results),
            fig2_energy(results),
            fig3_response_time(results),
            fig4_totals(results),
            fig5_cost_performance(results),
            fig6_energy_performance(results),
        ):
            text = render(report)
            assert report["id"] in text
