"""Scenario study helpers."""

import pytest

from repro.experiments.scenarios import (
    SCENARIO_MIXES,
    format_outcomes,
    run_scenarios,
    scenario_config,
)
from repro.sim.config import scaled_config
from repro.workload.arrivals import VMPopulation
from repro.workload.vm import AppType


@pytest.fixture(scope="module")
def base():
    return scaled_config("tiny").with_horizon(4)


class TestScenarioConfig:
    def test_mix_applied(self, base):
        config = scenario_config(base, "hpc")
        assert config.arrival_model.app_mix == SCENARIO_MIXES["hpc"]
        assert config.name.endswith("-hpc")

    def test_unknown_rejected(self, base):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_config(base, "quantum")

    def test_mix_shifts_population(self, base):
        hpc = scenario_config(base, "hpc")
        web = scenario_config(base, "scale-out")
        hpc_pop = VMPopulation.generate(hpc.arrival_model, 24, seed=0)
        web_pop = VMPopulation.generate(web.arrival_model, 24, seed=0)

        def hpc_fraction(population):
            vms = population.vms
            return sum(vm.app_type is AppType.HPC for vm in vms) / len(vms)

        assert hpc_fraction(hpc_pop) > hpc_fraction(web_pop)


class TestRunScenarios:
    def test_outcomes_per_scenario(self, base):
        outcomes = run_scenarios(base, scenarios=("mixed",))
        assert [outcome.scenario for outcome in outcomes] == ["mixed"]
        outcome = outcomes[0]
        assert outcome.proposed_cost_eur > 0.0
        assert outcome.best_baseline_cost_eur > 0.0

    def test_format(self, base):
        outcomes = run_scenarios(base, scenarios=("mixed",))
        table = format_outcomes(outcomes)
        assert "mixed" in table
        assert "saving %" in table.splitlines()[0]


class TestAppMixValidation:
    def test_negative_weight_rejected(self):
        from repro.workload.vm import sample_app_type
        import numpy as np

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_app_type(rng, {AppType.WEB: -1.0, AppType.HPC: 2.0})

    def test_zero_sum_rejected(self):
        from repro.workload.vm import sample_app_type
        import numpy as np

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_app_type(rng, {AppType.WEB: 0.0})

    def test_unnormalized_weights_accepted(self):
        from repro.workload.vm import sample_app_type
        import numpy as np

        rng = np.random.default_rng(0)
        draws = {
            sample_app_type(rng, {AppType.WEB: 3.0, AppType.HPC: 1.0})
            for _ in range(50)
        }
        assert draws <= {AppType.WEB, AppType.HPC}


class TestScenarioPacks:
    def test_scenario_pack_derives_mix_and_name(self):
        from repro.experiments.scenarios import scenario_pack
        from repro.workload.packs import default_pack

        derived = scenario_pack(default_pack(), "hpc")
        assert derived.name == "synthetic-hpc"
        assert derived.app_mix == SCENARIO_MIXES["hpc"]
        assert derived.sha256 != default_pack().sha256

    def test_scenario_pack_unknown_scenario(self):
        from repro.experiments.scenarios import scenario_pack
        from repro.workload.packs import default_pack

        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_pack(default_pack(), "nope")

    def test_run_scenarios_with_pack(self, tiny_config):
        from repro.experiments.orchestrator import Orchestrator
        from repro.experiments.scenarios import run_scenarios
        from repro.workload.packs import default_pack

        config = tiny_config.with_horizon(2)
        outcomes = run_scenarios(
            config,
            scenarios=("scale-out", "hpc"),
            orchestrator=Orchestrator(),
            pack=default_pack(),
        )
        assert [outcome.scenario for outcome in outcomes] == ["scale-out", "hpc"]
        assert all(outcome.proposed_energy_gj > 0 for outcome in outcomes)
