"""Green controller: source selection rules, conservation, cost."""

import numpy as np
import pytest

from tests.conftest import make_specs
from repro.core.green import GreenController, GreenSlotResult
from repro.datacenter.datacenter import Datacenter
from repro.units import SECONDS_PER_HOUR


@pytest.fixture
def dc(specs) -> Datacenter:
    return Datacenter(specs[0], index=0, seed=1)


@pytest.fixture
def controller() -> GreenController:
    return GreenController(step_s=60.0)


def flat_power(watts: float, steps: int = 60) -> np.ndarray:
    return np.full(steps, watts)


def peak_slot(dc) -> int:
    """A slot inside the site's local-time peak window with no sun."""
    for slot in range(24):
        mid = (slot + 0.5) * SECONDS_PER_HOUR
        if dc.spec.tariff.is_peak(mid) and float(dc.pv.power_watts(mid)) == 0.0:
            return slot
    raise AssertionError("no dark peak slot found")


def offpeak_slot(dc) -> int:
    for slot in range(24):
        mid = (slot + 0.5) * SECONDS_PER_HOUR
        if not dc.spec.tariff.is_peak(mid) and float(dc.pv.power_watts(mid)) == 0.0:
            return slot
    raise AssertionError("no dark off-peak slot found")


class TestRules:
    def test_peak_discharges_battery(self, dc, controller):
        slot = peak_slot(dc)
        soc_before = dc.battery.soc_joules
        result = controller.run_slot(dc, slot, flat_power(500.0))
        assert result.battery_discharged > 0.0
        assert dc.battery.soc_joules < soc_before

    def test_offpeak_charges_from_grid(self, dc, controller):
        dc.battery.soc_joules = dc.battery.floor_joules  # empty usable
        slot = offpeak_slot(dc)
        result = controller.run_slot(dc, slot, flat_power(500.0))
        assert result.grid_to_battery > 0.0
        assert result.battery_discharged == 0.0
        assert dc.battery.soc_joules > dc.battery.floor_joules

    def test_pv_surplus_charges_battery(self, dc, controller):
        dc.battery.soc_joules = dc.battery.floor_joules
        result = controller.run_slot(dc, 12, flat_power(1.0))  # noon, tiny load
        assert result.pv_stored > 0.0

    def test_pv_covers_load_before_grid(self, dc, controller):
        result = controller.run_slot(dc, 12, flat_power(10.0))
        assert result.pv_used > 0.0
        assert result.grid_to_load < result.facility_energy

    def test_battery_never_below_floor(self, dc, controller):
        slot = peak_slot(dc)
        for offset in range(8):
            controller.run_slot(dc, slot + 24 * offset, flat_power(5000.0))
        assert dc.battery.soc_joules >= dc.battery.floor_joules - 1e-6

    def test_zero_load_zero_cost(self, dc, controller):
        slot = peak_slot(dc)
        dc.battery.soc_joules = dc.battery.capacity_joules
        result = controller.run_slot(dc, slot, flat_power(0.0))
        assert result.grid_cost_eur == 0.0
        assert result.grid_to_load == 0.0


class TestAccounting:
    def test_energy_conservation(self, dc, controller):
        for slot in (2, 12, 20):
            result = controller.run_slot(dc, slot, flat_power(800.0))
            result.sanity_check()

    def test_facility_energy_matches_input(self, dc, controller):
        result = controller.run_slot(dc, 3, flat_power(700.0))
        assert result.facility_energy == pytest.approx(700.0 * SECONDS_PER_HOUR)

    def test_grid_energy_is_load_plus_charging(self, dc, controller):
        dc.battery.soc_joules = dc.battery.floor_joules
        slot = offpeak_slot(dc)
        result = controller.run_slot(dc, slot, flat_power(500.0))
        assert result.grid_energy == pytest.approx(
            result.grid_to_load + result.grid_to_battery
        )

    def test_cost_matches_tariff(self, dc, controller):
        """With a full battery unavailable, peak grid cost is price*energy."""
        dc.battery.soc_joules = dc.battery.floor_joules
        slot = peak_slot(dc)
        result = controller.run_slot(dc, slot, flat_power(1000.0))
        expected = dc.spec.tariff.cost_of(
            result.grid_energy, (slot + 0.5) * SECONDS_PER_HOUR
        )
        assert result.grid_cost_eur == pytest.approx(expected, rel=1e-6)

    def test_soc_bookkeeping(self, dc, controller):
        start = dc.battery.soc_joules
        result = controller.run_slot(dc, peak_slot(dc), flat_power(500.0))
        assert result.soc_start == start
        assert result.soc_end == dc.battery.soc_joules

    def test_sanity_check_catches_corruption(self):
        result = GreenSlotResult(
            facility_energy=100.0,
            pv_generated=0.0,
            pv_used=0.0,
            pv_stored=0.0,
            pv_curtailed=0.0,
            battery_discharged=0.0,
            grid_to_load=50.0,  # should be 100
            grid_to_battery=0.0,
            grid_energy=50.0,
            grid_cost_eur=0.0,
            soc_start=0.0,
            soc_end=0.0,
        )
        with pytest.raises(AssertionError):
            result.sanity_check()


class TestValidation:
    def test_step_positive(self):
        with pytest.raises(ValueError):
            GreenController(step_s=0.0)

    def test_charge_fraction_bounds(self):
        with pytest.raises(ValueError):
            GreenController(grid_charge_fraction=1.5)

    def test_power_must_be_1d(self, dc, controller):
        with pytest.raises(ValueError):
            controller.run_slot(dc, 0, np.zeros((2, 2)))

    def test_power_nonnegative(self, dc, controller):
        with pytest.raises(ValueError):
            controller.run_slot(dc, 0, np.array([-1.0]))

    def test_empty_power_rejected(self, dc, controller):
        with pytest.raises(ValueError):
            controller.run_slot(dc, 0, np.zeros(0))


def fresh_fleet(specs, soc_fraction: float | None = None) -> list[Datacenter]:
    dcs = [Datacenter(spec, index, seed=1) for index, spec in enumerate(specs)]
    if soc_fraction is not None:
        for dc in dcs:
            dc.battery.soc_joules = dc.battery.capacity_joules * soc_fraction
    return dcs


class TestFleetKernel:
    """run_slot_fleet: bit-identity with per-DC run_slot, both paths."""

    def fleet_power(self, n_dcs: int = 3, steps: int = 60) -> np.ndarray:
        rng = np.random.default_rng(5)
        return rng.uniform(0.0, 2000.0, size=(n_dcs, steps))

    @pytest.mark.parametrize("slot", [2, 7, 12, 20])
    @pytest.mark.parametrize("soc_fraction", [0.55, 1.0])
    def test_matches_per_dc_reference(self, specs, controller, slot, soc_fraction):
        power = self.fleet_power()
        reference_dcs = fresh_fleet(specs, soc_fraction)
        fleet_dcs = fresh_fleet(specs, soc_fraction)
        reference = [
            controller.run_slot(dc, slot, power[dc.index])
            for dc in reference_dcs
        ]
        fleet = controller.run_slot_fleet(fleet_dcs, slot, power)
        assert fleet == reference
        for ref_dc, fleet_dc in zip(reference_dcs, fleet_dcs):
            assert fleet_dc.battery.soc_joules == ref_dc.battery.soc_joules

    @pytest.mark.parametrize("slot", [2, 12, 20])
    def test_struct_of_arrays_path_matches(self, specs, controller, slot):
        """Forcing the SoA battery loop gives the same bits as replay."""
        power = self.fleet_power()
        reference = controller.run_slot_fleet(
            fresh_fleet(specs, 0.7), slot, power
        )
        controller.scalar_replay_max_dcs = 0
        try:
            batched = controller.run_slot_fleet(
                fresh_fleet(specs, 0.7), slot, power
            )
        finally:
            controller.scalar_replay_max_dcs = 8
        assert batched == reference

    def test_mutates_every_battery(self, specs, controller):
        dcs = fresh_fleet(specs, 1.0)
        slot = peak_slot(dcs[0])
        controller.run_slot_fleet(
            dcs, slot, np.full((3, 60), 5000.0)
        )
        assert dcs[0].battery.soc_joules < dcs[0].battery.capacity_joules

    def test_empty_fleet_returns_empty(self, controller):
        assert controller.run_slot_fleet([], 0, np.zeros((0, 4))) == []

    def test_rejects_row_mismatch(self, specs, controller):
        dcs = fresh_fleet(specs)
        with pytest.raises(ValueError):
            controller.run_slot_fleet(dcs, 0, np.zeros((2, 60)))

    def test_rejects_1d_power(self, specs, controller):
        dcs = fresh_fleet(specs)
        with pytest.raises(ValueError):
            controller.run_slot_fleet(dcs, 0, np.zeros(60))

    def test_rejects_negative_power(self, specs, controller):
        dcs = fresh_fleet(specs)
        with pytest.raises(ValueError):
            controller.run_slot_fleet(dcs, 0, np.full((3, 60), -1.0))
