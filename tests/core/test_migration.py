"""Migration revision (paper Algorithm 2)."""

import numpy as np
import pytest

from tests.conftest import make_vm
from repro.core.migration import (
    destination_within_constraint,
    revise_migrations,
)


@pytest.fixture
def centroids():
    return np.array([[-2.0, 0.0], [2.0, 0.0], [0.0, 3.0]])


def run_revision(
    latency_model,
    vms,
    target,
    previous,
    caps=(100.0, 100.0, 100.0),
    constraint_s=72.0,
    centroids=None,
):
    n = len(vms)
    if centroids is None:
        centroids = np.array([[-2.0, 0.0], [2.0, 0.0], [0.0, 3.0]])
    positions = np.array(
        [centroids[t] + [0.1 * i, 0.0] for i, t in enumerate(target)]
    )
    return revise_migrations(
        vms=vms,
        target=np.array(target),
        previous=np.array(previous),
        positions=positions,
        centroids=centroids,
        loads=np.ones(n),
        caps_cores=np.array(caps, dtype=float),
        latency_model=latency_model,
        slot=0,
        latency_constraint_s=constraint_s,
    )


class TestBasicMoves:
    def test_feasible_migration_executes(self, latency_model):
        vms = [make_vm(vm_id=0, image_gb=2.0)]
        plan = run_revision(latency_model, vms, target=[1], previous=[0])
        assert plan.assignment[0] == 1
        assert len(plan.moves) == 1
        assert plan.moves[0].src_dc == 0
        assert plan.moves[0].dst_dc == 1

    def test_stay_put_no_moves(self, latency_model):
        vms = [make_vm(vm_id=0)]
        plan = run_revision(latency_model, vms, target=[0], previous=[0])
        assert plan.assignment[0] == 0
        assert not plan.moves

    def test_new_vm_takes_target_without_check(self, latency_model):
        vms = [make_vm(vm_id=0, image_gb=8.0)]
        plan = run_revision(
            latency_model, vms, target=[2], previous=[-1], constraint_s=1e-9
        )
        assert plan.assignment[0] == 2
        assert not plan.moves  # no WAN copy for new VMs

    def test_every_vm_assigned(self, latency_model):
        vms = [make_vm(vm_id=i) for i in range(6)]
        plan = run_revision(
            latency_model,
            vms,
            target=[0, 1, 2, 0, 1, 2],
            previous=[2, 0, 1, -1, -1, 2],
        )
        assert set(plan.assignment) == {vm.vm_id for vm in vms}
        assert all(0 <= dc <= 2 for dc in plan.assignment.values())


class TestLatencyConstraint:
    def test_tight_constraint_blocks_all(self, latency_model):
        vms = [make_vm(vm_id=i, image_gb=8.0) for i in range(3)]
        plan = run_revision(
            latency_model,
            vms,
            target=[1, 1, 1],
            previous=[0, 0, 0],
            constraint_s=1e-6,
        )
        assert not plan.moves
        assert set(plan.rejected_vm_ids) == {0, 1, 2}
        assert all(plan.assignment[vm.vm_id] == 0 for vm in vms)

    def test_window_limits_migration_count(self, latency_model):
        """Accumulated volume per destination saturates the window."""
        vms = [make_vm(vm_id=i, image_gb=8.0) for i in range(20)]
        plan = run_revision(
            latency_model,
            vms,
            target=[1] * 20,
            previous=[0] * 20,
            constraint_s=72.0,
        )
        assert plan.moves  # some migrations run...
        assert plan.rejected_vm_ids  # ...but not all
        latency = plan.destination_latencies_s[1]
        assert latency < 72.0

    def test_destination_within_constraint_helper(self, latency_model):
        volumes = np.zeros((3, 3))
        volumes[0, 1] = 2000.0
        ok, latency = destination_within_constraint(
            latency_model, volumes, dst=1, slot=0, constraint_s=72.0
        )
        assert ok
        assert latency > 0.0

    def test_rejected_vms_stay_home(self, latency_model):
        vms = [make_vm(vm_id=i, image_gb=8.0) for i in range(20)]
        plan = run_revision(
            latency_model, vms, target=[1] * 20, previous=[0] * 20
        )
        for vm_id in plan.rejected_vm_ids:
            assert plan.assignment[vm_id] == 0


class TestQueues:
    def test_closest_to_destination_centroid_pulled_first(
        self, latency_model, centroids
    ):
        """Qin is sorted ascending by distance to the destination."""
        vms = [make_vm(vm_id=0, image_gb=8.0), make_vm(vm_id=1, image_gb=8.0)]
        positions = np.array([[1.9, 0.0], [4.0, 0.0]])  # vm0 nearer to DC1
        plan = revise_migrations(
            vms=vms,
            target=np.array([1, 1]),
            previous=np.array([0, 0]),
            positions=positions,
            centroids=centroids,
            loads=np.ones(2),
            caps_cores=np.array([100.0, 1.5, 100.0]),  # DC1 fits one VM
            latency_model=latency_model,
            slot=0,
            latency_constraint_s=20.0,  # one 8 GB image only
        )
        moved = [move.vm_id for move in plan.moves]
        assert moved == [0]

    def test_load_updates_follow_moves(self, latency_model):
        vms = [make_vm(vm_id=i) for i in range(4)]
        plan = run_revision(
            latency_model, vms, target=[1, 1, 0, 0], previous=[0, 0, 1, 1]
        )
        counts = {0: 0, 1: 0, 2: 0}
        for dc in plan.assignment.values():
            counts[dc] += 1
        assert counts[0] == 2
        assert counts[1] == 2

    def test_volumes_matrix_tracks_moves(self, latency_model):
        vms = [make_vm(vm_id=0, image_gb=4.0)]
        plan = run_revision(latency_model, vms, target=[2], previous=[0])
        assert plan.volumes_mb[0, 2] == pytest.approx(4000.0)


class TestValidation:
    def test_shape_mismatch_rejected(self, latency_model, centroids):
        with pytest.raises(ValueError):
            revise_migrations(
                vms=[make_vm(vm_id=0)],
                target=np.array([0, 1]),
                previous=np.array([0]),
                positions=np.zeros((1, 2)),
                centroids=centroids,
                loads=np.ones(1),
                caps_cores=np.ones(3),
                latency_model=latency_model,
                slot=0,
                latency_constraint_s=72.0,
            )

    def test_target_out_of_range_rejected(self, latency_model, centroids):
        with pytest.raises(ValueError):
            revise_migrations(
                vms=[make_vm(vm_id=0)],
                target=np.array([7]),
                previous=np.array([0]),
                positions=np.zeros((1, 2)),
                centroids=centroids,
                loads=np.ones(1),
                caps_cores=np.ones(3),
                latency_model=latency_model,
                slot=0,
                latency_constraint_s=72.0,
            )

    def test_terminates_on_adversarial_input(self, latency_model):
        """Full cross-migration with tiny caps must not loop forever."""
        vms = [make_vm(vm_id=i, image_gb=2.0) for i in range(12)]
        plan = run_revision(
            latency_model,
            vms,
            target=[(i + 1) % 3 for i in range(12)],
            previous=[i % 3 for i in range(12)],
            caps=(0.5, 0.5, 0.5),
        )
        assert set(plan.assignment) == set(range(12))
