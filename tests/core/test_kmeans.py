"""Capacity-constrained modified k-means."""

import numpy as np
import pytest

from repro.core.kmeans import (
    constrained_kmeans,
    warm_start_centroids,
)


def blob(center, n, rng, spread=0.1):
    return rng.normal(loc=center, scale=spread, size=(n, 2))


@pytest.fixture
def two_blobs(rng):
    left = blob([-2.0, 0.0], 5, rng)
    right = blob([2.0, 0.0], 5, rng)
    return np.vstack([left, right])


class TestWarmStart:
    def test_surviving_members_define_centroid(self):
        positions = np.array([[0.0, 0.0], [2.0, 0.0], [10.0, 10.0]])
        previous = np.array([0, 0, 1])
        centroids = warm_start_centroids(positions, previous, k=2)
        assert np.allclose(centroids[0], [1.0, 0.0])
        assert np.allclose(centroids[1], [10.0, 10.0])

    def test_empty_cluster_gets_circle_position(self):
        positions = np.array([[0.0, 0.0], [2.0, 0.0]])
        previous = np.array([0, 0])
        centroids = warm_start_centroids(positions, previous, k=3)
        assert np.all(np.isfinite(centroids))
        assert not np.allclose(centroids[1], centroids[2])

    def test_no_previous_assignment(self):
        positions = np.array([[0.0, 0.0], [2.0, 0.0]])
        centroids = warm_start_centroids(positions, None, k=2)
        assert centroids.shape == (2, 2)

    def test_new_points_marked_minus_one_ignored(self):
        positions = np.array([[0.0, 0.0], [5.0, 5.0]])
        previous = np.array([0, -1])
        centroids = warm_start_centroids(positions, previous, k=1)
        assert np.allclose(centroids[0], [0.0, 0.0])

    def test_k_validated(self):
        with pytest.raises(ValueError):
            warm_start_centroids(np.zeros((1, 2)), None, k=0)


class TestClustering:
    def test_separates_blobs(self, two_blobs):
        loads = np.ones(10)
        capacities = np.array([10.0, 10.0])
        initial = np.array([[-2.0, 0.0], [2.0, 0.0]])
        result = constrained_kmeans(two_blobs, loads, capacities, initial)
        assert set(result.assignment[:5]) == {0}
        assert set(result.assignment[5:]) == {1}

    def test_respects_capacity_when_feasible(self, two_blobs):
        loads = np.ones(10)
        capacities = np.array([5.0, 5.0])
        initial = np.array([[-2.0, 0.0], [2.0, 0.0]])
        result = constrained_kmeans(two_blobs, loads, capacities, initial)
        assert np.all(result.loads <= capacities + 1e-9)
        assert np.all(result.overflow == 0.0)

    def test_capacity_forces_split(self, rng):
        """One blob, two clusters: half must spill to the far cluster."""
        points = blob([0.0, 0.0], 8, rng)
        loads = np.ones(8)
        capacities = np.array([4.0, 4.0])
        initial = np.array([[0.0, 0.0], [5.0, 0.0]])
        result = constrained_kmeans(points, loads, capacities, initial)
        assert (result.assignment == 0).sum() == 4
        assert (result.assignment == 1).sum() == 4

    def test_overflow_recorded_when_infeasible(self, rng):
        points = blob([0.0, 0.0], 6, rng)
        loads = np.ones(6)
        capacities = np.array([2.0, 2.0])
        initial = np.array([[-0.1, 0.0], [0.1, 0.0]])
        result = constrained_kmeans(points, loads, capacities, initial)
        assert result.overflow.sum() == pytest.approx(2.0)

    def test_loads_accounted(self, two_blobs):
        loads = np.linspace(0.5, 1.4, 10)
        capacities = np.array([20.0, 20.0])
        initial = np.array([[-2.0, 0.0], [2.0, 0.0]])
        result = constrained_kmeans(two_blobs, loads, capacities, initial)
        assert result.loads.sum() == pytest.approx(loads.sum())

    def test_empty_input(self):
        result = constrained_kmeans(
            np.zeros((0, 2)), np.zeros(0), np.array([5.0]), np.zeros((1, 2))
        )
        assert result.assignment.size == 0
        assert result.iterations == 0

    def test_deterministic(self, two_blobs):
        loads = np.ones(10)
        capacities = np.array([10.0, 10.0])
        initial = np.array([[-2.0, 0.0], [2.0, 0.0]])
        a = constrained_kmeans(two_blobs, loads, capacities, initial)
        b = constrained_kmeans(two_blobs, loads, capacities, initial)
        assert np.array_equal(a.assignment, b.assignment)

    def test_validation(self, two_blobs):
        with pytest.raises(ValueError):
            constrained_kmeans(
                two_blobs, np.ones(3), np.array([5.0]), np.zeros((1, 2))
            )
        with pytest.raises(ValueError):
            constrained_kmeans(
                two_blobs, -np.ones(10), np.array([5.0]), np.zeros((1, 2))
            )
        with pytest.raises(ValueError):
            constrained_kmeans(
                two_blobs, np.ones(10), np.array([[5.0]]), np.zeros((1, 2))
            )


class TestStickiness:
    def test_stickiness_keeps_marginal_points(self, rng):
        """A point midway between clusters stays with its current one."""
        points = np.array([[-1.0, 0.0], [1.0, 0.0], [0.05, 0.0]])
        loads = np.ones(3)
        capacities = np.array([5.0, 5.0])
        initial = np.array([[-1.0, 0.0], [1.0, 0.0]])
        current = np.array([0, 1, 0])  # marginal point currently on cluster 0
        free = constrained_kmeans(
            points, loads, capacities, initial, max_iterations=1
        )
        sticky = constrained_kmeans(
            points,
            loads,
            capacities,
            initial,
            max_iterations=1,
            current_assignment=current,
            stickiness=0.5,
        )
        assert free.assignment[2] == 1
        assert sticky.assignment[2] == 0

    def test_stickiness_validated(self, two_blobs):
        with pytest.raises(ValueError):
            constrained_kmeans(
                two_blobs,
                np.ones(10),
                np.array([10.0, 10.0]),
                np.zeros((2, 2)),
                stickiness=1.0,
            )

    def test_new_points_unaffected_by_stickiness(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        result = constrained_kmeans(
            points,
            np.ones(2),
            np.array([5.0, 5.0]),
            np.array([[0.0, 0.0], [1.0, 0.0]]),
            current_assignment=np.array([-1, -1]),
            stickiness=0.9,
        )
        assert set(result.assignment) <= {0, 1}
