"""Correlation metrics feeding Eq. 5."""

import numpy as np
import pytest

from repro.core.correlation import (
    attraction_matrix,
    pearson_cpu_correlation,
    peak_coincidence,
    repulsion_matrix,
    total_force_matrix,
)


def square_wave(period: int, phase: int, length: int, high: float = 1.0) -> np.ndarray:
    steps = (np.arange(length) + phase) % period
    return np.where(steps < period // 2, high, 0.1)


class TestPeakCoincidence:
    def test_identical_traces_give_one(self):
        trace = square_wave(20, 0, 100)
        matrix = peak_coincidence(np.stack([trace, trace]))
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_coincident_peaks_give_one(self):
        a = square_wave(20, 0, 100, high=1.0)
        b = square_wave(20, 0, 100, high=0.5)
        matrix = peak_coincidence(np.stack([a, b]))
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_interleaved_peaks_below_one(self):
        a = square_wave(20, 0, 100)
        b = square_wave(20, 10, 100)  # anti-phase
        matrix = peak_coincidence(np.stack([a, b]))
        assert matrix[0, 1] < 1.0

    def test_bounded(self):
        rng = np.random.default_rng(0)
        traces = rng.uniform(0.05, 1.0, size=(6, 50))
        matrix = peak_coincidence(traces)
        assert np.all(matrix > 0.0)
        assert np.all(matrix <= 1.0)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        traces = rng.uniform(0.0, 1.0, size=(5, 40))
        matrix = peak_coincidence(traces)
        assert np.allclose(matrix, matrix.T)

    def test_empty_input(self):
        assert peak_coincidence(np.zeros((0, 10))).shape == (0, 0)

    def test_zero_traces_defined(self):
        matrix = peak_coincidence(np.zeros((2, 10)))
        assert np.all(np.isfinite(matrix))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            peak_coincidence(np.zeros(10))


class TestPearson:
    def test_self_correlation_one(self):
        rng = np.random.default_rng(2)
        traces = rng.normal(size=(4, 200))
        corr = pearson_cpu_correlation(traces)
        assert np.allclose(np.diag(corr), 1.0)

    def test_anti_correlated_pair(self):
        t = np.linspace(0, 4 * np.pi, 200)
        traces = np.stack([np.sin(t), -np.sin(t)])
        corr = pearson_cpu_correlation(traces)
        assert corr[0, 1] == pytest.approx(-1.0, abs=1e-9)

    def test_constant_trace_zero_not_nan(self):
        traces = np.stack([np.ones(50), np.linspace(0, 1, 50)])
        corr = pearson_cpu_correlation(traces)
        assert corr[0, 1] == 0.0
        assert not np.any(np.isnan(corr))

    def test_bounded(self):
        rng = np.random.default_rng(3)
        corr = pearson_cpu_correlation(rng.normal(size=(6, 100)))
        assert np.all(corr >= -1.0)
        assert np.all(corr <= 1.0)

    def test_empty(self):
        assert pearson_cpu_correlation(np.zeros((0, 5))).shape == (0, 0)


class TestRepulsion:
    def test_zero_diagonal(self):
        rng = np.random.default_rng(4)
        matrix = repulsion_matrix(rng.uniform(0.1, 1.0, size=(5, 30)))
        assert np.all(np.diag(matrix) == 0.0)

    def test_off_diagonal_in_unit_interval(self):
        rng = np.random.default_rng(5)
        matrix = repulsion_matrix(rng.uniform(0.1, 1.0, size=(5, 30)))
        off = matrix[~np.eye(5, dtype=bool)]
        assert np.all(off > 0.0)
        assert np.all(off <= 1.0)


class TestAttraction:
    def test_range(self):
        volumes = np.array([[0.0, 5.0, 0.0], [3.0, 0.0, 1.0], [0.0, 2.0, 0.0]])
        matrix = attraction_matrix(volumes)
        assert np.all(matrix <= 0.0)
        assert np.all(matrix >= -1.0)

    def test_strongest_pair_is_minus_one(self):
        volumes = np.array([[0.0, 5.0], [3.0, 0.0]])
        matrix = attraction_matrix(volumes, log_scale=False)
        assert matrix[0, 1] == pytest.approx(-1.0)
        assert matrix[1, 0] == pytest.approx(-1.0)

    def test_silent_pairs_zero(self):
        volumes = np.array([[0.0, 5.0, 0.0], [3.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        matrix = attraction_matrix(volumes)
        assert matrix[0, 2] == 0.0
        assert matrix[2, 1] == 0.0

    def test_all_silent_all_zero(self):
        matrix = attraction_matrix(np.zeros((4, 4)))
        assert np.all(matrix == 0.0)

    def test_symmetric(self):
        rng = np.random.default_rng(6)
        volumes = rng.uniform(0.0, 10.0, size=(5, 5))
        np.fill_diagonal(volumes, 0.0)
        matrix = attraction_matrix(volumes)
        assert np.allclose(matrix, matrix.T)

    def test_log_scale_boosts_midrange(self):
        volumes = np.array([[0.0, 1000.0, 0.0], [0.0, 0.0, 10.0], [0.0, 0.0, 0.0]])
        linear = attraction_matrix(volumes, log_scale=False)
        logged = attraction_matrix(volumes, log_scale=True)
        assert abs(logged[1, 2]) > abs(linear[1, 2])

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            attraction_matrix(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            attraction_matrix(np.zeros((2, 3)))


class TestTotalForce:
    def test_alpha_zero_pure_repulsion(self):
        attraction = -np.ones((2, 2))
        repulsion = np.full((2, 2), 0.5)
        total = total_force_matrix(attraction, repulsion, alpha=0.0)
        assert np.allclose(total, repulsion)

    def test_alpha_one_pure_attraction(self):
        attraction = -np.ones((2, 2))
        repulsion = np.full((2, 2), 0.5)
        total = total_force_matrix(attraction, repulsion, alpha=1.0)
        assert np.allclose(total, attraction)

    def test_midpoint_mix(self):
        attraction = np.array([[-0.8]])
        repulsion = np.array([[0.4]])
        total = total_force_matrix(attraction, repulsion, alpha=0.5)
        assert total[0, 0] == pytest.approx(-0.2)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            total_force_matrix(np.zeros((1, 1)), np.zeros((1, 1)), alpha=1.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_force_matrix(np.zeros((2, 2)), np.zeros((3, 3)), alpha=0.5)
