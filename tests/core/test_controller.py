"""ProposedPolicy: structure, state, diagnostics."""

import numpy as np
import pytest

from tests.conftest import make_observation, make_vm
from repro.core.controller import ProposedPolicy
from repro.core.forces import ForceParameters


@pytest.fixture
def policy() -> ProposedPolicy:
    return ProposedPolicy()


class TestPlacementStructure:
    def test_valid_placement(self, policy, observation):
        placement = policy.place(observation)
        placement.validate(observation)

    def test_all_vms_assigned(self, policy, observation):
        placement = policy.place(observation)
        assert set(placement.assignment) == {vm.vm_id for vm in observation.vms}

    def test_one_allocation_per_dc(self, policy, observation):
        placement = policy.place(observation)
        assert len(placement.allocations) == observation.n_dcs

    def test_diagnostics_keys(self, policy, observation):
        placement = policy.place(observation)
        for key in (
            "embedding_iterations",
            "capacity_caps",
            "kmeans_overflow",
            "rejected_migrations",
        ):
            assert key in placement.diagnostics

    def test_empty_observation(
        self, policy, datacenters, latency_model, trace_library, volume_process
    ):
        observation = make_observation(
            [], datacenters, latency_model, trace_library, volume_process
        )
        placement = policy.place(observation)
        assert placement.assignment == {}
        assert len(placement.allocations) == 3


class TestStatefulness:
    def test_positions_persist_across_slots(
        self, policy, six_vms, datacenters, latency_model, trace_library, volume_process
    ):
        first = make_observation(
            six_vms, datacenters, latency_model, trace_library, volume_process, slot=1
        )
        placement = policy.place(first)
        positions_after_first = dict(policy._positions)
        second = make_observation(
            six_vms,
            datacenters,
            latency_model,
            trace_library,
            volume_process,
            slot=2,
            previous_assignment=placement.assignment,
        )
        policy.place(second)
        assert set(positions_after_first) == {vm.vm_id for vm in six_vms}
        # The plane evolves but starts from the previous state.
        assert set(policy._positions) == set(positions_after_first)

    def test_reset_clears_plane(self, policy, observation):
        policy.place(observation)
        assert policy._positions
        policy.reset()
        assert not policy._positions

    def test_new_vm_spawns_near_service_peers(
        self, policy, six_vms, datacenters, latency_model, trace_library, volume_process
    ):
        first = make_observation(
            six_vms, datacenters, latency_model, trace_library, volume_process
        )
        placement = policy.place(first)
        newcomer = make_vm(vm_id=99, service_id=0, arrival_slot=2, seed=77)
        extended = six_vms + [newcomer]
        second = make_observation(
            extended,
            datacenters,
            latency_model,
            trace_library,
            volume_process,
            slot=2,
            previous_assignment=placement.assignment,
        )
        start = policy._initial_positions(second)
        peers = [
            policy._positions[vm.vm_id] for vm in six_vms if vm.service_id == 0
        ]
        center = np.mean(peers, axis=0)
        assert np.linalg.norm(start[-1] - center) < 2.0

    def test_migrations_respect_constraint(
        self, six_vms, datacenters, latency_model, trace_library, volume_process
    ):
        policy = ProposedPolicy()
        first = make_observation(
            six_vms, datacenters, latency_model, trace_library, volume_process
        )
        placement = policy.place(first)
        tight = make_observation(
            six_vms,
            datacenters,
            latency_model,
            trace_library,
            volume_process,
            slot=2,
            previous_assignment=placement.assignment,
        )
        tight.latency_constraint_s = 1e-9
        second = policy.place(tight)
        assert not second.moves  # nothing can migrate under a zero window
        for vm_id, dc in second.assignment.items():
            assert dc == placement.assignment[vm_id]


class TestConfiguration:
    def test_alpha_passthrough(self):
        policy = ProposedPolicy(force_params=ForceParameters(alpha=0.9))
        assert policy.force_params.alpha == 0.9

    def test_deterministic_given_seed(
        self, six_vms, datacenters, latency_model, trace_library, volume_process
    ):
        results = []
        for _ in range(2):
            policy = ProposedPolicy(seed=5)
            observation = make_observation(
                six_vms, datacenters, latency_model, trace_library, volume_process
            )
            placement = policy.place(observation)
            results.append(dict(placement.assignment))
        assert results[0] == results[1]
