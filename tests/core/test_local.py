"""Local phase: correlation-aware vs plain FFD allocation, DVFS."""

import numpy as np
import pytest

from repro.core.local import (
    ServerAllocation,
    allocate_correlation_aware,
    allocate_first_fit,
)
from repro.datacenter.server import XEON_E5410


def anti_phase_traces(n_pairs: int, steps: int = 40, high: float = 4.0):
    """Pairs of traces whose peaks never coincide."""
    half = steps // 2
    a = np.concatenate([np.full(half, high), np.full(steps - half, 0.2)])
    b = np.concatenate([np.full(half, 0.2), np.full(steps - half, high)])
    traces = []
    for _ in range(n_pairs):
        traces.extend([a, b])
    return np.stack(traces)


class TestInvariants:
    @pytest.mark.parametrize(
        "allocator", [allocate_correlation_aware, allocate_first_fit]
    )
    def test_every_vm_placed_once(self, allocator):
        rng = np.random.default_rng(0)
        demand = rng.uniform(0.2, 3.0, size=(12, 30))
        allocation = allocator(list(range(12)), demand, XEON_E5410, n_servers=10)
        allocation.validate()
        placed = sorted(
            vm_id for vms in allocation.server_vms for vm_id in vms
        )
        assert placed == list(range(12))

    @pytest.mark.parametrize(
        "allocator", [allocate_correlation_aware, allocate_first_fit]
    )
    def test_empty_input(self, allocator):
        allocation = allocator([], np.zeros((0, 10)), XEON_E5410, n_servers=5)
        assert allocation.active_servers == 0

    @pytest.mark.parametrize(
        "allocator", [allocate_correlation_aware, allocate_first_fit]
    )
    def test_never_more_than_physical_servers(self, allocator):
        rng = np.random.default_rng(1)
        demand = rng.uniform(3.0, 8.0, size=(30, 20))
        allocation = allocator(list(range(30)), demand, XEON_E5410, n_servers=4)
        assert allocation.active_servers <= 4

    @pytest.mark.parametrize(
        "allocator", [allocate_correlation_aware, allocate_first_fit]
    )
    def test_rows_must_match_ids(self, allocator):
        with pytest.raises(ValueError):
            allocator([1, 2], np.zeros((3, 10)), XEON_E5410, n_servers=2)

    @pytest.mark.parametrize(
        "allocator", [allocate_correlation_aware, allocate_first_fit]
    )
    def test_n_servers_positive(self, allocator):
        with pytest.raises(ValueError):
            allocator([1], np.ones((1, 5)), XEON_E5410, n_servers=0)


class TestCorrelationAwarePacking:
    def test_anti_correlated_pack_tighter_than_ffd(self):
        """The paper's core local-phase claim (Kim DATE'13)."""
        demand = anti_phase_traces(n_pairs=4, high=4.2)  # 8 VMs, peak 4.2
        ids = list(range(8))
        aware = allocate_correlation_aware(ids, demand, XEON_E5410, n_servers=8)
        blind = allocate_first_fit(ids, demand, XEON_E5410, n_servers=8)
        # Combined peak of an anti-phase pair is 4.4 <= 8, so two fit a
        # server; sum-of-peaks sizing sees 8.4 > 8 and refuses.
        assert aware.active_servers < blind.active_servers

    def test_combined_peak_respected(self):
        demand = anti_phase_traces(n_pairs=2, high=4.0)
        allocation = allocate_correlation_aware(
            list(range(4)), demand, XEON_E5410, n_servers=4
        )
        for vms in allocation.server_vms:
            rows = [vm_id for vm_id in vms]
            combined = demand[rows].sum(axis=0)
            assert combined.max() <= XEON_E5410.max_capacity + 1e-9

    def test_overload_path_picks_least_peak(self):
        demand = np.full((3, 10), 7.0)  # each VM nearly fills a server
        allocation = allocate_correlation_aware(
            [0, 1, 2], demand, XEON_E5410, n_servers=2
        )
        assert allocation.active_servers == 2
        assert any(len(vms) == 2 for vms in allocation.server_vms)


class TestFrequencySelection:
    def test_low_combined_peak_runs_low_frequency(self):
        demand = np.full((2, 10), 1.0)
        allocation = allocate_correlation_aware(
            [0, 1], demand, XEON_E5410, n_servers=2
        )
        assert allocation.frequencies == [0]
        assert allocation.saturated == [False]

    def test_high_peak_needs_top_frequency(self):
        demand = np.full((1, 10), 7.5)
        allocation = allocate_correlation_aware(
            [0], demand, XEON_E5410, n_servers=1
        )
        assert allocation.frequencies == [1]

    def test_saturation_flagged(self):
        demand = np.full((2, 10), 6.0)
        allocation = allocate_correlation_aware(
            [0, 1], demand, XEON_E5410, n_servers=1
        )
        assert allocation.saturated == [True]

    def test_ffd_sizes_by_sum_of_peaks(self):
        """Plain FFD picks frequency from the pessimistic load bound."""
        demand = anti_phase_traces(n_pairs=1, high=3.5)  # combined peak 3.7
        blind = allocate_first_fit([0, 1], demand, XEON_E5410, n_servers=2)
        if blind.active_servers == 1:
            # sum of peaks is 7.0 -> top frequency despite real peak 3.7
            assert blind.frequencies[0] == 1


class TestServerAllocationType:
    def test_vm_count(self):
        allocation = ServerAllocation(
            model=XEON_E5410,
            n_servers=2,
            server_vms=[[1, 2], [3]],
            frequencies=[0, 1],
            saturated=[False, False],
        )
        assert allocation.vm_count() == 3

    def test_server_of(self):
        allocation = ServerAllocation(
            model=XEON_E5410,
            n_servers=2,
            server_vms=[[1, 2], [3]],
            frequencies=[0, 1],
            saturated=[False, False],
        )
        assert allocation.server_of(3) == 1
        with pytest.raises(KeyError):
            allocation.server_of(99)

    def test_validate_rejects_duplicates(self):
        allocation = ServerAllocation(
            model=XEON_E5410,
            n_servers=2,
            server_vms=[[1], [1]],
            frequencies=[0, 0],
            saturated=[False, False],
        )
        with pytest.raises(ValueError, match="twice"):
            allocation.validate()

    def test_validate_rejects_empty_server(self):
        allocation = ServerAllocation(
            model=XEON_E5410,
            n_servers=2,
            server_vms=[[]],
            frequencies=[0],
            saturated=[False],
        )
        with pytest.raises(ValueError, match="no VMs"):
            allocation.validate()

    def test_validate_rejects_too_many_servers(self):
        allocation = ServerAllocation(
            model=XEON_E5410,
            n_servers=1,
            server_vms=[[1], [2]],
            frequencies=[0, 0],
            saturated=[False, False],
        )
        with pytest.raises(ValueError, match="physical"):
            allocation.validate()

    def test_validate_rejects_length_mismatch(self):
        allocation = ServerAllocation(
            model=XEON_E5410,
            n_servers=2,
            server_vms=[[1]],
            frequencies=[],
            saturated=[False],
        )
        with pytest.raises(ValueError, match="frequencies"):
            allocation.validate()
