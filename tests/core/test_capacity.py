"""Capacity caps: free energy, waterfilling, conversions."""

import numpy as np
import pytest

from tests.conftest import make_specs
from repro.core.capacity import (
    compute_capacity_caps,
    joules_to_core_capacity,
)
from repro.datacenter.datacenter import Datacenter


@pytest.fixture
def fleet(specs):
    return [Datacenter(spec, index, seed=1) for index, spec in enumerate(specs)]


def warm_up(fleet, energy_per_dc=2.0e7):
    """Give every DC a demand history so the predictor has signal."""
    for dc in fleet:
        dc.record_slot(0, energy_per_dc, 0.0)


class TestCaps:
    def test_one_cap_per_dc(self, fleet):
        caps = compute_capacity_caps(fleet, slot=1)
        assert [cap.dc_index for cap in caps] == [0, 1, 2]

    def test_caps_nonnegative(self, fleet):
        warm_up(fleet)
        for cap in compute_capacity_caps(fleet, slot=1):
            assert cap.cap_joules >= 0.0
            assert cap.free_joules >= 0.0
            assert cap.grid_joules >= 0.0
            assert cap.cap_cores >= 0.0

    def test_cap_splits_into_free_and_grid(self, fleet):
        warm_up(fleet)
        for cap in compute_capacity_caps(fleet, slot=1):
            assert cap.cap_joules == pytest.approx(
                cap.free_joules + cap.grid_joules
            )

    def test_total_caps_cover_predicted_demand(self, fleet):
        demand = 2.0e6  # within the tiny fleet's physical ceilings
        warm_up(fleet, demand)
        caps = compute_capacity_caps(fleet, slot=1)
        assert sum(cap.cap_joules for cap in caps) >= 3 * demand * 0.99

    def test_ceiling_clips(self, fleet):
        warm_up(fleet, 1.0e12)  # absurd demand
        caps = compute_capacity_caps(fleet, slot=1)
        for cap, dc in zip(caps, fleet):
            assert cap.cap_joules <= dc.spec.max_slot_energy_joules() * (1 + 1e-9)

    def test_waterfill_prefers_cheapest_grid(self, fleet):
        """Grid share fills the cheapest DC to its ceiling first."""
        warm_up(fleet, 2.0e7)
        slot = 12  # daytime: all sites on peak tariff
        caps = compute_capacity_caps(fleet, slot=slot)
        prices = [dc.grid_price_at(slot) for dc in fleet]
        cheapest = int(np.argmin(prices))
        assert sum(cap.grid_joules for cap in caps) > 0.0
        # The cheapest DC's grid share is bounded only by its ceiling.
        headroom = (
            fleet[cheapest].spec.max_slot_energy_joules()
            - caps[cheapest].free_joules
        )
        assert caps[cheapest].grid_joules == pytest.approx(headroom, rel=1e-6)
        # No cheaper DC left idle while pricier ones burn grid energy:
        # every DC priced above an unfilled one must have zero share.
        order = np.argsort(prices)
        for earlier, later in zip(order[:-1], order[1:]):
            earlier_headroom = (
                fleet[earlier].spec.max_slot_energy_joules()
                - caps[earlier].free_joules
            )
            if caps[later].grid_joules > 0.0:
                assert caps[earlier].grid_joules == pytest.approx(
                    earlier_headroom, rel=1e-6
                )

    def test_free_energy_counted_before_grid(self, fleet):
        warm_up(fleet, 1.0e6)  # demand below the fleet's battery energy
        caps = compute_capacity_caps(fleet, slot=1)
        assert sum(cap.grid_joules for cap in caps) == pytest.approx(0.0)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            compute_capacity_caps([], slot=0)

    def test_first_slot_uses_idle_estimate(self, fleet):
        # No history at all: the idle-fleet estimate drives demand.
        caps = compute_capacity_caps(fleet, slot=0)
        assert sum(cap.cap_joules for cap in caps) > 0.0


class TestConversion:
    def test_zero_joules_zero_cores(self, fleet):
        assert joules_to_core_capacity(fleet[0], 0.0) == 0.0

    def test_monotone(self, fleet):
        small = joules_to_core_capacity(fleet[0], 1.0e6)
        large = joules_to_core_capacity(fleet[0], 5.0e6)
        assert large > small

    def test_clipped_to_fleet_cores(self, fleet):
        cores = joules_to_core_capacity(fleet[0], 1.0e15)
        assert cores == fleet[0].spec.total_capacity_cores
