"""Force-directed embedding: Eqs. 5-7 behavior."""

import numpy as np
import pytest

from repro.core.forces import (
    EmbeddingResult,
    ForceDirectedEmbedding,
    ForceParameters,
    pairwise_distances,
)


def two_point_setup(force_value: float):
    """Positions and a uniform mutual force between two points."""
    positions = np.array([[0.0, 0.0], [1.0, 0.0]])
    forces = np.array([[0.0, force_value], [force_value, 0.0]])
    return positions, forces


class TestParameters:
    def test_defaults_valid(self):
        ForceParameters()

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            ForceParameters(alpha=-0.1)

    def test_time_step_positive(self):
        with pytest.raises(ValueError):
            ForceParameters(time_step=0.0)

    def test_max_iterations_positive(self):
        with pytest.raises(ValueError):
            ForceParameters(max_iterations=0)


class TestPairwiseDistances:
    def test_known_values(self):
        positions = np.array([[0.0, 0.0], [3.0, 4.0]])
        distances = pairwise_distances(positions)
        assert distances[0, 1] == pytest.approx(5.0)
        assert distances[0, 0] == 0.0


class TestDynamics:
    def test_attraction_pulls_together(self):
        embedding = ForceDirectedEmbedding(ForceParameters(max_iterations=1))
        positions, forces = two_point_setup(-0.5)
        zero = np.zeros_like(forces)
        # alpha=0.5 mixes attraction and repulsion; feed attraction only.
        result = embedding.run(positions, forces / 0.5, zero)
        assert pairwise_distances(result.positions)[0, 1] < 1.0

    def test_repulsion_pushes_apart(self):
        embedding = ForceDirectedEmbedding(ForceParameters(max_iterations=1))
        positions, forces = two_point_setup(0.5)
        zero = np.zeros_like(forces)
        result = embedding.run(positions, zero, forces / 0.5)
        assert pairwise_distances(result.positions)[0, 1] > 1.0

    def test_coincident_points_jittered_apart(self):
        embedding = ForceDirectedEmbedding(ForceParameters(max_iterations=3))
        positions = np.zeros((2, 2))
        repulsion = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = embedding.run(positions, np.zeros((2, 2)), repulsion)
        assert pairwise_distances(result.positions)[0, 1] > 0.0

    def test_single_point_noop(self):
        embedding = ForceDirectedEmbedding()
        result = embedding.run(
            np.array([[1.0, 2.0]]), np.zeros((1, 1)), np.zeros((1, 1))
        )
        assert result.converged
        assert result.iterations == 0
        assert np.array_equal(result.positions, [[1.0, 2.0]])

    def test_progress_cost_positive_when_following_forces(self):
        embedding = ForceDirectedEmbedding(ForceParameters(max_iterations=2))
        positions, forces = two_point_setup(0.5)
        result = embedding.run(positions, np.zeros((2, 2)), forces / 0.5)
        assert result.cost_history[0] > 0.0

    def test_iteration_cap_respected(self):
        embedding = ForceDirectedEmbedding(
            ForceParameters(max_iterations=4, time_step=0.1)
        )
        rng = np.random.default_rng(0)
        positions = rng.normal(size=(6, 2))
        attraction = -rng.uniform(0.0, 1.0, size=(6, 6))
        repulsion = rng.uniform(0.0, 1.0, size=(6, 6))
        np.fill_diagonal(attraction, 0.0)
        np.fill_diagonal(repulsion, 0.0)
        result = embedding.run(positions, attraction, repulsion)
        assert result.iterations <= 4

    def test_converged_flag_on_progress_decay(self):
        # A pure-attraction pair overshoots and decays quickly.
        embedding = ForceDirectedEmbedding(
            ForceParameters(max_iterations=50, time_step=1.0)
        )
        positions, forces = two_point_setup(-1.0)
        result = embedding.run(positions, forces, np.zeros((2, 2)))
        assert result.converged
        assert result.iterations < 50

    def test_input_not_mutated(self):
        embedding = ForceDirectedEmbedding(ForceParameters(max_iterations=2))
        positions, forces = two_point_setup(0.5)
        original = positions.copy()
        embedding.run(positions, np.zeros((2, 2)), forces / 0.5)
        assert np.array_equal(positions, original)

    def test_deterministic(self):
        embedding = ForceDirectedEmbedding(ForceParameters(max_iterations=10))
        rng = np.random.default_rng(1)
        positions = rng.normal(size=(5, 2))
        attraction = -rng.uniform(size=(5, 5))
        repulsion = rng.uniform(size=(5, 5))
        a = embedding.run(positions, attraction, repulsion)
        b = embedding.run(positions, attraction, repulsion)
        assert np.array_equal(a.positions, b.positions)


class TestValidation:
    def test_bad_position_shape(self):
        embedding = ForceDirectedEmbedding()
        with pytest.raises(ValueError):
            embedding.run(np.zeros((3, 3)), np.zeros((3, 3)), np.zeros((3, 3)))

    def test_force_shape_mismatch(self):
        embedding = ForceDirectedEmbedding()
        with pytest.raises(ValueError):
            embedding.run(np.zeros((3, 2)), np.zeros((2, 2)), np.zeros((2, 2)))


class TestNormalization:
    def test_normalized_forces_bound_displacement(self):
        """Displacement per iteration must not scale with fleet size."""
        for n in (4, 40):
            embedding = ForceDirectedEmbedding(
                ForceParameters(max_iterations=1, normalize_forces=True)
            )
            positions = np.zeros((n, 2))
            positions[:, 0] = np.arange(n, dtype=float)
            repulsion = np.full((n, n), 1.0)
            np.fill_diagonal(repulsion, 0.0)
            result = embedding.run(positions, np.zeros((n, n)), repulsion)
            drift = np.abs(result.positions - positions).max()
            assert drift <= 1.0
