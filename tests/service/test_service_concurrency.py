"""Concurrent clients: cross-client dedup and abandoned connections."""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.request

from repro.service import ServiceClient
from repro.service.protocol import encode_request


def _stats(url: str) -> dict:
    with urllib.request.urlopen(f"{url}/stats", timeout=10) as response:
        return json.loads(response.read())


def _stats_settled(url: str) -> dict:
    """Stats once counters caught up (done callbacks trail waiters)."""
    deadline = time.monotonic() + 5.0
    while True:
        stats = _stats(url)
        if stats["inflight"] == 0 or time.monotonic() > deadline:
            return stats
        time.sleep(0.02)


class TestCrossClientDedup:
    def test_overlapping_submissions_execute_once(
        self, daemon, tiny_requests
    ):
        """Two clients racing the same grid: every miss runs once."""
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def hammer(slot: int) -> None:
            try:
                client = ServiceClient(daemon.url)
                results[slot] = client.run_many(tiny_requests)
                client.close()
            except BaseException as error:  # surfaced by the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert set(results) == {0, 1}

        # Both clients got the full grid, bit-identically.
        a, b = results[0], results[1]
        assert [x.fingerprint for x in a] == [x.fingerprint for x in b]
        for x, y in zip(a, b):
            assert json.dumps(x.result.to_dict(), sort_keys=True) == (
                json.dumps(y.result.to_dict(), sort_keys=True)
            )

        # The daemon simulated each unique fingerprint exactly once --
        # the overlapping submissions deduplicated in flight.  (The
        # loser of each race may resolve via the fingerprint probe
        # without ever POSTing, so only a lower bound holds for
        # submitted.)
        stats = _stats_settled(daemon.url)
        assert stats["computed"] == len(tiny_requests)
        assert stats["errors"] == 0
        assert stats["submitted"] >= len(tiny_requests)

    def test_serial_daemon_also_dedups(self, daemon_factory, tiny_requests):
        """jobs=1 (inline execution) still dedups across clients."""
        daemon = daemon_factory(jobs=1)
        request = tiny_requests[0]
        outcomes = []

        def submit_one() -> None:
            client = ServiceClient(daemon.url)
            outcomes.append(client.run(request))
            client.close()

        threads = [threading.Thread(target=submit_one) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(outcomes) == 4
        assert _stats_settled(daemon.url)["computed"] == 1


class TestAbandonedConnections:
    def test_disconnect_mid_longpoll_does_not_wedge(
        self, daemon, tiny_requests
    ):
        """A client that vanishes mid-long-poll leaves the daemon healthy."""
        request = tiny_requests[0]
        fingerprint = request.fingerprint()
        body = json.dumps(encode_request(request)).encode()
        urllib.request.urlopen(
            urllib.request.Request(
                f"{daemon.url}/runs", data=body,
                headers={"Content-Type": "application/json"}, method="POST",
            ),
            timeout=10,
        ).read()

        # Open a raw long-poll on the pending run and slam the socket.
        host, port = daemon.address
        rogue = socket.create_connection((host, port), timeout=10)
        rogue.sendall(
            f"GET /runs/{fingerprint}?wait=30 HTTP/1.1\r\n"
            f"Host: {host}\r\n\r\n".encode()
        )
        time.sleep(0.05)
        rogue.close()

        # The daemon keeps answering other clients immediately...
        start = time.perf_counter()
        client = ServiceClient(daemon.url)
        assert client.ping()["status"] == "ok"
        assert time.perf_counter() - start < 5.0
        # ...and the abandoned run still completes and is served.
        artifact = client.run(request)
        assert artifact.fingerprint == fingerprint
        stats = _stats_settled(daemon.url)
        assert stats["computed"] == 1
        assert stats["errors"] == 0
        client.close()

    def test_disconnect_mid_stream_does_not_wedge(
        self, daemon, tiny_requests
    ):
        """Same for the streaming endpoint."""
        fingerprints = []
        for request in tiny_requests[:2]:
            body = json.dumps(encode_request(request)).encode()
            urllib.request.urlopen(
                urllib.request.Request(
                    f"{daemon.url}/runs", data=body,
                    headers={"Content-Type": "application/json"},
                    method="POST",
                ),
                timeout=10,
            ).read()
            fingerprints.append(request.fingerprint())
        host, port = daemon.address
        query = "&".join(f"fp={fp}" for fp in fingerprints)
        rogue = socket.create_connection((host, port), timeout=10)
        rogue.sendall(
            f"GET /runs?{query}&wait=30 HTTP/1.1\r\n"
            f"Host: {host}\r\n\r\n".encode()
        )
        time.sleep(0.05)
        rogue.close()

        client = ServiceClient(daemon.url)
        assert client.ping()["status"] == "ok"
        artifacts = client.run_many(tiny_requests[:2])
        assert [a.fingerprint for a in artifacts] == fingerprints
        client.close()
