"""Daemon endpoints: submit/poll/stream semantics over real HTTP."""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.orchestrator import RunRequest
from repro.service.protocol import (
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    encode_request,
)
from repro.workload.packs import (
    RecordedTraceSource,
    TracePack,
)

import numpy as np


def get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(url, path, payload):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHealthAndStats:
    def test_healthz(self, daemon):
        status, payload = get(daemon.url, "/healthz")
        assert status == 200
        workload_cache = payload.pop("workload_cache")
        assert workload_cache["enabled"] == (
            daemon.orchestrator.workload_cache > 0
        )
        # No submissions decoded yet: the engine-mode counts are empty.
        assert payload.pop("engine_modes") == {}
        assert payload == {
            "wire_version": WIRE_VERSION,
            "supported_wire_versions": list(SUPPORTED_WIRE_VERSIONS),
            "kind": "health",
            "status": "ok",
            "daemon_id": daemon.daemon_id,
            "jobs": daemon.orchestrator.jobs,
            "inflight": 0,
            "queue_depth": 0,
        }
        # The default identity is the bound host:port.
        host, port = daemon.address
        assert payload["daemon_id"] == f"{host}:{port}"

    def test_stats_shape(self, daemon):
        status, payload = get(daemon.url, "/stats")
        assert status == 200
        for key in ("submitted", "hits", "computed", "errors", "inflight",
                    "store", "jobs", "uptime_s", "daemon_id",
                    "queue_depth"):
            assert key in payload
        assert payload["daemon_id"] == daemon.daemon_id

    def test_unknown_endpoint_404(self, daemon):
        status, payload = get(daemon.url, "/nope")
        assert status == 404
        assert payload["kind"] == "error"


class TestSubmitAndPoll:
    def test_miss_then_longpoll_then_hit(self, daemon, tiny_requests):
        request = tiny_requests[0]
        fingerprint = request.fingerprint()
        status, payload = post(daemon.url, "/runs", encode_request(request))
        assert status == 202
        assert payload["kind"] == "pending"
        assert payload["fingerprint"] == fingerprint

        status, payload = get(
            daemon.url, f"/runs/{fingerprint}?wait=30"
        )
        assert status == 200
        assert payload["kind"] == "run_artifact"
        assert payload["fingerprint"] == fingerprint

        # Resubmission is now an instant store hit.
        status, payload = post(daemon.url, "/runs", encode_request(request))
        assert status == 200
        assert payload["kind"] == "run_artifact"
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            stats = get(daemon.url, "/stats")[1]
            if stats["computed"] == 1:
                break
            time.sleep(0.02)
        assert stats["computed"] == 1
        assert stats["hits"] >= 1

    def test_unknown_fingerprint_404(self, daemon):
        status, payload = get(daemon.url, f"/runs/{'0' * 64}")
        assert status == 404 or payload["kind"] == "error"

    def test_poll_without_wait_reports_pending(self, daemon, tiny_requests):
        request = tiny_requests[1]
        fingerprint = request.fingerprint()
        status, _ = post(daemon.url, "/runs", encode_request(request))
        assert status == 202
        status, payload = get(daemon.url, f"/runs/{fingerprint}")
        assert status in (200, 202)  # 202 unless the run won the race
        # Drain so teardown doesn't race the executing run.
        status, payload = get(daemon.url, f"/runs/{fingerprint}?wait=30")
        assert status == 200

    def test_malformed_body_400(self, daemon):
        import http.client

        connection = http.client.HTTPConnection(*daemon.address, timeout=10)
        connection.request(
            "POST", "/runs", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 400
        connection.close()

    def test_version_mismatch_400(self, daemon, tiny_requests):
        payload = encode_request(tiny_requests[0])
        payload["wire_version"] = 99
        status, answer = post(daemon.url, "/runs", payload)
        assert status == 400
        assert "version" in answer["error"]

    def test_version_checked_even_on_warm_fingerprints(
        self, daemon, tiny_requests
    ):
        """The warm fast path must not serve a mismatched peer."""
        request = tiny_requests[0]
        post(daemon.url, "/runs", encode_request(request))
        get(daemon.url, f"/runs/{request.fingerprint()}?wait=30")
        warm = encode_request(request)
        status, _ = post(daemon.url, "/runs", warm)
        assert status == 200  # cached
        bad = dict(warm)
        bad["wire_version"] = 99
        status, answer = post(daemon.url, "/runs", bad)
        assert status == 400
        assert "wire version" in answer["error"]

    def test_fingerprint_mismatch_409(self, daemon, tiny_requests):
        payload = encode_request(tiny_requests[0])
        payload["fingerprint"] = "f" * 64
        status, answer = post(daemon.url, "/runs", payload)
        assert status == 409
        assert "mismatch" in answer["error"]

    def test_failing_run_reports_500(self, daemon_factory, tiny_config):
        daemon = daemon_factory(jobs=1)
        # A pack serving 30 steps/slot against a config expecting
        # tiny's slotting fails inside the engine build -- a genuine
        # execution-time error on the daemon.
        pack = TracePack(
            name="mismatched",
            source=RecordedTraceSource(
                utilization=np.full((3, 60), 0.5), steps_per_slot=60
            ),
        )
        from repro.experiments.runner import default_policies

        request = RunRequest(
            config=tiny_config, policy=default_policies()[0], pack=pack
        )
        status, payload = post(daemon.url, "/runs", encode_request(request))
        assert status == 202  # even serial daemons answer promptly
        status, payload = get(
            daemon.url, f"/runs/{request.fingerprint()}?wait=30"
        )
        assert status == 500
        assert payload["kind"] == "error"
        assert "steps per slot" in payload["error"]
        # The stream endpoint reports the recorded error too (the run
        # is neither stored nor in flight by now -- it must not be
        # misreported as an unknown fingerprint).
        with urllib.request.urlopen(
            f"{daemon.url}/runs?fp={request.fingerprint()}", timeout=10
        ) as response:
            lines = [json.loads(line) for line in response if line.strip()]
        assert lines[0]["kind"] == "error"
        assert lines[0]["status"] == 500
        assert "steps per slot" in lines[0]["error"]
        # Counters update in done callbacks, which can trail the poll
        # that observed the failure by an instant.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            stats = get(daemon.url, "/stats")[1]
            if stats["errors"] == 1:
                break
            time.sleep(0.02)
        assert stats["errors"] == 1


class TestStreamEndpoint:
    def test_stream_returns_all_in_completion_order(
        self, daemon, tiny_requests
    ):
        fingerprints = []
        for request in tiny_requests:
            status, _ = post(daemon.url, "/runs", encode_request(request))
            assert status in (200, 202)
            fingerprints.append(request.fingerprint())
        query = "&".join(f"fp={fp}" for fp in fingerprints)
        with urllib.request.urlopen(
            f"{daemon.url}/runs?{query}&wait=60", timeout=90
        ) as response:
            lines = [
                json.loads(line) for line in response if line.strip()
            ]
        kinds = {line["kind"] for line in lines}
        assert kinds == {"run_artifact"}
        assert {line["fingerprint"] for line in lines} == set(fingerprints)

    def test_stream_requires_fingerprints(self, daemon):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{daemon.url}/runs?wait=1", timeout=10)
        assert excinfo.value.code == 400

    def test_stream_reports_unknown_fingerprints(self, daemon):
        with urllib.request.urlopen(
            f"{daemon.url}/runs?fp={'0' * 64}", timeout=10
        ) as response:
            lines = [json.loads(line) for line in response if line.strip()]
        assert lines[0]["kind"] == "error"
        assert lines[0]["status"] == 404
