"""Shared fixtures for the experiment-service tests."""

from __future__ import annotations

import pytest

from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunRequest,
)
from repro.experiments.runner import default_policies
from repro.service import ExperimentDaemon, ServiceClient
from repro.sim.config import scaled_config


@pytest.fixture
def tiny_config():
    return scaled_config("tiny", seed=0).with_horizon(2)


@pytest.fixture
def tiny_requests(tiny_config):
    """The four-method grid at tiny scale (one cheap run each)."""
    return [
        RunRequest(config=tiny_config, policy=policy)
        for policy in default_policies()
    ]


@pytest.fixture
def daemon_factory(tmp_path):
    """Build daemons on ephemeral ports; every one is closed at teardown."""
    daemons: list[ExperimentDaemon] = []
    roots = iter(range(1000))

    def build(
        jobs: int = 2,
        backend: str = "segment",
        store_root=None,
        **daemon_kwargs,
    ) -> ExperimentDaemon:
        if store_root is None:
            store_root = tmp_path / f"store-{next(roots)}"
        store = ResultStore(store_root, backend=backend)
        daemon = ExperimentDaemon(
            Orchestrator(store=store, jobs=jobs), **daemon_kwargs
        )
        daemons.append(daemon)
        return daemon.start()

    yield build
    for daemon in daemons:
        daemon.close()


@pytest.fixture
def daemon(daemon_factory):
    return daemon_factory()


@pytest.fixture
def client(daemon):
    with ServiceClient(daemon.url) as client:
        yield client
