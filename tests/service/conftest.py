"""Shared fixtures for the experiment-service tests."""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

import pytest

from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunRequest,
)
from repro.experiments.runner import default_policies
from repro.service import ExperimentDaemon, ServiceClient
from repro.service.protocol import encode_artifact
from repro.sim.config import scaled_config


@pytest.fixture
def tiny_config():
    return scaled_config("tiny", seed=0).with_horizon(2)


@pytest.fixture
def tiny_requests(tiny_config):
    """The four-method grid at tiny scale (one cheap run each)."""
    return [
        RunRequest(config=tiny_config, policy=policy)
        for policy in default_policies()
    ]


@pytest.fixture
def daemon_factory(tmp_path):
    """Build daemons on ephemeral ports; every one is closed at teardown."""
    daemons: list[ExperimentDaemon] = []
    roots = iter(range(1000))

    def build(
        jobs: int = 2,
        backend: str = "segment",
        store_root=None,
        **daemon_kwargs,
    ) -> ExperimentDaemon:
        if store_root is None:
            store_root = tmp_path / f"store-{next(roots)}"
        store = ResultStore(store_root, backend=backend)
        daemon = ExperimentDaemon(
            Orchestrator(store=store, jobs=jobs), **daemon_kwargs
        )
        daemons.append(daemon)
        return daemon.start()

    yield build
    for daemon in daemons:
        daemon.close()


@pytest.fixture
def daemon(daemon_factory):
    return daemon_factory()


@pytest.fixture
def client(daemon):
    with ServiceClient(daemon.url) as client:
        yield client


def start_v1_stub(artifact_payload):
    """A minimal wire-v1 daemon: refuses v2 envelopes, serves one run.

    Shared by the wire-negotiation tests (``test_wire_v2``) and the
    concurrent pin-down tests (``test_fleet``); returns
    ``(server, posts)`` where ``posts`` records every POST body.
    """
    posts: list[tuple[str, dict]] = []

    def error_payload(message, status):
        return {
            "wire_version": 1,
            "kind": "error",
            "error": message,
            "status": status,
        }

    class V1Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002
            pass

        def _send(self, status, payload):
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802
            path = urlsplit(self.path).path.rstrip("/")
            if path == "/healthz":
                # No supported_wire_versions: how v1 daemons look.
                self._send(
                    200,
                    {"wire_version": 1, "kind": "health", "status": "ok"},
                )
            elif path.startswith("/runs/"):
                self._send(
                    404, error_payload("unknown fingerprint", 404)
                )
            else:
                self._send(404, error_payload("no such endpoint", 404))

        def do_POST(self):  # noqa: N802
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length))
            path = urlsplit(self.path).path.rstrip("/")
            posts.append((path, payload))
            if path != "/runs":
                self._send(404, error_payload("no such endpoint", 404))
            elif payload.get("wire_version") != 1:
                self._send(
                    400,
                    error_payload(
                        "expected a run_request payload at wire version 1",
                        400,
                    ),
                )
            else:
                self._send(200, artifact_payload)

    server = ThreadingHTTPServer(("127.0.0.1", 0), V1Handler)
    server.daemon_threads = True
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, posts


@pytest.fixture
def v1_stub(tmp_path, tiny_requests):
    """(url, request, posts) of a stub v1 daemon serving one artifact."""
    request = tiny_requests[0]
    with Orchestrator(store=ResultStore(tmp_path / "v1-store")) as local:
        artifact = local.run(request)
    payload = encode_artifact(artifact, wire_version=1)
    server, posts = start_v1_stub(payload)
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", request, posts
    server.shutdown()
    server.server_close()
