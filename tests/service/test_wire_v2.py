"""Wire v2: version skew, gzip, batching, projections, hardening."""

from __future__ import annotations

import gzip
import http.client
import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.orchestrator import Orchestrator, ResultStore
from repro.service import ServiceClient
from repro.service.protocol import (
    WIRE_VERSION,
    encode_batch,
    encode_poll,
    encode_request,
)
from repro.sim.results import HeadlineResult, RunResult


def get(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=90) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(url, path, payload):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=90) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def raw(address, method, path, body=None, headers=None):
    """One exchange with full header control; (status, headers, body)."""
    connection = http.client.HTTPConnection(*address, timeout=90)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def warm(daemon, requests):
    """Resolve ``requests`` on the daemon so later hits are warm."""
    with ServiceClient(daemon.url) as client:
        client.run_many(requests)


class TestV1ClientAgainstV2Server:
    """Old-wire single-POST clients must keep working verbatim."""

    def test_v1_submit_poll_round_trip(self, daemon, tiny_requests):
        request = tiny_requests[0]
        fingerprint = request.fingerprint()
        envelope = encode_request(request, wire_version=1)
        assert envelope["wire_version"] == 1
        assert "detail" not in envelope  # v1 envelopes know no detail

        status, payload = post(daemon.url, "/runs", envelope)
        assert status == 202
        assert payload == {
            "wire_version": 1,
            "kind": "pending",
            "fingerprint": fingerprint,
        }

        status, payload = get(daemon.url, f"/runs/{fingerprint}?wait=60")
        assert status == 200
        assert payload["wire_version"] == 1  # echoed, not upgraded
        assert "detail" not in payload
        assert "headline" not in payload
        result = RunResult.from_dict(payload["result"])
        assert result.policy_name == request.policy.name

        # Warm resubmission stays a v1 reply too (the variant cache
        # keys on the request's version).
        status, payload = post(daemon.url, "/runs", envelope)
        assert status == 200
        assert payload["wire_version"] == 1
        assert "result" in payload

    def test_v1_stream_lines_are_v1(self, daemon, tiny_requests):
        request = tiny_requests[0]
        warm(daemon, [request])
        with urllib.request.urlopen(
            f"{daemon.url}/runs?fp={request.fingerprint()}", timeout=60
        ) as response:
            lines = [json.loads(line) for line in response if line.strip()]
        assert lines[0]["kind"] == "run_artifact"
        assert lines[0]["wire_version"] == 1
        assert "result" in lines[0]


class TestV2ClientAgainstV1Server:
    # The v1 stub daemon (and the v1_stub fixture) live in conftest.py,
    # shared with the fleet tests' concurrent pin-down coverage.

    def test_ping_negotiates_down(self, v1_stub):
        url, request, posts = v1_stub
        client = ServiceClient(url)
        assert client.wire_version == WIRE_VERSION
        client.ping()
        assert client.wire_version == 1
        artifact = client.run(request)
        assert artifact.fingerprint == request.fingerprint()
        # Every envelope that went over the wire was clean v1.
        assert posts, "client never POSTed"
        for _, payload in posts:
            assert payload["wire_version"] == 1
            assert "detail" not in payload
        client.close()

    def test_unnegotiated_submit_downgrades_once(self, v1_stub):
        url, request, posts = v1_stub
        client = ServiceClient(url)
        artifact = client.run(request)  # no ping() first
        assert artifact.fingerprint == request.fingerprint()
        assert client.wire_version == 1
        # First attempt spoke v2, got refused, retried at v1 -- once.
        versions = [p["wire_version"] for _, p in posts]
        assert versions == [WIRE_VERSION, 1]
        client.close()

    def test_submit_many_falls_back_to_per_request(self, v1_stub):
        url, request, posts = v1_stub
        client = ServiceClient(url)
        futures = client.submit_many([request, request])
        assert len(futures) == 2
        assert futures[0].result(timeout=30).fingerprint == (
            request.fingerprint()
        )
        # The v1 path never touches the batch endpoints.
        assert {path for path, _ in posts} == {"/runs"}
        client.close()


class TestGzip:
    def test_response_gzip_negotiation_round_trips(
        self, daemon, tiny_requests
    ):
        request = tiny_requests[0]
        warm(daemon, [request])
        path = f"/runs/{request.fingerprint()}?v=2&detail=full"
        status, headers, identity = raw(daemon.address, "GET", path)
        assert status == 200
        assert "Content-Encoding" not in headers
        status, headers, compressed = raw(
            daemon.address, "GET", path,
            headers={"Accept-Encoding": "gzip"},
        )
        assert status == 200
        assert headers.get("Content-Encoding") == "gzip"
        assert len(compressed) < len(identity)
        assert json.loads(gzip.decompress(compressed)) == (
            json.loads(identity)
        )

    def test_gzip_request_body_accepted(self, daemon, tiny_requests):
        request = tiny_requests[0]
        body = json.dumps(encode_request(request)).encode()
        status, _, data = raw(
            daemon.address, "POST", "/runs",
            body=gzip.compress(body),
            headers={
                "Content-Type": "application/json",
                "Content-Encoding": "gzip",
            },
        )
        assert status in (200, 202)
        assert json.loads(data)["fingerprint"] == request.fingerprint()
        # Drain so teardown does not race the launched run.
        get(daemon.url, f"/runs/{request.fingerprint()}?wait=60")

    def test_batch_poll_concatenates_gzip_members(
        self, daemon, tiny_requests
    ):
        """A gzip poll body is cached members stitched, not re-zipped."""
        requests = tiny_requests[:2]
        warm(daemon, requests)
        fingerprints = [r.fingerprint() for r in requests]
        body = json.dumps(encode_poll(fingerprints)).encode()
        status, headers, compressed = raw(
            daemon.address, "POST", "/runs/poll",
            body=body,
            headers={
                "Content-Type": "application/json",
                "Accept-Encoding": "gzip",
            },
        )
        assert status == 200
        assert headers.get("Content-Encoding") == "gzip"
        # Multi-member stream: decompress yields every line.
        lines = [
            json.loads(line)
            for line in gzip.decompress(compressed).splitlines()
            if line.strip()
        ]
        assert [line["fingerprint"] for line in lines] == fingerprints
        assert {line["kind"] for line in lines} == {"run_artifact"}

    def test_compressed_and_identity_clients_agree(
        self, daemon_factory, tiny_requests
    ):
        daemon = daemon_factory()
        with ServiceClient(daemon.url, compress=False) as plain:
            identity = plain.run_many(tiny_requests)
        with ServiceClient(daemon.url, compress=True) as zipped:
            compressed = zipped.run_many(tiny_requests)
        for a, b in zip(identity, compressed):
            assert a.fingerprint == b.fingerprint
            assert json.dumps(a.result.to_dict(), sort_keys=True) == (
                json.dumps(b.result.to_dict(), sort_keys=True)
            )
        wire = get(daemon.url, "/stats")[1]["wire"]
        assert wire["responses_gzip"] >= 1
        assert wire["responses_identity"] >= 1


class TestDetailProjection:
    def test_headline_is_strict_field_subset(self, daemon, tiny_requests):
        request = tiny_requests[0]
        warm(daemon, [request])
        fingerprint = request.fingerprint()
        status, full_payload = get(
            daemon.url, f"/runs/{fingerprint}?v=2&detail=full"
        )
        assert status == 200
        status, head_payload = get(
            daemon.url, f"/runs/{fingerprint}?v=2&detail=headline"
        )
        assert status == 200
        assert head_payload["detail"] == "headline"
        assert "result" not in head_payload

        full_result = RunResult.from_dict(full_payload["result"])
        headline = head_payload["headline"]
        # Every projected field is derivable from the full ledger and
        # exactly equal to it (JSON float round-trips are exact).
        assert headline == full_result.headline()
        # ...and the projection is *strict*: the full ledger carries
        # more than the headline block.
        assert len(json.dumps(head_payload)) < len(
            json.dumps(full_payload)
        )

    def test_headline_accessors_match_full(self, daemon, tiny_requests):
        request = tiny_requests[0]
        with ServiceClient(daemon.url) as client:
            full = client.run(request, detail="full").result
            head = client.run(request, detail="headline").result
        assert isinstance(head, HeadlineResult)
        assert not isinstance(full, HeadlineResult)
        assert head.policy_name == full.policy_name
        assert head.total_grid_cost_eur() == full.total_grid_cost_eur()
        assert head.total_energy_gj() == full.total_energy_gj()
        assert head.total_facility_energy_joules() == (
            full.total_facility_energy_joules()
        )
        assert head.renewable_utilization() == full.renewable_utilization()
        assert head.mean_response_s() == full.mean_response_s()
        assert head.percentile_response_s(99.0) == (
            full.percentile_response_s(99.0)
        )
        assert head.total_migrations() == full.total_migrations()

    def test_headline_lazily_upgrades_to_full(self, daemon, tiny_requests):
        request = tiny_requests[0]
        with ServiceClient(daemon.url, detail="headline") as client:
            full = client.run(request, detail="full").result
            head = client.run(request).result  # client default: headline
            assert isinstance(head, HeadlineResult)
            # Anything beyond the headline block fetches the full
            # ledger over the wire, transparently.
            assert head.to_dict() == full.to_dict()
            assert head.full().policy_name == full.policy_name

    def test_client_detail_used_by_analysis_consumer(
        self, daemon, tiny_config
    ):
        """A headline-declaring consumer works end to end over wire."""
        from repro.analysis.sensitivity import sweep_qos

        with ServiceClient(daemon.url) as client:
            rows = sweep_qos(
                tiny_config, qos_levels=(0.98, 0.95), orchestrator=client
            )
        assert [row.value for row in rows] == [0.98, 0.95]
        assert all(row.cost_eur >= 0 for row in rows)

    def test_inprocess_orchestrator_accepts_detail(
        self, tmp_path, tiny_requests
    ):
        """The in-process surface takes detail= and ignores it."""
        with Orchestrator(store=ResultStore(tmp_path / "s")) as local:
            artifacts = local.run_many(
                tiny_requests[:1], detail="headline"
            )
        assert isinstance(artifacts[0].result, RunResult)

    def test_bad_detail_rejected(self, daemon, tiny_requests):
        status, payload = get(
            daemon.url, f"/runs/{'0' * 64}?v=2&detail=everything"
        )
        assert status == 400
        assert "detail" in payload["error"]


class TestBatchEndpoints:
    def test_batch_dispositions_in_entry_order(self, daemon, tiny_requests):
        warm_request, fresh_request = tiny_requests[0], tiny_requests[1]
        warm(daemon, [warm_request])
        entries = [
            encode_request(warm_request),
            encode_request(fresh_request),
        ]
        body = json.dumps(encode_batch(entries)).encode()
        status, _, data = raw(
            daemon.address, "POST", "/runs/batch",
            body=body, headers={"Content-Type": "application/json"},
        )
        assert status == 200
        lines = [
            json.loads(line) for line in data.splitlines() if line.strip()
        ]
        assert len(lines) == 2
        assert lines[0]["fingerprint"] == warm_request.fingerprint()
        assert lines[0]["kind"] == "run_artifact"
        assert lines[1]["fingerprint"] == fresh_request.fingerprint()
        assert lines[1]["kind"] in ("pending", "run_artifact")
        get(daemon.url, f"/runs/{fresh_request.fingerprint()}?wait=60")

    def test_malformed_batch_entry_poisons_only_its_line(
        self, daemon, tiny_requests
    ):
        good = encode_request(tiny_requests[0])
        bad = {"wire_version": WIRE_VERSION, "kind": "nonsense"}
        body = json.dumps(encode_batch([bad, good])).encode()
        status, _, data = raw(
            daemon.address, "POST", "/runs/batch",
            body=body, headers={"Content-Type": "application/json"},
        )
        assert status == 200
        lines = [
            json.loads(line) for line in data.splitlines() if line.strip()
        ]
        assert lines[0]["kind"] == "error"
        assert lines[1]["kind"] in ("pending", "run_artifact")
        get(daemon.url, f"/runs/{tiny_requests[0].fingerprint()}?wait=60")

    def test_poll_reports_unknown_fingerprints(self, daemon):
        body = json.dumps(encode_poll(["0" * 64])).encode()
        status, _, data = raw(
            daemon.address, "POST", "/runs/poll",
            body=body, headers={"Content-Type": "application/json"},
        )
        assert status == 200
        line = json.loads(data.splitlines()[0])
        assert line["kind"] == "error"
        assert line["status"] == 404

    def test_warm_submit_many_costs_few_round_trips(
        self, daemon, tiny_requests
    ):
        warm(daemon, tiny_requests)
        before = get(daemon.url, "/stats")[1]["requests"]
        with ServiceClient(daemon.url) as client:
            artifacts = client.run_many(tiny_requests)
        after = get(daemon.url, "/stats")[1]["requests"]
        assert len(artifacts) == len(tiny_requests)
        # One negotiation ping + one chunked poll settles the whole
        # warm sweep -- not one POST per request.
        assert after - before <= 3
        assert after - before < len(tiny_requests)

    def test_wire_counters_observe_batching(self, daemon, tiny_requests):
        with ServiceClient(daemon.url) as client:
            client.run_many(tiny_requests)  # fresh: poll + batch POSTs
        wire = get(daemon.url, "/stats")[1]["wire"]
        assert wire["batch_requests"] >= 1
        assert wire["batch_entries"] >= len(tiny_requests)
        assert wire["bytes_in"] > 0
        assert wire["bytes_out"] > 0
        assert wire["request_p99_ms"] >= wire["request_p50_ms"] >= 0.0


class TestRequestCaps:
    def test_oversized_body_refused_before_read(self, daemon_factory):
        daemon = daemon_factory(max_body_bytes=2048)
        # Declare a huge body but never send it: the 413 must arrive
        # anyway, proving the daemon rejected on the declared length.
        sock = socket.create_connection(daemon.address, timeout=10)
        try:
            sock.sendall(
                b"POST /runs HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 999999999\r\n\r\n"
            )
            reply = sock.recv(65536).decode()
        finally:
            sock.close()
        status_line, _, rest = reply.partition("\r\n")
        assert " 413 " in status_line
        assert "connection: close" in rest.lower()

    def test_missing_content_length_411(self, daemon):
        sock = socket.create_connection(daemon.address, timeout=10)
        try:
            sock.sendall(
                b"POST /runs HTTP/1.1\r\nHost: t\r\n"
                b"Content-Type: application/json\r\n\r\n"
            )
            reply = sock.recv(65536).decode()
        finally:
            sock.close()
        assert " 411 " in reply.partition("\r\n")[0]

    def test_gzip_bomb_capped_on_inflated_size(self, daemon_factory):
        daemon = daemon_factory(max_body_bytes=2048)
        bomb = gzip.compress(b"0" * 1_000_000)  # ~1KB compressed
        assert len(bomb) <= 2048
        status, _, data = raw(
            daemon.address, "POST", "/runs",
            body=bomb,
            headers={
                "Content-Type": "application/json",
                "Content-Encoding": "gzip",
            },
        )
        assert status == 413
        assert "inflates" in json.loads(data)["error"]

    def test_batch_endpoint_shares_the_cap(self, daemon_factory):
        daemon = daemon_factory(max_body_bytes=2048)
        status, _, data = raw(
            daemon.address, "POST", "/runs/batch",
            body=b"x" * 4096,
            headers={"Content-Type": "application/json"},
        )
        assert status == 413


class TestStaleKeepAlive:
    def test_idle_closed_connection_is_retried_transparently(
        self, daemon_factory, tiny_requests
    ):
        daemon = daemon_factory(idle_timeout_s=0.25)
        client = ServiceClient(daemon.url)
        assert client.ping()["status"] == "ok"
        time.sleep(0.8)  # daemon reaps the idle keep-alive socket
        # The next call would die with RemoteDisconnected on the stale
        # socket; the client retries once on a fresh connection.
        assert client.stats()["kind"] == "stats"
        time.sleep(0.8)
        artifact = client.run(tiny_requests[0])
        assert artifact.fingerprint == tiny_requests[0].fingerprint()
        client.close()
