"""Event-engine runs over the service wire: identity and visibility.

The acceptance bar for the event core is byte-identical slot ledgers
on *every* execution path, including ``--service``: a daemon decodes
the request (with its :class:`~repro.sim.config.EngineCoreConfig`),
simulates with the event driver in its own process, and ships the
artifact back.  These tests pin the wire round-trip of the engine
config, the cross-process ledger identity, and the daemon's
engine-mode observability (``/stats``, ``/healthz``, fleet status).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.orchestrator import EngineOptions, RunRequest
from repro.experiments.runner import default_policies
from repro.service.fleet import FleetClient
from repro.service.protocol import decode_request, encode_request
from repro.sim.config import EngineCoreConfig
from repro.sim.engine import SimulationEngine


@pytest.fixture
def event_request(tiny_config):
    return RunRequest(
        config=tiny_config,
        policy=default_policies()[1],  # EnerAware: cheapest of the four
        options=EngineOptions(engine=EngineCoreConfig(kind="event")),
    )


class TestCodecRoundTrip:
    def test_engine_config_survives_the_wire(self, event_request):
        decoded, fingerprint, _ = decode_request(
            encode_request(event_request)
        )
        assert isinstance(decoded.options.engine, EngineCoreConfig)
        assert decoded.options.engine.kind == "event"
        assert fingerprint == event_request.fingerprint()

    def test_engine_mode_is_part_of_the_fingerprint(self, tiny_config):
        slot = RunRequest(
            config=tiny_config, policy=default_policies()[1]
        )
        event = RunRequest(
            config=tiny_config,
            policy=default_policies()[1],
            options=EngineOptions(
                engine=EngineCoreConfig(kind="event")
            ),
        )
        assert slot.fingerprint() != event.fingerprint()


class TestServicePathIdentity:
    def test_daemon_event_run_matches_local_slot_run(
        self, client, event_request, tiny_config
    ):
        artifact = client.run(event_request)
        local = SimulationEngine(
            tiny_config, default_policies()[1]
        ).run()
        remote_bytes = json.dumps(
            [record.to_dict() for record in artifact.result.slots],
            sort_keys=True,
        )
        local_bytes = json.dumps(
            [record.to_dict() for record in local.slots], sort_keys=True
        )
        assert remote_bytes == local_bytes
        # The event driver's extra product crossed the wire too.
        assert artifact.result.total_requests() > 0
        assert artifact.result.p99_request_s() is not None

    def test_headline_projection_carries_request_percentiles(
        self, client, event_request
    ):
        client.run(event_request)  # warm the store
        projected = client.run(event_request, detail="headline")
        assert projected.result.total_requests() > 0
        assert projected.result.p999_request_s() is not None


class TestEngineModeVisibility:
    def test_stats_and_health_count_decoded_modes(
        self, daemon, client, event_request, tiny_requests
    ):
        client.run(event_request)
        client.run(tiny_requests[0])
        stats = daemon.stats()
        assert stats["engine_modes"]["event"] == 1
        assert stats["engine_modes"]["slot"] == 1
        assert daemon.health()["engine_modes"] == stats["engine_modes"]

    def test_fleet_status_reports_engine_modes(
        self, daemon, client, event_request
    ):
        client.run(event_request)
        fleet = FleetClient([daemon.url])
        try:
            (member,) = fleet.status()["fleet"]["members"]
        finally:
            fleet.close()
        assert member["engine_modes"] == {"event": 1}
