"""Wire envelopes: versioning, verification, artifact round trips."""

from __future__ import annotations

import json

import pytest

from repro.experiments.orchestrator import (
    RunArtifact,
    RunRequest,
    execute_request,
)
from repro.experiments.runner import default_policies
from repro.service.protocol import (
    WIRE_VERSION,
    WireError,
    decode_artifact,
    decode_request,
    encode_artifact,
    encode_error,
    encode_pending,
    encode_request,
)
from repro.sim.config import scaled_config


@pytest.fixture(scope="module")
def request_and_artifact():
    config = scaled_config("tiny", seed=0).with_horizon(1)
    request = RunRequest(config=config, policy=default_policies()[0])
    result = execute_request(request)
    artifact = RunArtifact(
        fingerprint=request.fingerprint(),
        result=result,
        source="computed",
        elapsed_s=1.25,
    )
    return request, artifact


class TestRequestEnvelope:
    def test_roundtrip(self, request_and_artifact):
        request, _ = request_and_artifact
        payload = json.loads(json.dumps(encode_request(request)))
        assert payload["wire_version"] == WIRE_VERSION
        assert payload["kind"] == "run_request"
        back, fingerprint, use_store = decode_request(payload)
        assert fingerprint == request.fingerprint()
        assert use_store
        assert back.fingerprint() == request.fingerprint()

    def test_use_store_false_travels(self, request_and_artifact):
        request, _ = request_and_artifact
        payload = encode_request(request, use_store=False)
        _, _, use_store = decode_request(payload)
        assert not use_store

    def test_version_mismatch_refused(self, request_and_artifact):
        request, _ = request_and_artifact
        payload = encode_request(request)
        payload["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="version"):
            decode_request(payload)

    def test_wrong_kind_refused(self, request_and_artifact):
        request, _ = request_and_artifact
        payload = encode_request(request)
        payload["kind"] = "run_artifact"
        with pytest.raises(WireError, match="kind|expected"):
            decode_request(payload)

    def test_fingerprint_mismatch_refused(self, request_and_artifact):
        request, _ = request_and_artifact
        payload = encode_request(request)
        payload["fingerprint"] = "0" * 64
        with pytest.raises(WireError, match="mismatch"):
            decode_request(payload)

    def test_non_request_tree_refused(self):
        payload = {
            "wire_version": WIRE_VERSION,
            "kind": "run_request",
            "fingerprint": "0" * 64,
            "request": {"just": "data"},
        }
        with pytest.raises(WireError, match="not a RunRequest"):
            decode_request(payload)

    def test_non_object_payload_refused(self):
        with pytest.raises(WireError):
            decode_request(["nope"])


class TestArtifactEnvelope:
    def test_roundtrip_is_bit_identical(self, request_and_artifact):
        _, artifact = request_and_artifact
        payload = json.loads(json.dumps(encode_artifact(artifact)))
        back = decode_artifact(payload)
        assert back.fingerprint == artifact.fingerprint
        assert back.source == "computed"
        assert back.elapsed_s == 1.25
        assert json.dumps(
            back.result.to_dict(), sort_keys=True
        ) == json.dumps(artifact.result.to_dict(), sort_keys=True)

    def test_version_checked(self, request_and_artifact):
        _, artifact = request_and_artifact
        payload = encode_artifact(artifact)
        payload["wire_version"] = 99
        with pytest.raises(WireError, match="version"):
            decode_artifact(payload)


class TestAuxiliaryEnvelopes:
    def test_pending(self):
        payload = encode_pending("ab" * 32)
        assert payload["kind"] == "pending"
        assert payload["wire_version"] == WIRE_VERSION

    def test_error_carries_fields(self):
        payload = encode_error("boom", fingerprint="ab" * 32, status=500)
        assert payload["kind"] == "error"
        assert payload["error"] == "boom"
        assert payload["status"] == 500
        assert payload["fingerprint"] == "ab" * 32
