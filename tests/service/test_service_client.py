"""ServiceClient: the drop-in orchestrator surface against a daemon."""

from __future__ import annotations

import json

import pytest

from repro.analysis.lower_bound import comparison_bounds
from repro.analysis.pareto import alpha_sweep
from repro.analysis.sensitivity import sweep_qos
from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunRequest,
)
from repro.experiments.runner import default_policies, run_comparison
from repro.service import ServiceClient, ServiceError
from repro.service.client import ServiceRunError


class TestConstruction:
    def test_rejects_non_http_urls(self):
        with pytest.raises(ServiceError):
            ServiceClient("ftp://host:1")

    def test_rejects_bad_port_and_paths_cleanly(self):
        with pytest.raises(ServiceError, match="http://host:port"):
            ServiceClient("http://127.0.0.1:80x0")
        with pytest.raises(ServiceError, match="http://host:port"):
            ServiceClient("http://127.0.0.1:8123/prefix")

    def test_bare_host_port_accepted(self, daemon):
        host, port = daemon.address
        client = ServiceClient(f"{host}:{port}")
        assert client.ping()["status"] == "ok"

    def test_unreachable_daemon(self):
        client = ServiceClient("http://127.0.0.1:9", timeout_s=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.ping()

    def test_with_jobs_is_identity(self, client):
        assert client.with_jobs(8) is client


class TestSubmission:
    def test_submit_resolves_to_artifact(self, client, tiny_requests):
        future = client.submit(tiny_requests[0])
        artifact = future.result(timeout=60)
        assert artifact.fingerprint == tiny_requests[0].fingerprint()
        assert future.done()
        assert future.exception(timeout=0) is None

    def test_second_submit_is_store_hit(self, client, tiny_requests):
        client.submit(tiny_requests[0]).result(timeout=60)
        future = client.submit(tiny_requests[0])
        assert future.done()  # instant reply, no polling needed
        assert future.result().from_cache

    def test_submit_many_shares_duplicates(self, client, tiny_requests):
        request = tiny_requests[0]
        futures = client.submit_many([request, request, request])
        assert len(futures) == 3
        assert len({f.fingerprint for f in futures}) == 1
        artifacts = [f.result(timeout=60) for f in futures]
        assert client.stats()["computed"] == 1
        assert len({a.fingerprint for a in artifacts}) == 1

    def test_as_done_yields_every_distinct_future(
        self, client, tiny_requests
    ):
        """Two submit() calls of one request both yield, like in-process."""
        request = tiny_requests[0]
        first = client.submit(request)
        second = client.submit(request)
        assert first is not second
        yielded = list(client.as_done([first, second]))
        assert set(yielded) == {first, second}
        assert all(f.done() for f in yielded)

    def test_run_many_matches_inprocess_bit_for_bit(
        self, client, tiny_requests, tmp_path
    ):
        remote = client.run_many(tiny_requests)
        local = Orchestrator(
            store=ResultStore(tmp_path / "local")
        ).run_many(tiny_requests)
        for over_wire, in_process in zip(remote, local):
            assert over_wire.fingerprint == in_process.fingerprint
            assert json.dumps(
                over_wire.result.to_dict(), sort_keys=True
            ) == json.dumps(in_process.result.to_dict(), sort_keys=True)

    def test_as_resolved_streams_all(self, client, tiny_requests):
        futures = client.submit_many(tiny_requests)
        artifacts = list(client.as_resolved(futures))
        assert {a.fingerprint for a in artifacts} == {
            r.fingerprint() for r in tiny_requests
        }

    def test_progress_callback_fires(self, daemon, tiny_requests):
        seen = []
        client = ServiceClient(
            daemon.url, progress=lambda done, total: seen.append((done, total))
        )
        client.run_many(tiny_requests[:2])
        assert seen[-1] == (2, 2)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    def test_failed_run_raises_service_run_error(self, daemon_factory, tiny_config):
        import numpy as np

        from repro.workload.packs import RecordedTraceSource, TracePack

        daemon = daemon_factory(jobs=1)
        client = ServiceClient(daemon.url)
        pack = TracePack(
            name="mismatched",
            source=RecordedTraceSource(
                utilization=np.full((3, 60), 0.5), steps_per_slot=60
            ),
        )
        request = RunRequest(
            config=tiny_config, policy=default_policies()[0], pack=pack
        )
        with pytest.raises(ServiceRunError, match="steps per slot"):
            client.run(request)


class TestAnalysisConsumers:
    """The analysis layer takes a ServiceClient verbatim."""

    def test_run_comparison(self, client, tiny_config):
        results = run_comparison(tiny_config, orchestrator=client)
        assert [r.policy_name for r in results] == [
            "Proposed", "Ener-aware", "Pri-aware", "Net-aware",
        ]

    def test_alpha_sweep(self, client, tiny_config):
        points = alpha_sweep(tiny_config, (0.3, 0.7), orchestrator=client)
        assert [p.alpha for p in points] == [0.3, 0.7]

    def test_sweep_qos(self, client, tiny_config):
        rows = sweep_qos(
            tiny_config, qos_levels=(0.98, 0.95), orchestrator=client
        )
        assert [row.value for row in rows] == [0.98, 0.95]

    def test_comparison_bounds(self, client, tiny_config):
        bounds = comparison_bounds(tiny_config, orchestrator=client)
        assert len(bounds) == 4
        for result, bound in bounds:
            assert bound.total_cost_eur <= bound.actual_cost_eur + 1e-9
