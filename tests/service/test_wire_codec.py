"""Reversible codec: round trips, fingerprint stability, import safety."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.controller import ProposedPolicy
from repro.core.forces import ForceParameters
from repro.core.local import allocate_first_fit
from repro.experiments.orchestrator import (
    EngineOptions,
    RunRequest,
    canonical,
)
from repro.experiments.runner import default_policies
from repro.service.codec import CodecError, decode, encode
from repro.sim.config import paper_config, scaled_config
from repro.workload.packs import (
    DataCorrelationParams,
    RecordedTraceSource,
    TracePack,
    get_pack,
)
from repro.workload.vm import AppType


def roundtrip(value):
    """encode -> JSON bytes -> decode, as the wire does."""
    return decode(json.loads(json.dumps(encode(value))))


class TestPlainValues:
    def test_scalars(self):
        for value in (None, True, False, 0, -3, 2.5, "x", ""):
            assert roundtrip(value) == value

    def test_containers(self):
        assert roundtrip([1, [2, "a"]]) == [1, [2, "a"]]
        assert roundtrip((1, (2, 3))) == (1, (2, 3))
        assert isinstance(roundtrip((1, 2)), tuple)
        assert roundtrip({"a": 1, "b": [2]}) == {"a": 1, "b": [2]}

    def test_enum_keyed_dict(self):
        mix = {AppType.WEB: 0.25, AppType.HPC: 0.75}
        back = roundtrip(mix)
        assert back == mix
        assert all(isinstance(key, AppType) for key in back)

    def test_dict_with_tag_shaped_key(self):
        tricky = {"__tuple__": "not a tuple"}
        assert roundtrip(tricky) == tricky

    def test_ndarray(self):
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        back = roundtrip(matrix)
        assert back.dtype == matrix.dtype
        np.testing.assert_array_equal(back, matrix)

    def test_numpy_scalar_collapses(self):
        assert roundtrip(np.float64(2.5)) == 2.5
        assert roundtrip(np.int64(7)) == 7

    def test_unencodable(self):
        with pytest.raises(CodecError):
            encode(open)  # builtin, not under repro
        with pytest.raises(CodecError):
            encode(lambda x: x)


class TestConfigsAndPolicies:
    @pytest.mark.parametrize("scale", ["tiny", "small"])
    def test_scaled_config_roundtrip(self, scale):
        config = scaled_config(scale, seed=3)
        back = roundtrip(config)
        assert canonical(back) == canonical(config)

    def test_paper_config_roundtrip(self):
        config = paper_config(seed=1)
        assert canonical(roundtrip(config)) == canonical(config)

    @pytest.mark.parametrize(
        "policy", default_policies(0.7), ids=lambda p: p.name
    )
    def test_policy_roundtrip(self, policy):
        back = roundtrip(policy)
        assert type(back) is type(policy)
        assert canonical(back.descriptor()) == canonical(policy.descriptor())

    def test_policy_with_function_state(self):
        policy = ProposedPolicy(
            force_params=ForceParameters(alpha=0.9),
            local_allocator=allocate_first_fit,
        )
        back = roundtrip(policy)
        assert back.local_allocator is allocate_first_fit
        assert canonical(back.descriptor()) == canonical(policy.descriptor())


class TestFingerprintStability:
    def test_full_request_fingerprints(self):
        config = scaled_config("tiny", seed=2)
        for policy in default_policies(0.3):
            request = RunRequest(
                config=config,
                policy=policy,
                seed=9,
                options=EngineOptions(clairvoyant=True, validate=False),
            )
            assert roundtrip(request).fingerprint() == request.fingerprint()

    def test_synthetic_pack_request(self):
        request = RunRequest(
            config=scaled_config("tiny"),
            policy=default_policies()[0],
            pack=get_pack("synthetic"),
        )
        back = roundtrip(request)
        assert back.fingerprint() == request.fingerprint()
        assert back.pack.sha256 == request.pack.sha256

    def test_recorded_pack_request(self):
        matrix = np.random.default_rng(7).random((4, 60))
        pack = TracePack(
            name="recorded-test",
            source=RecordedTraceSource(
                utilization=matrix, steps_per_slot=30, extend_days=2
            ),
            datacorr=DataCorrelationParams(dense=True),
            app_mix={AppType.WEB: 0.5, AppType.BATCH: 0.5},
        )
        request = RunRequest(
            config=scaled_config("tiny"),
            policy=default_policies()[1],
            pack=pack,
        )
        back = roundtrip(request)
        assert back.fingerprint() == request.fingerprint()
        assert back.pack.sha256 == pack.sha256
        np.testing.assert_array_equal(
            back.pack.source.utilization, matrix
        )


class TestDecodeSafety:
    def test_refuses_modules_outside_repro(self):
        for tag in ("__object__", "__dataclass__", "__callable__"):
            with pytest.raises(CodecError, match="repro"):
                decode({tag: "os:system"})

    def test_refuses_stdlib_dotted_prefix_spoof(self):
        with pytest.raises(CodecError):
            decode({"__callable__": "reprolib.evil:run"})

    def test_refuses_foreign_objects_reached_through_repro(self):
        """repro modules import the stdlib; walking to it is refused."""
        with pytest.raises(CodecError, match="outside"):
            decode({"__callable__": "repro.cli:os.system"})
        with pytest.raises(CodecError, match="outside"):
            decode({"__callable__": "repro.cli:pathlib.Path"})
        with pytest.raises(CodecError):
            decode(
                {"__object__": "repro.cli:np.ndarray", "state": {}}
            )

    def test_refuses_wrong_category(self):
        # A real repro class, but not an enum.
        with pytest.raises(CodecError, match="not an enum"):
            decode(
                {"__enum__": "repro.sim.config:ExperimentConfig", "name": "X"}
            )
        with pytest.raises(CodecError, match="not a dataclass"):
            decode(
                {
                    "__dataclass__": "repro.core.controller:ProposedPolicy",
                    "fields": {},
                }
            )

    def test_refuses_unknown_attribute(self):
        with pytest.raises(CodecError):
            decode({"__callable__": "repro.sim.config:no_such_thing"})

    def test_refuses_bad_constructor_args(self):
        with pytest.raises(CodecError):
            decode(
                {
                    "__object__": "repro.core.controller:ProposedPolicy",
                    "state": {"bogus_kwarg": 1},
                }
            )
