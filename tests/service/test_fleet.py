"""Fleet client: routing, exactly-once, failover, transport hardening.

The scenarios the distributed runner fleet must survive:

* routing is deterministic and member-order-independent (rendezvous);
* a cold sweep over N daemons sharing one segment root executes each
  miss exactly once fleet-wide, even with concurrent fleet clients
  that disagree on member order;
* killing a member mid-sweep reroutes its pending fingerprints and
  the sweep completes with no lost or duplicated artifacts;
* fleet-resolved artifacts are byte-identical to in-process ones;
* the per-member transport survives stale keep-alive sockets and v1
  pin-down races under concurrent threads (load-bearing once the
  fleet multiplies transports).
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunRequest,
)
from repro.experiments.runner import default_policies
from repro.service import (
    FleetClient,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    parse_fleet_spec,
    rendezvous_member,
)
from repro.sim.config import scaled_config


@pytest.fixture
def fleet_daemons(tmp_path, daemon_factory):
    """Three daemons sharing one segment store root."""
    root = tmp_path / "shared-store"
    return [
        daemon_factory(
            jobs=2, store_root=root, daemon_id=f"member-{index}"
        )
        for index in range(3)
    ]


@pytest.fixture
def fleet(fleet_daemons):
    with FleetClient(
        [daemon.url for daemon in fleet_daemons], poll_wait_s=1.0
    ) as fleet:
        yield fleet


def grid_requests(seeds, horizon=2):
    return [
        RunRequest(
            config=scaled_config("tiny", seed=seed).with_horizon(horizon),
            policy=policy,
        )
        for seed in seeds
        for policy in default_policies()
    ]


def canonical_result(artifact):
    return json.dumps(artifact.result.to_dict(), sort_keys=True)


class TestRouting:
    def test_rendezvous_is_member_order_independent(self):
        members = [f"http://10.0.0.{i}:8123" for i in range(1, 8)]
        fingerprints = [f"{i:064x}" for i in range(500)]
        baseline = {
            fp: rendezvous_member(fp, members) for fp in fingerprints
        }
        for trial in range(5):
            shuffled = list(members)
            random.Random(trial).shuffle(shuffled)
            for fp in fingerprints:
                assert rendezvous_member(fp, shuffled) == baseline[fp]

    def test_rendezvous_balances_roughly(self):
        members = [f"http://10.0.0.{i}:8123" for i in range(1, 4)]
        fingerprints = [f"{i:064x}" for i in range(3000)]
        counts = {member: 0 for member in members}
        for fp in fingerprints:
            counts[rendezvous_member(fp, members)] += 1
        for count in counts.values():
            assert 700 <= count <= 1300  # ~1000 ± 30%

    def test_rendezvous_moves_little_on_member_loss(self):
        members = [f"http://10.0.0.{i}:8123" for i in range(1, 5)]
        fingerprints = [f"{i:064x}" for i in range(2000)]
        before = {
            fp: rendezvous_member(fp, members) for fp in fingerprints
        }
        survivors = members[1:]
        moved = sum(
            1
            for fp in fingerprints
            if before[fp] in survivors
            and rendezvous_member(fp, survivors) != before[fp]
        )
        # Keys owned by survivors must not move when a member dies.
        assert moved == 0

    def test_rendezvous_refuses_empty_membership(self):
        with pytest.raises(ServiceUnavailable):
            rendezvous_member("ab" * 32, [])


class TestFleetSpec:
    def test_comma_separated(self):
        assert parse_fleet_spec(
            "http://a:1, http://b:2 ,http://a:1"
        ) == ["http://a:1", "http://b:2"]

    def test_list_and_single(self):
        assert parse_fleet_spec(["http://a:1"]) == ["http://a:1"]
        assert parse_fleet_spec("http://a:1") == ["http://a:1"]

    def test_fleet_file(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text(
            "# the fleet\nhttp://a:1\n\nhttp://b:2  # second member\n"
        )
        assert parse_fleet_spec(f"@{path}") == [
            "http://a:1",
            "http://b:2",
        ]
        assert parse_fleet_spec(str(path)) == [
            "http://a:1",
            "http://b:2",
        ]

    def test_empty_spec_refused(self, tmp_path):
        with pytest.raises(ServiceError):
            parse_fleet_spec("  ,  ")
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing\n")
        with pytest.raises(ServiceError):
            parse_fleet_spec(f"@{empty}")

    def test_missing_fleet_file_refused(self, tmp_path):
        with pytest.raises(ServiceError):
            parse_fleet_spec(f"@{tmp_path / 'nope.txt'}")


class TestFleetSweep:
    def test_cold_sweep_routes_and_merges(self, fleet, fleet_daemons):
        requests = grid_requests(range(4))
        unique = {request.fingerprint() for request in requests}
        artifacts = fleet.run_many(requests)
        assert len(artifacts) == len(requests)
        assert [a.fingerprint for a in artifacts] == [
            r.fingerprint() for r in requests
        ]
        # Exactly-once: per-member executed-run counters sum to the
        # number of unique misses...
        computed = {
            daemon.daemon_id: daemon.counters["computed"]
            for daemon in fleet_daemons
        }
        assert sum(computed.values()) == len(unique)
        # ...and each member computed exactly its rendezvous share.
        expected = {daemon.daemon_id: 0 for daemon in fleet_daemons}
        by_url = {
            member["url"]: member["daemon_id"]
            for member in fleet.status()["fleet"]["members"]
        }
        for fingerprint in unique:
            owner = rendezvous_member(fingerprint, list(by_url))
            expected[by_url[owner]] += 1
        assert computed == expected

    def test_artifacts_byte_identical_to_in_process(
        self, tmp_path, fleet
    ):
        requests = grid_requests(range(2))
        fleet_artifacts = fleet.run_many(requests)
        with Orchestrator(
            store=ResultStore(tmp_path / "local-store")
        ) as local:
            local_artifacts = local.run_many(requests)
        for ours, theirs in zip(fleet_artifacts, local_artifacts):
            assert canonical_result(ours) == canonical_result(theirs)

    def test_warm_hits_resolve_without_execution(
        self, fleet, fleet_daemons
    ):
        requests = grid_requests(range(2))
        fleet.run_many(requests)
        computed = sum(d.counters["computed"] for d in fleet_daemons)
        again = fleet.run_many(requests)
        assert len(again) == len(requests)
        assert (
            sum(d.counters["computed"] for d in fleet_daemons) == computed
        )

    def test_duplicate_fingerprints_share_one_future(self, fleet):
        requests = grid_requests([0])
        futures = fleet.submit_many(requests + requests)
        assert futures[0] is futures[len(requests)]
        done = list(fleet.as_done(futures))
        assert len(done) == len(requests)  # unique futures only

    def test_progress_callback_fires_per_unique_run(self, fleet_daemons):
        events = []
        with FleetClient(
            [d.url for d in fleet_daemons],
            progress=lambda done, total: events.append((done, total)),
            poll_wait_s=1.0,
        ) as fleet:
            requests = grid_requests(range(2))
            fleet.run_many(requests)
        unique = len({r.fingerprint() for r in requests})
        assert events[-1] == (unique, unique)

    def test_daemon_id_stamped_into_store_meta(
        self, fleet, fleet_daemons, tmp_path
    ):
        requests = grid_requests([0])
        fleet.run_many(requests)
        store = fleet_daemons[0].orchestrator.store
        stamped = {
            fingerprint: document["meta"]["daemon"]
            for fingerprint, document in store.documents()
        }
        members = {daemon.daemon_id for daemon in fleet_daemons}
        for fingerprint in (r.fingerprint() for r in requests):
            assert stamped[fingerprint] in members


class TestExactlyOnceUnderConcurrency:
    def test_concurrent_fleet_clients_execute_each_miss_once(
        self, fleet_daemons
    ):
        urls = [daemon.url for daemon in fleet_daemons]
        requests = grid_requests(range(3))
        unique = {request.fingerprint() for request in requests}
        results: dict[int, list] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(2)

        def sweep(slot: int, member_urls: list[str]) -> None:
            # Clients deliberately disagree on member order.
            with FleetClient(member_urls, poll_wait_s=1.0) as fleet:
                barrier.wait()
                try:
                    results[slot] = fleet.run_many(requests)
                except BaseException as error:  # surfaced below
                    errors.append(error)

        threads = [
            threading.Thread(target=sweep, args=(0, urls)),
            threading.Thread(target=sweep, args=(1, urls[::-1])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results[0]) == len(results[1]) == len(requests)
        # Both clients resolved identical bytes...
        for ours, theirs in zip(results[0], results[1]):
            assert canonical_result(ours) == canonical_result(theirs)
        # ...and the fleet executed each unique miss exactly once.
        computed = sum(d.counters["computed"] for d in fleet_daemons)
        assert computed == len(unique)


class TestFailover:
    def test_kill_mid_sweep_completes_with_no_lost_or_dup_artifacts(
        self, tmp_path, daemon_factory
    ):
        root = tmp_path / "shared-store"
        daemons = [
            daemon_factory(
                jobs=2, store_root=root, daemon_id=f"member-{index}"
            )
            for index in range(3)
        ]
        # Horizon 6 runs take long enough that the kill lands while
        # the victim still owns unresolved work.
        requests = grid_requests(range(6), horizon=6)
        unique = {request.fingerprint() for request in requests}
        with FleetClient(
            [daemon.url for daemon in daemons], poll_wait_s=0.5
        ) as fleet:
            futures = fleet.submit_many(requests)
            victim = daemons[1]
            threading.Timer(0.3, victim.kill).start()
            done = list(fleet.as_done(futures))
            # No lost runs: every future resolved, none with an error.
            assert len(done) == len(unique)
            assert all(f.exception() is None for f in done)
            assert {f.fingerprint for f in done} == unique
            status = fleet.status()["fleet"]
            assert status["alive"] == 2
            down = [m for m in status["members"] if not m["alive"]]
            assert len(down) == 1
        # No lost artifacts: the shared store resolves every
        # fingerprint, each to exactly one document (the store's
        # fetch path dedups; byte-identity of re-executed runs is
        # covered above, so any racing duplicate is indistinguishable
        # anyway).
        store = ResultStore(root, backend="segment")
        for fingerprint in unique:
            assert store.fetch(fingerprint) is not None

    def test_pending_result_reroutes_after_kill(
        self, tmp_path, daemon_factory
    ):
        root = tmp_path / "shared-store"
        daemons = [
            daemon_factory(
                jobs=2, store_root=root, daemon_id=f"member-{index}"
            )
            for index in range(2)
        ]
        request = grid_requests([11], horizon=6)[0]
        with FleetClient(
            [daemon.url for daemon in daemons], poll_wait_s=0.5
        ) as fleet:
            future = fleet.submit(request)
            owner_url = fleet.member_for(request.fingerprint())
            owner_id = next(
                member["daemon_id"]
                for member in fleet.status()["fleet"]["members"]
                if member["url"] == owner_url
            )
            owner = next(
                d for d in daemons if d.daemon_id == owner_id
            )
            threading.Timer(0.2, owner.kill).start()
            artifact = future.result(timeout=60)
            assert artifact.fingerprint == request.fingerprint()

    def test_all_members_down_surfaces_cleanly(
        self, tmp_path, daemon_factory
    ):
        daemon = daemon_factory(
            jobs=2, store_root=tmp_path / "s", daemon_id="only"
        )
        request = grid_requests([12], horizon=6)[0]
        with FleetClient([daemon.url], poll_wait_s=0.5) as fleet:
            future = fleet.submit(request)
            daemon.kill()
            with pytest.raises(ServiceError):
                future.result(timeout=30)

    def test_status_revives_recovered_members(self, fleet, fleet_daemons):
        key = fleet.urls[0]
        fleet._mark_down(key, RuntimeError("synthetic outage"))
        assert key not in fleet._alive_keys()
        status = fleet.status()["fleet"]
        assert status["alive"] == len(fleet_daemons)
        assert key in fleet._alive_keys()

    def test_member_load_surfaces_in_status(self, fleet, fleet_daemons):
        status = fleet.status()["fleet"]
        for member, daemon in zip(
            sorted(status["members"], key=lambda m: m["daemon_id"]),
            sorted(fleet_daemons, key=lambda d: d.daemon_id),
        ):
            assert member["daemon_id"] == daemon.daemon_id
            assert member["jobs"] == daemon.orchestrator.jobs
            assert member["inflight"] == 0
            assert member["queue_depth"] == 0


class TestHealthz:
    def test_healthz_reports_load_fields(self, daemon, client):
        payload = client.ping()
        assert payload["daemon_id"] == daemon.daemon_id
        assert payload["jobs"] == daemon.orchestrator.jobs
        assert payload["inflight"] == 0
        assert payload["queue_depth"] == 0

    def test_healthz_counts_inflight_and_queue(
        self, daemon_factory, tiny_requests
    ):
        daemon = daemon_factory(jobs=2)
        with ServiceClient(daemon.url) as client:
            futures = client.submit_many(
                grid_requests(range(3), horizon=6)
            )
            health = daemon.health()
            assert health["inflight"] >= 1
            assert (
                health["queue_depth"]
                == max(0, health["inflight"] - 2)
            )
            list(client.as_done(futures))
            assert daemon.health()["inflight"] == 0


class TestTransportTunables:
    def test_constructor_chunks_override(self, daemon):
        client = ServiceClient(daemon.url, poll_chunk=7, batch_chunk=3)
        assert client.poll_chunk == 7
        assert client.batch_chunk == 3
        client.close()

    def test_env_chunks_apply(self, daemon, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_POLL_CHUNK", "9")
        monkeypatch.setenv("REPRO_SERVICE_BATCH_CHUNK", "5")
        client = ServiceClient(daemon.url)
        assert client.poll_chunk == 9
        assert client.batch_chunk == 5
        client.close()

    def test_constructor_beats_env_and_floors_at_one(
        self, daemon, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_POLL_CHUNK", "9")
        client = ServiceClient(daemon.url, poll_chunk=2, batch_chunk=0)
        assert client.poll_chunk == 2
        assert client.batch_chunk == 1
        client.close()

    def test_garbage_env_falls_back_to_default(self, daemon, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_POLL_CHUNK", "not-a-number")
        client = ServiceClient(daemon.url)
        assert client.poll_chunk == 512
        client.close()

    def test_tiny_chunks_still_resolve_a_sweep(self, daemon):
        with ServiceClient(
            daemon.url, poll_chunk=1, batch_chunk=1
        ) as client:
            requests = grid_requests(range(2))
            artifacts = client.run_many(requests)
            assert len(artifacts) == len(requests)


class TestTransportHardeningUnderThreads:
    def test_stale_keepalive_retry_under_concurrent_threads(
        self, daemon_factory, tiny_requests
    ):
        # An idle reaper aggressive enough that every thread's parked
        # connection is stale by its second round.
        daemon = daemon_factory(idle_timeout_s=0.25)
        with ServiceClient(daemon.url) as client:
            client.run_many(tiny_requests)  # warm + per-thread sockets
            errors: list[BaseException] = []
            barrier = threading.Barrier(4)

            def body() -> None:
                try:
                    client.run_many(tiny_requests)  # open the socket
                    barrier.wait()
                    time.sleep(0.8)  # idle past the server-side reaper
                    for _ in range(3):
                        artifacts = client.run_many(tiny_requests)
                        assert len(artifacts) == len(tiny_requests)
                except BaseException as error:
                    errors.append(error)
                    barrier.abort()

            threads = [
                threading.Thread(target=body) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors

    def test_v1_pin_down_under_concurrent_threads(self, v1_stub):
        url, request, posts = v1_stub
        client = ServiceClient(url)
        # No ping: every thread submits at v2 simultaneously, so all
        # of them see the 400 refusal in flight together and every
        # one must downgrade-and-retry (not error) even when a sibling
        # already pinned v1.
        errors: list[BaseException] = []
        barrier = threading.Barrier(6)

        def body() -> None:
            try:
                barrier.wait()
                artifact = client.run(request)
                assert artifact.fingerprint == request.fingerprint()
            except BaseException as error:
                errors.append(error)
                barrier.abort()

        threads = [threading.Thread(target=body) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert client.wire_version == 1
        # Whatever raced, the stub only ever accepted v1 envelopes.
        accepted = [
            payload
            for path, payload in posts
            if path == "/runs" and payload.get("wire_version") == 1
        ]
        assert accepted
        client.close()


class TestOrchestratorSurfaceConformance:
    """FleetClient must be a drop-in orchestrator consumer surface."""

    SURFACE = (
        "submit",
        "submit_many",
        "as_done",
        "as_resolved",
        "run",
        "run_many",
        "with_jobs",
        "close",
    )

    def test_surface_methods_exist(self, fleet):
        for name in self.SURFACE:
            assert callable(getattr(fleet, name))
        assert fleet.jobs == 0
        assert fleet.with_jobs(8) is fleet

    def test_as_resolved_streams_artifacts(self, fleet):
        requests = grid_requests([0])
        futures = fleet.submit_many(requests)
        artifacts = list(fleet.as_resolved(futures))
        assert {a.fingerprint for a in artifacts} == {
            r.fingerprint() for r in requests
        }

    def test_runner_level_consumer_works_unchanged(self, fleet):
        # The same call shape scenarios/pareto/sensitivity use:
        # submit_many then as_done with per-future result().
        requests = grid_requests(range(2))
        futures = fleet.submit_many(requests)
        resolved = {
            future.fingerprint: future.result()
            for future in fleet.as_done(futures)
        }
        for request in requests:
            assert (
                resolved[request.fingerprint()].fingerprint
                == request.fingerprint()
            )
