"""Forecast accuracy evaluation."""

import pytest

from repro.analysis.forecast_eval import evaluate_forecaster
from repro.datacenter.forecast import WCMAForecaster
from repro.datacenter.pv import PVArray


@pytest.fixture
def array() -> PVArray:
    return PVArray(kwp=5.0, seed=11)


class TestEvaluation:
    def test_basic_run(self, array):
        accuracy = evaluate_forecaster(array, 48)
        assert accuracy.horizon_slots == 48
        assert 0 < accuracy.daylight_slots < 48
        assert accuracy.mae_joules >= 0.0
        assert accuracy.total_generated_joules > 0.0

    def test_zero_kwp_all_night(self):
        dark = PVArray(kwp=0.0)
        accuracy = evaluate_forecaster(dark, 24)
        assert accuracy.daylight_slots == 0
        assert accuracy.mape_pct == 0.0
        assert accuracy.mae_fraction == 0.0

    def test_learning_reduces_error(self, array):
        """A forecaster with a week of history beats a cold one."""
        cold = evaluate_forecaster(array, 24)
        warm_forecaster = WCMAForecaster(array)
        for slot in range(24 * 7):
            warm_forecaster.record(slot, array.slot_energy_joules(slot))
        warm = evaluate_forecaster(
            PVArray(kwp=5.0, seed=11), 24, forecaster=warm_forecaster
        )
        # Not guaranteed slot by slot, but the week of profile history
        # should not make things dramatically worse.
        assert warm.mape_pct < cold.mape_pct * 1.5

    def test_mae_fraction_scale_free(self, array):
        small = evaluate_forecaster(PVArray(kwp=1.0, seed=3), 48)
        large = evaluate_forecaster(PVArray(kwp=100.0, seed=3), 48)
        assert small.mae_fraction == pytest.approx(
            large.mae_fraction, rel=1e-6
        )

    def test_horizon_validated(self, array):
        with pytest.raises(ValueError):
            evaluate_forecaster(array, 0)
