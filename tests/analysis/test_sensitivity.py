"""Sensitivity sweeps."""

import pytest

from repro.analysis.sensitivity import (
    format_rows,
    sweep_battery_scale,
    sweep_pv_scale,
    sweep_qos,
)
from repro.sim.config import scaled_config


@pytest.fixture(scope="module")
def config():
    return scaled_config("tiny").with_horizon(6)


class TestSweeps:
    def test_battery_sweep_rows(self, config):
        rows = sweep_battery_scale(config, scales=(0.0, 1.0))
        assert [row.value for row in rows] == [0.0, 1.0]
        assert all(row.parameter == "battery_scale" for row in rows)
        assert all(row.cost_eur > 0.0 for row in rows)

    def test_battery_scale_changes_outcome(self, config):
        # Battery sizing feeds the capacity caps, so the placement and
        # the ledger must react to it.  (Cost direction is not a valid
        # short-horizon invariant: grid energy banked near the end of
        # the run is paid for but never used.)
        rows = sweep_battery_scale(config, scales=(0.0, 1.0))
        assert rows[0].cost_eur != rows[1].cost_eur

    def test_qos_sweep_rows(self, config):
        rows = sweep_qos(config, qos_levels=(0.999, 0.98))
        assert [row.value for row in rows] == [0.999, 0.98]
        assert rows[0].migrations <= rows[1].migrations

    def test_pv_sweep_rows(self, config):
        rows = sweep_pv_scale(config, scales=(0.0, 2.0))
        # More PV can only reduce grid cost on the same workload.
        assert rows[1].cost_eur <= rows[0].cost_eur + 1e-9

    def test_format(self, config):
        rows = sweep_battery_scale(config, scales=(1.0,))
        table = format_rows(rows)
        assert "battery_scale" in table
        assert "cost EUR" in table.splitlines()[0]


class TestDuplicateSweepPoints:
    def test_colliding_fingerprints_keep_their_value_labels(self, config):
        """Sweep points that collapse to one fingerprint (battery
        scales over a zero-battery fleet -> identical configs) must
        still come back as one correctly-labeled row per value."""
        import dataclasses

        specs = tuple(
            dataclasses.replace(spec, battery_kwh=0.0)
            for spec in config.specs
        )
        zero_battery = dataclasses.replace(config, specs=specs)
        rows = sweep_battery_scale(zero_battery, scales=(0.0, 0.5, 1.0, 2.0))
        assert [row.value for row in rows] == [0.0, 0.5, 1.0, 2.0]
        # One simulation behind all four rows: identical outcomes.
        assert len({row.cost_eur for row in rows}) == 1
