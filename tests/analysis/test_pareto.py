"""Pareto analysis: dominance, sweeps, front extraction."""

import pytest

from repro.analysis.pareto import ParetoPoint, alpha_sweep, pareto_front
from repro.sim.config import scaled_config


def point(alpha=0.5, cost=10.0, energy=5.0, rt=1.0) -> ParetoPoint:
    return ParetoPoint(
        alpha=alpha, cost_eur=cost, energy_gj=energy, response_p99_s=rt
    )


class TestDominance:
    def test_strictly_better_dominates(self):
        assert point(cost=9.0).dominates(point(cost=10.0))

    def test_equal_does_not_dominate(self):
        assert not point().dominates(point())

    def test_tradeoff_does_not_dominate(self):
        cheap_slow = point(cost=5.0, rt=2.0)
        pricey_fast = point(cost=15.0, rt=0.5)
        assert not cheap_slow.dominates(pricey_fast)
        assert not pricey_fast.dominates(cheap_slow)

    def test_dominance_needs_all_axes(self):
        better_cost_worse_energy = point(cost=9.0, energy=6.0)
        assert not better_cost_worse_energy.dominates(point())


class TestFront:
    def test_dominated_points_removed(self):
        dominated = point(alpha=0.1, cost=12.0, energy=6.0, rt=2.0)
        dominating = point(alpha=0.5, cost=10.0, energy=5.0, rt=1.0)
        front = pareto_front([dominated, dominating])
        assert front == [dominating]

    def test_incomparable_points_kept(self):
        a = point(alpha=0.1, cost=5.0, rt=2.0)
        b = point(alpha=0.9, cost=15.0, rt=0.5)
        front = pareto_front([a, b])
        assert len(front) == 2

    def test_front_sorted_by_alpha(self):
        a = point(alpha=0.9, cost=5.0, rt=2.0)
        b = point(alpha=0.1, cost=15.0, rt=0.5)
        front = pareto_front([a, b])
        assert [p.alpha for p in front] == [0.1, 0.9]

    def test_empty(self):
        assert pareto_front([]) == []


class TestSweep:
    def test_alpha_sweep_runs(self):
        config = scaled_config("tiny").with_horizon(4)
        points = alpha_sweep(config, alphas=(0.2, 0.8))
        assert [p.alpha for p in points] == [0.2, 0.8]
        for p in points:
            assert p.cost_eur > 0.0
            assert p.energy_gj > 0.0

    def test_front_subset_of_sweep(self):
        config = scaled_config("tiny").with_horizon(4)
        points = alpha_sweep(config, alphas=(0.2, 0.8))
        front = pareto_front(points)
        assert set(p.alpha for p in front) <= {0.2, 0.8}
        assert front  # at least one point is always non-dominated
