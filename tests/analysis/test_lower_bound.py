"""LP sourcing lower bound: correctness on closed-form cases + runs."""

import numpy as np
import pytest

from repro.analysis.lower_bound import (
    CostLowerBound,
    _solve_dc_lp,
    operational_cost_lower_bound,
)
from repro.core.controller import ProposedPolicy
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine

PRICE = 0.1 / 3.6e6  # EUR per Joule


class TestClosedForm:
    def test_grid_only(self):
        cost = _solve_dc_lp(
            np.array([3.6e6]), np.array([0.0]), np.array([PRICE]),
            0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0,
        )
        assert cost == pytest.approx(0.1)

    def test_pv_covers_load(self):
        cost = _solve_dc_lp(
            np.array([1e6]), np.array([2e6]), np.array([PRICE]),
            0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0,
        )
        assert cost == pytest.approx(0.0, abs=1e-9)

    def test_battery_covers_load(self):
        cost = _solve_dc_lp(
            np.array([1e6]), np.array([0.0]), np.array([PRICE]),
            4e6, 1e6, 4e6, 0.95, 0.95, 2e6, 1.9e6,
        )
        assert cost == pytest.approx(0.0, abs=1e-9)

    def test_dod_floor_blocks_deep_discharge(self):
        # Usable = (soc - floor) * eff = (2e6 - 1.5e6) * 1.0 = 0.5e6.
        cost = _solve_dc_lp(
            np.array([1e6]), np.array([0.0]), np.array([PRICE]),
            2e6, 1.5e6, 2e6, 1.0, 1.0, 2e6, 2e6,
        )
        expected = 0.5e6 * PRICE
        assert cost == pytest.approx(expected, rel=1e-6)

    def test_arbitrage_buys_cheap_slot(self):
        # Cheap slot 0 charges the battery for the pricey slot 1.
        cost = _solve_dc_lp(
            np.array([0.0, 1e6]), np.array([0.0, 0.0]),
            np.array([0.05 / 3.6e6, 0.5 / 3.6e6]),
            4e6, 1e6, 1e6, 1.0, 1.0, 2e6, 2e6,
        )
        assert cost == pytest.approx(1e6 * 0.05 / 3.6e6, rel=1e-6)

    def test_charge_efficiency_inflates_arbitrage(self):
        lossy = _solve_dc_lp(
            np.array([0.0, 1e6]), np.array([0.0, 0.0]),
            np.array([0.05 / 3.6e6, 0.5 / 3.6e6]),
            4e6, 1e6, 1e6, 0.5, 1.0, 4e6, 4e6,
        )
        assert lossy == pytest.approx(2e6 * 0.05 / 3.6e6, rel=1e-6)

    def test_charge_rate_limits_arbitrage(self):
        # Only 0.4e6 J can be banked in the cheap slot.
        cost = _solve_dc_lp(
            np.array([0.0, 1e6]), np.array([0.0, 0.0]),
            np.array([0.05 / 3.6e6, 0.5 / 3.6e6]),
            4e6, 1e6, 1e6, 1.0, 1.0, 0.4e6, 4e6,
        )
        expected = 0.4e6 * 0.05 / 3.6e6 + 0.6e6 * 0.5 / 3.6e6
        assert cost == pytest.approx(expected, rel=1e-6)

    def test_empty_horizon(self):
        assert _solve_dc_lp(
            np.zeros(0), np.zeros(0), np.zeros(0),
            0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0,
        ) == 0.0


class TestAgainstSimulation:
    @pytest.fixture(scope="class")
    def run_and_config(self):
        config = scaled_config("tiny")
        result = SimulationEngine(config, ProposedPolicy()).run()
        return result, config

    def test_bound_never_exceeds_actual(self, run_and_config):
        result, config = run_and_config
        bound = operational_cost_lower_bound(result, config)
        assert bound.total_cost_eur <= bound.actual_cost_eur + 1e-9

    def test_gap_non_negative(self, run_and_config):
        result, config = run_and_config
        bound = operational_cost_lower_bound(result, config)
        assert bound.gap_pct >= 0.0

    def test_per_dc_costs_sum(self, run_and_config):
        result, config = run_and_config
        bound = operational_cost_lower_bound(result, config)
        assert bound.total_cost_eur == pytest.approx(
            sum(bound.per_dc_cost_eur)
        )

    def test_dc_count_validated(self, run_and_config):
        result, _ = run_and_config
        other = scaled_config("tiny")
        bad = type(other)(
            name="bad", specs=other.specs[:2], horizon_slots=24
        )
        with pytest.raises(ValueError, match="number of DCs"):
            operational_cost_lower_bound(result, bad)

    def test_empty_result(self):
        config = scaled_config("tiny")
        empty = CostLowerBound(0.0, tuple(), 0.0)
        assert empty.gap_pct == 0.0
