"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datacenter.datacenter import Datacenter, DatacenterSpec
from repro.datacenter.price import TwoLevelTariff
from repro.datacenter.pue import FreeCoolingPUE
from repro.network.ber import BERProcess
from repro.network.latency import LatencyModel
from repro.network.topology import GeoTopology
from repro.sim.config import scaled_config
from repro.sim.state import SlotObservation
from repro.workload.datacorr import DataCorrelationProcess, VolumeMatrix
from repro.workload.traces import TraceLibrary
from repro.workload.vm import AppType, VirtualMachine


def make_vm(
    vm_id: int = 0,
    app_type: AppType = AppType.WEB,
    cores: float = 2.0,
    image_gb: float = 4.0,
    arrival_slot: int = 0,
    departure_slot: int = 100,
    service_id: int = 0,
    phase_hours: float = 0.0,
    seed: int = 0,
) -> VirtualMachine:
    """Convenience VM factory with sensible defaults."""
    return VirtualMachine(
        vm_id=vm_id,
        app_type=app_type,
        cores=cores,
        image_gb=image_gb,
        arrival_slot=arrival_slot,
        departure_slot=departure_slot,
        service_id=service_id,
        phase_hours=phase_hours,
        seed=seed,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def six_vms() -> list[VirtualMachine]:
    """Two services of three VMs each, mixed archetypes."""
    return [
        make_vm(vm_id=0, service_id=0, app_type=AppType.WEB, seed=10),
        make_vm(vm_id=1, service_id=0, app_type=AppType.WEB, seed=11),
        make_vm(vm_id=2, service_id=0, app_type=AppType.BATCH, seed=12),
        make_vm(vm_id=3, service_id=1, app_type=AppType.HPC, seed=13),
        make_vm(vm_id=4, service_id=1, app_type=AppType.BATCH, seed=14),
        make_vm(vm_id=5, service_id=1, app_type=AppType.WEB, seed=15),
    ]


@pytest.fixture
def trace_library() -> TraceLibrary:
    return TraceLibrary(steps_per_slot=30, seed=7)


@pytest.fixture
def volume_process() -> DataCorrelationProcess:
    return DataCorrelationProcess(seed=9)


def make_specs(n_servers: tuple[int, int, int] = (6, 4, 2)) -> list[DatacenterSpec]:
    """Three-site fleet with distinct tariffs/time zones."""
    sites = [
        ("Lisbon", 38.7223, -9.1393, 0.0, 0.24, 0.12),
        ("Zurich", 47.3769, 8.5417, 1.0, 0.20, 0.10),
        ("Helsinki", 60.1699, 24.9384, 2.0, 0.16, 0.08),
    ]
    specs = []
    for (name, lat, lon, tz, peak, off), servers in zip(sites, n_servers):
        specs.append(
            DatacenterSpec(
                name=name,
                latitude=lat,
                longitude=lon,
                n_servers=servers,
                pv_kwp=0.1 * servers,
                battery_kwh=0.64 * servers,
                tariff=TwoLevelTariff(
                    peak_price=peak, offpeak_price=off, tz_offset_hours=tz
                ),
                pue_model=FreeCoolingPUE(tz_offset_hours=tz),
                tz_offset_hours=tz,
            )
        )
    return specs


@pytest.fixture
def specs() -> list[DatacenterSpec]:
    return make_specs()


@pytest.fixture
def datacenters(specs) -> list[Datacenter]:
    return [Datacenter(spec, index, seed=3) for index, spec in enumerate(specs)]


@pytest.fixture
def latency_model(specs) -> LatencyModel:
    return LatencyModel(GeoTopology(specs), BERProcess(seed=5))


def make_observation(
    vms: list[VirtualMachine],
    datacenters: list[Datacenter],
    latency_model: LatencyModel,
    trace_library: TraceLibrary,
    volume_process: DataCorrelationProcess,
    slot: int = 1,
    previous_assignment: dict[int, int] | None = None,
) -> SlotObservation:
    """Assemble a coherent observation for policy-level tests."""
    demand = trace_library.demand_matrix(vms, max(slot - 1, 0))
    volumes = volume_process.volumes(vms, max(slot - 1, 0))
    return SlotObservation(
        slot=slot,
        vms=vms,
        demand_traces=demand,
        volumes=volumes,
        previous_assignment=dict(previous_assignment or {}),
        dcs=datacenters,
        latency_model=latency_model,
        latency_constraint_s=72.0,
    )


@pytest.fixture
def observation(
    six_vms, datacenters, latency_model, trace_library, volume_process
) -> SlotObservation:
    return make_observation(
        six_vms, datacenters, latency_model, trace_library, volume_process
    )


@pytest.fixture(scope="session")
def tiny_config():
    return scaled_config("tiny")
