"""Deterministic RNG derivation."""

import numpy as np
import pytest

from repro.seeding import rng_for, seed_sequence


def test_same_tags_same_stream():
    a = rng_for(1, "x", 5).random(8)
    b = rng_for(1, "x", 5).random(8)
    assert np.array_equal(a, b)


def test_different_int_tags_differ():
    a = rng_for(1, "x", 5).random(8)
    b = rng_for(1, "x", 6).random(8)
    assert not np.array_equal(a, b)


def test_different_string_tags_differ():
    a = rng_for(1, "alpha").random(8)
    b = rng_for(1, "beta").random(8)
    assert not np.array_equal(a, b)


def test_string_hash_is_stable():
    # blake2s of "ber" must never change across runs/platforms.
    entropy = seed_sequence("ber").entropy
    assert entropy == seed_sequence("ber").entropy


def test_negative_ints_accepted():
    assert rng_for(-3, 0).random() == rng_for(-3, 0).random()


def test_empty_parts_rejected():
    with pytest.raises(ValueError):
        seed_sequence()


def test_order_matters():
    a = rng_for(1, 2).random(4)
    b = rng_for(2, 1).random(4)
    assert not np.array_equal(a, b)
