"""Store backends: protocol conformance, layouts, auto-detection."""

import hashlib
import json

import pytest

from repro.store import (
    DEFAULT_SHARD,
    JsonFileBackend,
    MARKER_NAME,
    ResultStore,
    SegmentBackend,
    ShardedBackend,
    detect_format,
    open_backend,
    shard_slug,
)
from repro.store.segment import INDEX_DTYPE

BACKENDS = {
    "json": JsonFileBackend,
    "sharded": ShardedBackend,
    "segment": SegmentBackend,
}


def fp(index: int) -> str:
    return hashlib.sha256(f"doc-{index}".encode()).hexdigest()


def doc(index: int, **extra) -> dict:
    return {
        "store_version": 1,
        "fingerprint": fp(index),
        "request": {"policy": {"name": f"policy-{index % 3}"}},
        "result": {"values": [index, index * 2, index * 3]},
        **extra,
    }


@pytest.fixture(params=sorted(BACKENDS))
def backend(request, tmp_path):
    return BACKENDS[request.param](tmp_path / request.param)


class TestBackendContract:
    def test_roundtrip(self, backend):
        backend.put(fp(1), doc(1))
        assert backend.fetch(fp(1)) == doc(1)

    def test_missing_is_none(self, backend):
        assert backend.fetch(fp(9)) is None
        assert fp(9) not in backend

    def test_contains(self, backend):
        backend.put(fp(1), doc(1))
        assert fp(1) in backend

    def test_overwrite_last_wins(self, backend):
        backend.put(fp(1), doc(1))
        backend.put(fp(1), doc(1, extra="updated"))
        assert backend.fetch(fp(1))["extra"] == "updated"

    def test_delete(self, backend):
        backend.put(fp(1), doc(1))
        assert backend.delete(fp(1)) is True
        assert backend.fetch(fp(1)) is None
        assert backend.delete(fp(1)) is False

    def test_keys_and_scan(self, backend):
        documents = {fp(i): doc(i) for i in range(8)}
        for fingerprint, document in documents.items():
            backend.put(fingerprint, document)
        assert sorted(backend.keys()) == sorted(documents)
        scanned = dict(backend.scan())
        assert scanned == documents

    def test_count(self, backend):
        for i in range(5):
            backend.put(fp(i), doc(i))
        backend.delete(fp(0))
        assert backend.count() == 4

    def test_fresh_instance_sees_writes(self, backend):
        for i in range(4):
            backend.put(fp(i), doc(i))
        fresh = type(backend)(backend.root)
        assert fresh.count() == 4
        assert fresh.fetch(fp(2)) == doc(2)


class TestAutoDetection:
    def test_virgin_root_has_no_format(self, tmp_path):
        assert detect_format(tmp_path) is None

    def test_legacy_per_file_root_detected(self, tmp_path):
        JsonFileBackend(tmp_path).put(fp(1), doc(1))
        assert detect_format(tmp_path) == "json"
        assert isinstance(open_backend(tmp_path), JsonFileBackend)

    def test_sharded_root_detected_via_marker(self, tmp_path):
        ShardedBackend(tmp_path).put(fp(1), doc(1), shard="packA")
        assert (tmp_path / MARKER_NAME).exists()
        assert detect_format(tmp_path) == "sharded"
        assert isinstance(open_backend(tmp_path), ShardedBackend)

    def test_segment_root_detected_via_marker(self, tmp_path):
        SegmentBackend(tmp_path).put(fp(1), doc(1))
        assert detect_format(tmp_path) == "segment"
        assert isinstance(open_backend(tmp_path), SegmentBackend)

    def test_directory_fallback_without_marker(self, tmp_path):
        SegmentBackend(tmp_path).put(fp(1), doc(1))
        (tmp_path / MARKER_NAME).unlink()
        assert detect_format(tmp_path) == "segment"

    def test_format_conflict_refused(self, tmp_path):
        JsonFileBackend(tmp_path).put(fp(1), doc(1))
        with pytest.raises(ValueError, match="refusing"):
            open_backend(tmp_path, "segment")

    def test_unknown_backend_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            open_backend(tmp_path, "etcd")

    def test_explicit_matching_name_accepted(self, tmp_path):
        JsonFileBackend(tmp_path).put(fp(1), doc(1))
        assert isinstance(
            open_backend(tmp_path, "json"), JsonFileBackend
        )


class TestShardedLayout:
    def test_documents_land_in_shard_directories(self, tmp_path):
        backend = ShardedBackend(tmp_path)
        backend.put(fp(1), doc(1), shard="pack-a")
        backend.put(fp(2), doc(2), shard="pack-b")
        backend.put(fp(3), doc(3))
        assert backend.shards() == [DEFAULT_SHARD, "pack-a", "pack-b"]
        path = tmp_path / "shards" / "pack-a" / "v1" / fp(1)[:2]
        assert (path / f"{fp(1)}.json").exists()

    def test_fetch_probes_shards(self, tmp_path):
        ShardedBackend(tmp_path).put(fp(1), doc(1), shard="pack-a")
        fresh = ShardedBackend(tmp_path)
        assert fresh.fetch(fp(1)) == doc(1)

    def test_hostile_shard_names_sanitized(self, tmp_path):
        backend = ShardedBackend(tmp_path)
        backend.put(fp(1), doc(1), shard="../../etc/passwd")
        (shard_dir,) = (tmp_path / "shards").iterdir()
        assert shard_dir.parent == tmp_path / "shards"
        assert ".." not in shard_dir.name

    def test_shard_slug(self):
        assert shard_slug(None) == "default"
        assert shard_slug("trace pack v2!") == "trace-pack-v2"
        assert len(shard_slug("x" * 200)) <= 64


class TestSegmentLayout:
    def test_single_segment_pair_per_writer(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        for i in range(10):
            backend.put(fp(i), doc(i))
        segments = sorted((tmp_path / "segments").glob("*.seg"))
        indexes = sorted((tmp_path / "segments").glob("*.idx"))
        assert len(segments) == 1
        assert len(indexes) == 1
        assert indexes[0].stat().st_size == 10 * INDEX_DTYPE.itemsize

    def test_torn_index_tail_ignored(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        for i in range(5):
            backend.put(fp(i), doc(i))
        (idx_path,) = (tmp_path / "segments").glob("*.idx")
        with open(idx_path, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # crash mid-entry
        fresh = SegmentBackend(tmp_path)
        assert fresh.count() == 5

    def test_index_entry_past_segment_end_ignored(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        for i in range(3):
            backend.put(fp(i), doc(i))
        (seg_path,) = (tmp_path / "segments").glob("*.seg")
        size = seg_path.stat().st_size
        with open(seg_path, "r+b") as handle:  # crash-truncated segment
            handle.truncate(size - 4)
        fresh = SegmentBackend(tmp_path)
        assert fresh.count() == 2  # last record's bytes are gone
        assert fresh.fetch(fp(0)) == doc(0)

    def test_tombstone_survives_reopen(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        for i in range(4):
            backend.put(fp(i), doc(i))
        backend.delete(fp(2))
        fresh = SegmentBackend(tmp_path)
        assert fresh.fetch(fp(2)) is None
        assert fresh.count() == 3

    def test_non_hex_fingerprint_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="SHA-256"):
            SegmentBackend(tmp_path).put("not-a-fingerprint", doc(1))

    def test_compact_reclaims_dead_records(self, tmp_path):
        backend = SegmentBackend(tmp_path)
        for i in range(6):
            backend.put(fp(i), doc(i))
        for i in range(6):  # duplicates
            backend.put(fp(i), doc(i))
        backend.delete(fp(0))
        before = sum(
            p.stat().st_size for p in (tmp_path / "segments").glob("*.seg")
        )
        assert backend.compact() == 5
        after = sum(
            p.stat().st_size for p in (tmp_path / "segments").glob("*.seg")
        )
        assert after < before
        assert len(list((tmp_path / "segments").glob("*.seg"))) == 1
        fresh = SegmentBackend(tmp_path)
        assert fresh.count() == 5
        assert fresh.fetch(fp(3)) == doc(3)
        assert fresh.fetch(fp(0)) is None

    def test_reader_refreshes_on_miss(self, tmp_path):
        reader = SegmentBackend(tmp_path)
        assert reader.fetch(fp(1)) is None
        writer = SegmentBackend(tmp_path)
        writer.put(fp(1), doc(1))
        assert reader.fetch(fp(1)) == doc(1)  # discovered on miss


class TestResultStoreBackends:
    """ResultStore over each backend, exercised through the orchestrator."""

    def run_one(self, store):
        from repro.experiments.orchestrator import Orchestrator, RunRequest
        from repro.experiments.runner import default_policies
        from repro.sim.config import scaled_config

        request = RunRequest(
            config=scaled_config("tiny", seed=0).with_horizon(2),
            policy=default_policies()[1],
        )
        return Orchestrator(store=store).run(request)

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_cold_then_warm(self, tmp_path, name):
        cold = self.run_one(ResultStore(tmp_path, backend=name))
        assert cold.source == "computed"
        warm = self.run_one(ResultStore(tmp_path, backend=name))
        assert warm.source == "disk"
        # And via auto-detection, without naming the backend:
        auto = self.run_one(ResultStore(tmp_path))
        assert auto.source == "disk"
        assert warm.result.slots == cold.result.slots

    def test_legacy_root_read_transparently(self, tmp_path):
        """A warm root from the old per-file layout resolves unchanged."""
        # The pre-split store wrote root/v1/<fp[:2]>/<fp>.json with no
        # marker; the default ResultStore still produces that layout.
        cold = self.run_one(ResultStore(tmp_path))
        path = (
            tmp_path / "v1" / cold.fingerprint[:2] / f"{cold.fingerprint}.json"
        )
        assert path.exists()
        assert not (tmp_path / MARKER_NAME).exists()
        warm = self.run_one(ResultStore(tmp_path, backend="auto"))
        assert warm.source == "disk"
        assert warm.result.slots == cold.result.slots

    def test_sharded_store_routes_by_config_name(self, tmp_path):
        artifact = self.run_one(ResultStore(tmp_path, backend="sharded"))
        assert artifact.source == "computed"
        assert (tmp_path / "shards" / "tiny").is_dir()

    def test_document_meta_records_shard(self, tmp_path):
        store = ResultStore(tmp_path, backend="segment")
        self.run_one(store)
        ((_, document),) = list(store.documents())
        assert document["meta"]["shard"] == "tiny"

    def test_memory_only_store_has_no_backend(self):
        store = ResultStore()
        assert store.backend is None
        assert store.path_for(fp(1)) is None
        assert list(store.documents()) == []

    def test_segment_store_has_no_per_document_path(self, tmp_path):
        store = ResultStore(tmp_path, backend="segment")
        self.run_one(store)
        assert store.path_for(fp(1)) is None

    def test_corrupt_segment_payload_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path, backend="segment")
        artifact = self.run_one(store)
        (seg_path,) = (tmp_path / "segments").glob("*.seg")
        data = bytearray(seg_path.read_bytes())
        data[60:70] = b"\xff" * 10  # stomp the first payload's bytes
        seg_path.write_bytes(bytes(data))
        fresh = ResultStore(tmp_path)
        assert fresh.fetch(artifact.fingerprint) is None
        assert fresh.misses == 1


class TestMarkerFile:
    def test_marker_contents(self, tmp_path):
        SegmentBackend(tmp_path).put(fp(1), doc(1))
        payload = json.loads((tmp_path / MARKER_NAME).read_text())
        assert payload == {"format": "segment", "store_version": 1}


class TestShardedRerouting:
    def test_rehinted_fingerprint_overwrites_in_place(self, tmp_path):
        """A fingerprint rerun with a different shard hint (e.g. a
        renamed pack, which keeps its fingerprint by design) must not
        duplicate the document across shards."""
        backend = ShardedBackend(tmp_path)
        backend.put(fp(1), doc(1), shard="pack-old")
        backend.put(fp(1), doc(1, extra="rerun"), shard="pack-new")
        assert backend.count() == 1
        assert backend.fetch(fp(1))["extra"] == "rerun"
        assert backend.shards() == ["pack-old"]  # overwritten in place
        fresh = ShardedBackend(tmp_path)
        assert fresh.count() == 1
        assert backend.delete(fp(1)) is True
        assert ShardedBackend(tmp_path).count() == 0


class TestResultStoreBackendInstance:
    """A pre-built backend instance is honored even without ``root``."""

    def test_backend_instance_without_root(self, tmp_path):
        from repro.store import ResultStore, SegmentBackend

        backend = SegmentBackend(tmp_path / "seg")
        store = ResultStore(backend=backend)
        assert store.backend is backend
        assert store.root == backend.root
