"""Age/policy retention for ``repro store gc``."""

from __future__ import annotations

import hashlib
import os
import time

import pytest

from repro.cli import main
from repro.store import (
    JsonFileBackend,
    SegmentBackend,
    ShardedBackend,
    collect_garbage,
    parse_age,
)

BACKENDS = {
    "json": JsonFileBackend,
    "sharded": ShardedBackend,
    "segment": SegmentBackend,
}


def fingerprint(index: int) -> str:
    return hashlib.sha256(f"retention-{index}".encode()).hexdigest()


def document(index: int, pack: str | None) -> dict:
    doc = {"fingerprint": fingerprint(index), "result": {"v": index}}
    if pack is not None:
        doc["meta"] = {"shard": pack, "pack": {"name": pack, "version": 1}}
    return doc


def fill(backend, packs: list[str | None]) -> list[str]:
    fingerprints = []
    for index, pack in enumerate(packs):
        doc = document(index, pack)
        backend.put(fingerprint(index), doc, shard=pack)
        fingerprints.append(fingerprint(index))
    return fingerprints


def age_document(backend, fingerprint: str, seconds: float) -> None:
    """Backdate a document's timestamp source by ``seconds``."""
    path = getattr(backend, "path_for", lambda _: None)(fingerprint)
    if path is None:  # segment: the whole segment file carries the time
        with backend._lock:
            path = backend._index[fingerprint][0]
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestParseAge:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("90", 90.0),
            ("45s", 45.0),
            ("30m", 1800.0),
            ("12h", 43200.0),
            ("30d", 30 * 86400.0),
            ("2w", 14 * 86400.0),
            (" 1.5h ", 5400.0),
        ],
    )
    def test_accepts(self, text, expected):
        assert parse_age(text) == expected

    @pytest.mark.parametrize("text", ["", "soon", "10y", "-3d", "d", "1 2"])
    def test_rejects(self, text):
        with pytest.raises(ValueError, match="bad age"):
            parse_age(text)


class TestTimestamps:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_fresh_documents_are_recent(self, tmp_path, name):
        backend = BACKENDS[name](tmp_path / name)
        fill(backend, ["alpha"])
        stamp = backend.timestamp(fingerprint(0))
        assert stamp is not None
        assert abs(time.time() - stamp) < 60

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_missing_document_has_no_timestamp(self, tmp_path, name):
        backend = BACKENDS[name](tmp_path / name)
        assert backend.timestamp("0" * 64) is None


class TestOlderThan:
    @pytest.mark.parametrize("name", ["json", "sharded"])
    def test_collects_only_old_documents(self, tmp_path, name):
        backend = BACKENDS[name](tmp_path / name)
        fill(backend, ["alpha"] * 4)
        for index in (0, 1):
            age_document(backend, fingerprint(index), 3600)
        doomed = collect_garbage(backend, older_than=1800)
        assert sorted(doomed) == sorted([fingerprint(0), fingerprint(1)])
        assert backend.count() == 2

    def test_segment_granularity_is_conservative(self, tmp_path):
        """One segment file = one clock: aging it ages every record."""
        backend = SegmentBackend(tmp_path / "seg")
        fill(backend, ["alpha"] * 3)
        age_document(backend, fingerprint(0), 3600)  # ages the file
        doomed = collect_garbage(backend, older_than=1800, dry_run=True)
        assert len(doomed) == 3
        # A fresh append renews the file's clock; nothing is then old
        # enough -- conservative in the keep direction.
        backend.put(fingerprint(9), document(9, "alpha"), shard="alpha")
        doomed = collect_garbage(backend, older_than=1800, dry_run=True)
        assert doomed == []

    def test_composes_with_identity_filters(self, tmp_path):
        backend = JsonFileBackend(tmp_path / "mixed")
        fill(backend, ["alpha", "beta", "alpha", "beta"])
        for index in range(4):
            age_document(backend, fingerprint(index), 7200)
        doomed = collect_garbage(backend, older_than=3600, pack="beta")
        assert sorted(doomed) == sorted([fingerprint(1), fingerprint(3)])
        assert backend.count() == 2


class TestKeepLatest:
    def test_keeps_n_newest_per_pack(self, tmp_path):
        backend = JsonFileBackend(tmp_path / "kl")
        fill(backend, ["alpha", "alpha", "alpha", "beta", "beta"])
        # Ages: alpha 0 oldest, 1 middle, 2 newest; beta 3 older than 4.
        for index, age in ((0, 500), (1, 300), (2, 100), (3, 400), (4, 200)):
            age_document(backend, fingerprint(index), age)
        doomed = collect_garbage(backend, keep_latest=1)
        assert sorted(doomed) == sorted(
            [fingerprint(0), fingerprint(1), fingerprint(3)]
        )
        assert fingerprint(2) in backend  # newest alpha survives
        assert fingerprint(4) in backend  # newest beta survives

    def test_keep_latest_composes_with_older_than(self, tmp_path):
        backend = JsonFileBackend(tmp_path / "both")
        fill(backend, ["alpha"] * 3)
        for index, age in ((0, 5000), (1, 4000), (2, 100)):
            age_document(backend, fingerprint(index), age)
        # keep-latest spares doc 2; older-than spares nothing else
        # younger than an hour -- only 0 and 1 go.
        doomed = collect_garbage(backend, older_than=3600, keep_latest=1)
        assert sorted(doomed) == sorted([fingerprint(0), fingerprint(1)])

    def test_segment_ties_break_by_append_order(self, tmp_path):
        """One segment file = one mtime: replay order decides newest."""
        backend = SegmentBackend(tmp_path / "seg-kl")
        fill(backend, ["alpha"] * 5)  # one writer, one shared mtime
        doomed = collect_garbage(backend, keep_latest=2)
        # The last two *appended* documents survive, regardless of how
        # their fingerprints sort lexicographically.
        assert sorted(doomed) == sorted(fingerprint(i) for i in range(3))
        assert fingerprint(3) in backend
        assert fingerprint(4) in backend

    def test_unpacked_documents_group_together(self, tmp_path):
        backend = JsonFileBackend(tmp_path / "nopack")
        fill(backend, [None, None, None])
        for index, age in ((0, 300), (1, 200), (2, 100)):
            age_document(backend, fingerprint(index), age)
        doomed = collect_garbage(backend, keep_latest=2)
        assert doomed == [fingerprint(0)]


class TestGcCli:
    def _store_with_old_docs(self, tmp_path):
        root = tmp_path / "root"
        backend = JsonFileBackend(root)
        fill(backend, ["alpha"] * 3)
        for index in range(3):
            age_document(backend, fingerprint(index), 10 * 86400)
        return root

    def test_older_than_flag(self, tmp_path, capsys):
        root = self._store_with_old_docs(tmp_path)
        code = main(
            ["store", "gc", "--store", str(root), "--older-than", "7d"]
        )
        assert code == 0
        assert "deleted 3 document(s)" in capsys.readouterr().out
        assert JsonFileBackend(root).count() == 0

    def test_keep_latest_flag(self, tmp_path, capsys):
        root = self._store_with_old_docs(tmp_path)
        code = main(
            ["store", "gc", "--store", str(root), "--keep-latest", "2"]
        )
        assert code == 0
        assert "deleted 1 document(s)" in capsys.readouterr().out
        assert JsonFileBackend(root).count() == 2

    def test_retention_flags_count_as_filters(self, tmp_path):
        root = self._store_with_old_docs(tmp_path)
        with pytest.raises(SystemExit, match="refusing to gc everything"):
            main(["store", "gc", "--store", str(root)])
        # --older-than alone satisfies the refusal check (above) while
        # a bad spelling is a usage error, not a traceback.
        with pytest.raises(SystemExit, match="bad age"):
            main(
                ["store", "gc", "--store", str(root), "--older-than", "often"]
            )

    def test_dry_run_reports_without_deleting(self, tmp_path, capsys):
        root = self._store_with_old_docs(tmp_path)
        code = main(
            [
                "store", "gc", "--store", str(root),
                "--older-than", "7d", "--dry-run",
            ]
        )
        assert code == 0
        assert "would delete 3 document(s)" in capsys.readouterr().out
        assert JsonFileBackend(root).count() == 3