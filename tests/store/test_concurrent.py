"""Concurrent-writer safety: shared roots must not corrupt or drop.

The per-file backend relies on atomic temp-file/rename writes; the
segment backend gives every writer instance its own segment/index
pair.  These tests drive both disciplines from multiple threads (each
thread owning its own backend instance, as two orchestrator processes
would) and assert that a fresh reader afterwards sees every document
intact.
"""

import hashlib
import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.orchestrator import Orchestrator, RunRequest
from repro.experiments.runner import default_policies
from repro.sim.config import scaled_config
from repro.store import JsonFileBackend, ResultStore, SegmentBackend


def fp(tag) -> str:
    return hashlib.sha256(str(tag).encode()).hexdigest()


def run_writers(worker, count: int) -> None:
    """Run ``worker(index)`` in ``count`` threads, re-raising failures."""
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as error:  # propagate to the test
            errors.append(error)

    threads = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestSegmentConcurrentWriters:
    WRITERS = 4
    DOCS_PER_WRITER = 25

    def test_no_documents_dropped_or_corrupted(self, tmp_path):
        def worker(writer_index):
            backend = SegmentBackend(tmp_path)
            for i in range(self.DOCS_PER_WRITER):
                key = fp((writer_index, i))
                backend.put(
                    key,
                    {
                        "fingerprint": key,
                        "writer": writer_index,
                        "payload": list(range(i, i + 5)),
                    },
                )

        run_writers(worker, self.WRITERS)
        reader = SegmentBackend(tmp_path)
        assert reader.count() == self.WRITERS * self.DOCS_PER_WRITER
        for writer_index in range(self.WRITERS):
            for i in range(self.DOCS_PER_WRITER):
                document = reader.fetch(fp((writer_index, i)))
                assert document is not None
                assert document["writer"] == writer_index
                assert document["payload"] == list(range(i, i + 5))

    def test_each_writer_owns_its_segment_pair(self, tmp_path):
        def worker(writer_index):
            backend = SegmentBackend(tmp_path)
            backend.put(fp(writer_index), {"writer": writer_index})

        run_writers(worker, self.WRITERS)
        segments = list((tmp_path / "segments").glob("*.seg"))
        assert len(segments) == self.WRITERS

    def test_shared_instance_is_thread_safe(self, tmp_path):
        backend = SegmentBackend(tmp_path)

        def worker(writer_index):
            for i in range(self.DOCS_PER_WRITER):
                key = fp(("shared", writer_index, i))
                backend.put(key, {"fingerprint": key, "w": writer_index})

        run_writers(worker, self.WRITERS)
        fresh = SegmentBackend(tmp_path)
        assert fresh.count() == self.WRITERS * self.DOCS_PER_WRITER


class TestJsonConcurrentWriters:
    def test_same_fingerprint_racers_leave_intact_document(self, tmp_path):
        key = fp("contested")

        def worker(writer_index):
            backend = JsonFileBackend(tmp_path)
            for _ in range(20):
                backend.put(key, {"fingerprint": key, "writer": writer_index})

        run_writers(worker, 4)
        document = JsonFileBackend(tmp_path).fetch(key)
        assert document is not None  # atomic rename: never a torn file
        assert document["fingerprint"] == key
        assert document["writer"] in range(4)


class TestOrchestratorsSharingARoot:
    def test_two_orchestrators_one_segment_root(self, tmp_path):
        """Two orchestrators over one store root drop nothing."""
        config = scaled_config("tiny", seed=0).with_horizon(2)
        batches = [
            [
                RunRequest(config=config, policy=policy, seed=seed)
                for policy in default_policies()[1:3]
            ]
            for seed in (10, 11)
        ]
        artifacts: dict[int, list] = {}

        def worker(index):
            orchestrator = Orchestrator(
                store=ResultStore(tmp_path, backend="segment")
            )
            artifacts[index] = orchestrator.run_many(batches[index])

        run_writers(worker, 2)
        reader = ResultStore(tmp_path)
        assert reader.backend.format == "segment"
        for index, batch in enumerate(batches):
            for request, artifact in zip(batch, artifacts[index]):
                hit = reader.fetch(request.fingerprint())
                assert hit is not None
                result, source = hit
                assert source == "disk"
                assert result.slots == artifact.result.slots


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    payloads=st.lists(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.integers(-1000, 1000) | st.text(max_size=12),
            max_size=4,
        ),
        min_size=1,
        max_size=24,
    ),
    writers=st.integers(min_value=1, max_value=3),
)
def test_property_interleaved_segment_writers(tmp_path_factory, payloads, writers):
    """Any interleaving of segment writers preserves every document."""
    root = tmp_path_factory.mktemp("segment-prop")
    backends = [SegmentBackend(root) for _ in range(writers)]
    expected = {}
    for index, payload in enumerate(payloads):
        key = fp(("prop", index))
        document = {"fingerprint": key, "payload": payload}
        backends[index % writers].put(key, document)
        expected[key] = document
    reader = SegmentBackend(root)
    assert dict(reader.scan()) == expected
    assert reader.count() == len(expected)
    # Round-trip through canonical JSON: nothing was truncated/reordered.
    for key, document in expected.items():
        assert json.dumps(reader.fetch(key), sort_keys=True) == json.dumps(
            document, sort_keys=True
        )


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_property_puts_and_tombstones_converge(data):
    """Random put/delete interleavings converge for a fresh reader.

    Each key is owned by one writer (the orchestrator's discipline:
    a fingerprint's shard/writer is deterministic), so its appends
    replay in program order; interleavings *across* keys and writers
    are arbitrary.
    """
    import tempfile

    ops = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, 5),  # key id (owner = key % 2)
                st.booleans(),  # delete?
            ),
            min_size=1,
            max_size=30,
        )
    )
    with tempfile.TemporaryDirectory() as root:
        writers = [SegmentBackend(root) for _ in range(2)]
        expected: dict[str, dict] = {}
        for step, (key_id, is_delete) in enumerate(ops):
            key = fp(("conv", key_id))
            writer = writers[key_id % 2]
            if is_delete:
                writer.delete(key)
                expected.pop(key, None)
            else:
                document = {"fingerprint": key, "op": [step, key_id]}
                writer.put(key, document)
                expected[key] = document
        reader = SegmentBackend(root)
        assert set(reader.keys()) == set(expected)
        for key, document in expected.items():
            assert reader.fetch(key) == document
