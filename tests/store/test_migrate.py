"""Store migration: v1 per-file roots convert bit-identically."""

import json

import pytest

from repro.experiments.orchestrator import Orchestrator, RunRequest
from repro.experiments.runner import default_policies
from repro.sim.config import scaled_config
from repro.sim.results import RunResult
from repro.store import (
    JsonFileBackend,
    ResultStore,
    SegmentBackend,
    migrate_store,
    open_backend,
)


def tiny_requests(count: int = 3):
    config = scaled_config("tiny", seed=0).with_horizon(2)
    return [
        RunRequest(config=config, policy=policy)
        for policy in default_policies()[:count]
    ]


@pytest.fixture(scope="module")
def v1_root(tmp_path_factory):
    """A warm per-file store holding real RunResult ledgers."""
    root = tmp_path_factory.mktemp("v1-store")
    Orchestrator(store=ResultStore(root)).run_many(tiny_requests())
    return root


class TestMigrateToSegment:
    def test_round_trip_is_bit_identical(self, v1_root, tmp_path):
        report = migrate_store(v1_root, tmp_path / "seg", to="segment")
        assert report.migrated == 3
        assert report.verified
        source = JsonFileBackend(v1_root)
        dest = SegmentBackend(tmp_path / "seg")
        for fingerprint, document in source.scan():
            copied = dest.fetch(fingerprint)
            assert json.dumps(copied, sort_keys=True) == json.dumps(
                document, sort_keys=True
            )

    def test_real_ledgers_survive(self, v1_root, tmp_path):
        migrate_store(v1_root, tmp_path / "seg", to="segment")
        source = JsonFileBackend(v1_root)
        dest = SegmentBackend(tmp_path / "seg")
        for fingerprint, document in source.scan():
            original = RunResult.from_dict(document["result"])
            migrated = RunResult.from_dict(dest.fetch(fingerprint)["result"])
            assert migrated.to_dict() == original.to_dict()
            assert migrated.slots == original.slots
            assert migrated.summary() == original.summary()

    def test_migrated_root_serves_warm_runs(self, v1_root, tmp_path):
        migrate_store(v1_root, tmp_path / "seg", to="segment")
        # Auto-detection finds the segment layout; every run resolves
        # from disk without simulating.
        warm = Orchestrator(store=ResultStore(tmp_path / "seg")).run_many(
            tiny_requests()
        )
        assert [artifact.source for artifact in warm] == ["disk"] * 3
        cold = Orchestrator(store=ResultStore()).run_many(tiny_requests())
        for warm_artifact, cold_artifact in zip(warm, cold):
            assert warm_artifact.result.slots == cold_artifact.result.slots

    def test_migrate_to_sharded_routes_by_meta(self, v1_root, tmp_path):
        report = migrate_store(v1_root, tmp_path / "sh", to="sharded")
        assert report.verified
        backend = open_backend(tmp_path / "sh")
        assert backend.format == "sharded"
        # v1 documents carry meta with the config-name shard key.
        assert backend.shards() == ["tiny"]

    def test_migration_merges_into_existing_dest(self, v1_root, tmp_path):
        dest = tmp_path / "seg"
        extra_fp = "ab" * 32
        SegmentBackend(dest).put(extra_fp, {"fingerprint": extra_fp})
        report = migrate_store(v1_root, dest, to="segment")
        assert report.verified
        assert SegmentBackend(dest).count() == 4


class TestSelfMigrationRefused:
    """Overlapping source/dest would interleave reader scans and puts."""

    def test_same_root_refused(self, v1_root):
        with pytest.raises(ValueError, match="overlapping"):
            migrate_store(v1_root, v1_root, to="segment")

    def test_same_root_via_relative_spelling_refused(self, v1_root):
        aliased = v1_root / ".." / v1_root.name
        with pytest.raises(ValueError, match="overlapping"):
            migrate_store(v1_root, aliased, to="segment")

    def test_dest_nested_inside_source_refused(self, v1_root):
        with pytest.raises(ValueError, match="overlapping"):
            migrate_store(v1_root, v1_root / "migrated", to="segment")

    def test_source_nested_inside_dest_refused(self, v1_root, tmp_path):
        with pytest.raises(ValueError, match="overlapping"):
            migrate_store(v1_root, v1_root.parent, to="segment")

    def test_source_untouched_after_refusal(self, v1_root, tmp_path):
        import json as json_module

        before = {
            fingerprint: json_module.dumps(document, sort_keys=True)
            for fingerprint, document in JsonFileBackend(v1_root).scan()
        }
        with pytest.raises(ValueError):
            migrate_store(v1_root, v1_root / "sub", to="segment")
        after = {
            fingerprint: json_module.dumps(document, sort_keys=True)
            for fingerprint, document in JsonFileBackend(v1_root).scan()
        }
        assert after == before
