"""Acceptance: a sweep through the service equals the in-process run.

Starts a real daemon (segment store, worker pool), runs the scenario
study twice -- once through a :class:`ServiceClient`, once through a
local :class:`Orchestrator` on a separate root -- and diffs
everything: the analysis outcomes, the stores' fingerprint sets, and
every persisted document byte for byte (request descriptor, ledger
and meta alike).  Also exercises the CLI's ``--service`` path against
the same daemon.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.orchestrator import Orchestrator, ResultStore
from repro.experiments.scenarios import run_scenarios
from repro.service import ExperimentDaemon, ServiceClient
from repro.sim.config import scaled_config


@pytest.fixture(scope="module")
def tiny_config():
    return scaled_config("tiny", seed=0).with_horizon(2)


def canonical_documents(
    store: ResultStore, expect_daemon: str | None = None
) -> dict[str, str]:
    """Store documents as canonical JSON, provenance normalized out.

    Daemon-recorded documents carry ``meta.daemon`` (which member
    executed the run); in-process ones do not.  Byte-identity is
    asserted on everything else; when ``expect_daemon`` is given,
    every document must carry exactly that provenance stamp.
    """
    canonical = {}
    for fingerprint, document in store.documents():
        document = dict(document)
        meta = dict(document.get("meta") or {})
        daemon = meta.pop("daemon", None)
        if expect_daemon is not None:
            assert daemon == expect_daemon, fingerprint
        if meta:
            document["meta"] = meta
        else:
            document.pop("meta", None)
        canonical[fingerprint] = json.dumps(document, sort_keys=True)
    return canonical


def test_scenario_sweep_is_byte_identical(tiny_config, tmp_path):
    service_store = ResultStore(tmp_path / "daemon", backend="segment")
    local_store = ResultStore(tmp_path / "local", backend="segment")
    daemon = ExperimentDaemon(
        Orchestrator(store=service_store, jobs=2)
    ).start()
    try:
        client = ServiceClient(daemon.url)
        remote_outcomes = run_scenarios(tiny_config, orchestrator=client)
        client.close()
    finally:
        daemon.close()
    local_outcomes = run_scenarios(
        tiny_config, orchestrator=Orchestrator(store=local_store, jobs=2)
    )

    # Identical analysis outcomes (dataclasses of floats -- exact).
    assert remote_outcomes == local_outcomes

    # Identical store contents: same fingerprints, same bytes (modulo
    # the daemon's provenance stamp, which must name the daemon).
    remote_docs = canonical_documents(
        service_store, expect_daemon=daemon.daemon_id
    )
    local_docs = canonical_documents(local_store)
    assert set(remote_docs) == set(local_docs)
    assert len(remote_docs) == 12  # 3 scenarios x 4 policies
    for fingerprint, document in local_docs.items():
        assert remote_docs[fingerprint] == document, fingerprint


def test_cli_service_path_matches_inprocess(tiny_config, tmp_path, capsys):
    daemon = ExperimentDaemon(
        Orchestrator(
            store=ResultStore(tmp_path / "cli-daemon", backend="segment"),
            jobs=2,
        )
    ).start()
    try:
        code = main(
            [
                "scenarios", "--scale", "tiny", "--horizon", "2",
                "--service", daemon.url, "--no-progress",
            ]
        )
        assert code == 0
        remote_out = capsys.readouterr().out
        code = main(
            ["scenarios", "--scale", "tiny", "--horizon", "2", "--no-progress"]
        )
        assert code == 0
        local_out = capsys.readouterr().out
        assert remote_out == local_out
    finally:
        daemon.close()
