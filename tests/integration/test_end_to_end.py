"""End-to-end integration: the four methods over a shared workload."""

import numpy as np
import pytest

from repro import (
    EnerAwarePolicy,
    NetAwarePolicy,
    PriAwarePolicy,
    ProposedPolicy,
    run_policies,
    scaled_config,
)
from repro.sim.metrics import format_comparison, normalized_costs


@pytest.fixture(scope="module")
def config():
    return scaled_config("tiny")


@pytest.fixture(scope="module")
def results(config):
    return run_policies(
        config,
        [ProposedPolicy(), EnerAwarePolicy(), PriAwarePolicy(), NetAwarePolicy()],
    )


class TestComparisonIntegrity:
    def test_four_results(self, results):
        assert len(results) == 4

    def test_same_workload_observed(self, results):
        reference = [slot.n_vms for slot in results[0].slots]
        for result in results[1:]:
            assert [slot.n_vms for slot in result.slots] == reference

    def test_costs_positive(self, results):
        for result in results:
            assert result.total_grid_cost_eur() > 0.0

    def test_energies_positive(self, results):
        for result in results:
            assert result.total_facility_energy_joules() > 0.0

    def test_response_samples_exist(self, results):
        for result in results:
            assert result.response_samples().size > 0

    def test_normalization_spans_unit(self, results):
        norms = normalized_costs(results)
        assert max(norms.values()) == pytest.approx(1.0)
        assert min(norms.values()) > 0.0

    def test_format_table_renders(self, results):
        table = format_comparison(results)
        assert len(table.splitlines()) == 6


class TestPaperShape:
    """Directional checks of the paper's headline orderings.

    These use the tiny CI config, so only robust orderings are
    asserted; the full-shape comparison lives in the benchmark
    harness (see EXPERIMENTS.md).
    """

    def test_proposed_not_worst_on_cost(self, results):
        norms = normalized_costs(results)
        assert norms["Proposed"] < 1.0

    def test_proposed_cheaper_than_ener_aware(self, results):
        by_name = {result.policy_name: result for result in results}
        assert (
            by_name["Proposed"].total_grid_cost_eur()
            < by_name["Ener-aware"].total_grid_cost_eur()
        )

    def test_proposed_exploits_renewables_best(self, results):
        by_name = {result.policy_name: result for result in results}
        proposed = by_name["Proposed"].renewable_utilization()
        assert proposed >= by_name["Ener-aware"].renewable_utilization()

    def test_proposed_better_mean_rt_than_ener(self, results):
        by_name = {result.policy_name: result for result in results}
        assert (
            by_name["Proposed"].mean_response_s()
            <= by_name["Ener-aware"].mean_response_s()
        )


class TestMigrationAccounting:
    def test_migration_volume_consistent(self, results):
        for result in results:
            total = sum(slot.migration_volume_mb for slot in result.slots)
            assert total == pytest.approx(result.total_migration_volume_mb())

    def test_migration_counts_non_negative(self, results):
        for result in results:
            assert result.total_migrations() >= 0
