"""Physics audit of every policy, including extension modes.

The auditor (:mod:`repro.sim.audit`) checks conservation, SoC
continuity, server bounds and metric signs for every slot of a run;
this integration test runs it across the full policy matrix.
"""

import pytest

from repro.baselines import EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy
from repro.core.controller import ProposedPolicy
from repro.core.forces import ForceParameters
from repro.core.local import allocate_first_fit
from repro.sim.audit import audit_run
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine

POLICIES = [
    pytest.param(lambda: ProposedPolicy(), id="proposed"),
    pytest.param(
        lambda: ProposedPolicy(force_params=ForceParameters(alpha=0.9)),
        id="proposed-alpha09",
    ),
    pytest.param(
        lambda: ProposedPolicy(local_allocator=allocate_first_fit),
        id="proposed-blind-local",
    ),
    pytest.param(lambda: ProposedPolicy(stickiness=0.4), id="proposed-sticky"),
    pytest.param(lambda: EnerAwarePolicy(), id="ener"),
    pytest.param(lambda: PriAwarePolicy(), id="pri"),
    pytest.param(lambda: NetAwarePolicy(), id="net"),
]


@pytest.fixture(scope="module")
def config():
    return scaled_config("tiny").with_horizon(5)


@pytest.mark.parametrize("make_policy", POLICIES)
def test_policy_run_passes_audit(config, make_policy):
    result = SimulationEngine(config, make_policy()).run()
    audit_run(result, config).raise_if_failed()


def test_clairvoyant_run_passes_audit(config):
    engine = SimulationEngine(config, ProposedPolicy(), clairvoyant=True)
    audit_run(engine.run(), config).raise_if_failed()


def test_other_seed_passes_audit():
    config = scaled_config("tiny", seed=1234).with_horizon(5)
    result = SimulationEngine(config, ProposedPolicy()).run()
    audit_run(result, config).raise_if_failed()
