"""ASCII reporting helpers."""

import numpy as np

from repro.reporting import bar_chart, histogram, series_panel, sparkline


class TestBarChart:
    def test_labels_present(self):
        chart = bar_chart({"alpha": 1.0, "beta": 0.5})
        assert "alpha" in chart
        assert "beta" in chart

    def test_max_gets_full_width(self):
        chart = bar_chart({"a": 1.0, "b": 0.5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_zero_values_safe(self):
        chart = bar_chart({"a": 0.0})
        assert "a" in chart


class TestSparkline:
    def test_length_capped(self):
        line = sparkline(np.arange(500), width=40)
        assert len(line) == 40

    def test_short_series_kept(self):
        line = sparkline(np.arange(5), width=40)
        assert len(line) == 5

    def test_monotone_series_ends_high(self):
        line = sparkline(np.arange(100), width=20)
        assert line[-1] == "@"
        assert line[0] == " "

    def test_constant_series_safe(self):
        line = sparkline(np.ones(10))
        assert len(line) == 10

    def test_empty(self):
        assert sparkline(np.zeros(0)) == "(no data)"


class TestHistogram:
    def test_dimensions(self):
        text = histogram(np.random.default_rng(0).uniform(0, 1, 100), bins=20, height=5)
        lines = text.splitlines()
        assert len(lines) == 7  # 5 rows + axis + label
        assert all(len(line) <= 20 for line in lines[:5])

    def test_empty(self):
        assert histogram(np.zeros(0)) == "(no data)"

    def test_upper_normalization(self):
        samples = np.array([0.1, 0.2])
        text = histogram(samples, bins=10, upper=1.0)
        assert "1" in text.splitlines()[-1]


class TestSeriesPanel:
    def test_multiple_series(self):
        panel = series_panel(
            {"one": np.arange(10.0), "two": np.ones(10)}
        )
        assert "one" in panel
        assert "two" in panel
        assert "[0, 9]" in panel

    def test_empty_dict(self):
        assert series_panel({}) == "(no data)"

    def test_empty_series_entry(self):
        panel = series_panel({"gone": np.zeros(0)})
        assert "(no data)" in panel
