"""Documentation quality gate: every public item carries a docstring.

Walks the whole :mod:`repro` package; public modules, classes,
functions and methods (no leading underscore) must be documented.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__, f"module {module.__name__} lacks a docstring"


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        yield name, member


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in public_members(module):
        if not inspect.getdoc(member):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not inspect.getdoc(method):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public members: {undocumented}"
    )
