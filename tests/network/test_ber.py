"""BER process: support, probabilities, determinism."""

import numpy as np
import pytest

from repro.network.ber import BER_DISTRIBUTION, BERProcess


@pytest.fixture
def process() -> BERProcess:
    return BERProcess(seed=3)


def test_distribution_sums_to_one():
    assert sum(prob for _, prob in BER_DISTRIBUTION) == pytest.approx(1.0)


def test_paper_values_present():
    values = {value for value, _ in BER_DISTRIBUTION}
    assert values == {1e-6, 1e-5, 1e-4, 1e-3, 1e-2}


def test_samples_from_support(process):
    rng = process.link_rng(0, 0, 1)
    draws = process.sample(rng, size=500)
    support = {value for value, _ in BER_DISTRIBUTION}
    assert set(np.unique(draws)) <= support


def test_sample_frequencies_match(process):
    rng = np.random.default_rng(0)
    draws = process.sample(rng, size=20_000)
    for value, prob in BER_DISTRIBUTION:
        frequency = float(np.mean(draws == value))
        assert frequency == pytest.approx(prob, abs=0.02)


def test_link_rng_deterministic(process):
    a = process.sample(process.link_rng(5, 0, 1), size=16)
    b = process.sample(process.link_rng(5, 0, 1), size=16)
    assert np.array_equal(a, b)


def test_different_links_differ(process):
    a = process.sample(process.link_rng(5, 0, 1), size=32)
    b = process.sample(process.link_rng(5, 0, 2), size=32)
    assert not np.array_equal(a, b)


def test_different_slots_differ(process):
    a = process.sample(process.link_rng(5, 0, 1), size=32)
    b = process.sample(process.link_rng(6, 0, 1), size=32)
    assert not np.array_equal(a, b)


def test_slot_link_ber_scalar(process):
    value = process.slot_link_ber(2, 0, 1)
    assert value in {v for v, _ in BER_DISTRIBUTION}


def test_expected_ber(process):
    expected = sum(value * prob for value, prob in BER_DISTRIBUTION)
    assert process.expected_ber() == pytest.approx(expected)
