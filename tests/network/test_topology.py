"""Geo topology: haversine, symmetry, validation."""

import pytest

from tests.conftest import make_specs
from repro.network.topology import GeoTopology, haversine_m


class TestHaversine:
    def test_zero_for_same_point(self):
        assert haversine_m(45.0, 7.0, 45.0, 7.0) == 0.0

    def test_lisbon_zurich_about_1720km(self):
        distance = haversine_m(38.7223, -9.1393, 47.3769, 8.5417)
        assert distance == pytest.approx(1.72e6, rel=0.03)

    def test_lisbon_helsinki_about_3360km(self):
        distance = haversine_m(38.7223, -9.1393, 60.1699, 24.9384)
        assert distance == pytest.approx(3.36e6, rel=0.03)

    def test_symmetric(self):
        a = haversine_m(38.7, -9.1, 60.2, 24.9)
        b = haversine_m(60.2, 24.9, 38.7, -9.1)
        assert a == pytest.approx(b)

    def test_equator_degree(self):
        # One degree of longitude at the equator is ~111 km.
        assert haversine_m(0.0, 0.0, 0.0, 1.0) == pytest.approx(1.112e5, rel=0.01)


class TestTopology:
    def test_diagonal_zero(self, specs):
        topology = GeoTopology(specs)
        for i in range(3):
            assert topology.distance_m(i, i) == 0.0

    def test_symmetry(self, specs):
        topology = GeoTopology(specs)
        assert topology.distance_m(0, 2) == pytest.approx(topology.distance_m(2, 0))

    def test_route_factor_stretches(self, specs):
        direct = GeoTopology(specs, route_factor=1.0)
        routed = GeoTopology(specs, route_factor=1.5)
        assert routed.distance_m(0, 1) == pytest.approx(
            1.5 * direct.distance_m(0, 1)
        )

    def test_local_bandwidth_from_spec(self, specs):
        topology = GeoTopology(specs)
        assert topology.local_bandwidth_bps(1) == specs[1].local_bandwidth_bps

    def test_matrix_copy_is_independent(self, specs):
        topology = GeoTopology(specs)
        matrix = topology.distance_matrix_m()
        matrix[0, 1] = -1.0
        assert topology.distance_m(0, 1) > 0.0

    def test_n_dcs(self, specs):
        assert GeoTopology(specs).n_dcs == 3

    def test_validation(self, specs):
        with pytest.raises(ValueError):
            GeoTopology([])
        with pytest.raises(ValueError):
            GeoTopology(specs, backbone_bandwidth_bps=0.0)
        with pytest.raises(ValueError):
            GeoTopology(specs, route_factor=0.5)
