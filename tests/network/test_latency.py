"""Latency model: Eq. 1-4 and Algorithm 1."""

import numpy as np
import pytest

from repro.network.latency import LatencyModel, global_data_latency
from repro.units import FIBER_LIGHT_SPEED, mb_to_bits


class TestAlgorithm1:
    def test_zero_volume_zero_latency(self):
        assert global_data_latency(0.0, 1e10, np.array([1e-6])) == 0.0

    def test_small_volume_single_fragment(self):
        # 1 MB over a clean 10 Gb/s link: 8e6 / 1e10 = 0.8 ms.
        latency = global_data_latency(1.0, 1e10, np.array([0.0]))
        assert latency == pytest.approx(8e6 / 1e10)

    def test_ber_slows_transfer(self):
        clean = global_data_latency(100.0, 1e9, np.array([0.0]))
        noisy = global_data_latency(100.0, 1e9, np.array([1e-2]))
        assert noisy > clean

    def test_multi_second_fragmentation(self):
        # 3 seconds of a 1 Gb/s link needed for 3 Gb = 375 MB.
        latency = global_data_latency(375.0, 1e9, np.array([0.0]))
        assert latency == pytest.approx(3.0)

    def test_fragment_count_integer_plus_tail(self):
        latency = global_data_latency(200.0, 1e9, np.array([0.0]))
        # 1.6e9 bits over 1e9 bps -> 1 full second + 0.6 s tail.
        assert latency == pytest.approx(1.6)

    def test_callable_sampler_supported(self):
        latency = global_data_latency(375.0, 1e9, lambda: 0.0)
        assert latency == pytest.approx(3.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            global_data_latency(-1.0, 1e9, np.array([0.0]))

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            global_data_latency(1.0, 1e9, np.array([]))

    def test_samples_cycle(self):
        # Alternating clean/dirty seconds still terminates correctly.
        samples = np.array([0.0, 0.5])
        latency = global_data_latency(375.0, 1e9, samples)
        assert latency > 3.0


class TestLocalTerms:
    def test_source_local_eq2(self, latency_model):
        latency = latency_model.source_local_latency(0, 100.0)
        expected = mb_to_bits(100.0) / 10.0e9
        assert latency == pytest.approx(expected)

    def test_dest_local_eq3(self, latency_model):
        latency = latency_model.dest_local_latency(1, 250.0)
        assert latency == pytest.approx(mb_to_bits(250.0) / 10.0e9)

    def test_negative_volume_rejected(self, latency_model):
        with pytest.raises(ValueError):
            latency_model.source_local_latency(0, -1.0)
        with pytest.raises(ValueError):
            latency_model.dest_local_latency(0, -1.0)


class TestGlobalTerm:
    def test_propagation_matches_distance(self, latency_model):
        expected = latency_model.topology.distance_m(0, 2) / FIBER_LIGHT_SPEED
        assert latency_model.propagation_latency(0, 2) == pytest.approx(expected)

    def test_same_dc_zero(self, latency_model):
        assert latency_model.global_latency(1, 1, 500.0, slot=0) == 0.0

    def test_includes_propagation_floor(self, latency_model):
        latency = latency_model.global_latency(0, 2, 0.001, slot=0)
        assert latency >= latency_model.propagation_latency(0, 2)

    def test_deterministic_per_slot(self, latency_model):
        a = latency_model.global_latency(0, 1, 800.0, slot=4)
        b = latency_model.global_latency(0, 1, 800.0, slot=4)
        assert a == b


class TestDestinationLatency:
    def test_empty_sources_zero(self, latency_model):
        result = latency_model.destination_latency(0, {}, slot=0)
        assert result.total_s == 0.0
        assert result.worst_source is None

    def test_intra_dc_only_local_term(self, latency_model):
        result = latency_model.destination_latency(1, {1: 300.0}, slot=0)
        assert result.total_s == pytest.approx(
            latency_model.dest_local_latency(1, 300.0)
        )
        assert result.worst_source is None

    def test_worst_source_selected(self, latency_model):
        result = latency_model.destination_latency(
            1, {0: 5000.0, 2: 1.0}, slot=0
        )
        assert result.worst_source == 0

    def test_total_is_worst_plus_dest_local(self, latency_model):
        volumes = {0: 500.0, 2: 100.0}
        result = latency_model.destination_latency(1, volumes, slot=3)
        worst = max(result.source_terms.values())
        assert result.total_s == pytest.approx(worst + result.dest_local_s)

    def test_dest_local_counts_all_inflow(self, latency_model):
        with_intra = latency_model.destination_latency(
            1, {0: 100.0, 1: 400.0}, slot=0
        )
        without = latency_model.destination_latency(1, {0: 100.0}, slot=0)
        assert with_intra.dest_local_s > without.dest_local_s

    def test_negative_volume_rejected(self, latency_model):
        with pytest.raises(ValueError):
            latency_model.destination_latency(0, {1: -5.0}, slot=0)


class TestMigrationLatency:
    def test_same_dc_zero(self, latency_model):
        assert latency_model.migration_latency(1, 1, 4000.0, slot=0) == 0.0

    def test_zero_volume_zero(self, latency_model):
        assert latency_model.migration_latency(0, 1, 0.0, slot=0) == 0.0

    def test_monotone_in_volume(self, latency_model):
        small = latency_model.migration_latency(0, 1, 2000.0, slot=0)
        large = latency_model.migration_latency(0, 1, 8000.0, slot=0)
        assert large > small

    def test_8gb_feasible_within_qos_window(self, latency_model):
        """An 8 GB image must fit the 72 s window of the paper's setup."""
        latency = latency_model.migration_latency(0, 2, 8000.0, slot=0)
        assert latency < 72.0
