"""Baseline decision rules: Pri-aware, Ener-aware, Net-aware."""

import numpy as np
import pytest

from tests.conftest import make_observation, make_vm
from repro.baselines.ener_aware import EnerAwarePolicy
from repro.baselines.net_aware import NetAwarePolicy, communication_groups
from repro.baselines.pri_aware import PriAwarePolicy


@pytest.mark.parametrize(
    "policy_cls", [PriAwarePolicy, EnerAwarePolicy, NetAwarePolicy]
)
class TestCommonContract:
    def test_placement_valid(self, policy_cls, observation):
        placement = policy_cls().place(observation)
        placement.validate(observation)

    def test_names_match_paper(self, policy_cls, observation):
        assert policy_cls.name in {"Pri-aware", "Ener-aware", "Net-aware"}

    def test_deterministic(self, policy_cls, observation):
        a = policy_cls().place(observation).assignment
        b = policy_cls().place(observation).assignment
        assert a == b


class TestPriAware:
    def test_prefers_cheapest_dc(self, observation):
        placement = PriAwarePolicy().place(observation)
        prices = [
            dc.grid_price_at(observation.slot) for dc in observation.dcs
        ]
        cheapest = int(np.argmin(prices))
        counts = np.bincount(
            list(placement.assignment.values()), minlength=3
        )
        assert counts[cheapest] == counts.max()

    def test_spills_to_next_cheapest_when_full(
        self, datacenters, latency_model, trace_library, volume_process
    ):
        # 30 heavy VMs cannot fit the cheapest (2-server) DC.
        vms = [make_vm(vm_id=i, cores=4.0, seed=i) for i in range(30)]
        observation = make_observation(
            vms, datacenters, latency_model, trace_library, volume_process
        )
        placement = PriAwarePolicy().place(observation)
        used = set(placement.assignment.values())
        assert len(used) >= 2

    def test_price_order_in_diagnostics(self, observation):
        placement = PriAwarePolicy().place(observation)
        order = placement.diagnostics["dc_order"]
        prices = placement.diagnostics["prices"]
        assert sorted(order, key=lambda dc: prices[dc]) == order


class TestEnerAware:
    def test_fills_first_dc_first(self, observation):
        placement = EnerAwarePolicy().place(observation)
        counts = np.bincount(list(placement.assignment.values()), minlength=3)
        assert counts[0] == counts.max()

    def test_ffd_spills_in_index_order(
        self, datacenters, latency_model, trace_library, volume_process
    ):
        vms = [make_vm(vm_id=i, cores=4.0, seed=i) for i in range(40)]
        observation = make_observation(
            vms, datacenters, latency_model, trace_library, volume_process
        )
        placement = EnerAwarePolicy().place(observation)
        counts = np.bincount(list(placement.assignment.values()), minlength=3)
        # DC0 takes the most, then DC1, then DC2 (fixed FFD order).
        assert counts[0] >= counts[1] >= counts[2]


class TestNetAware:
    def test_groups_stay_together(self, observation):
        placement = NetAwarePolicy().place(observation)
        groups = communication_groups(observation.volumes.volumes, 2.0)
        for group in groups:
            dcs = {
                placement.assignment[observation.vms[row].vm_id] for row in group
            }
            assert len(dcs) == 1

    def test_balances_across_dcs(
        self, datacenters, latency_model, trace_library, volume_process
    ):
        vms = []
        for service in range(12):
            for member in range(2):
                vms.append(
                    make_vm(
                        vm_id=service * 2 + member,
                        service_id=service,
                        cores=2.0,
                        seed=service * 2 + member,
                    )
                )
        observation = make_observation(
            vms, datacenters, latency_model, trace_library, volume_process
        )
        placement = NetAwarePolicy().place(observation)
        counts = np.bincount(list(placement.assignment.values()), minlength=3)
        assert np.all(counts > 0)

    def test_stable_when_group_still_fits(
        self, six_vms, datacenters, latency_model, trace_library, volume_process
    ):
        previous = {vm.vm_id: 1 for vm in six_vms}
        observation = make_observation(
            six_vms,
            datacenters,
            latency_model,
            trace_library,
            volume_process,
            previous_assignment=previous,
        )
        placement = NetAwarePolicy().place(observation)
        assert all(dc == 1 for dc in placement.assignment.values())
        assert not placement.moves

    def test_group_count_in_diagnostics(self, observation):
        placement = NetAwarePolicy().place(observation)
        assert placement.diagnostics["n_groups"] >= 1


class TestCommunicationGroups:
    def test_singletons_without_traffic(self):
        groups = communication_groups(np.zeros((3, 3)))
        assert groups == [[0], [1], [2]]

    def test_threshold_cuts_weak_edges(self):
        volumes = np.zeros((3, 3))
        volumes[0, 1] = 5.0
        volumes[1, 2] = 0.5
        strong = communication_groups(volumes, threshold_mb=1.0)
        weak = communication_groups(volumes, threshold_mb=0.1)
        assert [0, 1] in strong and [2] in strong
        assert [0, 1, 2] in weak

    def test_components_partition_vms(self, observation):
        groups = communication_groups(observation.volumes.volumes, 1.0)
        flat = sorted(row for group in groups for row in group)
        assert flat == list(range(len(observation.vms)))
