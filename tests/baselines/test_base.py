"""Shared baseline machinery."""

import numpy as np
import pytest

from tests.conftest import make_observation, make_vm
from repro.baselines.base import (
    build_allocations,
    dc_capacities_cores,
    enforce_migration_constraint,
    finish_placement,
)
from repro.core.local import allocate_first_fit


class TestEnforceMigrationConstraint:
    def test_new_vms_take_desired(self, observation):
        desired = np.array([2, 2, 2, 0, 0, 0])
        assignment, moves, rejected = enforce_migration_constraint(
            observation, desired
        )
        # No previous assignment -> everything is new, no WAN moves.
        assert not moves
        assert not rejected
        assert [assignment[vm.vm_id] for vm in observation.vms] == [2, 2, 2, 0, 0, 0]

    def test_existing_vms_migrate_when_feasible(
        self, six_vms, datacenters, latency_model, trace_library, volume_process
    ):
        observation = make_observation(
            six_vms,
            datacenters,
            latency_model,
            trace_library,
            volume_process,
            previous_assignment={vm.vm_id: 0 for vm in six_vms},
        )
        desired = np.array([1] * 6)
        assignment, moves, rejected = enforce_migration_constraint(
            observation, desired
        )
        assert len(moves) + len(rejected) == 6
        assert all(assignment[move.vm_id] == 1 for move in moves)

    def test_zero_window_blocks_everything(
        self, six_vms, datacenters, latency_model, trace_library, volume_process
    ):
        observation = make_observation(
            six_vms,
            datacenters,
            latency_model,
            trace_library,
            volume_process,
            previous_assignment={vm.vm_id: 0 for vm in six_vms},
        )
        observation.latency_constraint_s = 1e-9
        desired = np.array([1] * 6)
        assignment, moves, rejected = enforce_migration_constraint(
            observation, desired
        )
        assert not moves
        assert len(rejected) == 6
        assert all(dc == 0 for dc in assignment.values())

    def test_small_images_move_first(
        self, datacenters, latency_model, trace_library, volume_process
    ):
        vms = [
            make_vm(vm_id=0, image_gb=8.0, seed=1),
            make_vm(vm_id=1, image_gb=2.0, seed=2),
        ]
        observation = make_observation(
            vms,
            datacenters,
            latency_model,
            trace_library,
            volume_process,
            previous_assignment={0: 0, 1: 0},
        )
        # Window fits roughly one 2 GB image end to end.
        observation.latency_constraint_s = 5.0
        assignment, moves, rejected = enforce_migration_constraint(
            observation, np.array([1, 1])
        )
        assert [move.vm_id for move in moves] == [1]
        assert rejected == [0]

    def test_desired_shape_validated(self, observation):
        with pytest.raises(ValueError):
            enforce_migration_constraint(observation, np.array([0, 1]))

    def test_desired_range_validated(self, observation):
        with pytest.raises(ValueError):
            enforce_migration_constraint(observation, np.array([0, 1, 2, 3, 0, 0]))


class TestBuildAllocations:
    def test_alignment_with_assignment(self, observation):
        assignment = {vm.vm_id: vm.vm_id % 3 for vm in observation.vms}
        allocations = build_allocations(observation, assignment, allocate_first_fit)
        assert len(allocations) == 3
        for dc_index, allocation in enumerate(allocations):
            for vms in allocation.server_vms:
                for vm_id in vms:
                    assert assignment[vm_id] == dc_index

    def test_finish_placement_valid(self, observation):
        desired = np.array([vm.vm_id % 3 for vm in observation.vms])
        placement = finish_placement(observation, desired, allocate_first_fit)
        placement.validate(observation)
        assert "rejected_migrations" in placement.diagnostics


class TestCapacities:
    def test_headroom_scales(self, observation):
        full = dc_capacities_cores(observation, headroom=1.0)
        derated = dc_capacities_cores(observation, headroom=0.5)
        assert np.allclose(derated, full * 0.5)

    def test_headroom_validated(self, observation):
        with pytest.raises(ValueError):
            dc_capacities_cores(observation, headroom=0.0)
