# Developer entry points for the PahlevanVA16 reproduction.
#
#   make test        - tier-1 test suite (fast; what CI gates on)
#   make bench-smoke - tiny-scale benchmark suite: orchestrator fan-out,
#                      result-store warm hits and the engine's per-slot
#                      hot paths (loop vs vectorized)
#   make bench       - full benchmark harness (slow: one-week comparison)

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench-smoke bench

test:
	$(PYTEST) -x -q

bench-smoke:
	$(PYTEST) -q benchmarks/bench_orchestrator.py \
		benchmarks/bench_scaling.py -k "orchestrator or it_power or response_latencies or bench" \
		--benchmark-min-rounds=3

bench:
	$(PYTEST) -q benchmarks
