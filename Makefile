# Developer entry points for the PahlevanVA16 reproduction.
#
#   make test        - tier-1 test suite (fast; what CI gates on)
#   make bench-smoke - tiny-scale benchmark suite: orchestrator fan-out,
#                      result-store warm hits, store-backend write/read/
#                      scan (per-file vs sharded vs segment), the
#                      engine's per-slot hot paths, the fleet-batched
#                      slot-physics kernel (bench_green) and the
#                      data-correlation generation (loop vs vectorized)
#   make bench       - full benchmark harness (slow: one-week comparison)

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench-smoke bench

test:
	$(PYTEST) -x -q

# NOTE: -k matches whole node ids (module names included), so keywords
# must not appear in every bench_* filename or the filter is a no-op.
bench-smoke:
	$(PYTEST) -q benchmarks/bench_orchestrator.py \
		benchmarks/bench_scaling.py benchmarks/bench_datacorr.py \
		benchmarks/bench_store.py benchmarks/bench_green.py \
		-k "orchestrator or it_power or response_latencies or datacorr or store or green" \
		--benchmark-min-rounds=3

bench:
	$(PYTEST) -q benchmarks
