# Developer entry points for the PahlevanVA16 reproduction.
#
#   make test        - tier-1 test suite (fast; what CI gates on)
#   make bench-smoke - tiny-scale benchmark suite: orchestrator fan-out,
#                      result-store warm hits, store-backend write/read/
#                      scan (per-file vs sharded vs segment), the
#                      experiment-service warm wire throughput (8
#                      concurrent clients vs one daemon: batched +
#                      gzip + headline-projected submit_many vs the
#                      single-POST v1 shape -> BENCH_service.json),
#                      the fleet cold-sweep scale-out (3 daemon
#                      subprocesses vs 1 over one shared store root
#                      -> BENCH_fleet.json; skips below 4 CPUs),
#                      the engine's
#                      per-slot hot paths, the fleet-batched
#                      slot-physics kernel (bench_green), the
#                      discrete-event driver throughput + byte-identity
#                      gate (bench_events -> BENCH_events.json), the
#                      campaign-ledger overhead gate (bench_suite:
#                      1k-run warm sweep, suite <= 1.10x raw
#                      submit_many -> BENCH_suite.json) and the
#                      data-correlation generation (loop vs vectorized)
#   make bench       - full benchmark harness (slow: one-week comparison)

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test bench-smoke bench store-compact-nightly

test:
	$(PYTEST) -x -q

# NOTE: -k matches whole node ids (module names included), so keywords
# must not appear in every bench_* filename or the filter is a no-op.
bench-smoke:
	$(PYTEST) -q benchmarks/bench_orchestrator.py \
		benchmarks/bench_scaling.py benchmarks/bench_datacorr.py \
		benchmarks/bench_store.py benchmarks/bench_green.py \
		benchmarks/bench_service.py benchmarks/bench_fleet.py \
		benchmarks/bench_workload_cache.py benchmarks/bench_events.py \
		benchmarks/bench_suite.py \
		-k "orchestrator or it_power or response_latencies or datacorr or store or green or service or fleet or workload or event_core or suite" \
		--benchmark-min-rounds=3

# Nightly follow-up to bench-smoke: compact the segment store the
# service benchmark leaves behind so tombstoned/duplicated records
# never accumulate between runs (the scheduled-compaction path).
store-compact-nightly:
	PYTHONPATH=src python -m repro store compact \
		--store benchmarks/reports/service_store

bench:
	$(PYTEST) -q benchmarks
