"""Fig. 5: cost-performance trade-off.

Paper: vs Pri-aware, Proposed gains 25 % cost and 12 % performance
simultaneously; vs Net-aware it saves 35 % cost while giving up only
~2 % performance.
"""

from conftest import write_report

from repro.experiments.figures import fig5_cost_performance


def test_fig5_cost_performance(benchmark, week_results, report_dir):
    report = benchmark(fig5_cost_performance, week_results)

    lines = ["== Fig. 5: cost-performance trade-off of Proposed =="]
    for label, measured_key, paper_key in (
        ("vs Pri-aware", "measured_vs_pri", "paper_vs_pri"),
        ("vs Net-aware", "measured_vs_net", "paper_vs_net"),
    ):
        measured = report[measured_key]
        paper = report[paper_key]
        lines.append(
            f"{label:<14} cost {measured['cost']:6.1f} % "
            f"(paper {paper['cost']:.0f} %), performance "
            f"{measured['performance']:6.1f} % (paper {paper['performance']:.0f} %)"
        )
    write_report(report_dir, "fig5_cost_performance.txt", lines)

    # Shape: Proposed dominates Pri-aware on cost; vs Net-aware it
    # trades performance for a clear cost win.
    assert report["measured_vs_pri"]["cost"] > 0.0
    assert report["measured_vs_net"]["cost"] > 0.0
    assert report["measured_vs_net"]["performance"] < report["measured_vs_net"]["cost"]
