"""Workload-cache benchmark: one materialization, many policies.

The paper's deliverables are sweeps -- several policies (and engine
option variants) judged over the *same* workload realization.  Without
the workload cache every run regenerates that realization from
scratch (~90% of a baseline run's wall time); with it, sticky workers
materialize each workload once and every same-key run after the first
reuses the realized population, traces, demand and volume matrices.

This benchmark executes the canonical sweep shape cold, twice:

``cache+sticky``
    ``Orchestrator(jobs=2, workload_cache=4)`` -- sticky key-affine
    workers, per-process materialization LRU, shared-memory pack
    fan-out where it applies.
``cache-off``
    ``Orchestrator(jobs=2, workload_cache=0)`` -- the pre-cache
    execution path: plain pool, per-run workload builds.

Gates (asserted, and recorded in ``benchmarks/reports/``):

* cached sweep >= :data:`SPEEDUP_BAR` x the cache-off sweep;
* artifacts are byte-identical between the two paths -- equal
  fingerprints and equal canonical result documents (the cache is an
  execution detail, invisible in every output byte);
* a large recorded pack engages the shared-memory fan-out (exactly
  one published segment) and stays byte-identical too.

A machine-readable ``BENCH_workload.json`` lands next to
``BENCH_green.json`` for the nightly trajectory.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.experiments.orchestrator import (
    EngineOptions,
    Orchestrator,
    ResultStore,
    RunRequest,
)
from repro.experiments.runner import default_policies
from repro.sim.config import scaled_config
from repro.workload.packs import RecordedTraceSource, TracePack

#: Minimum cold-sweep speedup of cache+sticky over cache-off.
SPEEDUP_BAR = 2.0

#: Worker processes on both sides of the comparison.
JOBS = 2

#: Sweep horizon: long enough that workload generation dominates.
HORIZON = 8

def _sweep_requests() -> list[RunRequest]:
    """The canonical sweep: 3 baselines x (validate x clairvoyant).

    Twelve runs, one materialization key -- fresh policy instances per
    request (policies carry cross-slot state).
    """
    config = scaled_config("tiny").with_horizon(HORIZON)
    return [
        RunRequest(
            config=config,
            policy=policy,
            options=EngineOptions(
                validate=validate, clairvoyant=clairvoyant
            ),
        )
        for validate in (False, True)
        for clairvoyant in (False, True)
        for policy in default_policies()[1:4]
    ]


def _recorded_requests(pack: TracePack) -> list[RunRequest]:
    config = scaled_config("tiny").with_horizon(4)
    return [
        RunRequest(config=config, policy=policy, pack=pack)
        for policy in default_policies()[1:3]
    ]


def _big_recorded_pack() -> TracePack:
    """A recorded day big enough to cross the shared-memory floor."""
    rng = np.random.default_rng(23)
    matrix = rng.uniform(0.05, 0.95, size=(200, 24 * 30))
    assert matrix.nbytes >= 1 << 20
    return TracePack(
        name="bench-recorded",
        source=RecordedTraceSource(utilization=matrix, steps_per_slot=30),
    )


def _canonical(artifact) -> str:
    return json.dumps(artifact.result.to_dict(), sort_keys=True)


def _timed_cold_sweep(requests, workload_cache):
    """Elapsed seconds + artifacts + cache stats for one cold sweep."""
    with Orchestrator(
        store=ResultStore(),
        jobs=JOBS,
        workload_cache=workload_cache,
    ) as orchestrator:
        start = time.perf_counter()
        artifacts = orchestrator.run_many(requests)
        elapsed = time.perf_counter() - start
        stats = orchestrator.workload_cache_stats()
    return elapsed, artifacts, stats


def _assert_identical(cached_artifacts, plain_artifacts):
    for ours, theirs in zip(cached_artifacts, plain_artifacts):
        assert ours.fingerprint == theirs.fingerprint
        assert _canonical(ours) == _canonical(theirs)


def test_workload_cache_cold_sweep(report_dir):
    """Gate: cache+sticky+shm >= 2x cache-off on a same-workload sweep.

    Unlike the fleet bench, this gate holds on any CPU count: the win
    is *eliminated recomputation* (one workload materialization
    instead of twelve), not parallel overlap, so there is no skip.
    """
    cached_elapsed, cached_artifacts, cache_stats = _timed_cold_sweep(
        _sweep_requests(), workload_cache=4
    )
    plain_elapsed, plain_artifacts, _ = _timed_cold_sweep(
        _sweep_requests(), workload_cache=0
    )
    assert len(cached_artifacts) == len(plain_artifacts) == 12
    _assert_identical(cached_artifacts, plain_artifacts)
    # Every worker materialized the sweep's one workload at most once.
    assert cache_stats["misses"] <= JOBS
    assert cache_stats["hits"] >= len(cached_artifacts) - JOBS

    # -- shared-memory fan-out variant: a real recorded pack ---------------
    pack = _big_recorded_pack()
    with Orchestrator(
        store=ResultStore(), jobs=JOBS, workload_cache=4
    ) as orchestrator:
        shm_artifacts = orchestrator.run_many(_recorded_requests(pack))
        shared = orchestrator.workload_cache_stats()["shared"]
    with Orchestrator(
        store=ResultStore(), jobs=JOBS, workload_cache=0
    ) as orchestrator:
        shm_plain = orchestrator.run_many(_recorded_requests(pack))
    _assert_identical(shm_artifacts, shm_plain)
    assert shared["segments"] == 1
    assert shared["bytes"] == pack.source.utilization.nbytes

    speedup = plain_elapsed / cached_elapsed
    report = {
        "benchmark": "workload_cache_cold_sweep",
        "jobs": JOBS,
        "runs": len(cached_artifacts),
        "horizon": HORIZON,
        "cpu_count": os.cpu_count(),
        "cached": {
            "elapsed_s": round(cached_elapsed, 3),
            "materialization_misses": cache_stats["misses"],
            "materialization_hits": cache_stats["hits"],
            "slot_hits": cache_stats["slot_hits"],
            "slot_misses": cache_stats["slot_misses"],
        },
        "cache_off": {"elapsed_s": round(plain_elapsed, 3)},
        "shared_memory": {
            "segments": shared["segments"],
            "bytes": shared["bytes"],
        },
        "speedup_cached_vs_off": round(speedup, 2),
        "bars": {"speedup_min": SPEEDUP_BAR},
    }
    (report_dir / "BENCH_workload.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    lines = [
        f"workload-cache cold sweep ({len(cached_artifacts)} runs, "
        f"one workload, jobs={JOBS}, horizon {HORIZON})",
        f"  cache-off   : {plain_elapsed:7.2f}s",
        f"  cache+sticky: {cached_elapsed:7.2f}s "
        f"(hits {cache_stats['hits']}, misses {cache_stats['misses']})",
        f"  shm fan-out : {shared['segments']} segment, "
        f"{shared['bytes'] / (1 << 20):.2f} MiB shared once",
        f"  speedup     : {speedup:7.2f}x (bar: >= {SPEEDUP_BAR}x)",
    ]
    (report_dir / "workload_cache.txt").write_text("\n".join(lines) + "\n")
    print()
    for line in lines:
        print(line)

    assert speedup >= SPEEDUP_BAR, (
        f"workload cache speedup regressed: {speedup:.2f}x < "
        f"{SPEEDUP_BAR}x (cached {cached_elapsed:.2f}s vs "
        f"off {plain_elapsed:.2f}s)"
    )
