"""Fig. 4: total cost / energy / performance improvements.

Paper: "up to 55, 15 and 12 % improvements for operational cost, energy
consumption and performance" (each against the weakest baseline in that
dimension).
"""

from conftest import write_report

from repro.experiments.figures import fig4_totals


def test_fig4_totals(benchmark, week_results, report_dir):
    report = benchmark(fig4_totals, week_results)

    measured = report["measured_pct"]
    paper = report["paper_pct"]
    lines = ["== Fig. 4: best-case improvements of Proposed =="]
    lines.append(f"{'metric':<14} {'measured %':>11} {'paper %':>9}")
    for metric in ("cost", "energy", "performance"):
        lines.append(
            f"{metric:<14} {measured[metric]:>11.1f} {paper[metric]:>9.0f}"
        )
    write_report(report_dir, "fig4_totals.txt", lines)

    # Shape: Proposed improves on the weakest baseline in every
    # dimension the paper reports.
    assert measured["cost"] > 0.0
    assert measured["energy"] > 0.0
    assert measured["performance"] > 0.0
