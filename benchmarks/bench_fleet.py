"""Fleet benchmarks: cold-miss scale-out across daemon processes.

The fleet exists for one reason: a cold sweep's miss execution should
scale with the number of daemon *processes* behind it.  So unlike
``bench_service`` (one in-process daemon, warm wire throughput), this
benchmark spawns real ``repro serve`` subprocesses -- each its own
interpreter, each ``--jobs 1`` -- and measures cold artifacts per
second for the same grid resolved two ways:

``single``
    One daemon process, plain :class:`ServiceClient`.
``fleet``
    :data:`FLEET_SIZE` daemon processes sharing one segment store
    root, a :class:`FleetClient` routing by rendezvous hashing.

Gates (asserted, and recorded in ``benchmarks/reports/``):

* fleet cold rate >= :data:`SPEEDUP_BAR` x the single-daemon rate;
* exactly-once fleet-wide: the members' ``/stats`` ``computed``
  counters sum to the number of unique misses *and* match the
  client-side rendezvous precompute per member;
* fleet artifacts are byte-identical to an in-process
  :class:`Orchestrator` resolving the same grid.

The whole point is multi-core parallelism, so the benchmark skips on
hosts with fewer than :data:`MIN_CPUS` CPUs (the nightly runners have
them; a 1-core dev container cannot show a 2.5x).
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunRequest,
)
from repro.experiments.runner import default_policies
from repro.service import FleetClient, ServiceClient, rendezvous_member
from repro.sim.config import scaled_config

#: Daemon processes behind the fleet measurement.
FLEET_SIZE = 3

#: Minimum cold-sweep speedup of the fleet over one daemon.
SPEEDUP_BAR = 2.5

#: Skip below this CPU count: subprocess daemons must actually run in
#: parallel for the gate to be meaningful.
MIN_CPUS = 4

#: Distinct seeds in the cold grid; x4 policies = unique misses.
COLD_SEEDS = 12

#: Horizon of every run: long enough that execution dominates wire.
HORIZON = 6

SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

_LISTENING = re.compile(r"listening on (http://\S+) ")


def _requests() -> list[RunRequest]:
    return [
        RunRequest(
            config=scaled_config("tiny", seed=seed).with_horizon(HORIZON),
            policy=policy,
        )
        for seed in range(COLD_SEEDS)
        for policy in default_policies()
    ]


class _DaemonProcess:
    """One ``repro serve`` subprocess and its bound URL."""

    def __init__(self, store_root: pathlib.Path, daemon_id: str) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--store",
                str(store_root),
                "--store-backend",
                "segment",
                "--jobs",
                "1",
                "--port",
                "0",
                "--daemon-id",
                daemon_id,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.url = self._await_url(timeout_s=30.0)

    def _await_url(self, timeout_s: float) -> str:
        found: list[str] = []

        def read() -> None:
            for line in self.proc.stderr:
                match = _LISTENING.search(line)
                if match and not found:
                    found.append(match.group(1))
            # keep draining so the daemon never blocks on a full pipe

        thread = threading.Thread(target=read, daemon=True)
        thread.start()
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if found:
                return found[0]
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited with {self.proc.returncode} "
                    "before binding"
                )
            time.sleep(0.05)
        self.proc.terminate()
        raise RuntimeError("daemon did not report its URL in time")

    def close(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()


def _spawn(root: pathlib.Path, count: int, tag: str) -> list[_DaemonProcess]:
    daemons = []
    try:
        for index in range(count):
            daemons.append(_DaemonProcess(root, f"bench-{tag}-{index}"))
    except BaseException:
        for daemon in daemons:
            daemon.close()
        raise
    return daemons


def _canonical(artifact) -> str:
    return json.dumps(artifact.result.to_dict(), sort_keys=True)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < MIN_CPUS,
    reason=f"fleet scale-out needs >= {MIN_CPUS} CPUs "
    f"(found {os.cpu_count()})",
)
def test_fleet_cold_sweep_scaleout(report_dir, tmp_path):
    """Gate: 3 daemon processes >= 2.5x one on a cold sweep."""
    requests = _requests()
    unique = {request.fingerprint() for request in requests}

    # -- single daemon baseline (its own cold root) ------------------------
    single_daemons = _spawn(tmp_path / "single-root", 1, "single")
    try:
        with ServiceClient(single_daemons[0].url) as client:
            start = time.perf_counter()
            single_artifacts = client.run_many(requests)
            single_elapsed = time.perf_counter() - start
            single_stats = client.stats()
    finally:
        for daemon in single_daemons:
            daemon.close()
    assert len(single_artifacts) == len(requests)
    assert single_stats["computed"] == len(unique)

    # -- the fleet: FLEET_SIZE daemons over ONE shared cold root -----------
    fleet_daemons = _spawn(tmp_path / "fleet-root", FLEET_SIZE, "fleet")
    try:
        with FleetClient([d.url for d in fleet_daemons]) as fleet:
            start = time.perf_counter()
            fleet_artifacts = fleet.run_many(requests)
            fleet_elapsed = time.perf_counter() - start
            member_stats = fleet.stats()["members"]
            member_urls = fleet.urls
    finally:
        for daemon in fleet_daemons:
            daemon.close()
    assert len(fleet_artifacts) == len(requests)

    # Exactly-once fleet-wide: the members' executed-run counters sum
    # to the unique misses and match the rendezvous precompute.
    computed = {
        url: member_stats[url]["computed"] for url in member_urls
    }
    expected = {url: 0 for url in member_urls}
    for fingerprint in unique:
        expected[rendezvous_member(fingerprint, member_urls)] += 1
    assert sum(computed.values()) == len(unique), computed
    assert computed == expected

    # Byte-identity: the fleet's artifacts equal an in-process sweep's.
    with Orchestrator(
        store=ResultStore(tmp_path / "local-root", backend="segment"),
        jobs=2,
    ) as local:
        local_artifacts = local.run_many(requests)
    for ours, theirs in zip(fleet_artifacts, local_artifacts):
        assert _canonical(ours) == _canonical(theirs)

    single_rate = len(unique) / single_elapsed
    fleet_rate = len(unique) / fleet_elapsed
    speedup = fleet_rate / single_rate
    report = {
        "benchmark": "fleet_cold_sweep_scaleout",
        "fleet_size": FLEET_SIZE,
        "unique_misses": len(unique),
        "horizon": HORIZON,
        "cpu_count": os.cpu_count(),
        "single": {
            "elapsed_s": round(single_elapsed, 3),
            "rate_per_s": round(single_rate, 2),
        },
        "fleet": {
            "elapsed_s": round(fleet_elapsed, 3),
            "rate_per_s": round(fleet_rate, 2),
            "computed_per_member": computed,
        },
        "speedup_fleet_vs_single": round(speedup, 2),
        "bars": {"speedup_min": SPEEDUP_BAR},
    }
    path = report_dir / "BENCH_fleet.json"
    path.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"fleet cold-sweep scale-out ({FLEET_SIZE} daemon processes, "
        f"{len(unique)} unique misses, horizon {HORIZON})",
        f"  single daemon : {single_rate:7.2f} artifacts/s "
        f"({single_elapsed:.2f}s)",
        f"  {FLEET_SIZE}-daemon fleet: {fleet_rate:7.2f} artifacts/s "
        f"({fleet_elapsed:.2f}s)",
        f"  speedup       : {speedup:7.2f}x (bar: >= {SPEEDUP_BAR}x)",
    ]
    (report_dir / "fleet_scaleout.txt").write_text("\n".join(lines) + "\n")
    print()
    for line in lines:
        print(line)

    assert speedup >= SPEEDUP_BAR, (
        f"fleet of {FLEET_SIZE} is only {speedup:.2f}x one daemon "
        f"(bar: {SPEEDUP_BAR}x)"
    )
