"""Event-driven engine core: throughput gate plus byte-identity.

The discrete-event driver replays the same physics as the slot-stepped
reference loop from a typed event heap (arrivals, departures, measure
ticks, plus derived migration/tariff/battery/request trace events) and
additionally materializes a per-request latency ledger the slot driver
never builds.  Two properties keep it honest:

* **byte-identity** -- the event driver's slot-boundary ledgers must
  serialize byte for byte equal to the slot driver's over a multi-day
  run (same config, same policy, same seed);
* **throughput** -- draining the heap must sustain a floor of
  simulated requests per wall-clock second over the whole run (ledger
  rows are per-(slot, DC) aggregates, so the floor bounds event-core
  overhead, not Python-per-request work).

A machine-readable ``BENCH_events.json`` lands in
``benchmarks/reports/`` (uploaded by the nightly workflow) so the
event core's perf trajectory is recorded run over run.  Run via
``make bench-smoke`` (or directly with pytest).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.baselines import EnerAwarePolicy
from repro.sim.config import EngineCoreConfig, scaled_config
from repro.sim.engine import SimulationEngine

#: Simulated horizon: two days, so tariff edges, PV cycles and battery
#: regime changes all generate trace events.
HORIZON_SLOTS = 48

#: Timed event-driver runs; the best repeat is scored.
REPEATS = 2

#: Required simulated requests drained per wall-clock second.
REQUIRED_REQUESTS_PER_S = 50_000.0


def _slot_bytes(result) -> bytes:
    """Canonical serialized form of the slot-boundary ledgers."""
    return json.dumps(
        [record.to_dict() for record in result.slots], sort_keys=True
    ).encode()


@pytest.fixture(scope="module")
def drivers():
    """Slot- and event-driver runs of the same two-day experiment."""
    config = scaled_config("small").with_horizon(HORIZON_SLOTS)
    start = time.perf_counter()
    slot_result = SimulationEngine(config, EnerAwarePolicy()).run()
    slot_s = time.perf_counter() - start
    event_s = float("inf")
    event_result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        candidate = SimulationEngine(
            config, EnerAwarePolicy(), engine=EngineCoreConfig(kind="event")
        ).run()
        elapsed = time.perf_counter() - start
        if elapsed < event_s:
            event_s, event_result = elapsed, candidate
    return config, slot_result, slot_s, event_result, event_s


def test_event_core_slot_ledgers_byte_identical(drivers):
    """Slot-boundary snapshots match the reference loop byte for byte."""
    _, slot_result, _, event_result, _ = drivers
    assert _slot_bytes(event_result) == _slot_bytes(slot_result)
    # The event driver's extra product is the request ledger; the slot
    # driver must keep degrading to None rather than faking one.
    assert event_result.total_requests() > 0
    assert slot_result.total_requests() is None


def test_event_core_request_throughput(drivers, report_dir):
    """The event heap sustains the simulated-requests/s floor."""
    config, _, slot_s, event_result, event_s = drivers
    total_requests = event_result.total_requests()
    requests_per_s = total_requests / event_s
    lines = [
        "bench_events: discrete-event driver vs slot-stepped reference",
        f"  small scale, {HORIZON_SLOTS} slots, "
        f"{len(config.specs)} DCs, best of {REPEATS}",
        f"  slot driver  {slot_s:6.2f} s/run",
        f"  event driver {event_s:6.2f} s/run "
        f"({total_requests} simulated requests)",
        f"  throughput {requests_per_s:10.0f} requests/s "
        f"(required >= {REQUIRED_REQUESTS_PER_S:.0f})",
        f"  p50/p99/p99.9 request latency "
        f"{event_result.p50_request_s():.3f}/"
        f"{event_result.p99_request_s():.3f}/"
        f"{event_result.p999_request_s():.3f} s",
    ]
    from conftest import write_report

    write_report(report_dir, "bench_events.txt", lines)
    payload = {
        "benchmark": "bench_events",
        "config": "small",
        "horizon_slots": HORIZON_SLOTS,
        "repeats": REPEATS,
        "slot_driver_s": slot_s,
        "event_driver_s": event_s,
        "total_requests": total_requests,
        "requests_per_s": requests_per_s,
        "required_requests_per_s": REQUIRED_REQUESTS_PER_S,
        "p50_request_s": event_result.p50_request_s(),
        "p99_request_s": event_result.p99_request_s(),
        "p999_request_s": event_result.p999_request_s(),
    }
    (report_dir / "BENCH_events.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert requests_per_s >= REQUIRED_REQUESTS_PER_S, (
        f"event core drained only {requests_per_s:.0f} simulated "
        f"requests/s (need >= {REQUIRED_REQUESTS_PER_S:.0f})"
    )
