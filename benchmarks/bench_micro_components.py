"""Micro-benchmarks of the substrate components.

Times the pieces every simulated slot exercises: trace generation,
volume generation, the green controller, the latency model and the
server power model.  Useful for catching performance regressions in
the engine's hot path.
"""

import numpy as np
import pytest

from conftest import make_specs, make_vm
from repro.core.green import GreenController
from repro.datacenter.datacenter import Datacenter
from repro.datacenter.server import XEON_E5410
from repro.network.ber import BERProcess
from repro.network.latency import LatencyModel
from repro.network.topology import GeoTopology
from repro.workload.datacorr import DataCorrelationProcess
from repro.workload.traces import TraceLibrary


@pytest.fixture(scope="module")
def vms():
    return [make_vm(vm_id=i, service_id=i // 4, seed=i) for i in range(100)]


def test_trace_generation(benchmark, vms):
    library = TraceLibrary(steps_per_slot=60, seed=1)
    matrix = benchmark(library.demand_matrix, vms, 5)
    assert matrix.shape == (100, 60)


def test_volume_generation(benchmark, vms):
    process = DataCorrelationProcess(seed=2)
    process.volumes(vms, 0)  # warm the pair-base cache
    matrix = benchmark(process.volumes, vms, 1)
    assert matrix.volumes.shape == (100, 100)


def test_green_controller_slot(benchmark):
    spec = make_specs()[0]
    dc = Datacenter(spec, index=0, seed=3)
    power = np.full(720, 900.0)  # the paper's 5 s granularity

    def run():
        dc.battery.soc_joules = dc.battery.capacity_joules
        return GreenController(step_s=5.0).run_slot(dc, 12, power)

    result = benchmark(run)
    result.sanity_check()


def test_destination_latency(benchmark):
    model = LatencyModel(GeoTopology(make_specs()), BERProcess(seed=4))
    volumes = {0: 1500.0, 1: 400.0, 2: 90.0}
    result = benchmark(model.destination_latency, 1, volumes, 7)
    assert result.total_s > 0.0


def test_server_power_trace(benchmark):
    rng = np.random.default_rng(5)
    load = rng.uniform(0.0, 8.0, 720)
    trace = benchmark(XEON_E5410.power_trace, 1, load)
    assert trace.shape == (720,)
