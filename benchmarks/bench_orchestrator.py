"""Orchestrator benchmarks: parallel fan-out and result-store hits.

Measures the two properties the orchestration layer exists for:

* **serial vs ``jobs=N`` wall time** -- the (policy x seed) grid of a
  tiny comparison fanned out over worker processes, with the results
  asserted bit-identical to the serial run;
* **cold vs warm store** -- the same grid resolved against a
  disk-backed :class:`~repro.experiments.orchestrator.ResultStore`:
  the warm pass must skip recomputation entirely (every artifact comes
  from the store) and be far faster than simulating.

Run via ``make bench-smoke`` (or directly with pytest).
"""

from __future__ import annotations

import os
import time

from conftest import REPORT_DIR, write_report
from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    grid_requests,
)
from repro.experiments.runner import default_policies
from repro.sim.config import scaled_config

#: Parallel workers used by the fan-out benchmark.  Defaults to the
#: host's core count: on a single-core box the pool cannot beat serial
#: execution, only prove equivalence (the report records the core
#: count so the ratio is interpretable).
JOBS = int(
    os.environ.get("REPRO_BENCH_JOBS", str(min(4, os.cpu_count() or 1)))
)

#: Seeds replicated in the benchmark grid (seeds x 4 policies runs).
SEEDS = (0, 1)


def bench_grid():
    """The tiny-scale (policy x seed) grid both benchmarks resolve."""
    config = scaled_config("tiny").with_horizon(8)
    return grid_requests([config], lambda _: default_policies(), seeds=list(SEEDS))


def test_serial_vs_parallel_wall_time(report_dir):
    """jobs=N fan-out returns bit-identical results; report the timing."""
    jobs = max(JOBS, 2)  # always exercise the process-pool path
    serial_orchestrator = Orchestrator(store=ResultStore(), jobs=1)
    start = time.perf_counter()
    serial = serial_orchestrator.run_many(bench_grid())
    serial_s = time.perf_counter() - start

    parallel_orchestrator = Orchestrator(store=ResultStore(), jobs=jobs)
    start = time.perf_counter()
    parallel = parallel_orchestrator.run_many(bench_grid())
    parallel_s = time.perf_counter() - start

    assert len(serial) == len(parallel) == len(SEEDS) * 4
    for a, b in zip(serial, parallel):
        assert a.fingerprint == b.fingerprint
        assert a.result.slots == b.result.slots

    write_report(
        report_dir,
        "orchestrator_parallel.txt",
        [
            "orchestrator fan-out: serial vs parallel (tiny grid, "
            f"{len(serial)} runs, {os.cpu_count()} cores)",
            f"  serial (jobs=1):   {serial_s:8.3f} s",
            f"  parallel (jobs={jobs}): {parallel_s:8.3f} s",
            f"  speedup:           {serial_s / parallel_s:8.2f} x"
            " (bounded by available cores)",
            "  results: bit-identical",
        ],
    )


def test_cold_vs_warm_store(report_dir, tmp_path):
    """A warm store resolves the whole grid without simulating."""
    root = tmp_path / "store"

    cold_store = ResultStore(root)
    start = time.perf_counter()
    cold = Orchestrator(store=cold_store).run_many(bench_grid())
    cold_s = time.perf_counter() - start
    assert all(artifact.source == "computed" for artifact in cold)

    # Fresh store object: memory layer empty, disk layer warm.
    warm_store = ResultStore(root)
    start = time.perf_counter()
    warm = Orchestrator(store=warm_store).run_many(bench_grid())
    warm_s = time.perf_counter() - start

    assert all(artifact.source == "disk" for artifact in warm)
    assert warm_store.stats()["misses"] == 0
    for a, b in zip(cold, warm):
        assert a.result.slots == b.result.slots
    assert warm_s < cold_s

    write_report(
        report_dir,
        "orchestrator_store.txt",
        [
            f"result store: cold vs warm (tiny grid, {len(cold)} runs)",
            f"  cold (simulate + persist): {cold_s:8.3f} s",
            f"  warm (disk hits only):     {warm_s:8.3f} s",
            f"  speedup:                   {cold_s / warm_s:8.1f} x",
            f"  warm store stats: {warm_store.stats()}",
        ],
    )


def test_warm_memory_resolution_latency(benchmark):
    """Steady-state latency of resolving the grid from the memory layer."""
    store = ResultStore()
    orchestrator = Orchestrator(store=store)
    orchestrator.run_many(bench_grid())
    artifacts = benchmark(orchestrator.run_many, bench_grid())
    assert all(artifact.source == "memory" for artifact in artifacts)
