"""Ablation E: value of perfect load knowledge (clairvoyant controller).

Section IV-A has every controller plan on the *previous* interval's
loads and data volumes; the green controller then absorbs the error.
Running the proposed method clairvoyantly (current-slot traces in the
observation) bounds what a better load/traffic forecaster could buy.
"""

import pytest
from conftest import ABLATION_HORIZON, write_report

from repro.core.controller import ProposedPolicy
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine


@pytest.fixture(scope="module")
def pair():
    config = scaled_config("small").with_horizon(ABLATION_HORIZON)
    lagged = SimulationEngine(config, ProposedPolicy()).run()
    clairvoyant = SimulationEngine(
        config, ProposedPolicy(), clairvoyant=True
    ).run()
    return lagged, clairvoyant


def test_ablation_clairvoyance(benchmark, pair, report_dir):
    lagged, clairvoyant = pair

    def summarize():
        return {
            "lagged": (
                lagged.total_grid_cost_eur(),
                lagged.total_energy_gj(),
                lagged.percentile_response_s(99.0),
            ),
            "clairvoyant": (
                clairvoyant.total_grid_cost_eur(),
                clairvoyant.total_energy_gj(),
                clairvoyant.percentile_response_s(99.0),
            ),
        }

    table = benchmark(summarize)

    lines = ["== Ablation E: last-interval vs perfect load knowledge =="]
    lines.append(
        f"{'observation':<12} {'cost EUR':>10} {'energy GJ':>10} {'p99 RT s':>9}"
    )
    for name in ("lagged", "clairvoyant"):
        cost, energy, p99 = table[name]
        lines.append(f"{name:<12} {cost:>10.2f} {energy:>10.3f} {p99:>9.4f}")
    gain = 100.0 * (table["lagged"][0] - table["clairvoyant"][0]) / table["lagged"][0]
    lines.append(
        f"perfect knowledge is worth {gain:.1f} % of cost -- the paper's "
        "last-value observation is already close"
    )
    write_report(report_dir, "ablation_forecast.txt", lines)

    for cost, energy, p99 in table.values():
        assert cost > 0.0 and energy > 0.0 and p99 >= 0.0
    # Perfect knowledge should not make things dramatically worse.
    assert table["clairvoyant"][0] < table["lagged"][0] * 1.10