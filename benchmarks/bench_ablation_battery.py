"""Ablation D: battery sizing (Table I's 960/720/480 kWh pattern).

Sweeps the battery scale.  Finding (recorded in EXPERIMENTS.md): the
green controller's peak/off-peak arbitrage is profitable per kWh, but
larger batteries also *steer the capacity caps* -- the caps value
battery energy as free (the paper's framing) and so move load toward
battery-rich DCs instead of cheap-grid DCs, which can cancel the
arbitrage gain.  The sweep quantifies that tension.
"""

import pytest
from conftest import ABLATION_HORIZON, write_report

from repro.analysis.sensitivity import sweep_battery_scale
from repro.sim.config import scaled_config

SCALES = (0.0, 1.0, 2.0)


@pytest.fixture(scope="module")
def rows():
    config = scaled_config("small").with_horizon(ABLATION_HORIZON)
    return sweep_battery_scale(config, scales=SCALES)


def test_ablation_battery_scale(benchmark, rows, report_dir):
    def summarize():
        return {row.value: (row.cost_eur, row.renewable_utilization) for row in rows}

    table = benchmark(summarize)

    lines = ["== Ablation D: battery sizing sweep (x Table I) =="]
    lines.append(f"{'scale':>6} {'cost EUR':>10} {'renew util':>11}")
    for scale in SCALES:
        cost, renew = table[scale]
        lines.append(f"{scale:>6.1f} {cost:>10.2f} {renew:>11.3f}")
    lines.append(
        "note: caps treat battery energy as free, so sizing also shifts "
        "placement; per-kWh arbitrage profit and placement shifts pull "
        "cost in opposite directions (see EXPERIMENTS.md)"
    )
    write_report(report_dir, "ablation_battery.txt", lines)

    # The sweep must remain a controlled experiment: the fleet absorbs
    # every sizing without losing renewable energy, and the cost moves
    # by placement effects only (bounded), not by blow-ups.
    costs = [table[scale][0] for scale in SCALES]
    assert all(cost > 0.0 for cost in costs)
    assert max(costs) / min(costs) < 1.15
    assert all(table[scale][1] > 0.95 for scale in SCALES)
