"""Result-store backend benchmarks: cold write, warm read, 10k scan.

Measures the three persistent layouts of :mod:`repro.store` on the
operations that dominate at scale:

* *cold write* -- appending fresh documents to an empty root;
* *warm read* -- point lookups by fingerprint through a fresh backend
  instance (what a warm orchestrator session does per request);
* *10k scan* -- iterating every document (what ``repro store ls``/
  ``gc`` and report aggregation do).

The scan comparison is the headline: the per-file layout pays one
``open()`` + parse per document, the segment layout reads each
segment sequentially through one mmap.  The ROADMAP acceptance bar --
segment >= 5x faster than per-file JSON on a 10k-document warm scan
-- is asserted by ``test_segment_scan_speedup`` and recorded under
``benchmarks/reports/``.

Documents here are small synthetic run documents (a few hundred
bytes), so the numbers isolate storage overhead rather than result
serialization.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import time

import pytest

from repro.store import JsonFileBackend, SegmentBackend, ShardedBackend

BACKENDS = {
    "json": JsonFileBackend,
    "sharded": ShardedBackend,
    "segment": SegmentBackend,
}

N_WRITE = 1_000
N_READ = 500
N_SCAN = 10_000


def fingerprint(index: int) -> str:
    return hashlib.sha256(f"bench-doc-{index}".encode()).hexdigest()


def document(index: int) -> dict:
    # Deliberately small (~190 bytes): the scan comparison measures
    # per-document *storage* overhead (opens, globs, seeks), which
    # payload parsing would otherwise mask for every backend alike.
    return {
        "store_version": 1,
        "fingerprint": fingerprint(index),
        "request": {"policy": {"name": f"p{index % 4}"}},
        "result": {"v": index},
        "meta": {"shard": f"shard-{index % 4}"},
    }


def fill(backend, count: int) -> None:
    for index in range(count):
        doc = document(index)
        backend.put(fingerprint(index), doc, shard=doc["meta"]["shard"])
    close = getattr(backend, "close", None)
    if close is not None:
        close()


@pytest.fixture(scope="session")
def scan_corpora(tmp_path_factory):
    """One ``N_SCAN``-document root per backend, built once per session."""
    corpora = {}
    for name, cls in BACKENDS.items():
        root = tmp_path_factory.mktemp(f"store-{name}")
        fill(cls(root), N_SCAN)
        corpora[name] = root
    return corpora


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_store_cold_write(benchmark, tmp_path_factory, name):
    """Write ``N_WRITE`` documents into a fresh root."""
    cls = BACKENDS[name]

    def setup():
        root = tmp_path_factory.mktemp(f"cold-{name}")
        return (cls(root),), {}

    def cold_write(backend):
        fill(backend, N_WRITE)
        shutil.rmtree(backend.root, ignore_errors=True)

    benchmark.pedantic(cold_write, setup=setup, rounds=3)


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_store_warm_read(benchmark, scan_corpora, name):
    """Point-fetch ``N_READ`` documents through a fresh instance."""
    root = scan_corpora[name]
    cls = BACKENDS[name]
    stride = N_SCAN // N_READ

    def warm_read():
        backend = cls(root)
        hits = sum(
            backend.fetch(fingerprint(index)) is not None
            for index in range(0, N_SCAN, stride)
        )
        assert hits == N_READ
        return hits

    benchmark(warm_read)


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_store_scan_10k(benchmark, scan_corpora, name):
    """Scan every document through a fresh instance."""
    root = scan_corpora[name]
    cls = BACKENDS[name]

    def scan():
        seen = sum(1 for _ in cls(root).scan())
        assert seen == N_SCAN
        return seen

    benchmark(scan)


def _best_scan_seconds(cls, root, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        seen = sum(1 for _ in cls(root).scan())
        elapsed = time.perf_counter() - start
        assert seen == N_SCAN
        best = min(best, elapsed)
    return best


def test_segment_scan_speedup(scan_corpora, report_dir):
    """Acceptance bar: segment scan >= 5x faster than per-file JSON."""
    json_s = _best_scan_seconds(JsonFileBackend, scan_corpora["json"])
    segment_s = _best_scan_seconds(SegmentBackend, scan_corpora["segment"])
    speedup = json_s / segment_s
    lines = [
        f"result-store warm scan, {N_SCAN} documents (best of 3)",
        f"  per-file json : {json_s * 1e3:9.1f} ms",
        f"  segment       : {segment_s * 1e3:9.1f} ms",
        f"  speedup       : {speedup:9.1f}x (bar: >= 5x)",
    ]
    path = report_dir / "store_scan.txt"
    path.write_text("\n".join(lines) + "\n")
    print()
    for line in lines:
        print(line)
    assert speedup >= 5.0, (
        f"segment scan only {speedup:.1f}x faster than per-file JSON "
        f"({segment_s * 1e3:.1f} ms vs {json_s * 1e3:.1f} ms)"
    )


def test_store_document_sizes(scan_corpora, report_dir):
    """Record the on-disk footprint of each layout (same 10k docs)."""
    lines = [f"on-disk footprint, {N_SCAN} documents"]
    for name in sorted(BACKENDS):
        root = scan_corpora[name]
        total = sum(
            path.stat().st_size for path in root.rglob("*") if path.is_file()
        )
        files = sum(1 for path in root.rglob("*") if path.is_file())
        lines.append(f"  {name:<8}: {total / 1e6:8.2f} MB in {files} file(s)")
    (report_dir / "store_footprint.txt").write_text("\n".join(lines) + "\n")
    print()
    for line in lines:
        print(line)
    # Sanity: every backend stored every document.
    for name, cls in BACKENDS.items():
        sample = cls(scan_corpora[name]).fetch(fingerprint(N_SCAN // 2))
        assert json.dumps(sample, sort_keys=True) == json.dumps(
            document(N_SCAN // 2), sort_keys=True
        )
