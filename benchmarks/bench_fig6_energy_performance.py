"""Fig. 6: energy-performance trade-off.

Paper: vs Ener-aware, Proposed gains 6 % performance at a 3 % energy
overhead; vs Net-aware it saves 15 % energy at ~2 % performance cost.
"""

from conftest import write_report

from repro.experiments.figures import fig6_energy_performance


def test_fig6_energy_performance(benchmark, week_results, report_dir):
    report = benchmark(fig6_energy_performance, week_results)

    lines = ["== Fig. 6: energy-performance trade-off of Proposed =="]
    for label, measured_key, paper_key in (
        ("vs Ener-aware", "measured_vs_ener", "paper_vs_ener"),
        ("vs Net-aware", "measured_vs_net", "paper_vs_net"),
    ):
        measured = report[measured_key]
        paper = report[paper_key]
        lines.append(
            f"{label:<14} energy {measured['energy']:6.1f} % "
            f"(paper {paper['energy']:.0f} %), performance "
            f"{measured['performance']:6.1f} % (paper {paper['performance']:.0f} %)"
        )
    write_report(report_dir, "fig6_energy_performance.txt", lines)

    # Shape: vs Net-aware the energy win is large and positive (paper
    # 15 %); vs Ener-aware the two methods are close on energy (paper
    # has Proposed 3 % behind, this reproduction is within +-8 %).
    assert report["measured_vs_net"]["energy"] > 5.0
    assert abs(report["measured_vs_ener"]["energy"]) < 8.0
