"""Ablation C: the migration QoS window (Algorithm 2's constraint).

The paper fixes QoS at 98 % (migrations may use 2 % of the slot, 72 s).
Tightening the window strangles Algorithm 2 -- fewer migrations mean
the controller cannot chase free/cheap energy, so operational cost
rises.  This ablation sweeps the window.
"""

import dataclasses

import pytest
from conftest import ABLATION_HORIZON, write_report

from repro.core.controller import ProposedPolicy
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine

QOS_LEVELS = (0.9995, 0.98)  # 1.8 s vs the paper's 72 s window


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for qos in QOS_LEVELS:
        config = dataclasses.replace(
            scaled_config("small").with_horizon(ABLATION_HORIZON), qos=qos
        )
        results[qos] = SimulationEngine(config, ProposedPolicy()).run()
    return results


def test_ablation_migration_window(benchmark, sweep, report_dir):
    def summarize():
        return {
            qos: (
                result.total_migrations(),
                result.total_grid_cost_eur(),
                result.renewable_utilization(),
            )
            for qos, result in sweep.items()
        }

    table = benchmark(summarize)

    lines = ["== Ablation C: migration latency window (QoS) =="]
    lines.append(
        f"{'QoS':>7} {'window s':>9} {'migrations':>11} "
        f"{'cost EUR':>10} {'renew util':>11}"
    )
    for qos in QOS_LEVELS:
        migrations, cost, renew = table[qos]
        lines.append(
            f"{qos:>7.4f} {(1 - qos) * 3600:>9.1f} {migrations:>11d} "
            f"{cost:>10.2f} {renew:>11.3f}"
        )
    write_report(report_dir, "ablation_migration.txt", lines)

    tight, loose = table[QOS_LEVELS[0]], table[QOS_LEVELS[1]]
    # A tighter window executes fewer migrations...
    assert tight[0] < loose[0]
    # ...and cannot exploit free energy any better than the loose one.
    assert tight[2] <= loose[2] + 0.02
