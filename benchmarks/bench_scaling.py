"""Controller scaling: wall time of each phase vs fleet size.

The paper argues the two-phase split keeps the controller cheap enough
for real-time hourly invocation.  These micro-benchmarks time each
phase (embedding, constrained k-means, Algorithm 2, local allocation)
on synthetic fleets of growing size.
"""

import numpy as np
import pytest

from conftest import make_specs, make_vm
from repro.core.correlation import attraction_matrix, repulsion_matrix
from repro.core.forces import ForceDirectedEmbedding, ForceParameters
from repro.core.kmeans import constrained_kmeans, warm_start_centroids
from repro.core.local import allocate_correlation_aware
from repro.core.migration import revise_migrations
from repro.datacenter.server import XEON_E5410
from repro.network.ber import BERProcess
from repro.network.latency import LatencyModel
from repro.network.topology import GeoTopology


def synthetic_inputs(n_vms: int, steps: int = 60, seed: int = 0):
    rng = np.random.default_rng(seed)
    traces = rng.uniform(0.1, 3.0, size=(n_vms, steps))
    volumes = rng.uniform(0.0, 20.0, size=(n_vms, n_vms))
    np.fill_diagonal(volumes, 0.0)
    positions = rng.normal(size=(n_vms, 2))
    return traces, volumes, positions


@pytest.mark.parametrize("n_vms", [50, 150, 300])
def test_embedding_scaling(benchmark, n_vms):
    traces, volumes, positions = synthetic_inputs(n_vms)
    attraction = attraction_matrix(volumes)
    repulsion = repulsion_matrix(traces)
    embedding = ForceDirectedEmbedding(ForceParameters(max_iterations=20))
    result = benchmark(embedding.run, positions, attraction, repulsion)
    assert result.positions.shape == (n_vms, 2)


@pytest.mark.parametrize("n_vms", [50, 150, 300])
def test_kmeans_scaling(benchmark, n_vms):
    _, __, positions = synthetic_inputs(n_vms)
    rng = np.random.default_rng(1)
    loads = rng.uniform(0.2, 2.0, n_vms)
    capacities = np.full(3, loads.sum())
    centroids = warm_start_centroids(positions, None, 3)
    result = benchmark(
        constrained_kmeans, positions, loads, capacities, centroids
    )
    assert result.assignment.shape == (n_vms,)


@pytest.mark.parametrize("n_vms", [50, 150])
def test_migration_revision_scaling(benchmark, n_vms):
    rng = np.random.default_rng(2)
    vms = [
        make_vm(vm_id=i, image_gb=float(rng.choice([2, 4, 8])), seed=i)
        for i in range(n_vms)
    ]
    latency_model = LatencyModel(GeoTopology(make_specs()), BERProcess(seed=1))
    target = rng.integers(0, 3, n_vms)
    previous = rng.integers(0, 3, n_vms)
    positions = rng.normal(size=(n_vms, 2))
    centroids = rng.normal(size=(3, 2))
    loads = rng.uniform(0.2, 2.0, n_vms)
    caps = np.full(3, loads.sum() / 2.0)
    plan = benchmark(
        revise_migrations,
        vms,
        target,
        previous,
        positions,
        centroids,
        loads,
        caps,
        latency_model,
        0,
        72.0,
    )
    assert len(plan.assignment) == n_vms


@pytest.mark.parametrize("n_vms", [50, 150, 300])
def test_local_allocation_scaling(benchmark, n_vms):
    traces, _, __ = synthetic_inputs(n_vms)
    allocation = benchmark(
        allocate_correlation_aware,
        list(range(n_vms)),
        traces,
        XEON_E5410,
        max(n_vms // 2, 1),
    )
    assert allocation.vm_count() == n_vms
