"""Controller and engine scaling: wall time of each phase vs fleet size.

The paper argues the two-phase split keeps the controller cheap enough
for real-time hourly invocation.  These micro-benchmarks time each
phase (embedding, constrained k-means, Algorithm 2, local allocation)
on synthetic fleets of growing size, plus the engine's per-slot
physics hot paths (`_dc_it_power`, `_response_latencies`) in both the
reference-loop and vectorized implementations -- the vectorized path
must be measurably faster per slot while staying bit-identical.
"""

import numpy as np
import pytest

from conftest import make_specs, make_vm
from repro.core.correlation import attraction_matrix, repulsion_matrix
from repro.core.forces import ForceDirectedEmbedding, ForceParameters
from repro.core.kmeans import constrained_kmeans, warm_start_centroids
from repro.core.local import allocate_correlation_aware
from repro.core.migration import revise_migrations
from repro.datacenter.server import XEON_E5410
from repro.network.ber import BERProcess
from repro.network.latency import LatencyModel
from repro.network.topology import GeoTopology
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine


def synthetic_inputs(n_vms: int, steps: int = 60, seed: int = 0):
    rng = np.random.default_rng(seed)
    traces = rng.uniform(0.1, 3.0, size=(n_vms, steps))
    volumes = rng.uniform(0.0, 20.0, size=(n_vms, n_vms))
    np.fill_diagonal(volumes, 0.0)
    positions = rng.normal(size=(n_vms, 2))
    return traces, volumes, positions


@pytest.mark.parametrize("n_vms", [50, 150, 300])
def test_embedding_scaling(benchmark, n_vms):
    traces, volumes, positions = synthetic_inputs(n_vms)
    attraction = attraction_matrix(volumes)
    repulsion = repulsion_matrix(traces)
    embedding = ForceDirectedEmbedding(ForceParameters(max_iterations=20))
    result = benchmark(embedding.run, positions, attraction, repulsion)
    assert result.positions.shape == (n_vms, 2)


@pytest.mark.parametrize("n_vms", [50, 150, 300])
def test_kmeans_scaling(benchmark, n_vms):
    _, __, positions = synthetic_inputs(n_vms)
    rng = np.random.default_rng(1)
    loads = rng.uniform(0.2, 2.0, n_vms)
    capacities = np.full(3, loads.sum())
    centroids = warm_start_centroids(positions, None, 3)
    result = benchmark(
        constrained_kmeans, positions, loads, capacities, centroids
    )
    assert result.assignment.shape == (n_vms,)


@pytest.mark.parametrize("n_vms", [50, 150])
def test_migration_revision_scaling(benchmark, n_vms):
    rng = np.random.default_rng(2)
    vms = [
        make_vm(vm_id=i, image_gb=float(rng.choice([2, 4, 8])), seed=i)
        for i in range(n_vms)
    ]
    latency_model = LatencyModel(GeoTopology(make_specs()), BERProcess(seed=1))
    target = rng.integers(0, 3, n_vms)
    previous = rng.integers(0, 3, n_vms)
    positions = rng.normal(size=(n_vms, 2))
    centroids = rng.normal(size=(3, 2))
    loads = rng.uniform(0.2, 2.0, n_vms)
    caps = np.full(3, loads.sum() / 2.0)
    plan = benchmark(
        revise_migrations,
        vms,
        target,
        previous,
        positions,
        centroids,
        loads,
        caps,
        latency_model,
        0,
        72.0,
    )
    assert len(plan.assignment) == n_vms


@pytest.mark.parametrize("n_vms", [50, 150, 300])
def test_local_allocation_scaling(benchmark, n_vms):
    traces, _, __ = synthetic_inputs(n_vms)
    allocation = benchmark(
        allocate_correlation_aware,
        list(range(n_vms)),
        traces,
        XEON_E5410,
        max(n_vms // 2, 1),
    )
    assert allocation.vm_count() == n_vms


# -- engine per-slot physics hot paths ---------------------------------


class _SyntheticPlacement:
    """Bare placement stand-in for the engine hot-path benchmarks."""

    def __init__(self, allocations=None, assignment=None):
        self.allocations = allocations
        self.assignment = assignment


def _physics_engine(steps: int) -> SimulationEngine:
    import dataclasses

    from repro.baselines import EnerAwarePolicy

    config = dataclasses.replace(
        scaled_config("tiny"), name="bench", horizon_slots=1, steps_per_slot=steps
    )
    return SimulationEngine(config, EnerAwarePolicy())


def _it_power_inputs(n_vms: int, steps: int = 720, seed: int = 0):
    rng = np.random.default_rng(seed)
    demand = rng.uniform(0.05, 0.8, size=(n_vms, steps))
    vm_rows = {i: i for i in range(n_vms)}
    allocation = allocate_correlation_aware(
        list(range(n_vms)), demand, XEON_E5410, n_vms
    )
    placement = _SyntheticPlacement(allocations=[allocation])
    return placement, vm_rows, demand


@pytest.mark.parametrize("impl", ["loop", "vectorized"])
@pytest.mark.parametrize("n_vms", [300, 1000])
def test_it_power_per_slot(benchmark, impl, n_vms):
    """Per-slot IT-power: vectorized segment sums vs reference loops."""
    engine = _physics_engine(steps=720)
    placement, vm_rows, demand = _it_power_inputs(n_vms)
    path = (
        engine._dc_it_power_vectorized
        if impl == "vectorized"
        else engine._dc_it_power_loop
    )
    power, active = benchmark(path, placement, 0, vm_rows, demand)
    reference, _ = engine._dc_it_power_loop(placement, 0, vm_rows, demand)
    assert np.array_equal(power, reference)
    assert active == placement.allocations[0].active_servers


@pytest.mark.parametrize("impl", ["loop", "vectorized"])
@pytest.mark.parametrize("n_vms", [150, 450])
def test_response_latencies_per_slot(benchmark, impl, n_vms):
    """Per-slot Eq. 1 evaluation: grouped volume matrix vs dict loops."""
    rng = np.random.default_rng(3)
    engine = _physics_engine(steps=60)
    vms = [
        make_vm(vm_id=i, service_id=i // 5, seed=i) for i in range(n_vms)
    ]
    volumes = np.exp(rng.normal(1.0, 1.0, size=(n_vms, n_vms)))
    np.fill_diagonal(volumes, 0.0)
    placement = _SyntheticPlacement(
        assignment={vm.vm_id: int(rng.integers(0, 3)) for vm in vms}
    )
    path = (
        engine._response_latencies_vectorized
        if impl == "vectorized"
        else engine._response_latencies_loop
    )
    latencies = benchmark(path, placement, vms, volumes, 5)
    assert latencies == engine._response_latencies_loop(
        placement, vms, volumes, 5
    )
