"""Extension: workload-mix scenario study.

The paper's introduction motivates correlation awareness with the
contrast between scale-out and HPC workloads; this study reruns the
comparison under three archetype mixes to show how the proposed
method's advantage depends on workload composition.
"""

import pytest
from conftest import ABLATION_HORIZON, write_report

from repro.experiments.scenarios import format_outcomes, run_scenarios
from repro.sim.config import scaled_config


@pytest.fixture(scope="module")
def outcomes():
    base = scaled_config("small").with_horizon(ABLATION_HORIZON)
    return run_scenarios(base)


def test_scenario_study(benchmark, outcomes, report_dir):
    table = benchmark(format_outcomes, outcomes)

    lines = ["== Extension: workload-mix scenarios (Proposed vs best baseline) =="]
    lines.extend(table.splitlines())
    write_report(report_dir, "scenarios.txt", lines)

    by_name = {outcome.scenario: outcome for outcome in outcomes}
    # Every mix must produce a live comparison.
    for outcome in outcomes:
        assert outcome.proposed_cost_eur > 0.0
        assert outcome.best_baseline_cost_eur > 0.0
    # The flat, sustained HPC mix offers the least consolidation slack,
    # so the energy advantage there must not exceed the scale-out mix's
    # by a wide margin (directional sanity, not a paper claim).
    assert (
        by_name["hpc"].energy_saving_pct
        <= by_name["scale-out"].energy_saving_pct + 15.0
    )
