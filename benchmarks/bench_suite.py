"""Suite-layer overhead gate: the campaign ledger must ride ~free.

The suite layer wraps every run in manifest bookkeeping -- a plan
record at expansion, a ``submitted`` record before execution and a
``done`` record (with full provenance) after -- three flushed JSONL
appends per fingerprint.  At million-run scale that bookkeeping must
not tax the hot path, so this bench drives a **1k-run warm sweep**
both ways and gates the ratio:

* **baseline** -- expand the suite grid and resolve it through raw
  ``submit_many``/``as_done`` (what a hand-rolled sweep script pays);
* **suite** -- the same grid through :class:`CampaignDriver.run`,
  which additionally writes the campaign header, 1k plan records and
  2k status transitions.

Every fingerprint is pre-seeded into the store, so both sides measure
pure orchestration cost (fingerprinting, dedup, store lookups) -- the
regime where ledger overhead is proportionally largest and the gate is
hardest.  Required: suite/baseline <= ``MAX_OVERHEAD`` (1.10).

``BENCH_suite.json`` lands in ``benchmarks/reports/`` for the nightly
workflow's trajectory record.  Run via ``make bench-smoke``.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

import pytest

from repro.experiments.orchestrator import Orchestrator, ResultStore
from repro.suite import CampaignDriver, parse_suite

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: Grid size of the warm sweep (seeds x policies).
RUNS = 1000

#: Timed sweeps per side; the best repeat is scored.  The two sides
#: are interleaved (baseline, suite, baseline, suite, ...) so clock
#: drift over the bench lands on both sides, not just the later one,
#: and enough repeats are taken that min-of-N sees through scheduler
#: noise on shared CI runners.
REPEATS = 9

#: Required ceiling on suite wall time relative to raw submit_many.
MAX_OVERHEAD = 1.10

_SUITE = f"""
[suite]
name = "bench"
description = "1k-run warm-overhead sweep"

[matrix]
scale = "tiny"
horizon = 2
seeds = {list(range(RUNS // 4))}
"""


@pytest.fixture(scope="module")
def warm_world(tmp_path_factory):
    """A parsed 1k-run spec plus a store holding every fingerprint."""
    spec = parse_suite(_SUITE, "bench.toml")
    runs = spec.expand()
    assert len(runs) == RUNS
    store = ResultStore(tmp_path_factory.mktemp("store"), backend="segment")
    # One real tiny run supplies the result body; the sweep's identity
    # lives in the fingerprints, which are the real grid's.
    seed_artifact = Orchestrator(store=ResultStore()).run(runs[0].request)
    for run in runs:
        store.put(
            run.fingerprint,
            seed_artifact.result,
            run.request.descriptor(),
        )
    return spec, store


def _drain(orchestrator: Orchestrator, requests) -> int:
    futures = orchestrator.submit_many(requests)
    resolved = sum(1 for _ in orchestrator.as_done(futures))
    return resolved


def test_suite_ledger_overhead_within_bound(warm_world, tmp_path):
    """A ledgered campaign costs <= 10% over raw submit_many, warm."""
    spec, store = warm_world

    def run_baseline() -> float:
        orchestrator = Orchestrator(store=store)
        gc.collect()
        start = time.perf_counter()
        requests = [run.request for run in spec.expand()]
        resolved = _drain(orchestrator, requests)
        elapsed = time.perf_counter() - start
        assert resolved == RUNS
        return elapsed

    def run_suite(label: str) -> float:
        orchestrator = Orchestrator(store=store)
        driver = CampaignDriver(spec, orchestrator, tmp_path / label)
        gc.collect()
        start = time.perf_counter()
        report = driver.run()
        elapsed = time.perf_counter() - start
        assert report.warm == RUNS and report.executed == 0
        return elapsed

    # Warm both code paths (imports, allocator, store page cache)
    # before any timed repeat counts.
    run_baseline()
    run_suite("warmup")

    baseline_s = float("inf")
    suite_s = float("inf")
    for repeat in range(REPEATS):
        baseline_s = min(baseline_s, run_baseline())
        suite_s = min(suite_s, run_suite(f"ledger-{repeat}"))

    overhead = suite_s / baseline_s
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "BENCH_suite.json").write_text(
        json.dumps(
            {
                "runs": RUNS,
                "baseline_s": baseline_s,
                "suite_s": suite_s,
                "overhead": overhead,
                "max_overhead": MAX_OVERHEAD,
                "runs_per_s_suite": RUNS / suite_s,
            },
            indent=2,
        )
        + "\n"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"suite ledger overhead {overhead:.3f}x exceeds the "
        f"{MAX_OVERHEAD:.2f}x gate (baseline {baseline_s:.3f}s, "
        f"suite {suite_s:.3f}s over {RUNS} warm runs)"
    )
