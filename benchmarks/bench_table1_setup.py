"""Table I: DC fleet and energy-source specification.

Regenerates the paper's Table I from :func:`repro.sim.config.paper_config`
and verifies it matches the published numbers exactly; the benchmark
measures fleet construction (specs + live DCs + topology).
"""

from conftest import write_report

from repro.experiments.figures import table1_rows
from repro.sim.config import build_datacenters, build_latency_model, paper_config


def test_table1_setup(benchmark, report_dir):
    config = paper_config()

    def build():
        return build_datacenters(config), build_latency_model(config)

    dcs, latency_model = benchmark(build)
    assert len(dcs) == 3
    assert latency_model.topology.n_dcs == 3

    report = table1_rows(config)
    lines = ["== Table I: DCs number of servers and energy sources =="]
    lines.append(
        f"{'DC':<5} {'site':<10} {'servers':>8} {'PV kWp':>8} {'batt kWh':>9}"
        f"   (paper: servers / PV / battery)"
    )
    for measured, paper in zip(report["measured"], report["paper"]):
        lines.append(
            f"{measured['dc']:<5} {measured['site']:<10} "
            f"{measured['servers']:>8} {measured['pv_kwp']:>8.0f} "
            f"{measured['battery_kwh']:>9.0f}   "
            f"({paper['servers']} / {paper['pv_kwp']:.0f} / "
            f"{paper['battery_kwh']:.0f})"
        )
        assert measured["servers"] == paper["servers"]
        assert measured["pv_kwp"] == paper["pv_kwp"]
        assert measured["battery_kwh"] == paper["battery_kwh"]
    write_report(report_dir, "table1.txt", lines)
