"""Fig. 1: normalized operational cost over one week, four methods.

Paper: the proposed method saves 55 % vs Ener-aware, 25 % vs Pri-aware
and 35 % vs Net-aware.  The benchmark measures the report computation
over the shared week-long run; the shape assertions check that the
proposed method is the cheapest and every baseline pays more.
"""

from conftest import write_report

from repro.experiments.figures import PAPER_CLAIMS, fig1_operational_cost


def test_fig1_operational_cost(benchmark, week_results, report_dir):
    report = benchmark(fig1_operational_cost, week_results)

    norms = report["normalized_cost"]
    savings = report["measured_savings_pct"]
    paper = PAPER_CLAIMS["fig1_cost_savings_pct"]

    lines = ["== Fig. 1: normalized operational cost (one week) =="]
    lines.append(f"{'policy':<12} {'norm. cost':>10}   savings of Proposed vs it")
    for name in ("Proposed", "Ener-aware", "Pri-aware", "Net-aware"):
        saving = savings.get(name)
        saving_txt = (
            f"measured {saving:5.1f} % (paper {paper[name]:.0f} %)"
            if saving is not None
            else "--"
        )
        lines.append(f"{name:<12} {norms[name]:>10.3f}   {saving_txt}")
    write_report(report_dir, "fig1_operational_cost.txt", lines)

    # Shape: Proposed is the cheapest method; every baseline costs more.
    assert norms["Proposed"] == min(norms.values())
    for name, saving in savings.items():
        assert saving > 0.0, f"Proposed should beat {name} on cost"
