"""Fig. 3: probability distribution of normalized response time.

Paper (qualitative): Proposed and Net-aware have tighter distributions
with a lower worst case; Ener-aware and Pri-aware concentrate VMs,
producing unbalanced network traffic with bigger fluctuations.  DC
providers judge SLA by the worst case, where the paper reports up to
12 % improvement for Proposed over Ener/Pri-aware.
"""

import numpy as np
from conftest import write_report

from repro.experiments.figures import fig3_response_time


def test_fig3_response_time(benchmark, week_results, report_dir):
    report = benchmark(fig3_response_time, week_results)

    stats = report["stats"]
    lines = ["== Fig. 3: normalized response-time distribution (one week) =="]
    lines.append(
        f"{'policy':<12} {'mean':>8} {'std':>8} {'p99':>8} {'worst':>8}"
    )
    for name in ("Proposed", "Ener-aware", "Pri-aware", "Net-aware"):
        entry = stats[name]
        lines.append(
            f"{name:<12} {entry['mean']:>8.3f} {entry['std']:>8.3f}"
            f" {entry['p99']:>8.3f} {entry['worst']:>8.3f}"
        )
    lines.append(f"paper (qualitative): {report['paper_qualitative']}")

    # A coarse ASCII PDF for the two extreme methods.
    for name in ("Proposed", "Ener-aware"):
        centers, density = report["pdfs"][name]
        peak = density.max() if density.size else 1.0
        bars = "".join(
            " .:-=+*#%@"[min(int(9 * value / peak), 9)] for value in density
        )
        lines.append(f"pdf {name:<12} |{bars}|")
    write_report(report_dir, "fig3_response_time.txt", lines)

    # Shape: Proposed's mean beats the consolidation-heavy baselines
    # (their concentrated placements bottleneck the destination DC).
    assert stats["Proposed"]["mean"] < stats["Ener-aware"]["mean"]
    # All distributions share the common normalization upper bound.
    worsts = [stats[name]["worst"] for name in stats]
    assert np.isclose(max(worsts), 1.0)
