"""Experiment-service benchmarks: warm wire throughput under load.

The service's job is to let many clients share one warm store, so the
headline number is *cached* artifacts served per second: one daemon
(segment-backed store, pre-warmed with a 64-fingerprint grid at tiny
scale) serving :data:`N_CLIENTS` concurrent
:class:`~repro.service.client.ServiceClient` threads.

Three wire modes are measured in the same run:

``single_post_identity``
    The wire-v1 shape: one ``POST /runs`` per artifact, no
    compression.  This is the baseline the lean-wire work is judged
    against.
``batch_identity``
    ``submit_many`` over ``POST /runs/poll`` (headline detail), still
    uncompressed -- isolates the batching win.
``batch_gzip``
    The full lean-wire path: batched, gzip-encoded, headline-projected
    responses assembled from the daemon's pre-compressed cache.

Gates (asserted, and recorded in ``benchmarks/reports/``):

* ``batch_gzip``    >= :data:`BATCH_RATE_BAR` warm artifacts/s,
* ``batch_gzip``    >= :data:`SPEEDUP_BAR` x ``single_post_identity``,
* ``single_post_identity`` >= :data:`SINGLE_RATE_BAR` (the original
  ROADMAP bar -- the v1 shape must not regress).

Note both sides of the exchange run in this one process (8 clients +
the daemon share the GIL), so the daemon alone clears the bars with
headroom.  The machine-readable ``BENCH_service.json`` lands next to
``BENCH_green.json`` for the nightly trajectory.

The daemon's store is left under ``benchmarks/reports/service_store``:
the nightly workflow compacts it with ``repro store compact`` after
the smoke suite, exercising the scheduled-compaction path end to end.
"""

from __future__ import annotations

import json
import shutil
import threading
import time

from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunRequest,
)
from repro.experiments.runner import default_policies
from repro.service import ExperimentDaemon, ServiceClient
from repro.service.protocol import encode_request
from repro.sim.config import scaled_config

from conftest import REPORT_DIR

#: Concurrent client threads (the acceptance bar's fixed fan-in).
N_CLIENTS = 8

#: Distinct seeds in the warm grid; x4 policies = warm fingerprints.
WARM_SEEDS = 16

#: Minimum warm throughput of the batched+compressed path.
BATCH_RATE_BAR = 8_000.0

#: Minimum speedup of the batched+compressed path over single-POST.
SPEEDUP_BAR = 3.0

#: The original single-POST bar (the v1 wire shape must not regress).
SINGLE_RATE_BAR = 1_000.0

#: How long each mode's measurement hammers the daemon.
MEASURE_S = 2.0

#: Store root handed to the nightly ``repro store compact`` step.
SERVICE_STORE = REPORT_DIR / "service_store"


def _requests() -> list[RunRequest]:
    """The warm grid: 4 policies x WARM_SEEDS distinct fingerprints."""
    requests = []
    for seed in range(WARM_SEEDS):
        config = scaled_config("tiny", seed=seed).with_horizon(2)
        requests.extend(
            RunRequest(config=config, policy=policy)
            for policy in default_policies()
        )
    return requests


def _start_daemon() -> tuple[ExperimentDaemon, list[RunRequest]]:
    """A daemon over a segment store pre-warmed with the grid."""
    shutil.rmtree(SERVICE_STORE, ignore_errors=True)
    SERVICE_STORE.parent.mkdir(exist_ok=True)
    store = ResultStore(SERVICE_STORE, backend="segment")
    orchestrator = Orchestrator(store=store, jobs=2)
    requests = _requests()
    orchestrator.run_many(requests)  # warm the store
    daemon = ExperimentDaemon(orchestrator).start()
    return daemon, requests


def _measure(make_client, iterate, prime) -> dict:
    """Fan N_CLIENTS threads at the daemon; one mode's throughput.

    Every thread builds its client, primes it (negotiation + response
    cache variants) *before* the barrier, then serves until the bell.
    """
    counts = [0] * N_CLIENTS
    barrier = threading.Barrier(N_CLIENTS + 1)
    bell: dict[str, float] = {}

    def body(slot: int) -> None:
        client = make_client()
        prime(client)
        barrier.wait()
        served = 0
        while time.perf_counter() < bell["stop_at"]:
            served += iterate(client)
        counts[slot] = served
        client.close()

    threads = [
        threading.Thread(target=body, args=(slot,))
        for slot in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    start = time.perf_counter()
    bell["stop_at"] = start + MEASURE_S
    barrier.wait()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    served = sum(counts)
    return {
        "artifacts_served": served,
        "elapsed_s": round(elapsed, 4),
        "rate_per_s": round(served / elapsed, 1),
    }


def test_service_warm_wire_throughput(report_dir):
    """Gates: batched+gzip >= 8k warm artifacts/s and >= 3x single-POST."""
    daemon, requests = _start_daemon()
    try:
        url = daemon.url
        # Pre-encode the single-POST wire payloads once: that mode
        # measures the *daemon's* warm path, not client-side
        # canonicalization cost.
        payloads = [
            json.dumps(encode_request(request)).encode()
            for request in requests
        ]

        def single_iterate(client: ServiceClient) -> int:
            for body in payloads:
                status, payload = client._request(
                    "POST", "/runs", body=body
                )
                assert status == 200, (status, payload)
            return len(payloads)

        def batch_iterate(client: ServiceClient) -> int:
            artifacts = client.run_many(requests)
            assert len(artifacts) == len(requests)
            return len(artifacts)

        def single_prime(client: ServiceClient) -> None:
            single_iterate(client)

        def batch_prime(client: ServiceClient) -> None:
            client.ping()
            batch_iterate(client)

        modes = {
            "single_post_identity": _measure(
                lambda: ServiceClient(url, compress=False),
                single_iterate,
                single_prime,
            ),
            "batch_identity": _measure(
                lambda: ServiceClient(
                    url, compress=False, detail="headline"
                ),
                batch_iterate,
                batch_prime,
            ),
            "batch_gzip": _measure(
                lambda: ServiceClient(
                    url, compress=True, detail="headline"
                ),
                batch_iterate,
                batch_prime,
            ),
        }
        stats = ServiceClient(url).stats()
    finally:
        daemon.close()

    single_rate = modes["single_post_identity"]["rate_per_s"]
    batch_rate = modes["batch_gzip"]["rate_per_s"]
    speedup = batch_rate / single_rate
    report = {
        "benchmark": "service_warm_wire_throughput",
        "n_clients": N_CLIENTS,
        "warm_fingerprints": len(requests),
        "measure_s": MEASURE_S,
        "modes": modes,
        "speedup_batch_gzip_vs_single_post": round(speedup, 2),
        "bars": {
            "batch_gzip_min_per_s": BATCH_RATE_BAR,
            "speedup_min": SPEEDUP_BAR,
            "single_post_min_per_s": SINGLE_RATE_BAR,
        },
        "wire": stats["wire"],
    }
    path = report_dir / "BENCH_service.json"
    path.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"experiment service warm wire throughput "
        f"({N_CLIENTS} concurrent clients, {len(requests)} warm "
        f"fingerprints, {MEASURE_S:.1f}s per mode)",
    ]
    for name, mode in modes.items():
        lines.append(
            f"  {name:<22}: {mode['rate_per_s']:>9.0f} artifacts/s "
            f"({mode['artifacts_served']} in {mode['elapsed_s']:.2f}s)"
        )
    lines.append(
        f"  batch_gzip / single   : {speedup:9.2f}x "
        f"(bars: >= {BATCH_RATE_BAR:.0f}/s and >= {SPEEDUP_BAR:.0f}x)"
    )
    (report_dir / "service_throughput.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print()
    for line in lines:
        print(line)

    assert batch_rate >= BATCH_RATE_BAR, (
        f"batched+gzip rate {batch_rate:.0f}/s below the "
        f"{BATCH_RATE_BAR:.0f}/s bar"
    )
    assert speedup >= SPEEDUP_BAR, (
        f"batched+gzip is only {speedup:.2f}x single-POST "
        f"(bar: {SPEEDUP_BAR:.0f}x)"
    )
    assert single_rate >= SINGLE_RATE_BAR, (
        f"single-POST rate {single_rate:.0f}/s regressed below the "
        f"{SINGLE_RATE_BAR:.0f}/s bar"
    )
    # Every serve after the warm-up must be a cache hit, not a sim.
    assert stats["computed"] == 0


def test_service_roundtrip_latency(benchmark, report_dir):
    """Single-client warm round-trip (submit -> artifact) latency."""
    daemon, requests = _start_daemon()
    client = ServiceClient(daemon.url)
    request = requests[0]
    client.run(request)  # prime the response cache

    def roundtrip():
        artifact = client.run(request)
        assert artifact.fingerprint == request.fingerprint()

    try:
        benchmark(roundtrip)
    finally:
        client.close()
        daemon.close()
