"""Experiment-service benchmarks: warm-hit throughput under load.

The service's job is to let many clients share one warm store, so the
headline number is *cached* artifacts served per second: one daemon
(segment-backed store, pre-warmed with the four-method comparison at
a short horizon) serving :data:`N_CLIENTS` concurrent
:class:`~repro.service.client.ServiceClient` threads that hammer
``POST /runs`` with already-stored requests.

The ROADMAP acceptance bar -- >= :data:`HIT_RATE_BAR` cached
artifacts/s from 8 concurrent clients -- is asserted by
``test_service_warm_hit_throughput`` and recorded under
``benchmarks/reports/``.  Note both sides of the exchange run in this
one process (8 clients + the daemon share the GIL), so the daemon
alone clears the bar with headroom.

The daemon's store is left under ``benchmarks/reports/service_store``
(small: one comparison at tiny scale): the nightly workflow compacts
it with ``repro store compact`` after the smoke suite, exercising the
scheduled-compaction path end to end.
"""

from __future__ import annotations

import json
import shutil
import threading
import time

from repro.experiments.orchestrator import (
    Orchestrator,
    ResultStore,
    RunRequest,
)
from repro.experiments.runner import default_policies
from repro.service import ExperimentDaemon, ServiceClient
from repro.service.protocol import encode_request
from repro.sim.config import scaled_config

from conftest import REPORT_DIR

#: Concurrent client threads (the acceptance bar's fixed fan-in).
N_CLIENTS = 8

#: Minimum warm-hit throughput (cached artifacts served per second).
HIT_RATE_BAR = 1_000.0

#: How long the throughput measurement hammers the daemon.
MEASURE_S = 2.0

#: Store root handed to the nightly ``repro store compact`` step.
SERVICE_STORE = REPORT_DIR / "service_store"


def _requests() -> list[RunRequest]:
    config = scaled_config("tiny", seed=0).with_horizon(2)
    return [
        RunRequest(config=config, policy=policy)
        for policy in default_policies()
    ]


def _start_daemon() -> tuple[ExperimentDaemon, list[RunRequest]]:
    """A daemon over a segment store pre-warmed with the tiny grid."""
    shutil.rmtree(SERVICE_STORE, ignore_errors=True)
    SERVICE_STORE.parent.mkdir(exist_ok=True)
    store = ResultStore(SERVICE_STORE, backend="segment")
    orchestrator = Orchestrator(store=store, jobs=2)
    requests = _requests()
    orchestrator.run_many(requests)  # warm the store + response cache
    daemon = ExperimentDaemon(orchestrator).start()
    return daemon, requests


def _hammer(
    url: str,
    payloads: list[bytes],
    stop_at: float,
    counts: list[int],
    slot: int,
) -> None:
    """One client thread: POST prepared warm requests until the bell."""
    client = ServiceClient(url)
    served = 0
    while time.perf_counter() < stop_at:
        for body in payloads:
            status, payload = client._request("POST", "/runs", body=body)
            assert status == 200, (status, payload)
            served += 1
    counts[slot] = served
    client.close()


def test_service_warm_hit_throughput(report_dir):
    """Acceptance bar: >= 1k cached artifacts/s across 8 clients."""
    daemon, requests = _start_daemon()
    try:
        url = daemon.url
        # Pre-encode the wire payloads once per client loop iteration:
        # the gate measures the *daemon's* warm path, not the client's
        # canonicalization cost.
        payloads = [
            json.dumps(encode_request(request)).encode()
            for request in requests
        ]
        # Prime every fingerprint into the daemon's response cache.
        warmup = ServiceClient(url)
        for request in requests:
            artifact = warmup.run(request)
            assert artifact.from_cache or artifact.source == "computed"
        warmup.close()

        counts = [0] * N_CLIENTS
        stop_at = time.perf_counter() + MEASURE_S
        threads = [
            threading.Thread(
                target=_hammer,
                args=(url, payloads, stop_at, counts, slot),
            )
            for slot in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        served = sum(counts)
        rate = served / elapsed
        stats = ServiceClient(url).stats()
    finally:
        daemon.close()

    lines = [
        f"experiment service warm-hit throughput "
        f"({N_CLIENTS} concurrent clients, {elapsed:.2f}s)",
        f"  artifacts served : {served}",
        f"  rate             : {rate:9.0f} artifacts/s "
        f"(bar: >= {HIT_RATE_BAR:.0f})",
        f"  daemon hits      : {stats['hits']}",
        f"  daemon computed  : {stats['computed']}",
    ]
    path = report_dir / "service_throughput.txt"
    path.write_text("\n".join(lines) + "\n")
    print()
    for line in lines:
        print(line)
    assert rate >= HIT_RATE_BAR, (
        f"warm-hit rate {rate:.0f}/s below the {HIT_RATE_BAR:.0f}/s bar"
    )
    # Every serve after warmup must be a cache hit, not a simulation.
    assert stats["computed"] <= len(requests)


def test_service_roundtrip_latency(benchmark, report_dir):
    """Single-client warm round-trip (submit -> artifact) latency."""
    daemon, requests = _start_daemon()
    client = ServiceClient(daemon.url)
    request = requests[0]
    client.run(request)  # prime the response cache

    def roundtrip():
        artifact = client.run(request)
        assert artifact.fingerprint == request.fingerprint()

    try:
        benchmark(roundtrip)
    finally:
        client.close()
        daemon.close()
