"""Ablation B: correlation awareness on/off.

DESIGN.md calls out the two correlation signals as the paper's core
idea.  This ablation disables the *local* correlation awareness
(plain first-fit-decreasing with stationary peak sizing instead of
combined-peak packing) and compares energy: the correlation-aware
local phase should consolidate onto fewer/slower servers.
"""

import pytest
from conftest import ABLATION_HORIZON, write_report

from repro.core.controller import ProposedPolicy
from repro.core.local import allocate_first_fit
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine


@pytest.fixture(scope="module")
def pair():
    config = scaled_config("small").with_horizon(ABLATION_HORIZON)
    aware = SimulationEngine(config, ProposedPolicy()).run()
    blind_policy = ProposedPolicy(local_allocator=allocate_first_fit)
    blind = SimulationEngine(config, blind_policy).run()
    return aware, blind


def test_ablation_local_correlation(benchmark, pair, report_dir):
    aware, blind = pair

    def summarize():
        return (
            (aware.total_energy_gj(), aware.mean_active_servers()),
            (blind.total_energy_gj(), blind.mean_active_servers()),
        )

    (aware_energy, aware_servers), (blind_energy, blind_servers) = benchmark(
        summarize
    )

    lines = ["== Ablation B: local correlation awareness =="]
    lines.append(f"{'variant':<22} {'energy GJ':>10} {'mean servers':>13}")
    lines.append(
        f"{'correlation-aware':<22} {aware_energy:>10.3f} {aware_servers:>13.1f}"
    )
    lines.append(
        f"{'plain FFD (ablated)':<22} {blind_energy:>10.3f} {blind_servers:>13.1f}"
    )
    saving = 100.0 * (blind_energy - aware_energy) / blind_energy
    lines.append(f"energy saved by correlation awareness: {saving:.1f} %")
    write_report(report_dir, "ablation_correlation.txt", lines)

    # The correlation-aware local phase must not use more servers.
    assert aware_servers <= blind_servers + 0.5
    assert aware_energy <= blind_energy * 1.02
