"""Shared fixtures for the benchmark harness.

The six figures of the paper all come from ONE one-week comparison run
of the four methods, so a session-scoped fixture executes it once (at
the `small` scale recorded in DESIGN.md -- same 3-site fleet shape as
Table I, 48 servers, ~150 simultaneous VMs, 60 s control sampling) and
every figure benchmark derives its report from it.

The comparison goes through the experiment orchestrator with a
*persistent* result store under ``benchmarks/.result_store``: the
first session simulates (in parallel when ``REPRO_BENCH_JOBS`` is
set), later sessions load the bit-identical ledgers from disk and the
figure benchmarks start instantly.  Delete the store directory to
force a cold run.

Each benchmark also writes its paper-vs-measured report under
``benchmarks/reports/`` so a run leaves an auditable record.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.datacenter.datacenter import DatacenterSpec
from repro.datacenter.price import TwoLevelTariff
from repro.datacenter.pue import FreeCoolingPUE
from repro.experiments.orchestrator import Orchestrator, ResultStore
from repro.experiments.runner import run_comparison
from repro.sim.config import scaled_config
from repro.workload.vm import AppType, VirtualMachine

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

#: Persistent cross-session result store for the benchmark harness.
STORE_DIR = pathlib.Path(__file__).parent / ".result_store"

#: Horizon used by the ablation benchmarks (shorter than the figures'
#: full week to keep the suite quick).
ABLATION_HORIZON = 48


@pytest.fixture(scope="session")
def week_config():
    return scaled_config("small")


@pytest.fixture(scope="session")
def bench_orchestrator():
    """Disk-backed orchestrator shared by the whole benchmark session."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return Orchestrator(store=ResultStore(STORE_DIR), jobs=jobs)


@pytest.fixture(scope="session")
def week_results(week_config, bench_orchestrator):
    """The one-week, four-method comparison behind Figs. 1-6."""
    return run_comparison(week_config, orchestrator=bench_orchestrator)


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def write_report(report_dir: pathlib.Path, name: str, lines: list[str]) -> None:
    """Persist one figure's paper-vs-measured report."""
    path = report_dir / name
    path.write_text("\n".join(lines) + "\n")
    print()
    for line in lines:
        print(line)


def make_vm(
    vm_id: int = 0,
    app_type: AppType = AppType.WEB,
    cores: float = 2.0,
    image_gb: float = 4.0,
    arrival_slot: int = 0,
    departure_slot: int = 1000,
    service_id: int = 0,
    phase_hours: float = 0.0,
    seed: int = 0,
) -> VirtualMachine:
    """VM factory for synthetic scaling benchmarks."""
    return VirtualMachine(
        vm_id=vm_id,
        app_type=app_type,
        cores=cores,
        image_gb=image_gb,
        arrival_slot=arrival_slot,
        departure_slot=departure_slot,
        service_id=service_id,
        phase_hours=phase_hours,
        seed=seed,
    )


def make_specs(n_servers: tuple[int, int, int] = (6, 4, 2)) -> list[DatacenterSpec]:
    """Three-site fleet used by the synthetic scaling benchmarks."""
    sites = [
        ("Lisbon", 38.7223, -9.1393, 0.0, 0.24, 0.12),
        ("Zurich", 47.3769, 8.5417, 1.0, 0.20, 0.10),
        ("Helsinki", 60.1699, 24.9384, 2.0, 0.16, 0.08),
    ]
    specs = []
    for (name, lat, lon, tz, peak, off), servers in zip(sites, n_servers):
        specs.append(
            DatacenterSpec(
                name=name,
                latitude=lat,
                longitude=lon,
                n_servers=servers,
                pv_kwp=0.1 * servers,
                battery_kwh=0.64 * servers,
                tariff=TwoLevelTariff(
                    peak_price=peak, offpeak_price=off, tz_offset_hours=tz
                ),
                pue_model=FreeCoolingPUE(tz_offset_hours=tz),
                tz_offset_hours=tz,
            )
        )
    return specs
