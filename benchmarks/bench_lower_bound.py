"""Extension: LP sourcing lower bound vs each policy's realized cost.

For every method's week-long run, solve the offline (perfect-knowledge)
energy-sourcing LP for the same placement and demand trajectories.  The
gap measures how much the paper's low-complexity rule-based green
controller leaves on the table -- its implicit claim is that the gap is
small once the *placement* already tracks free energy.
"""

from conftest import write_report

from repro.analysis.lower_bound import operational_cost_lower_bound


def test_lower_bound_gap(benchmark, week_results, week_config, report_dir):
    proposed = week_results[0]
    bound = benchmark(operational_cost_lower_bound, proposed, week_config)

    lines = ["== Extension: offline sourcing LP vs realized cost =="]
    lines.append(f"{'policy':<12} {'cost EUR':>10} {'LP bound':>10} {'gap %':>7}")
    gaps = {}
    for result in week_results:
        entry = operational_cost_lower_bound(result, week_config)
        gaps[result.policy_name] = entry.gap_pct
        lines.append(
            f"{result.policy_name:<12} {entry.actual_cost_eur:>10.2f} "
            f"{entry.total_cost_eur:>10.2f} {entry.gap_pct:>7.1f}"
        )
    write_report(report_dir, "lower_bound.txt", lines)

    # The bound must hold for every policy.
    assert bound.total_cost_eur <= bound.actual_cost_eur + 1e-6
    assert all(gap >= 0.0 for gap in gaps.values())
