"""Ablation A: the Eq. 5 energy/performance weight alpha.

Alpha weights attraction (data correlation, performance) against
repulsion (CPU-load correlation, energy).  The paper presents alpha as
*the* trade-off knob of the force model; this ablation sweeps it and
reports how cost, energy and response time move.
"""

import pytest
from conftest import ABLATION_HORIZON, write_report

from repro.core.controller import ProposedPolicy
from repro.core.forces import ForceParameters
from repro.sim.config import scaled_config
from repro.sim.engine import SimulationEngine

ALPHAS = (0.1, 0.5, 0.9)


@pytest.fixture(scope="module")
def sweep():
    config = scaled_config("small").with_horizon(ABLATION_HORIZON)
    results = {}
    for alpha in ALPHAS:
        policy = ProposedPolicy(force_params=ForceParameters(alpha=alpha))
        results[alpha] = SimulationEngine(config, policy).run()
    return results


def test_ablation_alpha(benchmark, sweep, report_dir):
    def summarize():
        return {
            alpha: (
                result.total_grid_cost_eur(),
                result.total_energy_gj(),
                result.mean_response_s(),
                result.percentile_response_s(99.0),
            )
            for alpha, result in sweep.items()
        }

    table = benchmark(summarize)

    lines = ["== Ablation A: Eq. 5 alpha sweep (energy vs performance) =="]
    lines.append(
        f"{'alpha':>6} {'cost EUR':>10} {'energy GJ':>10} "
        f"{'mean RT s':>10} {'p99 RT s':>9}"
    )
    for alpha in ALPHAS:
        cost, energy, mean_rt, p99 = table[alpha]
        lines.append(
            f"{alpha:>6.1f} {cost:>10.2f} {energy:>10.3f} "
            f"{mean_rt:>10.4f} {p99:>9.4f}"
        )
    write_report(report_dir, "ablation_alpha.txt", lines)

    # Every sweep point must produce a live system.
    for cost, energy, mean_rt, _ in table.values():
        assert cost > 0.0
        assert energy > 0.0
        assert mean_rt >= 0.0
