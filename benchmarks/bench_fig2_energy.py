"""Fig. 2: hourly energy consumed by the DCs over one week.

Paper totals: 57 / 55 / 65 / 67 GJ for Proposed / Ener-aware /
Pri-aware / Net-aware -- i.e. relative to Proposed: 0.965 / 1.14 / 1.18.
Absolute GJ differ at the reproduction's scale (48 servers, synthetic
traces), so the report compares the *relative* totals; the shape
assertions check the ordering that drives the paper's Fig. 2 story:
correlation-blind, network-balancing placement (Net-aware) burns the
most, and the correlation-aware methods are within a few percent of
each other.
"""

from conftest import write_report

from repro.experiments.figures import fig2_energy


def test_fig2_energy(benchmark, week_results, report_dir):
    report = benchmark(fig2_energy, week_results)

    totals = report["measured_totals_gj"]
    relative = report["measured_relative"]
    paper_rel = report["paper_relative"]

    lines = ["== Fig. 2: energy consumed by DCs (one week) =="]
    lines.append(
        f"{'policy':<12} {'energy GJ':>10} {'rel to Proposed':>16}"
        f" {'paper rel':>10}"
    )
    for name in ("Proposed", "Ener-aware", "Pri-aware", "Net-aware"):
        lines.append(
            f"{name:<12} {totals[name]:>10.3f} {relative[name]:>16.3f}"
            f" {paper_rel[name]:>10.3f}"
        )
    hourly = report["hourly_energy_gj"]["Proposed"]
    lines.append(
        f"hourly series: {len(hourly)} slots, "
        f"min {hourly.min():.4f} GJ, max {hourly.max():.4f} GJ"
    )
    write_report(report_dir, "fig2_energy.txt", lines)

    # Shape: Net-aware is the most energy-hungry method (paper: 67 GJ,
    # 17 % above Proposed); Ener-aware stays within ~8 % of Proposed
    # (paper: 3.5 % below).
    assert relative["Net-aware"] == max(relative.values())
    assert relative["Net-aware"] > 1.05
    assert abs(relative["Ener-aware"] - 1.0) < 0.08
