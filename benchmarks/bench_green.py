"""Fleet-batched slot physics: one kernel pass vs the reference loops.

The engine's per-slot physics -- every DC's IT power, PUE scaling and
green-controller pass -- historically ran DC by DC: a fresh CSR
membership matrix per DC (or the per-server/per-VM reference loops)
and one scalar ``GreenController.run_slot`` per DC.  The fleet-batched
kernel evaluates the whole placement at once: one CSR product with
block rows per DC (``SimulationEngine._fleet_it_power``), one batched
PUE broadcast, and one ``GreenController.run_slot_fleet`` pass.

This benchmark drives both paths over a synthetic paper-scale slot --
Table I's 1500/1000/500-server fleet, 5 s control steps (720 per
slot), ~6000 concurrent VMs -- swept across a full simulated day so
night (grid-charge), midday (PV surplus) and evening-peak (discharge)
regimes all contribute:

* **bit-identity** -- the fleet kernel's ledgers must equal the
  reference's exactly at every slot of the day, through both the
  scalar-replay and the struct-of-arrays battery paths;
* **per-slot speedup** -- the fleet kernel must be at least 3x faster
  per slot than the reference loops, day-mean, best of repeats.

A machine-readable ``BENCH_green.json`` lands in
``benchmarks/reports/`` (uploaded by the nightly workflow) so the
engine-level perf trajectory is recorded run over run.  Run via
``make bench-smoke`` (or directly with pytest).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.baselines import EnerAwarePolicy
from repro.core.local import allocate_correlation_aware
from repro.datacenter.pue import fleet_pue
from repro.datacenter.server import XEON_E5410
from repro.sim.config import build_datacenters, paper_config
from repro.sim.engine import SimulationEngine
from repro.units import SECONDS_PER_HOUR

#: Concurrent VMs, split 3:2:1 over the fleet like the servers (the
#: paper's arrival process sustains thousands of VMs at steady state).
N_VMS = 6000

#: Slots timed by the speedup sweep: every third hour of one day, so
#: all tariff/PV regimes (night, sunrise, midday, evening peak) count.
TIMED_SLOTS = tuple(range(0, 24, 3))

#: Measurement repeats per path; the best repeat is scored.
REPEATS = 3

#: Required day-mean per-slot advantage of the fleet kernel.
REQUIRED_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def physics():
    """Engine, fleet and a paper-scale placement for one slot."""
    config = paper_config().with_horizon(1)
    engine = SimulationEngine(config, EnerAwarePolicy())
    dcs = build_datacenters(config)
    rng = np.random.default_rng(0)
    demand = rng.uniform(0.05, 0.8, size=(N_VMS, config.steps_per_slot))
    vm_rows = {vm_id: vm_id for vm_id in range(N_VMS)}
    allocations = []
    start = 0
    for spec, share in zip(config.specs, (3, 2, 1)):
        count = N_VMS * share // 6
        allocations.append(
            allocate_correlation_aware(
                list(range(start, start + count)),
                demand[start : start + count],
                XEON_E5410,
                spec.n_servers,
            )
        )
        start += count

    class PlacementStub:
        """Bare allocations holder (the physics never reads more)."""

    placement = PlacementStub()
    placement.allocations = allocations
    base_times = (np.arange(config.steps_per_slot) + 0.5) * (
        SECONDS_PER_HOUR / config.steps_per_slot
    )
    # Warm the per-day weather caches so timings compare kernels, not
    # first-touch RNG draws.
    for dc in dcs:
        dc.pv.power_watts(base_times)
        dc.pv.power_watts(base_times + 24 * SECONDS_PER_HOUR)
    return engine, dcs, placement, vm_rows, demand, base_times


def reference_slot(physics_tuple, slot):
    """One slot of per-DC loop physics (the ``vectorized=False`` path)."""
    engine, dcs, placement, vm_rows, demand, base_times = physics_tuple
    times = base_times + slot * SECONDS_PER_HOUR
    ledgers = []
    for dc in dcs:
        it_power, _ = engine._dc_it_power_loop(
            placement, dc.index, vm_rows, demand
        )
        facility = it_power * dc.spec.pue_model.pue(times)
        ledgers.append(engine.green.run_slot(dc, slot, facility))
    return ledgers


def fleet_slot(physics_tuple, slot):
    """One slot of fleet-batched physics (the ``vectorized=True`` path)."""
    engine, dcs, placement, vm_rows, demand, base_times = physics_tuple
    times = base_times + slot * SECONDS_PER_HOUR
    it_matrix, _ = engine._fleet_it_power(placement, vm_rows, demand)
    facility = it_matrix * fleet_pue(
        [dc.spec.pue_model for dc in dcs], times
    )
    return engine.green.run_slot_fleet(dcs, slot, facility)


def reset_batteries(dcs):
    """Full banks, as at the start of a run."""
    for dc in dcs:
        dc.battery.soc_joules = dc.battery.capacity_joules


def day_sweep(physics_tuple, slot_fn, slots=TIMED_SLOTS):
    """Ledgers of ``slot_fn`` over a day, batteries evolving across slots."""
    reset_batteries(physics_tuple[1])
    return [slot_fn(physics_tuple, slot) for slot in slots]


def test_green_fleet_bit_identical_over_a_day(physics):
    """Fleet kernel ledgers equal the loops' exactly, both battery paths."""
    slots = range(24)
    reference = day_sweep(physics, reference_slot, slots)
    fleet = day_sweep(physics, fleet_slot, slots)
    assert fleet == reference
    green = physics[0].green
    green.scalar_replay_max_dcs = 0  # force the struct-of-arrays loop
    try:
        fleet_soa = day_sweep(physics, fleet_slot, slots)
    finally:
        green.scalar_replay_max_dcs = 8
    assert fleet_soa == reference


def best_day_mean(physics_tuple, slot_fn) -> float:
    """Best-of-repeats mean seconds per slot over the timed day sweep."""
    best = float("inf")
    for _ in range(REPEATS):
        reset_batteries(physics_tuple[1])
        start = time.perf_counter()
        for slot in TIMED_SLOTS:
            slot_fn(physics_tuple, slot)
        best = min(best, (time.perf_counter() - start) / len(TIMED_SLOTS))
    return best


def test_green_fleet_speedup(physics, report_dir):
    """Fleet kernel is >= 3x faster per slot than the reference loops."""
    reference_s = best_day_mean(physics, reference_slot)
    fleet_s = best_day_mean(physics, fleet_slot)
    speedup = reference_s / fleet_s
    active = [a.active_servers for a in physics[2].allocations]
    lines = [
        "bench_green: per-slot fleet physics kernel vs reference loops",
        f"  paper-scale fleet (1500/1000/500 servers, {sum(active)} active), "
        f"{N_VMS} VMs, 720 steps/slot",
        f"  (day-mean per-slot time over slots {TIMED_SLOTS}, "
        f"best of {REPEATS})",
        f"  reference loops {reference_s * 1e3:8.2f} ms/slot",
        f"  fleet kernel    {fleet_s * 1e3:8.2f} ms/slot",
        f"  speedup {speedup:5.1f}x  (required >= {REQUIRED_SPEEDUP:.0f}x)",
    ]
    from conftest import write_report

    write_report(report_dir, "bench_green.txt", lines)
    payload = {
        "benchmark": "bench_green",
        "config": "paper",
        "n_vms": N_VMS,
        "active_servers": active,
        "steps_per_slot": 720,
        "timed_slots": list(TIMED_SLOTS),
        "repeats": REPEATS,
        "reference_ms_per_slot": reference_s * 1e3,
        "fleet_ms_per_slot": fleet_s * 1e3,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
    }
    (report_dir / "BENCH_green.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"fleet slot-physics kernel only {speedup:.2f}x faster than the "
        f"reference loops (need >= {REQUIRED_SPEEDUP:.0f}x)"
    )
