"""Data-correlation generation: reference loop vs batched path.

The ROADMAP profile showed ``DataCorrelationProcess.volumes`` -- an
O(n^2) per-pair Python loop invoked twice per engine slot -- dominating
small-scale runs once the engine physics were vectorized.  This
benchmark measures the batched replacement:

* **bit-identity** -- at every population size {1, 2, 50, 200} the
  batched matrices must equal the loop's exactly (the same guarantee
  the engine's other vectorized hot paths carry);
* **per-slot speedup** -- at n=200 the batched path must be at least
  10x faster per slot than the loop, measured warm (base volumes
  cached in both implementations, which is the engine's steady state).

Run via ``make bench-smoke`` (or directly with pytest).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import make_vm
from repro.workload.datacorr import DataCorrelationProcess

#: Population sizes the equivalence sweep covers.
SIZES = (1, 2, 50, 200)

#: Required warm per-slot advantage of the batched path at n=200.
REQUIRED_SPEEDUP = 10.0

#: Slots timed per measurement repeat.
SLOTS_PER_REPEAT = 5

#: Measurement repeats (the best repeat is scored, damping scheduler
#: noise on shared CI runners).
REPEATS = 5


def population(n: int) -> list:
    """Mixed-service population with non-contiguous vm ids."""
    return [
        make_vm(vm_id=3 + 7 * index, service_id=index // 4, seed=index)
        for index in range(n)
    ]


def processes(seed: int = 17) -> tuple[DataCorrelationProcess, DataCorrelationProcess]:
    loop = DataCorrelationProcess(seed=seed, vectorized=False)
    batched = DataCorrelationProcess(seed=seed, vectorized=True)
    return loop, batched


def best_slot_time(process: DataCorrelationProcess, vms: list) -> float:
    """Best-of-repeats mean seconds per ``volumes`` call, warm."""
    process.volumes(vms, 0)  # warm the per-pair base draws / matrices
    best = float("inf")
    slot = 1
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(SLOTS_PER_REPEAT):
            process.volumes(vms, slot)
            slot += 1
        best = min(best, (time.perf_counter() - start) / SLOTS_PER_REPEAT)
    return best


def test_datacorr_bit_identical_across_sizes():
    """Loop and batched paths agree exactly at every population size."""
    for n in SIZES:
        vms = population(n)
        loop, batched = processes()
        for slot in (0, 9):
            reference = loop.volumes(vms, slot)
            candidate = batched.volumes(vms, slot)
            assert candidate.vm_ids == reference.vm_ids
            assert np.array_equal(candidate.volumes, reference.volumes), (
                f"n={n} slot={slot} diverged"
            )


def test_datacorr_speedup(report_dir):
    """Batched path is >= 10x faster per warm slot at n=200."""
    lines = [
        "bench_datacorr: DataCorrelationProcess.volumes loop vs batched",
        f"  (warm per-slot time, best of {REPEATS} x {SLOTS_PER_REPEAT} slots)",
    ]
    speedups = {}
    for n in SIZES:
        vms = population(n)
        loop, batched = processes()
        loop_s = best_slot_time(loop, vms)
        batched_s = best_slot_time(batched, vms)
        speedups[n] = loop_s / batched_s
        lines.append(
            f"  n={n:>3}  loop {loop_s * 1e3:8.3f} ms  "
            f"batched {batched_s * 1e3:8.3f} ms  "
            f"speedup {speedups[n]:6.1f}x"
        )
    lines.append(
        f"  required at n=200: >= {REQUIRED_SPEEDUP:.0f}x  "
        f"measured: {speedups[200]:.1f}x"
    )
    from conftest import write_report

    write_report(report_dir, "bench_datacorr.txt", lines)
    assert speedups[200] >= REQUIRED_SPEEDUP, (
        f"batched datacorr only {speedups[200]:.1f}x faster at n=200 "
        f"(need >= {REQUIRED_SPEEDUP:.0f}x)"
    )
