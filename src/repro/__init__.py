"""repro -- reproduction of Pahlevan et al., DATE 2016.

"Exploiting CPU-Load and Data Correlations in Multi-Objective VM
Placement for Geo-Distributed Data Centers."

Public API tour
---------------

Build a fleet and compare the paper's four policies on one workload::

    from repro import (
        scaled_config, run_policies,
        ProposedPolicy, EnerAwarePolicy, PriAwarePolicy, NetAwarePolicy,
        format_comparison,
    )

    config = scaled_config("small").with_horizon(48)
    results = run_policies(config, [
        ProposedPolicy(), EnerAwarePolicy(), PriAwarePolicy(), NetAwarePolicy(),
    ])
    print(format_comparison(results))

Sub-packages:

* :mod:`repro.core` -- the paper's contribution (force-directed
  clustering, capacity caps, modified k-means, Algorithm 2, the
  correlation-aware local phase, the green controller),
* :mod:`repro.baselines` -- Pri-aware / Ener-aware / Net-aware,
* :mod:`repro.datacenter` -- servers, power, PUE, PV, battery, tariffs,
* :mod:`repro.network` -- geo topology and the Eq. 1-4 latency model,
* :mod:`repro.workload` -- VMs, traces, arrival and data processes,
  unified behind versioned, content-hashed trace packs
  (:mod:`repro.workload.packs`),
* :mod:`repro.sim` -- configs, engine, metrics, results,
* :mod:`repro.experiments` -- one runner per paper figure, plus the
  orchestration layer (parallel run fan-out and the fingerprint-keyed
  persistent result store) every experiment executes through.
"""

from repro.analysis import (
    alpha_sweep,
    evaluate_forecaster,
    operational_cost_lower_bound,
    pareto_front,
)
from repro.baselines import EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy
from repro.core import ProposedPolicy
from repro.core.forces import ForceParameters
from repro.experiments import (
    Orchestrator,
    ResultStore,
    RunRequest,
    run_comparison,
    run_replicated_comparison,
)
from repro.sim import (
    ExperimentConfig,
    RunResult,
    SimulationEngine,
    format_comparison,
    normalized_costs,
    paper_config,
    run_policies,
    scaled_config,
)
from repro.workload.packs import (
    TracePack,
    available_packs,
    default_pack,
    get_pack,
    register_pack,
)

__version__ = "1.0.0"

__all__ = [
    "EnerAwarePolicy",
    "alpha_sweep",
    "evaluate_forecaster",
    "operational_cost_lower_bound",
    "pareto_front",
    "ExperimentConfig",
    "ForceParameters",
    "NetAwarePolicy",
    "Orchestrator",
    "PriAwarePolicy",
    "ProposedPolicy",
    "ResultStore",
    "RunRequest",
    "RunResult",
    "SimulationEngine",
    "TracePack",
    "__version__",
    "available_packs",
    "default_pack",
    "format_comparison",
    "get_pack",
    "normalized_costs",
    "paper_config",
    "register_pack",
    "run_comparison",
    "run_policies",
    "run_replicated_comparison",
    "scaled_config",
]
