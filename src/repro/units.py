"""Physical units and conversion helpers shared across the library.

The paper mixes several unit systems (MB of exchanged data, Gb/s links,
kWh batteries, Joule capacity caps).  Everything in this code base is
normalized to the following internal conventions:

* time        -- seconds (one *slot* is one hour unless reconfigured)
* energy      -- Joules
* power       -- Watts
* data volume -- megabytes (MB); converted to bits only inside the
                 latency model
* bandwidth   -- bits per second
* distance    -- meters
"""

from __future__ import annotations

#: Seconds in one placement slot (the paper invokes the global/local
#: controllers every hour).
SECONDS_PER_HOUR = 3600.0

#: Hours in the paper's evaluation horizon (one week).
HOURS_PER_WEEK = 168

#: Bits in one megabyte (decimal megabyte, as used for network volumes).
BITS_PER_MB = 8.0e6

#: Bytes in one gigabyte (VM image sizes for migration).
MB_PER_GB = 1000.0

#: Propagation speed of light in optical fiber (m/s).  Vacuum light speed
#: scaled by a typical fiber refractive index of ~1.5.
FIBER_LIGHT_SPEED = 2.0e8

#: Joules per kilowatt-hour.
JOULES_PER_KWH = 3.6e6

#: Joules in a gigajoule (Fig. 2 reports weekly energy in GJ).
JOULES_PER_GJ = 1.0e9


def mb_to_bits(megabytes: float) -> float:
    """Convert a data volume in MB to bits (for bandwidth math)."""
    return megabytes * BITS_PER_MB


def bits_to_mb(bits: float) -> float:
    """Convert a number of bits to megabytes."""
    return bits / BITS_PER_MB


def gb_to_mb(gigabytes: float) -> float:
    """Convert gigabytes (VM image size) to megabytes."""
    return gigabytes * MB_PER_GB


def kwh_to_joules(kwh: float) -> float:
    """Convert kilowatt-hours to Joules."""
    return kwh * JOULES_PER_KWH


def joules_to_kwh(joules: float) -> float:
    """Convert Joules to kilowatt-hours."""
    return joules / JOULES_PER_KWH


def joules_to_gj(joules: float) -> float:
    """Convert Joules to gigajoules."""
    return joules / JOULES_PER_GJ


def watts_over(watts: float, seconds: float) -> float:
    """Energy in Joules of a constant power draw over a duration."""
    return watts * seconds
