"""The complete two-phase multi-objective placement policy ("Proposed").

Global phase (Section IV-B.1):

1. force-directed 2D embedding from CPU-load and data correlations
   (Eqs. 5-7), warm-started from the previous slot's final positions;
2. per-DC capacity caps from battery, renewable forecast, grid price
   and a last-value demand predictor;
3. capacity-constrained modified k-means over the plane;
4. migration revision under the hard latency window (Algorithm 2).

Local phase (Section IV-B.2): correlation-aware consolidation with DVFS
per DC.

The policy is stateful across slots: embedding positions and the last
cluster membership persist ("the final location of all the VMs becomes
the initial position for the next time slot").
"""

from __future__ import annotations

import numpy as np

from repro.core.capacity import compute_capacity_caps
from repro.core.correlation import attraction_matrix, repulsion_matrix
from repro.core.forces import ForceDirectedEmbedding, ForceParameters
from repro.core.kmeans import constrained_kmeans, warm_start_centroids
from repro.core.local import allocate_correlation_aware
from repro.core.migration import revise_migrations
from repro.seeding import rng_for
from repro.sim.state import FleetPlacement, PlacementPolicy, SlotObservation


class ProposedPolicy(PlacementPolicy):
    """The paper's two-phase multi-objective VM placement.

    Parameters
    ----------
    force_params:
        Embedding tunables; ``alpha`` is the Eq. 5 energy/performance
        trade-off weight.
    kmeans_iterations:
        Cap on modified k-means rounds per slot.
    stickiness:
        Placement inertia passed to the constrained k-means; suppresses
        marginal reassignments (and migration churn) while letting the
        caps still pull load toward free/cheap energy.
    local_allocator:
        The local-phase allocator (default: the paper's
        correlation-aware consolidation).  Swapping in
        :func:`repro.core.local.allocate_first_fit` ablates the local
        correlation awareness.
    seed:
        Root for the deterministic placement of brand-new points in the
        plane.
    """

    name = "Proposed"

    def __init__(
        self,
        force_params: ForceParameters | None = None,
        kmeans_iterations: int = 25,
        stickiness: float = 0.0,
        local_allocator=allocate_correlation_aware,
        seed: int = 0,
    ) -> None:
        self.force_params = force_params or ForceParameters()
        self.kmeans_iterations = kmeans_iterations
        self.stickiness = stickiness
        self.local_allocator = local_allocator
        self.seed = seed
        self._embedding = ForceDirectedEmbedding(self.force_params)
        self._positions: dict[int, np.ndarray] = {}

    def reset(self) -> None:
        """Forget the plane between runs."""
        self._positions = {}

    def _initial_positions(self, observation: SlotObservation) -> np.ndarray:
        """Previous final positions; new VMs spawn near service peers.

        A new VM starts at the centroid of its already-embedded service
        peers (plus deterministic jitter) so the attraction force does
        not have to drag it across the whole plane; a VM of a brand-new
        service starts at a deterministic pseudo-random location.
        """
        service_points: dict[int, list[np.ndarray]] = {}
        for vm in observation.vms:
            if vm.vm_id in self._positions:
                service_points.setdefault(vm.service_id, []).append(
                    self._positions[vm.vm_id]
                )
        positions = np.zeros((len(observation.vms), 2))
        for row, vm in enumerate(observation.vms):
            known = self._positions.get(vm.vm_id)
            if known is not None:
                positions[row] = known
                continue
            rng = rng_for(self.seed, "spawn", vm.vm_id)
            jitter = rng.normal(0.0, 0.25, size=2)
            peers = service_points.get(vm.service_id)
            if peers:
                positions[row] = np.mean(peers, axis=0) + jitter
            else:
                positions[row] = rng.uniform(-2.0, 2.0, size=2) + jitter
        return positions

    def place(self, observation: SlotObservation) -> FleetPlacement:
        """Run both phases for one slot."""
        vms = observation.vms
        n_dcs = observation.n_dcs

        if not vms:
            return FleetPlacement(
                assignment={},
                allocations=[
                    allocate_correlation_aware(
                        [], np.zeros((0, 1)), dc.spec.server_model, dc.spec.n_servers
                    )
                    for dc in observation.dcs
                ],
            )

        # -- Step 1: repulsion/attraction embedding (Eqs. 5-7).
        attraction = attraction_matrix(observation.volumes.volumes)
        repulsion = repulsion_matrix(observation.demand_traces)
        start = self._initial_positions(observation)
        embedding = self._embedding.run(start, attraction, repulsion)

        # -- Step 2: capacity caps + modified k-means.
        caps = compute_capacity_caps(observation.dcs, observation.slot)
        caps_cores = np.array([cap.cap_cores for cap in caps])
        loads = observation.loads()
        previous = observation.previous_array()
        centroids = warm_start_centroids(embedding.positions, previous, n_dcs)
        clustering = constrained_kmeans(
            embedding.positions,
            loads,
            caps_cores,
            centroids,
            max_iterations=self.kmeans_iterations,
            current_assignment=previous,
            stickiness=self.stickiness,
        )

        # -- Step 3: migration revision (Algorithm 2).
        plan = revise_migrations(
            vms=vms,
            target=clustering.assignment,
            previous=previous,
            positions=embedding.positions,
            centroids=clustering.centroids,
            loads=loads,
            caps_cores=caps_cores,
            latency_model=observation.latency_model,
            slot=observation.slot,
            latency_constraint_s=observation.latency_constraint_s,
        )

        # -- Local phase: correlation-aware allocation per DC.
        allocations = []
        for dc in observation.dcs:
            member_rows = [
                row
                for row, vm in enumerate(vms)
                if plan.assignment[vm.vm_id] == dc.index
            ]
            allocations.append(
                self.local_allocator(
                    [vms[row].vm_id for row in member_rows],
                    observation.demand_traces[member_rows],
                    dc.spec.server_model,
                    dc.spec.n_servers,
                )
            )

        # Persist the plane for the next slot.
        self._positions = {
            vm.vm_id: embedding.positions[row].copy()
            for row, vm in enumerate(vms)
        }

        return FleetPlacement(
            assignment=plan.assignment,
            allocations=allocations,
            moves=plan.moves,
            diagnostics={
                "embedding_iterations": embedding.iterations,
                "embedding_converged": embedding.converged,
                "capacity_caps": caps,
                "kmeans_overflow": clustering.overflow,
                "rejected_migrations": plan.rejected_vm_ids,
                "migration_latencies": plan.destination_latencies_s,
            },
        )
