"""Force-directed 2D embedding of VMs (Eqs. 5-7).

Step 1 of the global phase: every VM is a point in a 2D plane; highly
data-correlated VMs attract, highly CPU-load-correlated VMs repel.  The
resultant force on each point displaces it each iteration
(``displacement = 0.5 * force * t^2``, Eq. 6), and the process stops
when the progress metric ``CostAR`` (Eq. 7) decays or a maximum
iteration count is reached.

Sign conventions (see DESIGN.md):

* ``F_t[i, j] < 0`` -- net attraction between i and j,
* ``F_t[i, j] > 0`` -- net repulsion,
* the force that j exerts on i acts along the unit vector from j to i,
  scaled by ``F_t[j, i]``; attraction therefore pulls i toward j.

``CostAR_k = sum_{i,j} F_t[i,j] * (d_k[i,j] - d_{k-1}[i,j])`` is
*positive* when motion agrees with the forces (attracting pairs got
closer, repelling pairs separated), so it measures progress per
iteration.  The stop rule fires at the first iteration whose progress
falls below the previous iteration's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.correlation import total_force_matrix


@dataclass(frozen=True)
class ForceParameters:
    """Tunables of the embedding.

    Attributes
    ----------
    alpha:
        Eq. 5 energy/performance weight (1.0 = pure attraction /
        performance, 0.0 = pure repulsion / energy).
    time_step:
        The displacement period ``t`` of Eq. 6.
    max_iterations:
        Hard cap "to avoid a convergence time overhead" (paper).
    normalize_forces:
        Divide each resultant force by (N-1) so the displacement scale
        does not grow with the number of VMs.  The paper is silent on
        this; without it the plane's scale depends on fleet size.
    min_distance:
        Coincident points are separated by a deterministic jitter of
        this magnitude before computing directions.
    """

    alpha: float = 0.5
    time_step: float = 1.0
    max_iterations: int = 50
    normalize_forces: bool = True
    min_distance: float = 1e-9

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if self.time_step <= 0:
            raise ValueError("time_step must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


@dataclass
class EmbeddingResult:
    """Output of one embedding run.

    Attributes
    ----------
    positions:
        Final point coordinates, shape ``(n_vms, 2)``.
    iterations:
        Number of displacement iterations executed.
    cost_history:
        ``CostAR`` value per iteration (Eq. 7).
    converged:
        True when the stop rule (progress decay) fired before the
        iteration cap.
    """

    positions: np.ndarray
    iterations: int
    cost_history: list[float] = field(default_factory=list)
    converged: bool = False


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix of 2D points, shape ``(n, n)``."""
    deltas = positions[:, None, :] - positions[None, :, :]
    return np.sqrt((deltas**2).sum(axis=2))


class ForceDirectedEmbedding:
    """Runs the repulsion/attraction phase over a force matrix."""

    def __init__(self, params: ForceParameters | None = None) -> None:
        self.params = params or ForceParameters()

    def total_forces(
        self, attraction: np.ndarray, repulsion: np.ndarray
    ) -> np.ndarray:
        """Eq. 5 with this embedding's alpha."""
        return total_force_matrix(attraction, repulsion, self.params.alpha)

    def _resultant(self, positions: np.ndarray, forces: np.ndarray) -> np.ndarray:
        """Resultant force vector on each point (Eq. 6's F_x, F_y).

        ``forces[j, i]`` scales the unit vector from j to i: positive
        entries push i away from j, negative pull it toward j.
        """
        n = positions.shape[0]
        deltas = positions[:, None, :] - positions[None, :, :]  # i <- j
        dists = np.sqrt((deltas**2).sum(axis=2))
        # Deterministic jitter for coincident points.
        tiny = dists < self.params.min_distance
        np.fill_diagonal(tiny, False)
        if tiny.any():
            ii, jj = np.nonzero(tiny)
            angle = 2.0 * np.pi * ((ii * 31 + jj * 17) % 101) / 101.0
            deltas[ii, jj, 0] = np.cos(angle) * self.params.min_distance
            deltas[ii, jj, 1] = np.sin(angle) * self.params.min_distance
            dists[ii, jj] = self.params.min_distance
        np.fill_diagonal(dists, 1.0)  # avoid 0/0 on the diagonal
        units = deltas / dists[:, :, None]
        # Sum over j of F[j, i] * unit(j -> i).
        resultant = np.einsum("ji,ijk->ik", forces, units)
        if self.params.normalize_forces and n > 1:
            resultant /= n - 1
        return resultant

    def run(
        self,
        positions: np.ndarray,
        attraction: np.ndarray,
        repulsion: np.ndarray,
    ) -> EmbeddingResult:
        """Iterate Eq. 6 until the Eq. 7 stop rule or the iteration cap.

        Parameters
        ----------
        positions:
            Initial coordinates ``(n, 2)`` -- the final positions of the
            previous slot for existing VMs (paper: "the final location
            of all the VMs becomes the initial position for the next
            time slot").
        attraction / repulsion:
            Pairwise force components (see
            :mod:`repro.core.correlation`).
        """
        positions = np.array(positions, dtype=float, copy=True)
        n = positions.shape[0]
        if positions.shape != (n, 2):
            raise ValueError("positions must have shape (n, 2)")
        forces = self.total_forces(attraction, repulsion)
        if forces.shape != (n, n):
            raise ValueError("force matrix shape must match positions")
        if n < 2:
            return EmbeddingResult(positions=positions, iterations=0, converged=True)

        gain = 0.5 * self.params.time_step**2
        previous_distances = pairwise_distances(positions)
        cost_history: list[float] = []
        converged = False
        iterations = 0

        for _ in range(self.params.max_iterations):
            resultant = self._resultant(positions, forces)
            positions += gain * resultant
            iterations += 1

            distances = pairwise_distances(positions)
            cost = float((forces * (distances - previous_distances)).sum())
            previous_distances = distances
            cost_history.append(cost)

            if len(cost_history) >= 2 and cost < cost_history[-2]:
                converged = True
                break

        return EmbeddingResult(
            positions=positions,
            iterations=iterations,
            cost_history=cost_history,
            converged=converged,
        )
