"""Per-DC energy capacity caps (step 2 of the global phase).

The paper: "we first define a capacity cap (in Joules) per each DC
(cluster) to minimize the operational cost, computed according to the
available battery energy, renewable energy forecast, grid price and DCs
power consumed during the last previous time slot; i.e., last-value
predictor."

Concrete rule (DESIGN.md "Interpretation decisions"):

1. ``free_i = usable_battery_i + pv_forecast_i`` is energy DC *i* can
   spend without touching the grid next slot.
2. The fleet's demand for the next slot is predicted by the last-value
   predictor ``demand = sum_i last_slot_energy_i`` (warm-started with an
   idle-fleet estimate on the first slot).
3. Demand not covered by free energy is *waterfilled* over DCs in
   ascending grid-price order: the cheapest DC's grid share grows to
   its physical ceiling before the next-cheapest receives anything
   ("to minimize the operational cost").
4. Each cap is clipped to the DC's physical ceiling (all servers at
   peak, worst PUE).

The cap is also expressed in *CPU core units* so the clustering phase
can compare it against VM loads (conversion via the server model's
marginal energy and the site's floor PUE).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datacenter.datacenter import Datacenter
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class CapacityCap:
    """Energy cap of one DC for the upcoming slot.

    Attributes
    ----------
    dc_index:
        The DC this cap belongs to.
    cap_joules:
        Total facility-energy budget for the next slot.
    free_joules:
        The battery + renewable-forecast part of the budget.
    grid_joules:
        The grid part of the budget.
    cap_cores:
        The budget expressed as a sustained CPU load (core units).
    """

    dc_index: int
    cap_joules: float
    free_joules: float
    grid_joules: float
    cap_cores: float


def _idle_fleet_energy(dc: Datacenter) -> float:
    """Idle-fleet facility energy per slot; first-slot demand estimate."""
    spec = dc.spec
    idle_watts = spec.n_servers * spec.server_model.levels[0].idle_watts
    return idle_watts * spec.pue_model.floor * SECONDS_PER_HOUR


def joules_to_core_capacity(dc: Datacenter, joules: float) -> float:
    """Convert a facility-energy budget to a sustained CPU load.

    Uses the site's floor PUE and the low-frequency marginal energy per
    core-hour; clipped to the fleet's physical core capacity.  This is
    a planning conversion, not an energy accounting identity -- the cap
    only shapes how large each k-means cluster may grow.
    """
    if joules <= 0:
        return 0.0
    spec = dc.spec
    it_joules = joules / spec.pue_model.floor
    # Subtract the idle floor of the servers the load would keep on.
    model = spec.server_model
    idle_watts = model.levels[0].idle_watts
    per_core_hour = model.energy_per_core_hour(0)
    idle_per_core_hour = idle_watts / model.capacity(0) * SECONDS_PER_HOUR
    cores = it_joules / (per_core_hour + idle_per_core_hour)
    return min(cores, spec.total_capacity_cores)


def compute_capacity_caps(
    dcs: list[Datacenter],
    slot: int,
    duration_s: float = SECONDS_PER_HOUR,
) -> list[CapacityCap]:
    """Compute next-slot capacity caps for the whole fleet.

    Parameters
    ----------
    dcs:
        The fleet, in index order; battery state, forecaster history
        and last-slot energies are read from each DC.
    slot:
        The upcoming slot (selects forecast window and tariff level).
    duration_s:
        Slot length (for battery C-rate limits).
    """
    if not dcs:
        raise ValueError("at least one DC required")

    free = []
    prices = []
    ceilings = []
    demand = 0.0
    for dc in dcs:
        battery_energy = dc.battery.max_discharge_joules(duration_s)
        pv_energy = dc.renewable_forecast_joules(slot)
        free.append(battery_energy + pv_energy)
        prices.append(max(dc.grid_price_at(slot), 1e-9))
        ceilings.append(dc.spec.max_slot_energy_joules())
        last = dc.last_slot_energy_joules
        demand += last if last > 0.0 else _idle_fleet_energy(dc)

    # Waterfill the grid-covered demand into the cheapest DCs first.
    grid_needed = max(demand - sum(free), 0.0)
    grid_share = [0.0] * len(dcs)
    for index in sorted(range(len(dcs)), key=lambda i: prices[i]):
        headroom = max(ceilings[index] - free[index], 0.0)
        grid_share[index] = min(grid_needed, headroom)
        grid_needed -= grid_share[index]
        if grid_needed <= 0.0:
            break

    caps = []
    for index, dc in enumerate(dcs):
        cap = min(free[index] + grid_share[index], ceilings[index])
        caps.append(
            CapacityCap(
                dc_index=index,
                cap_joules=cap,
                free_joules=min(free[index], cap),
                grid_joules=max(cap - free[index], 0.0),
                cap_cores=joules_to_core_capacity(dc, cap),
            )
        )
    return caps
