"""Capacity-constrained modified k-means (step 2 of the global phase).

"We utilize a modified version of the k-means algorithm to cluster VMs
with respect to each cluster capacity cap, VMs load, and the distance
between two VMs obtained from the repulsion and attraction phase in the
2D plane.  In the modified k-means, the initial centroid of each
cluster is calculated based on the last position of points available in
that cluster in the previous time slot."

The number of clusters equals the number of DCs.  The modification over
vanilla k-means is the assignment step: points are assigned greedily,
hardest-to-place first (largest load), each to the *nearest centroid
with remaining load capacity*; when no cluster has room the nearest
centroid takes the point anyway and the overflow is recorded (the
migration step and the local phase deal with it).  Network latency is
deliberately not considered here -- that is Algorithm 2's job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ClusterResult:
    """Output of the constrained clustering.

    Attributes
    ----------
    assignment:
        Cluster index per point, shape ``(n_points,)``.
    centroids:
        Final centroid coordinates, shape ``(k, 2)``.
    loads:
        Total assigned load per cluster, shape ``(k,)``.
    overflow:
        Load assigned beyond each cluster's capacity, shape ``(k,)``.
    iterations:
        Assignment/update rounds executed.
    """

    assignment: np.ndarray
    centroids: np.ndarray
    loads: np.ndarray
    overflow: np.ndarray
    iterations: int


def warm_start_centroids(
    positions: np.ndarray,
    previous_assignment: np.ndarray | None,
    k: int,
    spread: float = 1.0,
) -> np.ndarray:
    """Initial centroids from the previous slot's cluster memberships.

    Clusters with surviving members start at the mean position of those
    members (the paper's warm start); empty or brand-new clusters are
    placed on a deterministic circle around the population mean so that
    every DC exists in the plane from the first slot.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    centroids = np.zeros((k, 2))
    center = positions.mean(axis=0) if len(positions) else np.zeros(2)
    scale = spread
    if len(positions) > 1:
        scale = max(float(positions.std()), 1e-3)
    for cluster in range(k):
        members = (
            np.nonzero(previous_assignment == cluster)[0]
            if previous_assignment is not None
            else np.array([], dtype=int)
        )
        if members.size:
            centroids[cluster] = positions[members].mean(axis=0)
        else:
            angle = 2.0 * np.pi * cluster / k
            centroids[cluster] = center + scale * np.array(
                [np.cos(angle), np.sin(angle)]
            )
    return centroids


def constrained_kmeans(
    positions: np.ndarray,
    loads: np.ndarray,
    capacities: np.ndarray,
    initial_centroids: np.ndarray,
    max_iterations: int = 25,
    current_assignment: np.ndarray | None = None,
    stickiness: float = 0.0,
) -> ClusterResult:
    """Cluster 2D points under per-cluster load capacities.

    Parameters
    ----------
    positions:
        Point coordinates, shape ``(n, 2)``.
    loads:
        Non-negative load of each point (CPU core units).
    capacities:
        Load capacity of each cluster, shape ``(k,)``.
    initial_centroids:
        Warm-started centroids, shape ``(k, 2)``.
    max_iterations:
        Cap on assignment/update rounds.
    current_assignment:
        The cluster each point currently lives in (-1 for new points).
        Only used when ``stickiness`` > 0.
    stickiness:
        Placement inertia in [0, 1): a point's distance to its current
        cluster's centroid is discounted by this factor, so marginal
        reassignments (and the migration churn they cause) are
        suppressed while clearly better clusters still win.
    """
    positions = np.asarray(positions, dtype=float)
    loads = np.asarray(loads, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    centroids = np.array(initial_centroids, dtype=float, copy=True)
    n = positions.shape[0]
    k = centroids.shape[0]
    if loads.shape != (n,):
        raise ValueError("loads must have one entry per point")
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    if capacities.shape != (k,):
        raise ValueError("capacities must have one entry per cluster")
    if not 0.0 <= stickiness < 1.0:
        raise ValueError("stickiness must be in [0, 1)")
    if current_assignment is not None:
        current_assignment = np.asarray(current_assignment, dtype=int)
        if current_assignment.shape != (n,):
            raise ValueError("current_assignment must have one entry per point")

    if n == 0:
        zero = np.zeros(k)
        return ClusterResult(
            assignment=np.zeros(0, dtype=int),
            centroids=centroids,
            loads=zero,
            overflow=zero.copy(),
            iterations=0,
        )

    assignment = np.full(n, -1, dtype=int)
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        distances = np.sqrt(
            ((positions[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        )
        if stickiness > 0.0 and current_assignment is not None:
            rows = np.nonzero(current_assignment >= 0)[0]
            distances[rows, current_assignment[rows]] *= 1.0 - stickiness
        remaining = capacities.astype(float).copy()
        new_assignment = np.full(n, -1, dtype=int)
        # Hardest points first: large loads are placed while room exists.
        order = np.argsort(-loads, kind="stable")
        for point in order:
            ranked = np.argsort(distances[point], kind="stable")
            target = -1
            for cluster in ranked:
                if loads[point] <= remaining[cluster]:
                    target = int(cluster)
                    break
            if target < 0:
                # No cluster has room: nearest centroid absorbs the
                # overflow (Algorithm 2 and the local phase handle it).
                target = int(ranked[0])
            remaining[target] -= loads[point]
            new_assignment[point] = target

        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment

        for cluster in range(k):
            members = np.nonzero(assignment == cluster)[0]
            if members.size:
                weights = loads[members]
                if weights.sum() > 0:
                    centroids[cluster] = np.average(
                        positions[members], axis=0, weights=weights
                    )
                else:
                    centroids[cluster] = positions[members].mean(axis=0)

    cluster_loads = np.array(
        [loads[assignment == cluster].sum() for cluster in range(k)]
    )
    overflow = np.maximum(cluster_loads - capacities, 0.0)
    return ClusterResult(
        assignment=assignment,
        centroids=centroids,
        loads=cluster_loads,
        overflow=overflow,
        iterations=iterations,
    )
