"""Local phase: VM-to-server allocation with DVFS.

"At local phase, the VMs of each cluster are allocated to servers of
their corresponding DC, and the optimal frequency for each server is
computed.  We use only CPU-load correlation to allocate VMs to the
minimum number of servers [...] we base our implementation on the best
algorithm [Kim et al., DATE 2013] for VMs allocation."

Two allocators are provided:

* :func:`allocate_correlation_aware` -- the reimplementation of the
  cited heuristic: first-fit decreasing where the fit test uses the
  *combined peak* of the co-located traces (anti-correlated VMs pack
  tighter because their peaks interleave), followed by per-server
  frequency selection (lowest DVFS level whose capacity covers the
  observed combined peak);
* :func:`allocate_first_fit` -- the correlation-blind baseline used by
  Pri-aware and Net-aware: the fit test adds *individual* peaks
  (worst-case stationary sizing).

Demand traces are the *previous slot's*; the simulation engine then
replays the allocation against the realized current-slot traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datacenter.server import ServerModel


@dataclass
class ServerAllocation:
    """VM-to-server mapping of one DC for one slot.

    Attributes
    ----------
    model:
        The server type of the DC.
    n_servers:
        Physical servers available.
    server_vms:
        One list of vm_ids per *active* server.
    frequencies:
        DVFS level index per active server (parallel to server_vms).
    saturated:
        True entries mark servers whose planned combined peak exceeds
        even the top frequency's capacity (overload accepted).
    """

    model: ServerModel
    n_servers: int
    server_vms: list[list[int]] = field(default_factory=list)
    frequencies: list[int] = field(default_factory=list)
    saturated: list[bool] = field(default_factory=list)

    @property
    def active_servers(self) -> int:
        """Number of powered-on servers."""
        return len(self.server_vms)

    def vm_count(self) -> int:
        """Total VMs placed on this DC."""
        return sum(len(vms) for vms in self.server_vms)

    def server_of(self, vm_id: int) -> int:
        """Index of the active server hosting ``vm_id``."""
        for index, vms in enumerate(self.server_vms):
            if vm_id in vms:
                return index
        raise KeyError(f"vm {vm_id} not in this allocation")

    def validate(self) -> None:
        """Raise if the allocation is structurally inconsistent."""
        if len(self.frequencies) != len(self.server_vms):
            raise ValueError("frequencies length != server count")
        if len(self.saturated) != len(self.server_vms):
            raise ValueError("saturated length != server count")
        if self.active_servers > self.n_servers:
            raise ValueError("more active servers than physical servers")
        seen: set[int] = set()
        for vms in self.server_vms:
            if not vms:
                raise ValueError("active server with no VMs")
            for vm_id in vms:
                if vm_id in seen:
                    raise ValueError(f"vm {vm_id} placed twice")
                seen.add(vm_id)


def _select_frequency(model: ServerModel, combined_peak: float) -> tuple[int, bool]:
    """Lowest level covering the peak; saturation flag if none does."""
    level = model.min_level_for(combined_peak)
    saturated = model.capacity(level) < combined_peak
    return level, saturated


def allocate_correlation_aware(
    vm_ids: list[int],
    demand: np.ndarray,
    model: ServerModel,
    n_servers: int,
) -> ServerAllocation:
    """Correlation-aware first-fit-decreasing consolidation (Kim '13).

    Parameters
    ----------
    vm_ids:
        VM identifiers, aligned with ``demand`` rows.
    demand:
        Last-slot demand traces in core units, shape ``(n, steps)``.
    model:
        Server type.
    n_servers:
        Physical servers available; when every server is full the VM
        lands on the active server with the smallest resulting combined
        peak (saturation, accepted as performance loss).
    """
    n = len(vm_ids)
    demand = np.asarray(demand, dtype=float)
    if demand.shape[0] != n:
        raise ValueError("demand rows must match vm_ids")
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")

    allocation = ServerAllocation(model=model, n_servers=n_servers)
    if n == 0:
        return allocation

    capacity = model.max_capacity
    order = np.argsort(-demand.max(axis=1), kind="stable")
    aggregates: list[np.ndarray] = []

    for index in order:
        trace = demand[index]
        placed = False
        # First fit: scan active servers in opening order; the fit test
        # is the *combined peak* (correlation-aware packing).
        for server, aggregate in enumerate(aggregates):
            if float((aggregate + trace).max()) <= capacity:
                aggregates[server] = aggregate + trace
                allocation.server_vms[server].append(vm_ids[index])
                placed = True
                break
        if placed:
            continue
        if len(aggregates) < n_servers:
            aggregates.append(trace.copy())
            allocation.server_vms.append([vm_ids[index]])
            continue
        # Fleet exhausted: overload the server that stays lowest.
        peaks = [float((agg + trace).max()) for agg in aggregates]
        server = int(np.argmin(peaks))
        aggregates[server] = aggregates[server] + trace
        allocation.server_vms[server].append(vm_ids[index])

    for aggregate in aggregates:
        level, saturated = _select_frequency(model, float(aggregate.max()))
        allocation.frequencies.append(level)
        allocation.saturated.append(saturated)
    return allocation


def allocate_first_fit(
    vm_ids: list[int],
    demand: np.ndarray,
    model: ServerModel,
    n_servers: int,
) -> ServerAllocation:
    """Correlation-blind first-fit-decreasing (sum-of-peaks sizing).

    Same contract as :func:`allocate_correlation_aware`; the fit test
    adds individual peaks, the stationary worst case the paper's
    Section II-A attributes to conventional consolidation.
    """
    n = len(vm_ids)
    demand = np.asarray(demand, dtype=float)
    if demand.shape[0] != n:
        raise ValueError("demand rows must match vm_ids")
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")

    allocation = ServerAllocation(model=model, n_servers=n_servers)
    if n == 0:
        return allocation

    capacity = model.max_capacity
    peaks = demand.max(axis=1)
    order = np.argsort(-peaks, kind="stable")
    budget: list[float] = []  # sum of individual peaks per server
    aggregates: list[np.ndarray] = []

    for index in order:
        peak = float(peaks[index])
        placed = False
        for server in range(len(budget)):
            if budget[server] + peak <= capacity:
                budget[server] += peak
                aggregates[server] = aggregates[server] + demand[index]
                allocation.server_vms[server].append(vm_ids[index])
                placed = True
                break
        if placed:
            continue
        if len(budget) < n_servers:
            budget.append(peak)
            aggregates.append(demand[index].copy())
            allocation.server_vms.append([vm_ids[index]])
            continue
        server = int(np.argmin(budget))
        budget[server] += peak
        aggregates[server] = aggregates[server] + demand[index]
        allocation.server_vms[server].append(vm_ids[index])

    for server, aggregate in enumerate(aggregates):
        # Conservative sizing: frequency chosen from summed peaks, the
        # stationary worst case (this is what costs the baseline energy).
        level, saturated = _select_frequency(model, float(budget[server]))
        allocation.frequencies.append(level)
        allocation.saturated.append(saturated)
    return allocation
