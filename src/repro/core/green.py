"""Rule-based green controller (Section IV-B.3).

After the VMs are allocated at slot T, each DC's green controller runs
at fine granularity (the paper: every 5 seconds) during [T, T+1) and
decides, step by step, how to source the facility's power:

* renewable surplus powers the DC and the excess charges the battery;
* under deficit during **high-price** periods: all renewables feed the
  load, the battery discharges (respecting depth of discharge) and the
  grid covers the remainder;
* under deficit during **low-price** periods: the grid covers the load
  *and* charges the battery (cheap-energy arbitrage); the battery is
  not discharged.

The controller sees *real* generation and *real* load -- it is exactly
the low-complexity compensator for forecast error the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.datacenter import Datacenter
from repro.units import SECONDS_PER_HOUR


@dataclass
class GreenSlotResult:
    """Energy ledger of one DC for one slot (all Joules).

    ``facility_energy = pv_used + battery_discharged + grid_to_load``
    holds up to float rounding; ``grid_energy`` additionally includes
    the grid energy that went into charging the battery.
    """

    facility_energy: float
    pv_generated: float
    pv_used: float
    pv_stored: float
    pv_curtailed: float
    battery_discharged: float
    grid_to_load: float
    grid_to_battery: float
    grid_energy: float
    grid_cost_eur: float
    soc_start: float
    soc_end: float

    def sanity_check(self, tolerance: float = 1e-6) -> None:
        """Raise if the ledger violates conservation."""
        supplied = self.pv_used + self.battery_discharged + self.grid_to_load
        scale = max(self.facility_energy, 1.0)
        if abs(supplied - self.facility_energy) > tolerance * scale:
            raise AssertionError(
                f"energy not conserved: supplied {supplied} != "
                f"consumed {self.facility_energy}"
            )
        pv_split = self.pv_used + self.pv_stored + self.pv_curtailed
        if abs(pv_split - self.pv_generated) > tolerance * max(self.pv_generated, 1.0):
            raise AssertionError("PV split does not add up")


class GreenController:
    """Per-DC online energy-source manager.

    Parameters
    ----------
    step_s:
        Control period (paper: 5 seconds; scaled experiments use 60).
    grid_charge_fraction:
        Fraction of the battery's C-rate limit used when charging from
        the grid during low-price periods (1.0 = charge as fast as the
        battery allows).
    """

    def __init__(self, step_s: float = 5.0, grid_charge_fraction: float = 0.5) -> None:
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        if not 0.0 <= grid_charge_fraction <= 1.0:
            raise ValueError("grid_charge_fraction must be in [0, 1]")
        self.step_s = step_s
        self.grid_charge_fraction = grid_charge_fraction

    def run_slot(
        self,
        dc: Datacenter,
        slot: int,
        facility_power_w: np.ndarray,
        slot_duration_s: float = SECONDS_PER_HOUR,
    ) -> GreenSlotResult:
        """Source one slot's facility power; mutates the DC's battery.

        Parameters
        ----------
        dc:
            The data center (provides PV, battery, tariff).
        slot:
            Slot index; step times are ``slot * slot_duration_s + k*dt``.
        facility_power_w:
            Facility power (IT * PUE) per control step, any length; the
            step duration is ``slot_duration_s / len(facility_power_w)``.
        slot_duration_s:
            Slot length in seconds.
        """
        facility_power_w = np.asarray(facility_power_w, dtype=float)
        if facility_power_w.ndim != 1 or facility_power_w.size == 0:
            raise ValueError("facility_power_w must be a non-empty 1-D array")
        if np.any(facility_power_w < 0):
            raise ValueError("facility power must be non-negative")

        steps = facility_power_w.size
        dt = slot_duration_s / steps
        times = slot * slot_duration_s + (np.arange(steps) + 0.5) * dt
        pv_power = np.asarray(dc.pv.power_watts(times), dtype=float)
        tariff = dc.spec.tariff
        battery = dc.battery

        soc_start = battery.soc_joules
        pv_used = pv_stored = pv_curtailed = 0.0
        battery_discharged = grid_to_load = grid_to_battery = 0.0
        grid_cost = 0.0

        for k in range(steps):
            load_j = facility_power_w[k] * dt
            pv_j = float(pv_power[k]) * dt
            time_s = float(times[k])
            grid_j = 0.0

            if pv_j >= load_j:
                pv_used += load_j
                surplus = pv_j - load_j
                stored = battery.charge(surplus, dt)
                pv_stored += stored
                pv_curtailed += surplus - stored
            else:
                pv_used += pv_j
                deficit = load_j - pv_j
                if tariff.is_peak(time_s):
                    delivered = battery.discharge(deficit, dt)
                    battery_discharged += delivered
                    grid_to_load += deficit - delivered
                    grid_j = deficit - delivered
                else:
                    offer = battery.max_charge_joules(dt) * self.grid_charge_fraction
                    charged = battery.charge(offer, dt)
                    grid_to_battery += charged
                    grid_to_load += deficit
                    grid_j = deficit + charged
            if grid_j:
                grid_cost += tariff.cost_of(grid_j, time_s)

        facility_energy = float(facility_power_w.sum() * dt)
        pv_generated = float(pv_power.sum() * dt)
        result = GreenSlotResult(
            facility_energy=facility_energy,
            pv_generated=pv_generated,
            pv_used=pv_used,
            pv_stored=pv_stored,
            pv_curtailed=pv_curtailed,
            battery_discharged=battery_discharged,
            grid_to_load=grid_to_load,
            grid_to_battery=grid_to_battery,
            grid_energy=grid_to_load + grid_to_battery,
            grid_cost_eur=grid_cost,
            soc_start=soc_start,
            soc_end=battery.soc_joules,
        )
        result.sanity_check()
        return result
