"""Rule-based green controller (Section IV-B.3).

After the VMs are allocated at slot T, each DC's green controller runs
at fine granularity (the paper: every 5 seconds) during [T, T+1) and
decides, step by step, how to source the facility's power:

* renewable surplus powers the DC and the excess charges the battery;
* under deficit during **high-price** periods: all renewables feed the
  load, the battery discharges (respecting depth of discharge) and the
  grid covers the remainder;
* under deficit during **low-price** periods: the grid covers the load
  *and* charges the battery (cheap-energy arbitrage); the battery is
  not discharged.

The controller sees *real* generation and *real* load -- it is exactly
the low-complexity compensator for forecast error the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.battery import BatteryArray
from repro.datacenter.datacenter import Datacenter
from repro.datacenter.pv import fleet_power_watts
from repro.units import JOULES_PER_KWH, SECONDS_PER_HOUR


@dataclass
class GreenSlotResult:
    """Energy ledger of one DC for one slot (all Joules).

    ``facility_energy = pv_used + battery_discharged + grid_to_load``
    holds up to float rounding; ``grid_energy`` additionally includes
    the grid energy that went into charging the battery.
    """

    facility_energy: float
    pv_generated: float
    pv_used: float
    pv_stored: float
    pv_curtailed: float
    battery_discharged: float
    grid_to_load: float
    grid_to_battery: float
    grid_energy: float
    grid_cost_eur: float
    soc_start: float
    soc_end: float

    def sanity_check(self, tolerance: float = 1e-6) -> None:
        """Raise if the ledger violates conservation."""
        supplied = self.pv_used + self.battery_discharged + self.grid_to_load
        scale = max(self.facility_energy, 1.0)
        if abs(supplied - self.facility_energy) > tolerance * scale:
            raise AssertionError(
                f"energy not conserved: supplied {supplied} != "
                f"consumed {self.facility_energy}"
            )
        pv_split = self.pv_used + self.pv_stored + self.pv_curtailed
        if abs(pv_split - self.pv_generated) > tolerance * max(self.pv_generated, 1.0):
            raise AssertionError("PV split does not add up")


class GreenController:
    """Per-DC online energy-source manager.

    Parameters
    ----------
    step_s:
        Control period (paper: 5 seconds; scaled experiments use 60).
    grid_charge_fraction:
        Fraction of the battery's C-rate limit used when charging from
        the grid during low-price periods (1.0 = charge as fast as the
        battery allows).
    """

    def __init__(self, step_s: float = 5.0, grid_charge_fraction: float = 0.5) -> None:
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        if not 0.0 <= grid_charge_fraction <= 1.0:
            raise ValueError("grid_charge_fraction must be in [0, 1]")
        self.step_s = step_s
        self.grid_charge_fraction = grid_charge_fraction
        #: Fleet width up to which :meth:`run_slot_fleet` replays the
        #: battery recurrence as per-DC scalar loops instead of the
        #: struct-of-arrays step loop; both are bit-identical, the
        #: scalar replay just dodges per-step array dispatch on narrow
        #: fleets (the paper's is 3 DCs).  Tests pin this to 0 to
        #: exercise the array path on small fleets.
        self.scalar_replay_max_dcs = 8

    def run_slot(
        self,
        dc: Datacenter,
        slot: int,
        facility_power_w: np.ndarray,
        slot_duration_s: float = SECONDS_PER_HOUR,
    ) -> GreenSlotResult:
        """Source one slot's facility power; mutates the DC's battery.

        Parameters
        ----------
        dc:
            The data center (provides PV, battery, tariff).
        slot:
            Slot index; step times are ``slot * slot_duration_s + k*dt``.
        facility_power_w:
            Facility power (IT * PUE) per control step, any length; the
            step duration is ``slot_duration_s / len(facility_power_w)``.
        slot_duration_s:
            Slot length in seconds.
        """
        facility_power_w = np.asarray(facility_power_w, dtype=float)
        if facility_power_w.ndim != 1 or facility_power_w.size == 0:
            raise ValueError("facility_power_w must be a non-empty 1-D array")
        if np.any(facility_power_w < 0):
            raise ValueError("facility power must be non-negative")

        steps = facility_power_w.size
        dt = slot_duration_s / steps
        times = slot * slot_duration_s + (np.arange(steps) + 0.5) * dt
        pv_power = np.asarray(dc.pv.power_watts(times), dtype=float)
        tariff = dc.spec.tariff
        battery = dc.battery

        soc_start = battery.soc_joules
        pv_used = pv_stored = pv_curtailed = 0.0
        battery_discharged = grid_to_load = grid_to_battery = 0.0
        grid_cost = 0.0

        for k in range(steps):
            load_j = facility_power_w[k] * dt
            pv_j = float(pv_power[k]) * dt
            time_s = float(times[k])
            grid_j = 0.0

            if pv_j >= load_j:
                pv_used += load_j
                surplus = pv_j - load_j
                stored = battery.charge(surplus, dt)
                pv_stored += stored
                pv_curtailed += surplus - stored
            else:
                pv_used += pv_j
                deficit = load_j - pv_j
                if tariff.is_peak(time_s):
                    delivered = battery.discharge(deficit, dt)
                    battery_discharged += delivered
                    grid_to_load += deficit - delivered
                    grid_j = deficit - delivered
                else:
                    offer = battery.max_charge_joules(dt) * self.grid_charge_fraction
                    charged = battery.charge(offer, dt)
                    grid_to_battery += charged
                    grid_to_load += deficit
                    grid_j = deficit + charged
            if grid_j:
                grid_cost += tariff.cost_of(grid_j, time_s)

        facility_energy = float(facility_power_w.sum() * dt)
        pv_generated = float(pv_power.sum() * dt)
        result = GreenSlotResult(
            facility_energy=facility_energy,
            pv_generated=pv_generated,
            pv_used=pv_used,
            pv_stored=pv_stored,
            pv_curtailed=pv_curtailed,
            battery_discharged=battery_discharged,
            grid_to_load=grid_to_load,
            grid_to_battery=grid_to_battery,
            grid_energy=grid_to_load + grid_to_battery,
            grid_cost_eur=grid_cost,
            soc_start=soc_start,
            soc_end=battery.soc_joules,
        )
        result.sanity_check()
        return result

    def _steps_scalar_replay(
        self,
        batteries: BatteryArray,
        surplus: np.ndarray,
        peak: np.ndarray,
        offer_surplus: np.ndarray,
        request: np.ndarray,
        charged: np.ndarray,
        delivered: np.ndarray,
        dt: float,
    ) -> None:
        """Battery recurrence via per-DC scalar replay (narrow fleets).

        The recurrence never couples the DCs -- each battery's step
        only reads its own column of the precomputed branch masks and
        offers -- so on a narrow fleet it is cheaper to replay the
        scalar :class:`~repro.datacenter.battery.Battery` arithmetic
        directly on Python floats (the exact expressions of the
        reference loop, hence bit-identical by construction) than to
        pay per-step array dispatch.  All the *slot-level* work --
        batched PV/tariff/PUE evaluation, branch masks, ledger
        reductions -- stays vectorized in :meth:`run_slot_fleet`;
        only the SoC recursion itself runs as ``n_dcs`` float loops.
        Mutates ``batteries`` and fills the ``charged`` /
        ``delivered`` ledger columns.
        """
        fraction = self.grid_charge_fraction
        steps = peak.shape[0]
        for d in range(len(batteries)):
            capacity = float(batteries.capacity_joules[d])
            floor = capacity * (1.0 - float(batteries.dod[d]))
            charge_eff = float(batteries.charge_efficiency[d])
            discharge_eff = float(batteries.discharge_efficiency[d])
            rate_limit = (
                float(batteries.max_c_rate[d]) * capacity * dt / 3600.0
            )
            rate_discharge = rate_limit * discharge_eff
            soc = float(batteries.soc_joules[d])
            surplus_col = surplus[:, d].tolist()
            peak_col = peak[:, d].tolist()
            offer_col = offer_surplus[:, d].tolist()
            request_col = request[:, d].tolist()
            charged_col = charged[:, d]
            delivered_col = delivered[:, d]
            for k in range(steps):
                if surplus_col[k]:
                    max_charge = min((capacity - soc) / charge_eff, rate_limit)
                    accepted = min(offer_col[k], max_charge)
                elif peak_col[k]:
                    usable = max(soc - floor, 0.0) * discharge_eff
                    deliverable = min(
                        request_col[k], min(usable, rate_discharge)
                    )
                    if deliverable:
                        soc -= deliverable / discharge_eff
                        delivered_col[k] = deliverable
                    continue
                else:
                    max_charge = min((capacity - soc) / charge_eff, rate_limit)
                    accepted = min(max_charge * fraction, max_charge)
                if accepted:
                    soc += accepted * charge_eff
                    charged_col[k] = accepted
            batteries.soc_joules[d] = soc

    def run_slot_fleet(
        self,
        dcs: list[Datacenter],
        slot: int,
        facility_power_w: np.ndarray,
        slot_duration_s: float = SECONDS_PER_HOUR,
    ) -> list[GreenSlotResult]:
        """Source one slot's power for the *whole fleet* in one batch.

        ``facility_power_w`` has shape ``(len(dcs), steps)`` -- row
        ``i`` is exactly what :meth:`run_slot` would receive for
        ``dcs[i]``.  Every DC's battery is mutated, and the returned
        ledgers are **bit-identical** to per-DC :meth:`run_slot` calls:

        * the only sequential dependence is the battery recurrence, so
          the kernel loops over *steps* only, holding SoC and the
          per-step charge/discharge amounts as struct-of-arrays
          (:class:`~repro.datacenter.battery.BatteryArray`, whose batch
          ops replay the scalar expressions elementwise);
        * everything time-indexed -- PV power, peak windows, prices,
          branch masks, charge offers under surplus -- is evaluated
          once for the whole slot via the batched
          PV/PUE/tariff helpers, in ``(steps, n_dcs)`` layout so each
          step reads one contiguous row;
        * per-DC ledger accumulators reduce the recorded per-step
          contributions with ``sum(axis=0)`` over the C-contiguous
          ``(steps, n_dcs)`` arrays, which accumulates rows
          sequentially -- the scalar loop's step-order reduction.
          Steps a branch does not touch contribute exactly ``+0.0``,
          which is the identity the scalar accumulators never see;
        * fleets up to :attr:`scalar_replay_max_dcs` DCs replay the
          SoC recursion itself as per-DC Python-float loops
          (:meth:`_steps_scalar_replay`) -- bit-identical by
          construction and cheaper than per-step array dispatch at
          the paper's fleet width; everything slot-level stays
          batched either way.
        """
        facility_power_w = np.asarray(facility_power_w, dtype=float)
        if facility_power_w.ndim != 2 or facility_power_w.shape[1] == 0:
            raise ValueError(
                "facility_power_w must be a non-empty (n_dcs, steps) array"
            )
        if facility_power_w.shape[0] != len(dcs):
            raise ValueError("facility_power_w rows must match the fleet")
        if np.any(facility_power_w < 0):
            raise ValueError("facility power must be non-negative")
        if not dcs:
            return []

        n_dcs, steps = facility_power_w.shape
        dt = slot_duration_s / steps
        times = slot * slot_duration_s + (np.arange(steps) + 0.5) * dt
        pv_power = fleet_power_watts([dc.pv for dc in dcs], times)

        # (steps, n_dcs) layout: per-step rows are contiguous views.
        load = np.ascontiguousarray(facility_power_w.T) * dt
        pv = np.ascontiguousarray(pv_power.T) * dt
        peak = np.stack(
            [dc.spec.tariff.is_peak(times) for dc in dcs], axis=1
        )
        price = np.stack(
            [dc.spec.tariff.price_per_kwh(times) for dc in dcs], axis=1
        )
        surplus = pv >= load
        deficit = load - pv
        deficit_peak = ~surplus & peak
        deficit_off = ~surplus & ~peak
        request = np.where(deficit_peak, deficit, 0.0)
        #: Charge offers that need no SoC: the PV surplus (branch A).
        offer_surplus = np.where(surplus, pv - load, 0.0)

        batteries = BatteryArray.from_batteries([dc.battery for dc in dcs])
        soc_start = batteries.soc_joules.copy()
        charged = np.zeros((steps, n_dcs))
        delivered = np.zeros((steps, n_dcs))
        if n_dcs <= self.scalar_replay_max_dcs:
            self._steps_scalar_replay(
                batteries, surplus, peak, offer_surplus, request,
                charged, delivered, dt,
            )
        else:
            #: Grid-charge scaling (branch C): C-rate cap times the
            #: configured fraction where off-peak deficit, else 0.
            offer_fraction = np.where(
                deficit_off, self.grid_charge_fraction, 0.0
            )
            #: Per-step short circuits: skip the battery ops entirely
            #: on steps where no DC charges / discharges (the skipped
            #: scalar ops would all be SoC-preserving no-ops).
            any_offer = (surplus | deficit_off).any(axis=1).tolist()
            any_request = deficit_peak.any(axis=1).tolist()
            charge = batteries.charge
            discharge = batteries.discharge
            max_charge_joules = batteries.max_charge_joules
            for (
                do_offer, do_request, offer_row, fraction_row,
                request_row, charged_row, delivered_row,
            ) in zip(
                any_offer, any_request, offer_surplus, offer_fraction,
                request, charged, delivered,
            ):
                if do_offer:
                    max_charge = max_charge_joules(dt)
                    offer = offer_row + fraction_row * max_charge
                    charge(
                        offer, dt, max_joules=max_charge, out=charged_row,
                        check=False,
                    )
                if do_request:
                    discharge(request_row, dt, out=delivered_row, check=False)
        batteries.store_to([dc.battery for dc in dcs])

        pv_used = np.where(surplus, load, pv).sum(axis=0)
        pv_stored = np.where(surplus, charged, 0.0).sum(axis=0)
        pv_curtailed = np.where(surplus, offer_surplus - charged, 0.0).sum(axis=0)
        battery_discharged = delivered.sum(axis=0)
        grid_to_load_steps = np.where(
            deficit_peak,
            deficit - delivered,
            np.where(deficit_off, deficit, 0.0),
        )
        grid_to_battery_steps = np.where(deficit_off, charged, 0.0)
        grid_steps = grid_to_load_steps + grid_to_battery_steps
        grid_to_load = grid_to_load_steps.sum(axis=0)
        grid_to_battery = grid_to_battery_steps.sum(axis=0)
        grid_cost = (grid_steps / JOULES_PER_KWH * price).sum(axis=0)

        facility_energy = facility_power_w.sum(axis=1)
        pv_generated = pv_power.sum(axis=1)
        results = []
        for d in range(n_dcs):
            result = GreenSlotResult(
                facility_energy=float(facility_energy[d] * dt),
                pv_generated=float(pv_generated[d] * dt),
                pv_used=float(pv_used[d]),
                pv_stored=float(pv_stored[d]),
                pv_curtailed=float(pv_curtailed[d]),
                battery_discharged=float(battery_discharged[d]),
                grid_to_load=float(grid_to_load[d]),
                grid_to_battery=float(grid_to_battery[d]),
                grid_energy=float(grid_to_load[d] + grid_to_battery[d]),
                grid_cost_eur=float(grid_cost[d]),
                soc_start=float(soc_start[d]),
                soc_end=float(batteries.soc_joules[d]),
            )
            result.sanity_check()
            results.append(result)
        return results
