"""Migration revision step (paper Algorithm 2).

The modified k-means output is only a *desired* clustering; moving a VM
between DCs costs wide-area bandwidth and must finish within the hard
migration window (QoS of 98 % -> migrations may use at most 2 % of the
slot).  Algorithm 2 revises the k-means output into an executable
migration plan:

* each DC gets an **outgoing queue** (members that k-means sent
  elsewhere, sorted by *descending* distance from the DC's centroid --
  the worst-fitting leave first) and an **incoming queue** (VMs k-means
  pulled in, sorted by *ascending* distance -- the best-fitting arrive
  first);
* a cursor walks the DCs: an under-cap DC pulls from its incoming
  queue, an over-cap DC pushes from its outgoing queue and the cursor
  follows the migrated VM to its destination;
* every candidate migration is latency-checked against the
  *accumulated* migration volumes converging on the destination
  (Eq. 1), which prevents one DC from becoming a network bottleneck;
* VMs whose migration would violate the constraint stay where they
  were; **new** VMs (no previous DC) take their k-means cluster without
  a latency check, since nothing needs to be copied over the WAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.latency import LatencyModel
from repro.units import gb_to_mb
from repro.workload.vm import VirtualMachine


@dataclass(frozen=True)
class MigrationMove:
    """One executed inter-DC migration."""

    vm_id: int
    src_dc: int
    dst_dc: int
    image_mb: float


@dataclass
class MigrationPlan:
    """Executable output of the revision step.

    Attributes
    ----------
    assignment:
        Final vm_id -> DC index map (every alive VM appears).
    moves:
        Executed migrations, in execution order.
    rejected_vm_ids:
        VMs whose desired migration was dropped (latency constraint).
    volumes_mb:
        Accumulated migration volume per (src, dst) DC pair.
    destination_latencies_s:
        Final Eq. 1 migration latency per destination DC.
    """

    assignment: dict[int, int]
    moves: list[MigrationMove] = field(default_factory=list)
    rejected_vm_ids: list[int] = field(default_factory=list)
    volumes_mb: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    destination_latencies_s: dict[int, float] = field(default_factory=dict)


def destination_within_constraint(
    latency_model: LatencyModel,
    volumes_mb: np.ndarray,
    dst: int,
    slot: int,
    constraint_s: float,
) -> tuple[bool, float]:
    """Check Eq. 1 for all migration data converging on ``dst``.

    Returns ``(within_constraint, latency_s)``.
    """
    sources = {
        src: float(volumes_mb[src, dst])
        for src in range(volumes_mb.shape[0])
        if volumes_mb[src, dst] > 0.0
    }
    latency = latency_model.destination_latency(dst, sources, slot).total_s
    return latency < constraint_s, latency


def revise_migrations(
    vms: list[VirtualMachine],
    target: np.ndarray,
    previous: np.ndarray,
    positions: np.ndarray,
    centroids: np.ndarray,
    loads: np.ndarray,
    caps_cores: np.ndarray,
    latency_model: LatencyModel,
    slot: int,
    latency_constraint_s: float,
) -> MigrationPlan:
    """Run Algorithm 2 over the modified k-means output.

    Parameters
    ----------
    vms:
        Alive VMs; all arrays below are aligned with this list.
    target:
        Desired DC per VM (k-means output).
    previous:
        Current DC per VM, or -1 for newly arrived VMs.
    positions:
        2D embedding coordinates, shape ``(n, 2)``.
    centroids:
        Cluster centroid per DC, shape ``(n_dcs, 2)``.
    loads:
        CPU load per VM (core units, last slot).
    caps_cores:
        Capacity cap per DC in core units.
    latency_model:
        Eq. 1-4 evaluator for the migration transfers.
    slot:
        Current slot (selects the BER realization).
    latency_constraint_s:
        The hard migration window (e.g. 2 % of the slot for 98 % QoS).
    """
    n = len(vms)
    n_dcs = centroids.shape[0]
    target = np.asarray(target, dtype=int)
    previous = np.asarray(previous, dtype=int)
    loads = np.asarray(loads, dtype=float)
    for name, arr, shape in (
        ("target", target, (n,)),
        ("previous", previous, (n,)),
        ("loads", loads, (n,)),
        ("positions", positions, (n, 2)),
    ):
        if arr.shape != shape:
            raise ValueError(f"{name} must have shape {shape}")
    if np.any(target < 0) or np.any(target >= n_dcs):
        raise ValueError("target DCs out of range")

    assignment = {}
    dc_load = np.zeros(n_dcs)
    is_new = previous < 0
    for index, vm in enumerate(vms):
        # New VMs take the k-means cluster directly (no WAN copy); old
        # VMs provisionally stay put.
        home = int(target[index]) if is_new[index] else int(previous[index])
        assignment[vm.vm_id] = home
        dc_load[home] += loads[index]

    centroid_dist = np.sqrt(
        ((positions[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    )

    # Queues hold *positional* indices into vms.
    movers = [
        index
        for index in range(n)
        if not is_new[index] and target[index] != previous[index]
    ]
    q_out: list[list[int]] = [[] for _ in range(n_dcs)]
    q_in: list[list[int]] = [[] for _ in range(n_dcs)]
    for index in movers:
        q_out[int(previous[index])].append(index)
        q_in[int(target[index])].append(index)
    for dc in range(n_dcs):
        # Outgoing: farthest from the *current* DC's centroid first.
        q_out[dc].sort(key=lambda i: -centroid_dist[i, dc])
        # Incoming: closest to the *destination* centroid first.
        q_in[dc].sort(key=lambda i: centroid_dist[i, dc])

    in_queue = set(movers)

    def erase(index: int) -> None:
        in_queue.discard(index)

    volumes_mb = np.zeros((n_dcs, n_dcs))
    moves: list[MigrationMove] = []
    rejected: list[int] = []
    dest_latencies: dict[int, float] = {}

    def next_candidate(queue: list[int]) -> int | None:
        while queue:
            head = queue[0]
            if head in in_queue:
                return head
            queue.pop(0)
        return None

    def try_migrate(index: int, src: int, dst: int) -> bool:
        """Latency-check and, if feasible, execute one migration."""
        vm = vms[index]
        image_mb = gb_to_mb(vm.image_gb)
        volumes_mb[src, dst] += image_mb
        ok, latency = destination_within_constraint(
            latency_model, volumes_mb, dst, slot, latency_constraint_s
        )
        if not ok:
            volumes_mb[src, dst] -= image_mb
            rejected.append(vm.vm_id)
            return False
        assignment[vm.vm_id] = dst
        dc_load[src] -= loads[index]
        dc_load[dst] += loads[index]
        dest_latencies[dst] = latency
        moves.append(
            MigrationMove(vm_id=vm.vm_id, src_dc=src, dst_dc=dst, image_mb=image_mb)
        )
        return True

    cursor = 0
    idle_visits = 0
    # Every loop iteration either erases a queue entry or advances the
    # cursor; idle_visits bounds full fruitless sweeps, so this
    # terminates after at most O(|movers| + n_dcs) iterations.
    while in_queue and idle_visits < n_dcs:
        acted = False
        if dc_load[cursor] < caps_cores[cursor]:
            candidate = next_candidate(q_in[cursor])
            if candidate is not None:
                src = int(previous[candidate])
                try_migrate(candidate, src, cursor)
                erase(candidate)
                acted = True
        else:
            candidate = next_candidate(q_out[cursor])
            if candidate is not None:
                dst = int(target[candidate])
                migrated = try_migrate(candidate, cursor, dst)
                erase(candidate)
                acted = True
                if migrated:
                    cursor = dst
                    idle_visits = 0
                    continue
        if acted:
            idle_visits = 0
        else:
            idle_visits += 1
        cursor = (cursor + 1) % n_dcs

    # Whatever is left in the queues stays in its previous DC; record
    # the VMs whose desired move never executed.
    for index in sorted(in_queue):
        vm_id = vms[index].vm_id
        if vm_id not in rejected:
            rejected.append(vm_id)

    return MigrationPlan(
        assignment=assignment,
        moves=moves,
        rejected_vm_ids=rejected,
        volumes_mb=volumes_mb,
        destination_latencies_s=dest_latencies,
    )
