"""CPU-load and data correlation metrics (inputs to Eq. 5).

The paper's force model needs two pairwise matrices over the VMs alive
in the system:

* a **repulsion** matrix from CPU-load correlation, "computed as a
  worst-case peak CPU utilization when the peaks of two VMs coincide
  during the last time slot", normalized to (0, 1];
* an **attraction** matrix from data correlation (the amount of data
  two VMs exchange, both directions), normalized to [-1, 0).

This module also provides the classical Pearson CPU-load correlation
used by the local allocation literature (Kim et al., DATE 2013).
"""

from __future__ import annotations

import numpy as np


def peak_coincidence(traces: np.ndarray) -> np.ndarray:
    """Worst-case peak-coincidence matrix of demand traces.

    ``R[i, j] = max_t(u_i(t) + u_j(t)) / (max_t u_i(t) + max_t u_j(t))``

    The value is 1.0 exactly when the two peaks coincide in time and
    decays toward ~0.5 (for equal-peak traces) as the peaks interleave,
    so it lies in (0, 1] for traces with positive peaks.  The diagonal
    is 1 by construction.

    Parameters
    ----------
    traces:
        Array of shape ``(n_vms, n_steps)`` with non-negative demands.
    """
    traces = np.asarray(traces, dtype=float)
    if traces.ndim != 2:
        raise ValueError("traces must be 2-D (n_vms, n_steps)")
    n = traces.shape[0]
    if n == 0:
        return np.zeros((0, 0))
    peaks = traces.max(axis=1)
    result = np.ones((n, n))
    for i in range(n):
        combined_peak = (traces[i][None, :] + traces).max(axis=1)
        denom = peaks[i] + peaks
        with np.errstate(invalid="ignore", divide="ignore"):
            row = np.where(denom > 0.0, combined_peak / denom, 1.0)
        result[i, :] = row
    np.fill_diagonal(result, 1.0)
    return result


def pearson_cpu_correlation(traces: np.ndarray) -> np.ndarray:
    """Pearson correlation between demand traces (NaN-free).

    Constant traces (zero variance) correlate 0 with everything and 1
    with themselves, rather than producing NaNs.
    """
    traces = np.asarray(traces, dtype=float)
    if traces.ndim != 2:
        raise ValueError("traces must be 2-D (n_vms, n_steps)")
    n = traces.shape[0]
    if n == 0:
        return np.zeros((0, 0))
    stds = traces.std(axis=1)
    safe = np.where(stds > 0.0, stds, 1.0)
    centered = traces - traces.mean(axis=1, keepdims=True)
    corr = (centered @ centered.T) / traces.shape[1]
    corr /= np.outer(safe, safe)
    corr[stds == 0.0, :] = 0.0
    corr[:, stds == 0.0] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


def repulsion_matrix(traces: np.ndarray) -> np.ndarray:
    """CPU-load repulsion F_r of Eq. 5, in (0, 1], zero diagonal.

    This is :func:`peak_coincidence` with the self-terms removed: a VM
    exerts no force on itself.
    """
    result = peak_coincidence(traces)
    np.fill_diagonal(result, 0.0)
    return result


def attraction_matrix(volumes: np.ndarray, log_scale: bool = True) -> np.ndarray:
    """Data-correlation attraction F_a of Eq. 5, in [-1, 0].

    Parameters
    ----------
    volumes:
        Directed volume matrix (MB); the bidirectional exchange
        ``v[i, j] + v[j, i]`` is normalized by the current maximum so
        the strongest-communicating pair gets force -1.  Pairs that do
        not communicate get 0 (no attraction).
    log_scale:
        Compress the heavy-tailed volume distribution with ``log1p``
        before normalizing.  The paper's volumes are log-normal with
        sigma up to 2: linear normalization by the max would leave the
        median communicating pair with a vanishing force and the
        clustering signal would ride on a single hot pair.
    """
    volumes = np.asarray(volumes, dtype=float)
    if volumes.ndim != 2 or volumes.shape[0] != volumes.shape[1]:
        raise ValueError("volumes must be a square matrix")
    if np.any(volumes < 0):
        raise ValueError("volumes must be non-negative")
    exchanged = volumes + volumes.T
    np.fill_diagonal(exchanged, 0.0)
    if log_scale:
        exchanged = np.log1p(exchanged)
    top = exchanged.max()
    if top == 0.0:
        return np.zeros_like(exchanged)
    return -exchanged / top


def total_force_matrix(
    attraction: np.ndarray, repulsion: np.ndarray, alpha: float
) -> np.ndarray:
    """Eq. 5: ``F_t = alpha * F_a + (1 - alpha) * F_r``.

    ``alpha`` weights performance (attraction, data locality) against
    energy (repulsion, peak separation).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    attraction = np.asarray(attraction, dtype=float)
    repulsion = np.asarray(repulsion, dtype=float)
    if attraction.shape != repulsion.shape:
        raise ValueError("attraction and repulsion shapes differ")
    return alpha * attraction + (1.0 - alpha) * repulsion
