"""The paper's contribution: two-phase multi-objective VM placement.

* :mod:`repro.core.correlation` -- CPU-load and data correlation metrics
  feeding Eq. 5,
* :mod:`repro.core.forces` -- the force-directed 2D embedding
  (Eqs. 5-7),
* :mod:`repro.core.capacity` -- per-DC energy capacity caps,
* :mod:`repro.core.kmeans` -- the capacity-constrained modified k-means,
* :mod:`repro.core.migration` -- the migration revision step
  (paper Algorithm 2),
* :mod:`repro.core.local` -- the local, correlation-aware server
  allocation with DVFS (reimplementation of Kim et al., DATE 2013),
* :mod:`repro.core.green` -- the rule-based green controller,
* :mod:`repro.core.controller` -- the complete "Proposed" policy.
"""

from repro.core.capacity import CapacityCap, compute_capacity_caps
from repro.core.controller import ProposedPolicy
from repro.core.correlation import (
    attraction_matrix,
    pearson_cpu_correlation,
    peak_coincidence,
    repulsion_matrix,
)
from repro.core.forces import EmbeddingResult, ForceDirectedEmbedding, ForceParameters
from repro.core.green import GreenController, GreenSlotResult
from repro.core.kmeans import ClusterResult, constrained_kmeans
from repro.core.local import (
    ServerAllocation,
    allocate_correlation_aware,
    allocate_first_fit,
)
from repro.core.migration import MigrationPlan, revise_migrations

__all__ = [
    "CapacityCap",
    "ClusterResult",
    "EmbeddingResult",
    "ForceDirectedEmbedding",
    "ForceParameters",
    "GreenController",
    "GreenSlotResult",
    "MigrationPlan",
    "ProposedPolicy",
    "ServerAllocation",
    "allocate_correlation_aware",
    "allocate_first_fit",
    "attraction_matrix",
    "compute_capacity_caps",
    "constrained_kmeans",
    "peak_coincidence",
    "pearson_cpu_correlation",
    "repulsion_matrix",
    "revise_migrations",
]
