"""Shared comparison runner for the figure experiments.

All six figures of the paper come from the *same* one-week run of the
four methods, so the runner caches results per configuration within
the process; the benchmark files each regenerate their figure from the
shared run and only micro-benchmark their own reporting path.
"""

from __future__ import annotations

from repro.baselines import EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy
from repro.core.controller import ProposedPolicy
from repro.core.forces import ForceParameters
from repro.sim.config import ExperimentConfig
from repro.sim.engine import SimulationEngine
from repro.sim.results import RunResult
from repro.sim.state import PlacementPolicy

#: Process-wide cache: config fingerprint -> results.
_CACHE: dict[tuple, list[RunResult]] = {}


def default_policies(alpha: float = 0.5) -> list[PlacementPolicy]:
    """The paper's four methods, in its reporting order."""
    return [
        ProposedPolicy(force_params=ForceParameters(alpha=alpha)),
        EnerAwarePolicy(),
        PriAwarePolicy(),
        NetAwarePolicy(),
    ]


def _fingerprint(config: ExperimentConfig, alpha: float) -> tuple:
    return (
        config.name,
        config.horizon_slots,
        config.steps_per_slot,
        config.seed,
        config.qos,
        tuple(spec.n_servers for spec in config.specs),
        alpha,
    )


def run_comparison(
    config: ExperimentConfig,
    alpha: float = 0.5,
    use_cache: bool = True,
) -> list[RunResult]:
    """Run the four methods over one workload realization.

    Parameters
    ----------
    config:
        The experiment configuration (every policy sees the same
        workload, weather and channel realizations derived from
        ``config.seed``).
    alpha:
        Eq. 5 trade-off weight for the proposed method.
    use_cache:
        Reuse a previous identical run within this process.
    """
    key = _fingerprint(config, alpha)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    results = [
        SimulationEngine(config, policy).run()
        for policy in default_policies(alpha)
    ]
    if use_cache:
        _CACHE[key] = results
    return results


def clear_cache() -> None:
    """Drop all cached comparison runs (mainly for tests)."""
    _CACHE.clear()
