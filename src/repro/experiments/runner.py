"""Shared comparison runner for the figure experiments.

All six figures of the paper come from the *same* one-week run of the
four methods, so every consumer funnels through :func:`run_comparison`.
Execution and caching live in
:mod:`repro.experiments.orchestrator`: each (config, policy, seed) run
is fingerprinted and resolved against a :class:`ResultStore` -- an
in-memory layer by default, plus one of the pluggable persistent
backends in :mod:`repro.store` when a store root is configured
(``REPRO_RESULT_STORE`` or an explicit orchestrator) -- and cache
misses fan out over worker processes when ``jobs > 1``.  The
comparison itself goes through ``run_many`` (the submit-all/await-all
wrapper over the futures API), so parallel, streamed and cached runs
are bit-identical to serial cold runs.

:func:`run_replicated_comparison` repeats the comparison over several
seeds for mean/CI reporting
(:func:`repro.sim.metrics.aggregate_replicates`).
"""

from __future__ import annotations

from repro.baselines import EnerAwarePolicy, NetAwarePolicy, PriAwarePolicy
from repro.core.controller import ProposedPolicy
from repro.core.forces import ForceParameters
from repro.experiments.orchestrator import (
    EngineOptions,
    Orchestrator,
    ResultStore,
    grid_requests,
)
from repro.sim.config import ExperimentConfig
from repro.sim.results import RunResult
from repro.sim.state import PlacementPolicy
from repro.workload.packs import TracePack

#: Process-wide default orchestrator; its store replaces the old
#: ``_CACHE`` dict (memory layer, plus disk when $REPRO_RESULT_STORE
#: is set).
_DEFAULT_ORCHESTRATOR: Orchestrator | None = None


def default_orchestrator() -> Orchestrator:
    """The process-wide orchestrator used when callers pass none."""
    global _DEFAULT_ORCHESTRATOR
    if _DEFAULT_ORCHESTRATOR is None:
        _DEFAULT_ORCHESTRATOR = Orchestrator(store=ResultStore.from_environment())
    return _DEFAULT_ORCHESTRATOR


def default_policies(alpha: float = 0.5) -> list[PlacementPolicy]:
    """The paper's four methods, in its reporting order."""
    return [
        ProposedPolicy(force_params=ForceParameters(alpha=alpha)),
        EnerAwarePolicy(),
        PriAwarePolicy(),
        NetAwarePolicy(),
    ]


def run_comparison(
    config: ExperimentConfig,
    alpha: float = 0.5,
    use_cache: bool = True,
    jobs: int = 1,
    orchestrator: Orchestrator | None = None,
    pack: TracePack | None = None,
    options: EngineOptions | None = None,
) -> list[RunResult]:
    """Run the four methods over one workload realization.

    Parameters
    ----------
    config:
        The experiment configuration (every policy sees the same
        workload, weather and channel realizations derived from
        ``config.seed``).
    alpha:
        Eq. 5 trade-off weight for the proposed method.
    use_cache:
        Resolve against the orchestrator's result store.  ``False``
        simulates unconditionally (results are still recorded).
    jobs:
        Worker processes for uncached runs (1 = serial).
    orchestrator:
        Execution backend; defaults to the process-wide one.
    pack:
        Workload pack for every run (``None`` = synthetic default);
        its content hash keys the result store.
    options:
        Engine options for every run (``None`` = defaults) -- e.g.
        the ``--engine event`` driver selection; part of each run's
        fingerprint.
    """
    orchestrator = orchestrator or default_orchestrator()
    if jobs != 1:
        orchestrator = orchestrator.with_jobs(jobs)
    requests = grid_requests(
        [config], lambda _: default_policies(alpha), pack=pack,
        options=options,
    )
    # Comparison results feed figures and tables that walk the full
    # ledger, so the service path must ship it -- no projection.
    artifacts = orchestrator.run_many(
        requests, use_store=use_cache, detail="full"
    )
    return [artifact.result for artifact in artifacts]


def run_replicated_comparison(
    config: ExperimentConfig,
    alpha: float = 0.5,
    seeds: tuple[int, ...] = (0, 1, 2),
    jobs: int = 1,
    orchestrator: Orchestrator | None = None,
    pack: TracePack | None = None,
    options: EngineOptions | None = None,
) -> dict[str, list[RunResult]]:
    """The four-method comparison replicated over several seeds.

    Returns policy name -> one run per seed (in ``seeds`` order), the
    input shape of
    :func:`repro.sim.metrics.aggregate_replicates` and
    :func:`repro.sim.metrics.format_replicated_comparison`.
    """
    orchestrator = orchestrator or default_orchestrator()
    if jobs != 1:
        orchestrator = orchestrator.with_jobs(jobs)
    requests = grid_requests(
        [config], lambda _: default_policies(alpha), seeds=list(seeds),
        pack=pack, options=options,
    )
    artifacts = orchestrator.run_many(requests, detail="full")
    replicates: dict[str, list[RunResult]] = {}
    for artifact in artifacts:
        replicates.setdefault(artifact.result.policy_name, []).append(
            artifact.result
        )
    return replicates


def clear_cache() -> None:
    """Drop the default store's in-memory results (mainly for tests).

    Disk documents, when a persistent root is configured, survive --
    delete the store directory to cold-start those.
    """
    default_orchestrator().store.clear_memory()


#: Engine-flag pass-through re-exported for consumers that build
#: requests directly.
__all__ = [
    "EngineOptions",
    "clear_cache",
    "default_orchestrator",
    "default_policies",
    "run_comparison",
    "run_replicated_comparison",
]
