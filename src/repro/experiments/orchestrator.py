"""Parallel experiment orchestration with a persistent result store.

Every deliverable of the reproduction -- the figure comparisons, the
alpha Pareto sweep, the sensitivity sweeps, the LP bound and the
scenario study -- reduces to evaluating a grid of *(configuration x
policy x seed)* simulation runs.  This module owns that evaluation:

* :class:`RunRequest` names one run: an
  :class:`~repro.sim.config.ExperimentConfig`, a policy, an optional
  seed override and the :class:`EngineOptions` flags.  Its
  :meth:`~RunRequest.fingerprint` is a SHA-256 over the canonicalized
  request, the unit of caching.
* :class:`ResultStore` maps fingerprints to
  :class:`~repro.sim.results.RunResult`, in memory and (optionally) on
  disk, replacing the old process-local ``_CACHE`` dict of
  ``experiments/runner.py``.
* :class:`Orchestrator` resolves batches of requests against the store
  and fans the misses out over a ``ProcessPoolExecutor``.  Runs are
  deterministic per request, so parallel and serial execution produce
  identical :class:`~repro.sim.results.RunResult` ledgers.

Result-store layout
-------------------

A disk-backed store rooted at ``root`` holds one JSON document per
run::

    root/v1/<fp[:2]>/<fingerprint>.json

``v1`` is :data:`STORE_VERSION`; bumping it (because the engine's
numerics or the serialization schema changed) orphans every old entry
at once.  Each document records the store version, the full request
descriptor (for audit/debugging) and the serialized result.  Floats
survive the JSON round trip bit-for-bit (shortest-repr doubles), so a
warm store reproduces a cold run exactly.

Cache-invalidation (fingerprint) rules
--------------------------------------

The fingerprint hashes the *complete* canonicalized request:

* every ``ExperimentConfig`` field, recursively -- fleet specs,
  tariffs, PUE models, arrival model (including the app mix), horizon,
  sampling rate, QoS and seed;
* the policy descriptor -- class name plus all public constructor
  state (:meth:`~repro.sim.state.PlacementPolicy.descriptor`);
* the :class:`EngineOptions` flags that change results
  (``clairvoyant``) or their provenance (``validate``, ``vectorized``);
* the workload pack's content descriptor (schema, version, kind and
  the SHA-256 *content* hash of
  :class:`~repro.workload.packs.TracePack` -- for a recorded pack that
  digest covers the raw utilization matrix; the pack *name* is a label
  and deliberately stays out), so recorded-workload runs cache exactly
  like synthetic ones and renames stay cache-compatible;
* :data:`STORE_VERSION`.

Anything that could change a run's numbers therefore changes its key;
entries never need explicit invalidation, only garbage collection.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.sim.config import ExperimentConfig
from repro.sim.engine import SimulationEngine
from repro.sim.results import RunResult
from repro.sim.state import PlacementPolicy
from repro.workload.packs import TracePack

#: Version of the on-disk schema *and* of the engine numerics contract.
#: Bump on any change that alters stored bytes or simulated numbers.
STORE_VERSION = 1

#: Environment variable naming a default on-disk store root.
STORE_ENV_VAR = "REPRO_RESULT_STORE"


@dataclass(frozen=True)
class EngineOptions:
    """Engine flags a :class:`RunRequest` threads through to the engine.

    Attributes
    ----------
    validate:
        Validate every placement against its observation.
    clairvoyant:
        Give policies the current slot's traces (perfect forecast).
    vectorized:
        Use the engine's vectorized hot paths (bit-identical to the
        reference loops; part of the fingerprint for provenance only).
    """

    validate: bool = True
    clairvoyant: bool = False
    vectorized: bool = True


def canonical(value):
    """Canonicalize ``value`` into JSON-stable plain data.

    Handles dataclasses, enums (and enum-keyed dicts), functions,
    numpy scalars and arbitrary objects with public attribute state.
    Deterministic: equal configurations canonicalize to equal trees.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__qualname__, "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__qualname__,
            **{
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(canonical(key)): canonical(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if callable(value) and hasattr(value, "__qualname__"):
        return {
            "__function__": f"{getattr(value, '__module__', '?')}."
            f"{value.__qualname__}"
        }
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()  # numpy scalar
    if hasattr(value, "__dict__"):
        return {
            "__class__": type(value).__qualname__,
            **{
                key: canonical(val)
                for key, val in sorted(vars(value).items())
                if not key.startswith("_")
            },
        }
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


@dataclass(frozen=True)
class RunRequest:
    """One simulation run: config x policy x seed x engine flags.

    Attributes
    ----------
    config:
        The experiment configuration.
    policy:
        The placement policy instance to run (a fresh engine is built
        around it; its cross-slot state is reset at run start).
    seed:
        Optional seed override; ``None`` keeps ``config.seed``.  The
        replication helpers use this to fan one config out over seeds.
    options:
        Engine flags threaded through to the engine.
    pack:
        Optional :class:`~repro.workload.packs.TracePack` naming the
        workload; ``None`` selects the synthetic default pack.  The
        pack's *content* descriptor (schema, version, kind, sha256 --
        not the name) joins the fingerprint, so a recorded-CSV run
        caches by the recording's actual bytes and renaming a pack
        keeps its cached runs warm.
    """

    config: ExperimentConfig
    policy: PlacementPolicy
    seed: int | None = None
    options: EngineOptions = field(default_factory=EngineOptions)
    pack: TracePack | None = None

    def resolved_config(self) -> ExperimentConfig:
        """The config with the seed override applied."""
        if self.seed is None or self.seed == self.config.seed:
            return self.config
        return dataclasses.replace(self.config, seed=self.seed)

    def descriptor(self) -> dict:
        """Full canonical description of the request (hashed + stored)."""
        return {
            "store_version": STORE_VERSION,
            "config": canonical(self.resolved_config()),
            "policy": canonical(self.policy.descriptor()),
            "options": canonical(self.options),
            "pack": (
                None if self.pack is None else self.pack.content_descriptor()
            ),
        }

    def fingerprint(self) -> str:
        """SHA-256 hex digest keying this run in the result store."""
        blob = json.dumps(self.descriptor(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class RunArtifact:
    """A resolved request: the result plus its provenance.

    Attributes
    ----------
    fingerprint:
        The request's store key.
    result:
        The run ledger.
    source:
        Where the result came from: ``"computed"``, ``"memory"`` or
        ``"disk"``.
    elapsed_s:
        Wall time spent obtaining the result (0 for memory hits).
    """

    fingerprint: str
    result: RunResult
    source: str
    elapsed_s: float

    @property
    def from_cache(self) -> bool:
        """True when the store supplied the result without simulating."""
        return self.source != "computed"


class ResultStore:
    """Fingerprint-keyed result storage: memory layer + optional disk.

    Parameters
    ----------
    root:
        Directory for the persistent layer (created lazily).  ``None``
        keeps results in memory only -- the replacement for the old
        process-local cache.  See the module docstring for the on-disk
        layout and invalidation rules.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else None
        self._memory: dict[str, RunResult] = {}
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.writes = 0

    @classmethod
    def from_environment(cls) -> "ResultStore":
        """Store rooted at ``$REPRO_RESULT_STORE`` (memory-only if unset)."""
        return cls(os.environ.get(STORE_ENV_VAR) or None)

    def path_for(self, fingerprint: str) -> pathlib.Path | None:
        """On-disk document path for a fingerprint (None if memory-only)."""
        if self.root is None:
            return None
        return (
            self.root
            / f"v{STORE_VERSION}"
            / fingerprint[:2]
            / f"{fingerprint}.json"
        )

    def fetch(self, fingerprint: str) -> tuple[RunResult, str] | None:
        """Look a fingerprint up; returns ``(result, source)`` or None."""
        cached = self._memory.get(fingerprint)
        if cached is not None:
            self.hits_memory += 1
            return cached, "memory"
        path = self.path_for(fingerprint)
        if path is not None and path.exists():
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                payload = None
            if (
                payload is not None
                and payload.get("store_version") == STORE_VERSION
                and payload.get("fingerprint") == fingerprint
            ):
                result = RunResult.from_dict(payload["result"])
                self._memory[fingerprint] = result
                self.hits_disk += 1
                return result, "disk"
        self.misses += 1
        return None

    def put(
        self, fingerprint: str, result: RunResult, descriptor: dict | None = None
    ) -> None:
        """Record a result in memory and (when disk-backed) on disk.

        The disk write is atomic (temp file + rename) so a crashed run
        never leaves a truncated document behind.
        """
        self._memory[fingerprint] = result
        self.writes += 1
        path = self.path_for(fingerprint)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "store_version": STORE_VERSION,
            "fingerprint": fingerprint,
            "request": descriptor or {},
            "result": result.to_dict(),
        }
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(document, handle)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk documents survive)."""
        self._memory.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/write counters (for benchmarks and logs)."""
        return {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "writes": self.writes,
        }

    def __contains__(self, fingerprint: str) -> bool:
        path = self.path_for(fingerprint)
        return fingerprint in self._memory or (
            path is not None and path.exists()
        )

    def __len__(self) -> int:
        return len(self._memory)


def execute_request(request: RunRequest) -> RunResult:
    """Run one request to completion (the process-pool work function)."""
    engine = SimulationEngine(
        request.resolved_config(),
        request.policy,
        validate=request.options.validate,
        clairvoyant=request.options.clairvoyant,
        vectorized=request.options.vectorized,
        workload=request.pack,
    )
    return engine.run()


def _timed_execute(request: RunRequest) -> tuple[RunResult, float]:
    start = time.perf_counter()
    result = execute_request(request)
    return result, time.perf_counter() - start


class Orchestrator:
    """Resolves run requests against a store, fanning misses out.

    Parameters
    ----------
    store:
        The result store consulted before simulating and updated after.
        Defaults to a fresh memory-only store.
    jobs:
        Worker processes for cache misses.  ``1`` executes serially in
        this process; higher values use a ``ProcessPoolExecutor``.
        Parallel runs are deterministic: every engine derives its
        streams from the request, so results are identical to serial
        execution.
    use_store:
        Default store behavior for :meth:`run_many`.  ``False`` makes
        every resolution simulate (results are still recorded) --
        consumers that only take an orchestrator, like the CLI's
        ``--no-cache`` path, configure cache bypass here.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int = 1,
        use_store: bool = True,
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.jobs = max(1, int(jobs))
        self.use_store = use_store

    def with_jobs(self, jobs: int) -> "Orchestrator":
        """This orchestrator's store and options at a new worker count.

        Returns ``self`` when the count already matches -- the helper
        behind every ``jobs=N`` convenience parameter in the
        experiment runners.
        """
        if jobs == self.jobs:
            return self
        return Orchestrator(
            store=self.store, jobs=jobs, use_store=self.use_store
        )

    def run(
        self, request: RunRequest, use_store: bool | None = None
    ) -> RunArtifact:
        """Resolve one request (store lookup, else simulate + record)."""
        return self.run_many([request], use_store=use_store)[0]

    def run_many(
        self, requests: Sequence[RunRequest], use_store: bool | None = None
    ) -> list[RunArtifact]:
        """Resolve a batch of requests, preserving order.

        Duplicate fingerprints within the batch are simulated once.
        Misses run in parallel when ``jobs > 1``; results stream into
        the store as they complete.  ``use_store=False`` skips the
        lookup (every request simulates) but still records results;
        ``None`` defers to the orchestrator's default.
        """
        if use_store is None:
            use_store = self.use_store
        fingerprints = [request.fingerprint() for request in requests]
        artifacts: list[RunArtifact | None] = [None] * len(requests)
        pending: dict[str, RunRequest] = {}
        for index, (request, fingerprint) in enumerate(
            zip(requests, fingerprints)
        ):
            hit = self.store.fetch(fingerprint) if use_store else None
            if hit is not None:
                result, source = hit
                artifacts[index] = RunArtifact(
                    fingerprint=fingerprint,
                    result=result,
                    source=source,
                    elapsed_s=0.0,
                )
            elif fingerprint not in pending:
                pending[fingerprint] = request

        computed = self._execute_pending(pending)
        for index, fingerprint in enumerate(fingerprints):
            if artifacts[index] is None:
                result, elapsed = computed[fingerprint]
                artifacts[index] = RunArtifact(
                    fingerprint=fingerprint,
                    result=result,
                    source="computed",
                    elapsed_s=elapsed,
                )
        return artifacts  # type: ignore[return-value]

    def _execute_pending(
        self, pending: dict[str, RunRequest]
    ) -> dict[str, tuple[RunResult, float]]:
        """Simulate every pending request, recording each on completion.

        Results stream into the store as workers finish, so a batch
        that dies partway (a worker crash, an interrupt) keeps every
        completed run; the first failure re-raises only after all
        surviving completions are persisted.
        """
        computed: dict[str, tuple[RunResult, float]] = {}
        if not pending:
            return computed
        items = list(pending.items())
        if self.jobs == 1 or len(items) == 1:
            for fingerprint, request in items:
                start = time.perf_counter()
                result = execute_request(request)
                computed[fingerprint] = (result, time.perf_counter() - start)
                self.store.put(fingerprint, result, request.descriptor())
            return computed
        first_error: BaseException | None = None
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(items))) as pool:
            futures = {
                pool.submit(_timed_execute, request): (fingerprint, request)
                for fingerprint, request in items
            }
            for future in as_completed(futures):
                fingerprint, request = futures[future]
                try:
                    result, elapsed = future.result()
                except BaseException as error:  # persist survivors first
                    first_error = first_error or error
                    continue
                computed[fingerprint] = (result, elapsed)
                self.store.put(fingerprint, result, request.descriptor())
        if first_error is not None:
            raise first_error
        return computed


def grid_requests(
    configs: Iterable[ExperimentConfig],
    policies_for: Callable[[ExperimentConfig], list[PlacementPolicy]],
    seeds: Sequence[int] | None = None,
    options: EngineOptions | None = None,
    pack: TracePack | None = None,
) -> list[RunRequest]:
    """Cross a config iterable with per-config policies and seeds.

    Parameters
    ----------
    configs:
        The configurations to run.
    policies_for:
        Callable ``config -> list[PlacementPolicy]`` building *fresh*
        policy instances per config (policies carry cross-slot state,
        so sharing instances across parallel requests is unsafe).
    seeds:
        Seed overrides; ``None`` keeps each config's own seed.
    options:
        Engine flags applied to every request.
    pack:
        Workload pack applied to every request (``None`` = synthetic
        default).
    """
    options = options or EngineOptions()
    requests = []
    for config in configs:
        for seed in seeds if seeds is not None else [None]:
            for policy in policies_for(config):
                requests.append(
                    RunRequest(
                        config=config,
                        policy=policy,
                        seed=seed,
                        options=options,
                        pack=pack,
                    )
                )
    return requests
