"""Parallel experiment orchestration over a pluggable result store.

Every deliverable of the reproduction -- the figure comparisons, the
alpha Pareto sweep, the sensitivity sweeps, the LP bound and the
scenario study -- reduces to evaluating a grid of *(configuration x
policy x seed)* simulation runs.  This module owns that evaluation:

* :class:`RunRequest` names one run: an
  :class:`~repro.sim.config.ExperimentConfig`, a policy, an optional
  seed override and the :class:`EngineOptions` flags.  Its
  :meth:`~RunRequest.fingerprint` is a SHA-256 over the canonicalized
  request, the unit of caching.
* :class:`~repro.store.ResultStore` (in :mod:`repro.store`) maps
  fingerprints to :class:`~repro.sim.results.RunResult` -- a memory
  layer plus one of three persistent backends (per-file JSON, sharded
  multi-root, append-only segments); see that package and DESIGN.md
  for layouts, auto-detection and concurrency discipline.
* :class:`Orchestrator` resolves requests against the store and fans
  misses out over a persistent ``ProcessPoolExecutor``.  The primitive
  is :meth:`Orchestrator.submit`, which returns a :class:`RunFuture`;
  :meth:`Orchestrator.as_resolved` streams artifacts back in
  *completion* order, so callers can render progress and chain
  dependent analyses (LP bounds, report rows) while later misses are
  still simulating.  :meth:`Orchestrator.run_many` is a thin
  submit-all/await-all wrapper that preserves request order.  Runs are
  deterministic per request, so parallel, streamed and serial
  execution produce identical :class:`~repro.sim.results.RunResult`
  ledgers.

Cache-invalidation (fingerprint) rules
--------------------------------------

The fingerprint hashes the *complete* canonicalized request:

* every ``ExperimentConfig`` field, recursively -- fleet specs,
  tariffs, PUE models, arrival model (including the app mix), horizon,
  sampling rate, QoS and seed;
* the policy descriptor -- class name plus all public constructor
  state (:meth:`~repro.sim.state.PlacementPolicy.descriptor`);
* the :class:`EngineOptions` flags that change results
  (``clairvoyant``) or their provenance (``validate``, ``vectorized``);
* the workload pack's content descriptor (schema, version, kind and
  the SHA-256 *content* hash of
  :class:`~repro.workload.packs.TracePack` -- for a recorded pack that
  digest covers the raw utilization matrix; the pack *name* is a label
  and deliberately stays out), so recorded-workload runs cache exactly
  like synthetic ones and renames stay cache-compatible;
* :data:`~repro.store.STORE_VERSION`.

Anything that could change a run's numbers therefore changes its key;
entries never need explicit invalidation, only garbage collection
(``repro store gc``).  Store-side labels that must *not* key runs --
the shard routing key, the pack's display name -- travel in the
document's ``meta`` envelope instead (:func:`run_meta`).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import threading
import time
import weakref
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.experiments.sticky import StickyPool
from repro.sim.config import EngineCoreConfig, ExperimentConfig
from repro.sim.engine import SimulationEngine
from repro.sim.results import RunResult
from repro.sim.state import PlacementPolicy
from repro.store import (
    STORE_ENV_VAR,
    STORE_VERSION,
    ResultStore,
    shard_slug,
)
from repro.workload.materialize import (
    DEFAULT_CACHE_MATERIALIZATIONS,
    DEFAULT_SLOT_BUDGET_BYTES,
    MaterializationCache,
    configure_process_cache,
    materialization_key,
    process_cache,
)
from repro.workload.packs import TracePack
from repro.workload.shm import SharedPackStub, SharedWorkloadPublisher

#: Environment knobs for the workload materialization cache.  They
#: configure *execution*, never identity: no fingerprint ever sees
#: them (cache on/off/size produces byte-identical artifacts).
WORKLOAD_CACHE_ENV_VAR = "REPRO_WORKLOAD_CACHE"
WORKLOAD_CACHE_MB_ENV_VAR = "REPRO_WORKLOAD_CACHE_MB"

__all__ = [
    "EngineOptions",
    "Orchestrator",
    "ResultStore",
    "RunArtifact",
    "RunFuture",
    "RunRequest",
    "STORE_ENV_VAR",
    "STORE_VERSION",
    "canonical",
    "execute_request",
    "grid_requests",
    "run_meta",
]


@dataclass(frozen=True)
class EngineOptions:
    """Engine flags a :class:`RunRequest` threads through to the engine.

    Attributes
    ----------
    validate:
        Validate every placement against its observation.
    clairvoyant:
        Give policies the current slot's traces (perfect forecast).
    vectorized:
        Use the engine's vectorized hot paths (bit-identical to the
        reference loops; part of the fingerprint for provenance only).
    engine:
        The :class:`~repro.sim.config.EngineCoreConfig` selecting the
        simulation driver (``slot`` or ``event``) and its request-
        stream intensity.  Part of the fingerprint: an event run
        carries a per-request ledger a slot run does not, so they are
        distinct artifacts even though their slot ledgers are
        byte-identical.
    """

    validate: bool = True
    clairvoyant: bool = False
    vectorized: bool = True
    engine: EngineCoreConfig = field(default_factory=EngineCoreConfig)


def canonical(value):
    """Canonicalize ``value`` into JSON-stable plain data.

    Handles dataclasses, enums (and enum-keyed dicts), functions,
    numpy scalars and arbitrary objects with public attribute state.
    Deterministic: equal configurations canonicalize to equal trees.
    """
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__qualname__, "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__qualname__,
            **{
                f.name: canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(canonical(key)): canonical(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if callable(value) and hasattr(value, "__qualname__"):
        return {
            "__function__": f"{getattr(value, '__module__', '?')}."
            f"{value.__qualname__}"
        }
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()  # numpy scalar
    if hasattr(value, "__dict__"):
        return {
            "__class__": type(value).__qualname__,
            **{
                key: canonical(val)
                for key, val in sorted(vars(value).items())
                if not key.startswith("_")
            },
        }
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


@dataclass(frozen=True)
class RunRequest:
    """One simulation run: config x policy x seed x engine flags.

    Attributes
    ----------
    config:
        The experiment configuration.
    policy:
        The placement policy instance to run (a fresh engine is built
        around it; its cross-slot state is reset at run start).
    seed:
        Optional seed override; ``None`` keeps ``config.seed``.  The
        replication helpers use this to fan one config out over seeds.
    options:
        Engine flags threaded through to the engine.
    pack:
        Optional :class:`~repro.workload.packs.TracePack` naming the
        workload; ``None`` selects the synthetic default pack.  The
        pack's *content* descriptor (schema, version, kind, sha256 --
        not the name) joins the fingerprint, so a recorded-CSV run
        caches by the recording's actual bytes and renaming a pack
        keeps its cached runs warm.
    """

    config: ExperimentConfig
    policy: PlacementPolicy
    seed: int | None = None
    options: EngineOptions = field(default_factory=EngineOptions)
    pack: TracePack | None = None

    def resolved_config(self) -> ExperimentConfig:
        """The config with the seed override applied."""
        if self.seed is None or self.seed == self.config.seed:
            return self.config
        return dataclasses.replace(self.config, seed=self.seed)

    def descriptor(self) -> dict:
        """Full canonical description of the request (hashed + stored)."""
        return {
            "store_version": STORE_VERSION,
            "config": canonical(self.resolved_config()),
            "policy": canonical(self.policy.descriptor()),
            "options": canonical(self.options),
            "pack": (
                None if self.pack is None else self.pack.content_descriptor()
            ),
        }

    def fingerprint(self) -> str:
        """SHA-256 hex digest keying this run in the result store.

        Memoized: requests are value-stable once built (the orchestrator
        and wire layers hash, dedupe and poll by fingerprint many times
        per request), so the canonical descriptor walk runs once.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            blob = json.dumps(self.descriptor(), sort_keys=True)
            cached = hashlib.sha256(blob.encode()).hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached


def run_meta(request: RunRequest) -> dict:
    """Store-side labels for a request (never part of the fingerprint).

    The ``shard`` key routes the document in a sharded backend -- the
    workload pack's name when the run has one, else the config name --
    and the pack block records the *name* alongside the content
    identity so ``repro store ls``/``gc`` can filter by pack name even
    though fingerprints deliberately ignore it.
    """
    pack = request.pack
    if pack is not None:
        shard = shard_slug(pack.name)
    else:
        shard = shard_slug(getattr(request.config, "name", None))
    meta: dict = {"shard": shard}
    if pack is not None:
        meta["pack"] = {
            "name": pack.name,
            "version": pack.version,
            "kind": pack.kind,
            "sha256": pack.sha256,
        }
    return meta


@dataclass(frozen=True)
class RunArtifact:
    """A resolved request: the result plus its provenance.

    Attributes
    ----------
    fingerprint:
        The request's store key.
    result:
        The run ledger.
    source:
        Where the result came from: ``"computed"``, ``"memory"`` or
        ``"disk"``.
    elapsed_s:
        Wall time spent obtaining the result (0 for memory hits).
    """

    fingerprint: str
    result: RunResult
    source: str
    elapsed_s: float

    @property
    def from_cache(self) -> bool:
        """True when the store supplied the result without simulating."""
        return self.source != "computed"


class RunFuture:
    """Handle to one submitted request, resolving to a :class:`RunArtifact`.

    Store hits resolve immediately; misses resolve when their worker
    finishes (by which point the result has already streamed into the
    store -- persistence callbacks run before the future completes, so
    an artifact you hold is an artifact that survives a crash).
    """

    __slots__ = ("request", "fingerprint", "_future")

    def __init__(
        self, request: RunRequest, fingerprint: str, future: Future
    ) -> None:
        self.request = request
        self.fingerprint = fingerprint
        self._future = future

    def done(self) -> bool:
        """True when the artifact (or an error) is available."""
        return self._future.done()

    def result(self, timeout: float | None = None) -> RunArtifact:
        """Block for the artifact; re-raises the run's error if it failed."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The run's error, or None (blocks like :meth:`result`)."""
        return self._future.exception(timeout)

    @classmethod
    def resolved(
        cls, request: RunRequest, fingerprint: str, artifact: RunArtifact
    ) -> "RunFuture":
        future: Future = Future()
        future.set_result(artifact)
        return cls(request, fingerprint, future)


def execute_request(request: RunRequest) -> RunResult:
    """Run one request to completion (the process-pool work function)."""
    engine = SimulationEngine(
        request.resolved_config(),
        request.policy,
        validate=request.options.validate,
        clairvoyant=request.options.clairvoyant,
        vectorized=request.options.vectorized,
        workload=request.pack,
        engine=request.options.engine,
    )
    return engine.run()


def _timed_execute(request: RunRequest) -> tuple[RunResult, float]:
    start = time.perf_counter()
    result = execute_request(request)
    return result, time.perf_counter() - start


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _materialization_key_of(request: RunRequest) -> str:
    """The request's workload materialization key, memoized like
    :meth:`RunRequest.fingerprint` (requests are value-stable)."""
    cached = request.__dict__.get("_materialization_key")
    if cached is None:
        cached = materialization_key(
            request.resolved_config(),
            request.pack,
            request.options.vectorized,
        )
        object.__setattr__(request, "_materialization_key", cached)
    return cached


@dataclass(frozen=True)
class _WorkerTask:
    """One pooled run plus its workload-cache routing envelope.

    When ``stub`` is set the request travels with ``pack=None`` and
    the worker re-attaches the pack zero-copy from shared memory;
    fingerprints are always computed parent-side from the original
    request, so the stripped copy never needs one.
    """

    request: RunRequest
    key: str
    stub: SharedPackStub | None = None


def _timed_execute_task(
    task: _WorkerTask, cache: MaterializationCache | None = None
) -> tuple[RunResult, float, dict]:
    """Worker-side entry for cached runs.

    Resolves the task's materialization from the per-process cache
    (building it on miss), restores a shared-memory pack when one was
    published, and returns the run plus a cache-stats snapshot tagged
    with the worker pid -- the parent keeps the latest snapshot per
    pid and sums them for :meth:`Orchestrator.workload_cache_stats`.
    """
    start = time.perf_counter()
    if cache is None:
        cache = process_cache()
    request = task.request
    if task.stub is not None:
        request = dataclasses.replace(request, pack=task.stub.restore())
    materialization = cache.materialize(
        request.resolved_config(),
        request.pack,
        request.options.vectorized,
    )
    if materialization.key != task.key:
        raise RuntimeError(
            "workload materialization key diverged between parent "
            f"({task.key[:12]}) and worker ({materialization.key[:12]})"
        )
    engine = SimulationEngine(
        request.resolved_config(),
        request.policy,
        validate=request.options.validate,
        clairvoyant=request.options.clairvoyant,
        vectorized=request.options.vectorized,
        materialization=materialization,
        engine=request.options.engine,
    )
    result = engine.run()
    elapsed = time.perf_counter() - start
    stats = dict(cache.stats())
    stats["pid"] = os.getpid()
    return result, elapsed, stats


def _unpack_payload(payload) -> tuple[RunResult, float, dict | None]:
    """Normalize worker payloads: cached tasks add a stats snapshot."""
    if len(payload) == 3:
        return payload
    result, elapsed = payload
    return result, elapsed, None


def _shutdown_pool(pool) -> None:
    pool.shutdown(wait=False)


def _close_publisher(publisher: SharedWorkloadPublisher) -> None:
    publisher.close()


class Orchestrator:
    """Resolves run requests against a store, fanning misses out.

    Parameters
    ----------
    store:
        The result store consulted before simulating and updated after.
        Defaults to a fresh memory-only store.
    jobs:
        Worker processes for cache misses.  ``1`` executes serially in
        this process (``submit`` then blocks and returns an
        already-resolved future); higher values keep a persistent
        ``ProcessPoolExecutor`` so submissions stream.  Parallel runs
        are deterministic: every engine derives its streams from the
        request, so results are identical to serial execution.
    use_store:
        Default store behavior.  ``False`` makes every resolution
        simulate (results are still recorded) -- consumers that only
        take an orchestrator, like the CLI's ``--no-cache`` path,
        configure cache bypass here.
    progress:
        Optional ``callback(completed, total)`` fired as each unique
        run of a batch resolves (:meth:`run_many` /
        :meth:`as_resolved`); the CLI uses it to stream run counts
        during sweeps.
    meta:
        Extra store-document ``meta`` keys stamped onto every run this
        orchestrator records, merged over :func:`run_meta`'s derived
        labels.  Provenance only -- never part of the fingerprint (the
        service daemon stamps ``{"daemon": <id>}`` here so fleet
        members are attributable in the shared store).
    workload_cache:
        Materializations each process keeps warm (LRU entries).  ``0``
        disables the whole workload-cache layer -- plain pool, full
        pack pickling, per-run workload builds, exactly the pre-cache
        execution path.  ``None`` (default) reads
        ``REPRO_WORKLOAD_CACHE`` and falls back to
        :data:`~repro.workload.materialize.DEFAULT_CACHE_MATERIALIZATIONS`.
        Per-materialization realized-slot budgets come from
        ``REPRO_WORKLOAD_CACHE_MB``.  Execution detail only: artifacts
        and fingerprints are byte-identical either way.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int = 1,
        use_store: bool = True,
        progress: Callable[[int, int], None] | None = None,
        meta: dict | None = None,
        workload_cache: int | None = None,
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.jobs = max(1, int(jobs))
        self.use_store = use_store
        self.progress = progress
        self.meta = dict(meta or {})
        if workload_cache is None:
            workload_cache = _env_int(
                WORKLOAD_CACHE_ENV_VAR, DEFAULT_CACHE_MATERIALIZATIONS
            )
        self.workload_cache = max(0, int(workload_cache))
        self.slot_budget_bytes = (
            _env_int(
                WORKLOAD_CACHE_MB_ENV_VAR, DEFAULT_SLOT_BUDGET_BYTES >> 20
            )
            << 20
        )
        self._pool: ProcessPoolExecutor | StickyPool | None = None
        self._publisher: SharedWorkloadPublisher | None = None
        self._local_cache: MaterializationCache | None = None
        self._worker_stats: dict[int, dict] = {}
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()

    def with_jobs(self, jobs: int) -> "Orchestrator":
        """This orchestrator's store and options at a new worker count.

        Returns ``self`` when the count already matches -- the helper
        behind every ``jobs=N`` convenience parameter in the
        experiment runners.
        """
        if jobs == self.jobs:
            return self
        return Orchestrator(
            store=self.store,
            jobs=jobs,
            use_store=self.use_store,
            progress=self.progress,
            meta=self.meta,
            workload_cache=self.workload_cache,
        )

    def with_meta(self, extra: dict) -> "Orchestrator":
        """This orchestrator's store and options with extra meta stamps.

        Returns ``self`` when nothing would change.  The campaign
        driver uses this to stamp every artifact a suite produces with
        its campaign id (into the store-document meta envelope, never
        the fingerprint), so ``repro store ls --campaign`` can list a
        campaign's artifacts as a unit.
        """
        merged = {**self.meta, **extra}
        if merged == self.meta:
            return self
        return Orchestrator(
            store=self.store,
            jobs=self.jobs,
            use_store=self.use_store,
            progress=self.progress,
            meta=merged,
            workload_cache=self.workload_cache,
        )

    def _meta_for(self, request: RunRequest) -> dict:
        """The store-document meta for one run: derived labels + stamps."""
        meta = run_meta(request)
        meta.update(self.meta)
        return meta

    # -- worker-pool lifecycle ---------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor | StickyPool:
        if self._pool is None:
            if self.workload_cache > 0:
                # Sticky, key-affine workers with the per-process
                # materialization cache installed at spawn.
                self._pool = StickyPool(
                    self.jobs,
                    initializer=configure_process_cache,
                    initargs=(self.workload_cache, self.slot_budget_bytes),
                )
                self._publisher = SharedWorkloadPublisher()
                weakref.finalize(self, _close_publisher, self._publisher)
            else:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            # Workers outlive batches (submissions stream), but must
            # not outlive the orchestrator.
            weakref.finalize(self, _shutdown_pool, self._pool)
        return self._pool

    def _ensure_local_cache(self) -> MaterializationCache:
        """The in-process cache behind serial (``jobs == 1``) runs.

        Owned by the orchestrator, so a long-lived daemon reuses
        materializations across client requests.
        """
        if self._local_cache is None:
            self._local_cache = MaterializationCache(
                size=self.workload_cache,
                slot_budget_bytes=self.slot_budget_bytes,
            )
        return self._local_cache

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pending runs finish)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._publisher is not None:
            self._publisher.close()
            self._publisher = None

    def __enter__(self) -> "Orchestrator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the futures API ---------------------------------------------------

    def submit(
        self,
        request: RunRequest,
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> RunFuture:
        """Resolve one request asynchronously.

        Store hits return an already-resolved future.  Misses are
        deduplicated against in-flight work (two submissions of one
        fingerprint share a worker) and their results stream into the
        store the moment the worker finishes -- before the future is
        marked done.  With ``jobs == 1`` the miss executes inline and
        errors propagate from ``submit`` itself, preserving the serial
        fail-fast behavior.

        ``detail`` is accepted for interface parity with
        :class:`~repro.service.client.ServiceClient` (where
        ``headline`` trims the wire payload) and ignored here: the
        result already sits in local memory, so there is nothing to
        project away.
        """
        if use_store is None:
            use_store = self.use_store
        return self.resolve(request, request.fingerprint(), use_store)

    def resolve(
        self, request: RunRequest, fingerprint: str, use_store: bool = True
    ) -> RunFuture:
        """The submit/dedup core: store lookup, in-flight dedup, launch.

        Shared by the in-process path (:meth:`submit`, which computes
        the fingerprint itself) and the service daemon
        (:mod:`repro.service.server`, which receives the fingerprint
        over the wire and verifies it against the decoded request
        before calling in) -- both sides therefore apply identical
        hit/dedup semantics against one store.
        """
        if use_store:
            hit = self.lookup(request, fingerprint)
            if hit is not None:
                return hit
        return self.launch(request, fingerprint)

    def lookup(
        self, request: RunRequest, fingerprint: str
    ) -> RunFuture | None:
        """An already-resolved future for a store hit, else None."""
        hit = self.store.fetch(fingerprint)
        if hit is None:
            return None
        result, source = hit
        return RunFuture.resolved(
            request,
            fingerprint,
            RunArtifact(
                fingerprint=fingerprint,
                result=result,
                source=source,
                elapsed_s=0.0,
            ),
        )

    def inflight_count(self) -> int:
        """Number of fingerprints currently executing in the pool."""
        with self._lock:
            return len(self._inflight)

    def workload_cache_stats(self) -> dict:
        """Aggregate workload-cache efficacy across every process.

        Sums the serial in-process cache with the latest snapshot each
        pool worker returned (workers report absolute counters, so the
        latest per pid is the total per pid).  Surfaced by the service
        daemon's ``/stats`` and ``repro fleet status``.
        """
        stats = {
            "enabled": self.workload_cache > 0,
            "size": self.workload_cache,
            "hits": 0,
            "misses": 0,
            "entries": 0,
            "slot_hits": 0,
            "slot_misses": 0,
            "bytes": 0,
        }
        sources: list[dict] = []
        if self._local_cache is not None:
            sources.append(self._local_cache.stats())
        with self._lock:
            workers = list(self._worker_stats.values())
        sources.extend(workers)
        for source in sources:
            for counter in (
                "hits", "misses", "entries",
                "slot_hits", "slot_misses", "bytes",
            ):
                stats[counter] += source.get(counter, 0)
        stats["workers"] = len(workers)
        if self._publisher is not None:
            stats["shared"] = self._publisher.stats()
        return stats

    def launch(self, request: RunRequest, fingerprint: str) -> RunFuture:
        """Execute a miss, bypassing the store lookup.

        Pooled runs (``jobs > 1``) still dedup against in-flight work;
        serial runs execute inline on the calling thread (callers that
        can race themselves -- the service daemon -- guard serial
        launches with their own registry).
        """
        if self.jobs == 1:
            if self.workload_cache > 0:
                result, elapsed, _stats = _timed_execute_task(
                    _WorkerTask(
                        request=request,
                        key=_materialization_key_of(request),
                    ),
                    cache=self._ensure_local_cache(),
                )
            else:
                result, elapsed = _timed_execute(request)
            self.store.put(
                fingerprint, result, request.descriptor(),
                self._meta_for(request),
            )
            return RunFuture.resolved(
                request,
                fingerprint,
                RunArtifact(
                    fingerprint=fingerprint,
                    result=result,
                    source="computed",
                    elapsed_s=elapsed,
                ),
            )
        with self._lock:
            base = self._inflight.get(fingerprint)
            created = base is None
            if created:
                pool = self._ensure_pool()
                if isinstance(pool, StickyPool):
                    task = self._worker_task(request)
                    base = pool.submit(
                        _timed_execute_task, task, key=task.key
                    )
                else:
                    base = pool.submit(_timed_execute, request)
                self._inflight[fingerprint] = base
        # Callbacks are registered *outside* the lock: a future that is
        # already done runs its callback inline in this thread, and
        # _record re-acquires the (non-reentrant) lock.  Persistence
        # (_record) registers before the wrapper chain, so in both the
        # executor-thread and inline cases the store.put completes
        # before the wrapper future reports done.
        if created:
            base.add_done_callback(
                lambda done, fp=fingerprint, req=request: self._record(
                    fp, req, done
                )
            )
        wrapper: Future = Future()

        def _chain(done: Future) -> None:
            error = done.exception()
            if error is not None:
                wrapper.set_exception(error)
                return
            result, elapsed, _stats = _unpack_payload(done.result())
            wrapper.set_result(
                RunArtifact(
                    fingerprint=fingerprint,
                    result=result,
                    source="computed",
                    elapsed_s=elapsed,
                )
            )

        base.add_done_callback(_chain)
        return RunFuture(request, fingerprint, wrapper)

    def _worker_task(self, request: RunRequest) -> _WorkerTask:
        """The sticky-pool envelope for ``request``.

        Publishes large recorded packs to shared memory (once per pack
        content) so the task ships a few-hundred-byte stub instead of
        the utilization matrix; anything unpublishable falls back to
        the ordinary full-request pickle.
        """
        key = _materialization_key_of(request)
        stub = None
        if self._publisher is not None:
            stub = self._publisher.publish_pack(request.pack)
        if stub is not None:
            request = dataclasses.replace(request, pack=None)
        return _WorkerTask(request=request, key=key, stub=stub)

    def _record(self, fingerprint: str, request: RunRequest, base: Future) -> None:
        """Completion callback: stream the result into the store.

        Runs in the executor's management thread, so a batch that dies
        partway (worker crash, interrupt) keeps every completed run.
        The store write happens *before* the in-flight entry is
        dropped -- a resubmission of the same fingerprint either
        shares the in-flight future or hits the store, never
        re-simulates.
        """
        if base.exception() is None:
            result, _elapsed, stats = _unpack_payload(base.result())
            self.store.put(
                fingerprint, result, request.descriptor(),
                self._meta_for(request),
            )
            if stats is not None:
                # Latest absolute snapshot per worker pid; summed in
                # workload_cache_stats().
                with self._lock:
                    self._worker_stats[stats["pid"]] = stats
        with self._lock:
            self._inflight.pop(fingerprint, None)

    def submit_many(
        self,
        requests: Sequence[RunRequest],
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> list[RunFuture]:
        """Submit a batch; duplicates share one future (simulated once).

        With the workload cache enabled, submissions are issued in
        materialization-key order (stable, so same-key requests keep
        their relative order): each sticky worker then drains its
        queue one workload at a time instead of thrashing between
        materializations.  The *returned* futures always align with
        ``requests``.

        ``detail`` is accepted for service-client parity and ignored
        in-process (see :meth:`submit`).
        """
        order = list(range(len(requests)))
        if self.workload_cache > 0 and self.jobs > 1:
            order.sort(key=lambda i: _materialization_key_of(requests[i]))
        future_at: dict[int, RunFuture] = {}
        by_fingerprint: dict[str, RunFuture] = {}
        for index in order:
            request = requests[index]
            fingerprint = request.fingerprint()
            future = by_fingerprint.get(fingerprint)
            if future is None:
                future = self.submit(request, use_store=use_store)
                by_fingerprint[fingerprint] = future
            future_at[index] = future
        return [future_at[index] for index in range(len(requests))]

    def _notify(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    @staticmethod
    def _unique(futures: Iterable[RunFuture]) -> list[RunFuture]:
        return list(dict.fromkeys(futures))

    def as_done(
        self, futures: Iterable[RunFuture], timeout: float | None = None
    ) -> Iterator[RunFuture]:
        """Yield unique futures as they resolve, firing progress.

        Already-resolved futures (store hits, serial runs) come first;
        pending misses follow in completion order.  The shared loop
        behind :meth:`as_resolved` and :meth:`run_many` (which differ
        only in error handling) -- and the primitive for consumers
        that chain per-run analyses and need the *future* (its
        ``request``, or its position in a batch) rather than just the
        artifact.
        """
        unique = self._unique(futures)
        total = len(unique)
        done = 0
        pending: dict[Future, RunFuture] = {}
        for future in unique:
            if future.done():
                done += 1
                self._notify(done, total)
                yield future
            else:
                pending[future._future] = future
        for resolved in as_completed(pending, timeout=timeout):
            done += 1
            self._notify(done, total)
            yield pending[resolved]

    def as_resolved(
        self, futures: Iterable[RunFuture], timeout: float | None = None
    ) -> Iterator[RunArtifact]:
        """Yield artifacts in *completion* order as workers finish.

        Already-resolved futures (store hits, serial runs) come first;
        pending misses follow as they land, while later misses keep
        executing -- the streaming primitive behind CLI progress and
        barrier-free dependent analyses.  Duplicate futures yield
        once.  A failed run raises at its position in the stream.
        """
        for future in self.as_done(futures, timeout=timeout):
            yield future.result()

    # -- batch conveniences ------------------------------------------------

    def run(
        self,
        request: RunRequest,
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> RunArtifact:
        """Resolve one request (store lookup, else simulate + record)."""
        return self.submit(request, use_store=use_store).result()

    def run_many(
        self,
        requests: Sequence[RunRequest],
        use_store: bool | None = None,
        detail: str | None = None,
    ) -> list[RunArtifact]:
        """Resolve a batch of requests, preserving order.

        A thin wrapper over :meth:`submit_many`: duplicate
        fingerprints simulate once, misses run in parallel when
        ``jobs > 1`` and stream into the store as they complete.  When
        a run fails, every surviving completion is still persisted
        (and counted toward progress) before the first error
        re-raises.  ``use_store=False`` skips the lookup (every
        request simulates) but still records results; ``None`` defers
        to the orchestrator's default.  ``detail`` is accepted for
        service-client parity and ignored in-process.
        """
        futures = self.submit_many(
            requests, use_store=use_store, detail=detail
        )
        first_error: BaseException | None = None
        for future in self.as_done(futures):
            error = future.exception()
            if error is not None:
                first_error = first_error or error
        if first_error is not None:
            raise first_error
        return [future.result() for future in futures]


def grid_requests(
    configs: Iterable[ExperimentConfig],
    policies_for: Callable[[ExperimentConfig], list[PlacementPolicy]],
    seeds: Sequence[int] | None = None,
    options: EngineOptions | None = None,
    pack: TracePack | None = None,
) -> list[RunRequest]:
    """Cross a config iterable with per-config policies and seeds.

    Parameters
    ----------
    configs:
        The configurations to run.
    policies_for:
        Callable ``config -> list[PlacementPolicy]`` building *fresh*
        policy instances per config (policies carry cross-slot state,
        so sharing instances across parallel requests is unsafe).
    seeds:
        Seed overrides; ``None`` keeps each config's own seed.
    options:
        Engine flags applied to every request.
    pack:
        Workload pack applied to every request (``None`` = synthetic
        default).
    """
    options = options or EngineOptions()
    requests = []
    for config in configs:
        for seed in seeds if seeds is not None else [None]:
            for policy in policies_for(config):
                requests.append(
                    RunRequest(
                        config=config,
                        policy=policy,
                        seed=seed,
                        options=options,
                        pack=pack,
                    )
                )
    return requests
