"""Per-figure experiment runners and paper-vs-measured reporting.

One entry point per table/figure of the paper's evaluation (Section V):

* :func:`~repro.experiments.figures.table1_rows` -- Table I,
* :func:`~repro.experiments.figures.fig1_operational_cost`,
* :func:`~repro.experiments.figures.fig2_energy`,
* :func:`~repro.experiments.figures.fig3_response_time`,
* :func:`~repro.experiments.figures.fig4_totals`,
* :func:`~repro.experiments.figures.fig5_cost_performance`,
* :func:`~repro.experiments.figures.fig6_energy_performance`.

:func:`~repro.experiments.runner.run_comparison` executes the four
policies over one workload realization through
:mod:`repro.experiments.orchestrator`, which owns fingerprint-keyed
caching (memory + optional persistent disk store) and process-pool
fan-out of uncached runs.
"""

from repro.experiments.figures import (
    PAPER_CLAIMS,
    fig1_operational_cost,
    fig2_energy,
    fig3_response_time,
    fig4_totals,
    fig5_cost_performance,
    fig6_energy_performance,
    table1_rows,
)
from repro.experiments.export import export_all
from repro.experiments.orchestrator import (
    EngineOptions,
    Orchestrator,
    ResultStore,
    RunArtifact,
    RunRequest,
    grid_requests,
)
from repro.experiments.runner import (
    default_policies,
    run_comparison,
    run_replicated_comparison,
)

__all__ = [
    "EngineOptions",
    "Orchestrator",
    "PAPER_CLAIMS",
    "ResultStore",
    "RunArtifact",
    "RunRequest",
    "default_policies",
    "export_all",
    "fig1_operational_cost",
    "fig2_energy",
    "fig3_response_time",
    "fig4_totals",
    "fig5_cost_performance",
    "fig6_energy_performance",
    "grid_requests",
    "run_comparison",
    "run_replicated_comparison",
    "table1_rows",
]
