"""Key-affinity process pool for workload-cached experiment fan-out.

A plain ``ProcessPoolExecutor`` hands tasks to whichever worker frees
up first, so a sweep over one workload scatters across every worker
and each of them pays the full materialization cost
(:mod:`repro.workload.materialize`).  :class:`StickyPool` keeps one
single-worker executor per slot and routes each submission by its
**materialization key**:

* the primary criterion is load -- the least-pending worker wins, so
  sticky routing can never serialize a batch that a plain pool would
  have run in parallel (a stalled run on one worker leaves every
  other submission free to land elsewhere);
* among equally-loaded workers, one whose *last* task shared the
  submission's key wins -- its per-process cache already holds the
  materialization warm.

Combined with the orchestrator's key-grouped ``submit_many`` ordering
this converges to each worker paying at most one cold materialization
per distinct workload in a sweep.

The pool mirrors the executor surface the orchestrator relies on
(``submit``/``shutdown``), so it drops into ``Orchestrator._pool``
transparently.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable

__all__ = ["StickyPool"]


class StickyPool:
    """N single-worker executors with materialization-key affinity.

    Parameters
    ----------
    workers:
        Number of worker processes (one executor each).
    initializer / initargs:
        Forwarded to every worker process at spawn -- the orchestrator
        installs the per-process materialization cache here.
    """

    def __init__(
        self,
        workers: int,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._executors = [
            ProcessPoolExecutor(
                max_workers=1, initializer=initializer, initargs=initargs
            )
            for _ in range(workers)
        ]
        self._pending = [0] * workers
        self._last_key: list[str | None] = [None] * workers
        self._lock = threading.Lock()

    @property
    def workers(self) -> int:
        return len(self._executors)

    def _route(self, key: str | None) -> int:
        """Index of the best worker: least pending, warm breaks ties."""
        return min(
            range(len(self._executors)),
            key=lambda index: (
                self._pending[index],
                0 if key is not None and self._last_key[index] == key else 1,
                index,
            ),
        )

    def submit(self, fn, /, *args, key: str | None = None, **kwargs) -> Future:
        """Submit ``fn(*args, **kwargs)`` to the worker chosen for ``key``."""
        with self._lock:
            index = self._route(key)
            self._pending[index] += 1
            self._last_key[index] = key
            future = self._executors[index].submit(fn, *args, **kwargs)
        future.add_done_callback(lambda _done, i=index: self._finished(i))
        return future

    def _finished(self, index: int) -> None:
        with self._lock:
            self._pending[index] -= 1

    def pending(self) -> int:
        """Total submissions not yet finished (routing load signal)."""
        with self._lock:
            return sum(self._pending)

    def shutdown(self, wait: bool = True, **kwargs) -> None:
        """Shut every worker executor down (executor-compatible)."""
        for executor in self._executors:
            executor.shutdown(wait=wait, **kwargs)
