"""Workload scenario studies.

The paper's introduction motivates the design with the contrast between
scale-out services (fast-changing, strongly data-correlated) and HPC
jobs (sustained, weakly communicating).  These scenario builders vary
the archetype mix so the correlation-aware advantage can be measured as
a function of workload composition -- an extension experiment beyond
the paper's single mixed workload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.experiments.orchestrator import Orchestrator, grid_requests
from repro.experiments.runner import default_orchestrator, default_policies
from repro.sim.config import ExperimentConfig
from repro.sim.metrics import improvement_pct
from repro.workload.vm import AppType

#: Named archetype mixes: scale-out-heavy, HPC-heavy, and the paper-like
#: blend the library defaults to.
SCENARIO_MIXES: dict[str, dict[AppType, float]] = {
    "scale-out": {AppType.WEB: 0.8, AppType.BATCH: 0.15, AppType.HPC: 0.05},
    "mixed": {AppType.WEB: 0.5, AppType.BATCH: 0.3, AppType.HPC: 0.2},
    "hpc": {AppType.WEB: 0.1, AppType.BATCH: 0.2, AppType.HPC: 0.7},
}


@dataclass(frozen=True)
class ScenarioOutcome:
    """Headline comparison for one workload scenario."""

    scenario: str
    proposed_cost_eur: float
    best_baseline_cost_eur: float
    cost_saving_pct: float
    proposed_energy_gj: float
    best_baseline_energy_gj: float
    energy_saving_pct: float
    proposed_p99_rt_s: float


def scenario_config(
    base: ExperimentConfig, scenario: str
) -> ExperimentConfig:
    """The base configuration with the scenario's archetype mix."""
    if scenario not in SCENARIO_MIXES:
        raise KeyError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIO_MIXES)}"
        )
    arrival_model = dataclasses.replace(
        base.arrival_model, app_mix=SCENARIO_MIXES[scenario]
    )
    return dataclasses.replace(
        base, name=f"{base.name}-{scenario}", arrival_model=arrival_model
    )


def run_scenarios(
    base: ExperimentConfig,
    scenarios: tuple[str, ...] = ("scale-out", "mixed", "hpc"),
    alpha: float = 0.5,
    jobs: int = 1,
    orchestrator: Orchestrator | None = None,
) -> list[ScenarioOutcome]:
    """Four-method comparison per scenario, summarized vs best baseline.

    The whole (scenario x policy) grid is submitted as one orchestrator
    batch, so with ``jobs > 1`` scenarios and policies parallelize
    together.
    """
    orchestrator = orchestrator or default_orchestrator()
    if jobs != 1:
        orchestrator = Orchestrator(
            store=orchestrator.store,
            jobs=jobs,
            use_store=orchestrator.use_store,
        )
    configs = [scenario_config(base, scenario) for scenario in scenarios]
    artifacts = orchestrator.run_many(
        grid_requests(configs, lambda _: default_policies(alpha))
    )
    n_policies = len(default_policies(alpha))
    outcomes = []
    for index, scenario in enumerate(scenarios):
        results = [
            artifact.result
            for artifact in artifacts[index * n_policies : (index + 1) * n_policies]
        ]
        proposed = results[0]
        baselines = results[1:]
        best_cost = min(r.total_grid_cost_eur() for r in baselines)
        best_energy = min(r.total_facility_energy_joules() for r in baselines)
        outcomes.append(
            ScenarioOutcome(
                scenario=scenario,
                proposed_cost_eur=proposed.total_grid_cost_eur(),
                best_baseline_cost_eur=best_cost,
                cost_saving_pct=improvement_pct(
                    best_cost, proposed.total_grid_cost_eur()
                ),
                proposed_energy_gj=proposed.total_energy_gj(),
                best_baseline_energy_gj=best_energy / 1e9,
                energy_saving_pct=improvement_pct(
                    best_energy, proposed.total_facility_energy_joules()
                ),
                proposed_p99_rt_s=proposed.percentile_response_s(99.0),
            )
        )
    return outcomes


def format_outcomes(outcomes: list[ScenarioOutcome]) -> str:
    """Plain-text scenario table."""
    header = (
        f"{'scenario':<10} {'cost EUR':>10} {'best bl.':>10} {'saving %':>9} "
        f"{'energy GJ':>10} {'saving %':>9} {'p99 RT s':>9}"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        lines.append(
            f"{outcome.scenario:<10} {outcome.proposed_cost_eur:>10.2f} "
            f"{outcome.best_baseline_cost_eur:>10.2f} "
            f"{outcome.cost_saving_pct:>9.1f} "
            f"{outcome.proposed_energy_gj:>10.3f} "
            f"{outcome.energy_saving_pct:>9.1f} "
            f"{outcome.proposed_p99_rt_s:>9.4f}"
        )
    return "\n".join(lines)
