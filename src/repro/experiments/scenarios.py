"""Workload scenario studies.

The paper's introduction motivates the design with the contrast between
scale-out services (fast-changing, strongly data-correlated) and HPC
jobs (sustained, weakly communicating).  These scenario builders vary
the archetype mix so the correlation-aware advantage can be measured as
a function of workload composition -- an extension experiment beyond
the paper's single mixed workload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.experiments.orchestrator import (
    EngineOptions,
    Orchestrator,
    RunRequest,
)
from repro.experiments.runner import default_orchestrator, default_policies
from repro.sim.config import ExperimentConfig
from repro.sim.metrics import improvement_pct
from repro.workload.packs import SCENARIO_MIXES, SCENARIO_PACKS, TracePack

__all__ = [
    "SCENARIO_MIXES",
    "SCENARIO_PACKS",
    "ScenarioOutcome",
    "format_outcomes",
    "run_scenarios",
    "scenario_config",
    "scenario_pack",
]


def scenario_pack(base: TracePack, scenario: str) -> TracePack:
    """``base`` with a scenario's archetype mix layered on top.

    Lets a recorded (or otherwise customized) pack run the scenario
    study: the derived pack keeps the base's trace source and datacorr
    parameters and swaps in the scenario's app mix (new content hash).
    """
    if scenario not in SCENARIO_MIXES:
        raise KeyError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIO_MIXES)}"
        )
    return base.with_app_mix(
        SCENARIO_MIXES[scenario], name=f"{base.name}-{scenario}"
    )


@dataclass(frozen=True)
class ScenarioOutcome:
    """Headline comparison for one workload scenario."""

    scenario: str
    proposed_cost_eur: float
    best_baseline_cost_eur: float
    cost_saving_pct: float
    proposed_energy_gj: float
    best_baseline_energy_gj: float
    energy_saving_pct: float
    proposed_p99_rt_s: float


def scenario_config(
    base: ExperimentConfig, scenario: str
) -> ExperimentConfig:
    """The base configuration with the scenario's archetype mix."""
    if scenario not in SCENARIO_MIXES:
        raise KeyError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIO_MIXES)}"
        )
    arrival_model = dataclasses.replace(
        base.arrival_model, app_mix=SCENARIO_MIXES[scenario]
    )
    return dataclasses.replace(
        base, name=f"{base.name}-{scenario}", arrival_model=arrival_model
    )


def run_scenarios(
    base: ExperimentConfig,
    scenarios: tuple[str, ...] = ("scale-out", "mixed", "hpc"),
    alpha: float = 0.5,
    jobs: int = 1,
    orchestrator: Orchestrator | None = None,
    pack: TracePack | None = None,
    options: EngineOptions | None = None,
) -> list[ScenarioOutcome]:
    """Four-method comparison per scenario, summarized vs best baseline.

    The whole (scenario x policy) grid is submitted as one orchestrator
    batch, so with ``jobs > 1`` scenarios and policies parallelize
    together.  Without a ``pack`` the mixes apply through
    :func:`scenario_config`; with one, each scenario runs the derived
    :func:`scenario_pack` (same trace source, scenario app mix) so
    recorded workloads join the study and cache by content hash.

    Note that the archetype mix shapes *synthetic* diurnal profiles;
    a recorded source serves the recorded demand regardless of app
    type, so scenario outcomes on a recorded pack coincide by
    construction (the study is meaningful for synthetic sources).
    """
    orchestrator = orchestrator or default_orchestrator()
    if jobs != 1:
        orchestrator = orchestrator.with_jobs(jobs)
    requests = []
    for scenario in scenarios:
        if pack is None:
            config, run_pack = scenario_config(base, scenario), None
        else:
            config, run_pack = base, scenario_pack(pack, scenario)
        requests.extend(
            RunRequest(
                config=config,
                policy=policy,
                pack=run_pack,
                options=options or EngineOptions(),
            )
            for policy in default_policies(alpha)
        )
    # The whole (scenario x policy) grid resolves as one futures batch
    # (progress streams per completion); artifacts come back in
    # request order, so each scenario's slice is positional.
    # Outcomes read only headline aggregates (costs, energy, p99), so
    # a remote orchestrator may ship the projected artifact form.
    artifacts = orchestrator.run_many(requests, detail="headline")
    n_policies = len(default_policies(alpha))
    outcomes = []
    for index, scenario in enumerate(scenarios):
        results = [
            artifact.result
            for artifact in artifacts[index * n_policies : (index + 1) * n_policies]
        ]
        proposed = results[0]
        baselines = results[1:]
        best_cost = min(r.total_grid_cost_eur() for r in baselines)
        best_energy = min(r.total_facility_energy_joules() for r in baselines)
        outcomes.append(
            ScenarioOutcome(
                scenario=scenario,
                proposed_cost_eur=proposed.total_grid_cost_eur(),
                best_baseline_cost_eur=best_cost,
                cost_saving_pct=improvement_pct(
                    best_cost, proposed.total_grid_cost_eur()
                ),
                proposed_energy_gj=proposed.total_energy_gj(),
                best_baseline_energy_gj=best_energy / 1e9,
                energy_saving_pct=improvement_pct(
                    best_energy, proposed.total_facility_energy_joules()
                ),
                proposed_p99_rt_s=proposed.percentile_response_s(99.0),
            )
        )
    return outcomes


def format_outcomes(outcomes: list[ScenarioOutcome]) -> str:
    """Plain-text scenario table."""
    header = (
        f"{'scenario':<10} {'cost EUR':>10} {'best bl.':>10} {'saving %':>9} "
        f"{'energy GJ':>10} {'saving %':>9} {'p99 RT s':>9}"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        lines.append(
            f"{outcome.scenario:<10} {outcome.proposed_cost_eur:>10.2f} "
            f"{outcome.best_baseline_cost_eur:>10.2f} "
            f"{outcome.cost_saving_pct:>9.1f} "
            f"{outcome.proposed_energy_gj:>10.3f} "
            f"{outcome.energy_saving_pct:>9.1f} "
            f"{outcome.proposed_p99_rt_s:>9.4f}"
        )
    return "\n".join(lines)
