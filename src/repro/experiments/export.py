"""CSV export of the figure data.

Downstream users who want to redraw the paper's figures with their own
plotting stack can dump every series to plain CSV:

* ``fig1_cost.csv``       -- hourly grid cost per method
* ``fig2_energy.csv``     -- hourly facility energy per method
* ``fig3_response.csv``   -- normalized response-time PDF per method
* ``summary.csv``         -- one row per method with the headline metrics

No pandas dependency; files are written with :mod:`csv`.
"""

from __future__ import annotations

import csv
import pathlib

from repro.experiments.figures import fig3_response_time
from repro.sim.results import RunResult


def _write_rows(path: pathlib.Path, header: list[str], rows) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_hourly_cost(results: list[RunResult], path: pathlib.Path) -> None:
    """Fig. 1 series: one column per method, one row per slot."""
    names = [result.policy_name for result in results]
    series = [result.hourly_cost_eur() for result in results]
    rows = [
        [slot] + [f"{column[slot]:.6f}" for column in series]
        for slot in range(len(series[0]))
    ]
    _write_rows(path, ["slot"] + names, rows)


def export_hourly_energy(results: list[RunResult], path: pathlib.Path) -> None:
    """Fig. 2 series: hourly facility energy (GJ) per method."""
    names = [result.policy_name for result in results]
    series = [result.hourly_energy_joules() / 1e9 for result in results]
    rows = [
        [slot] + [f"{column[slot]:.9f}" for column in series]
        for slot in range(len(series[0]))
    ]
    _write_rows(path, ["slot"] + names, rows)


def export_response_pdf(
    results: list[RunResult], path: pathlib.Path, bins: int = 40
) -> None:
    """Fig. 3 data: normalized response-time densities per method."""
    report = fig3_response_time(results, bins=bins)
    names = list(report["pdfs"])
    first_centers = report["pdfs"][names[0]][0]
    rows = []
    for index, center in enumerate(first_centers):
        row = [f"{center:.5f}"]
        for name in names:
            density = report["pdfs"][name][1]
            row.append(f"{density[index]:.6f}" if density.size else "")
        rows.append(row)
    _write_rows(path, ["normalized_rt"] + names, rows)


def export_summary(results: list[RunResult], path: pathlib.Path) -> None:
    """One row per method: the headline metrics of the comparison."""
    header = [
        "policy",
        "cost_eur",
        "energy_gj",
        "grid_energy_gj",
        "mean_rt_s",
        "p95_rt_s",
        "p99_rt_s",
        "worst_rt_s",
        "migrations",
        "mean_active_servers",
        "renewable_utilization",
    ]
    rows = []
    for result in results:
        summary = result.summary()
        rows.append(
            [
                summary["policy"],
                f"{summary['cost_eur']:.6f}",
                f"{summary['energy_gj']:.6f}",
                f"{summary['grid_energy_gj']:.6f}",
                f"{summary['mean_rt_s']:.6f}",
                f"{summary['p95_rt_s']:.6f}",
                f"{result.percentile_response_s(99.0):.6f}",
                f"{summary['worst_rt_s']:.6f}",
                summary["migrations"],
                f"{summary['mean_active_servers']:.3f}",
                f"{summary['renewable_utilization']:.6f}",
            ]
        )
    _write_rows(path, header, rows)


def export_all(results: list[RunResult], directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Write every export into ``directory``; returns the file paths."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "fig1_cost.csv": export_hourly_cost,
        "fig2_energy.csv": export_hourly_energy,
        "fig3_response.csv": export_response_pdf,
        "summary.csv": export_summary,
    }
    written = []
    for name, exporter in paths.items():
        target = directory / name
        exporter(results, target)
        written.append(target)
    return written
