"""Figure/table reproduction: computation + paper-vs-measured reports.

Every function takes the shared comparison results (see
:func:`repro.experiments.runner.run_comparison`) and returns a
structured dictionary with (a) the measured quantities that regenerate
the figure and (b) the paper's reported numbers for side-by-side
comparison.  ``render(report)`` turns any of them into printable text.

Paper numbers come from Section V-B:

* Fig. 1 -- cost savings of Proposed: 55 % vs Ener-aware, 25 % vs
  Pri-aware, 35 % vs Net-aware;
* Fig. 2 -- weekly energy: 57 / 55 / 65 / 67 GJ for Proposed /
  Ener-aware / Pri-aware / Net-aware;
* Fig. 3 -- Proposed & Net-aware: higher mean, lower variance, lower
  worst case; Ener & Pri: lower mean, heavy tail;
* Fig. 4 -- up to 55 % cost, 15 % energy, 12 % performance;
* Fig. 5 -- vs Pri-aware: 25 % cost and 12 % performance; vs
  Net-aware: 35 % cost at only 2 % performance degradation;
* Fig. 6 -- vs Ener-aware: 6 % performance better, 3 % energy worse;
  vs Net-aware: 15 % energy better, 2 % performance worse.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import ExperimentConfig
from repro.sim.metrics import (
    improvement_pct,
    normalized_costs,
    response_time_pdf,
)
from repro.sim.results import RunResult
from repro.units import joules_to_gj

#: The paper's headline numbers, keyed by figure.
PAPER_CLAIMS = {
    "fig1_cost_savings_pct": {"Ener-aware": 55.0, "Pri-aware": 25.0, "Net-aware": 35.0},
    "fig2_energy_gj": {
        "Proposed": 57.0,
        "Ener-aware": 55.0,
        "Pri-aware": 65.0,
        "Net-aware": 67.0,
    },
    "fig4_totals_pct": {"cost": 55.0, "energy": 15.0, "performance": 12.0},
    "fig5_vs_pri": {"cost": 25.0, "performance": 12.0},
    "fig5_vs_net": {"cost": 35.0, "performance": -2.0},
    "fig6_vs_ener": {"energy": -3.0, "performance": 6.0},
    "fig6_vs_net": {"energy": 15.0, "performance": -2.0},
}

#: Percentile used as the SLA-relevant "worst case" response time.
WORST_CASE_PERCENTILE = 99.0


def _by_name(results: list[RunResult]) -> dict[str, RunResult]:
    return {result.policy_name: result for result in results}


def _require(results: list[RunResult], *names: str) -> dict[str, RunResult]:
    by_name = _by_name(results)
    missing = [name for name in names if name not in by_name]
    if missing:
        raise KeyError(f"comparison results missing policies: {missing}")
    return by_name


def table1_rows(config: ExperimentConfig) -> dict:
    """Table I: fleet and energy-source specification."""
    rows = []
    for index, spec in enumerate(config.specs):
        rows.append(
            {
                "dc": f"DC{index + 1}",
                "site": spec.name,
                "servers": spec.n_servers,
                "pv_kwp": spec.pv_kwp,
                "battery_kwh": spec.battery_kwh,
            }
        )
    paper_rows = [
        {"dc": "DC1", "servers": 1500, "pv_kwp": 150.0, "battery_kwh": 960.0},
        {"dc": "DC2", "servers": 1000, "pv_kwp": 100.0, "battery_kwh": 720.0},
        {"dc": "DC3", "servers": 500, "pv_kwp": 50.0, "battery_kwh": 480.0},
    ]
    return {"id": "Table I", "measured": rows, "paper": paper_rows}


def fig1_operational_cost(results: list[RunResult]) -> dict:
    """Fig. 1: normalized operational cost + savings of Proposed."""
    by_name = _require(results, "Proposed", "Ener-aware", "Pri-aware", "Net-aware")
    proposed_cost = by_name["Proposed"].total_grid_cost_eur()
    savings = {
        name: improvement_pct(result.total_grid_cost_eur(), proposed_cost)
        for name, result in by_name.items()
        if name != "Proposed"
    }
    return {
        "id": "Fig. 1",
        "normalized_cost": normalized_costs(results),
        "weekly_cost_eur": {
            name: result.total_grid_cost_eur() for name, result in by_name.items()
        },
        "hourly_cost_eur": {
            name: result.hourly_cost_eur() for name, result in by_name.items()
        },
        "measured_savings_pct": savings,
        "paper_savings_pct": PAPER_CLAIMS["fig1_cost_savings_pct"],
    }


def fig2_energy(results: list[RunResult]) -> dict:
    """Fig. 2: hourly DC energy and weekly totals (GJ)."""
    by_name = _require(results, "Proposed", "Ener-aware", "Pri-aware", "Net-aware")
    totals = {name: result.total_energy_gj() for name, result in by_name.items()}
    proposed = totals["Proposed"]
    relative = {
        name: total / proposed if proposed else float("nan")
        for name, total in totals.items()
    }
    paper_totals = PAPER_CLAIMS["fig2_energy_gj"]
    paper_relative = {
        name: value / paper_totals["Proposed"] for name, value in paper_totals.items()
    }
    return {
        "id": "Fig. 2",
        "hourly_energy_gj": {
            name: result.hourly_energy_joules() / 1e9
            for name, result in by_name.items()
        },
        "measured_totals_gj": totals,
        "measured_relative": relative,
        "paper_totals_gj": paper_totals,
        "paper_relative": paper_relative,
    }


def fig3_response_time(results: list[RunResult], bins: int = 40) -> dict:
    """Fig. 3: PDF of normalized response time + distribution stats."""
    by_name = _require(results, "Proposed", "Ener-aware", "Pri-aware", "Net-aware")
    samples = {name: result.response_samples() for name, result in by_name.items()}
    upper = max(
        (float(array.max()) for array in samples.values() if array.size),
        default=1.0,
    )
    pdfs = {
        name: response_time_pdf(array, bins=bins, upper=upper)
        for name, array in samples.items()
    }
    stats = {}
    for name, array in samples.items():
        if array.size:
            stats[name] = {
                "mean": float(array.mean()) / upper,
                "std": float(array.std()) / upper,
                "worst": float(array.max()) / upper,
                "p99": float(np.percentile(array, WORST_CASE_PERCENTILE)) / upper,
            }
        else:
            stats[name] = {"mean": 0.0, "std": 0.0, "worst": 0.0, "p99": 0.0}
    return {
        "id": "Fig. 3",
        "normalization_upper_s": upper,
        "pdfs": pdfs,
        "stats": stats,
        "paper_qualitative": (
            "Proposed/Net-aware: higher mean, lower variance, lower worst "
            "case; Ener/Pri-aware: lower mean, bigger fluctuations"
        ),
    }


def _performance_of(result: RunResult) -> float:
    return result.percentile_response_s(WORST_CASE_PERCENTILE)


def fig4_totals(results: list[RunResult]) -> dict:
    """Fig. 4: best-case cost/energy/performance improvements."""
    by_name = _require(results, "Proposed", "Ener-aware", "Pri-aware", "Net-aware")
    proposed = by_name["Proposed"]
    others = [r for name, r in by_name.items() if name != "Proposed"]
    cost_best = max(
        improvement_pct(r.total_grid_cost_eur(), proposed.total_grid_cost_eur())
        for r in others
    )
    energy_best = max(
        improvement_pct(
            r.total_facility_energy_joules(),
            proposed.total_facility_energy_joules(),
        )
        for r in others
    )
    perf_best = max(
        improvement_pct(_performance_of(r), _performance_of(proposed))
        for r in others
    )
    return {
        "id": "Fig. 4",
        "measured_pct": {
            "cost": cost_best,
            "energy": energy_best,
            "performance": perf_best,
        },
        "paper_pct": PAPER_CLAIMS["fig4_totals_pct"],
    }


def fig5_cost_performance(results: list[RunResult]) -> dict:
    """Fig. 5: cost-performance trade-off vs Pri-aware and Net-aware."""
    by_name = _require(results, "Proposed", "Pri-aware", "Net-aware")
    proposed = by_name["Proposed"]

    def trade_off(other: RunResult) -> dict[str, float]:
        return {
            "cost": improvement_pct(
                other.total_grid_cost_eur(), proposed.total_grid_cost_eur()
            ),
            "performance": improvement_pct(
                _performance_of(other), _performance_of(proposed)
            ),
        }

    return {
        "id": "Fig. 5",
        "measured_vs_pri": trade_off(by_name["Pri-aware"]),
        "measured_vs_net": trade_off(by_name["Net-aware"]),
        "paper_vs_pri": PAPER_CLAIMS["fig5_vs_pri"],
        "paper_vs_net": PAPER_CLAIMS["fig5_vs_net"],
    }


def fig6_energy_performance(results: list[RunResult]) -> dict:
    """Fig. 6: energy-performance trade-off vs Ener-aware and Net-aware."""
    by_name = _require(results, "Proposed", "Ener-aware", "Net-aware")
    proposed = by_name["Proposed"]

    def trade_off(other: RunResult) -> dict[str, float]:
        return {
            "energy": improvement_pct(
                other.total_facility_energy_joules(),
                proposed.total_facility_energy_joules(),
            ),
            "performance": improvement_pct(
                _performance_of(other), _performance_of(proposed)
            ),
        }

    return {
        "id": "Fig. 6",
        "measured_vs_ener": trade_off(by_name["Ener-aware"]),
        "measured_vs_net": trade_off(by_name["Net-aware"]),
        "paper_vs_ener": PAPER_CLAIMS["fig6_vs_ener"],
        "paper_vs_net": PAPER_CLAIMS["fig6_vs_net"],
    }


def all_figure_reports(results: list[RunResult]) -> list[dict]:
    """Every figure report (Figs. 1-6) from one comparison, in order.

    The results may come from any orchestrator path -- a cold serial
    run, a parallel fan-out, a streamed ``submit()``/``as_resolved()``
    pipeline or a warm result store (any backend) -- they are
    bit-identical, so the reports are too.
    """
    return [
        fig1_operational_cost(results),
        fig2_energy(results),
        fig3_response_time(results),
        fig4_totals(results),
        fig5_cost_performance(results),
        fig6_energy_performance(results),
    ]


def render(report: dict) -> str:
    """Human-readable text for any figure report."""
    lines = [f"== {report['id']} =="]
    for key, value in report.items():
        if key == "id":
            continue
        if isinstance(value, dict) and all(
            np.isscalar(v) or isinstance(v, (int, float)) for v in value.values()
        ):
            body = ", ".join(
                f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in value.items()
            )
            lines.append(f"  {key}: {body}")
        elif isinstance(value, str):
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)
