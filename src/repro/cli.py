"""Command-line interface: ``python -m repro <command>``.

Commands
--------

* ``table1``     -- print the Table I fleet specification
* ``compare``    -- run the four-method comparison and print the table
* ``figures``    -- regenerate every figure report (Figs. 1-6)
* ``alpha``      -- sweep Eq. 5's alpha and print the Pareto front
* ``bound``      -- compare each policy's cost against the LP oracle
* ``sweep``      -- sensitivity sweeps (battery / qos / pv)
* ``scenarios``  -- workload-mix scenario study (scale-out/mixed/hpc)
* ``export``     -- dump every figure's data as CSV
* ``packs``      -- list the registered workload trace packs
* ``serve``      -- run the shared experiment daemon (HTTP front-end
  over one orchestrator + store; see ``--service`` below)
* ``suite``      -- declarative experiment suites: ``run SUITE.toml``
  expands a ``[matrix]`` into a ledgered campaign and regenerates the
  declared figures/tables from the store, ``resume`` continues an
  interrupted campaign without re-executing store-verified work,
  ``status`` renders per-campaign ledger progress
* ``store``      -- result-store maintenance: ``ls``/``gc``/``migrate``
  /``compact`` documents by pack name, version, sha prefix and --
  for ``gc`` -- age/retention policy (``--older-than``,
  ``--keep-latest``)

All commands accept ``--scale {small,tiny}``, ``--horizon N`` and
``--seed N``; runs are deterministic per seed.  Execution goes through
the experiment orchestrator: ``--jobs N`` fans uncached runs out over
N worker processes, ``--store DIR`` persists results on disk keyed by
request fingerprint (warm reruns skip simulation entirely),
``--store-backend {auto,json,sharded,segment}`` picks the on-disk
layout for new roots (warm roots auto-detect), ``--no-cache`` forces
recomputation, and ``--seeds N`` replicates the comparison over N
seeds with mean / 95 % CI reporting.  Sweeps stream ``completed/total``
run counts to stderr as workers finish (``--progress`` forces it on,
``--no-progress`` off; the default follows whether stderr is a TTY).

Engine selection: ``--engine {slot,event}`` picks the simulation
driver -- the slot-stepped reference loop (default) or the
discrete-event core, which produces byte-identical slot ledgers plus a
per-request latency tail (p50/p99/p99.9).  The engine mode joins the
run fingerprint, so the two drivers cache as distinct artifacts.

Workload selection: ``--pack NAME`` runs a registered trace pack (see
``packs``) and ``--pack-csv PATH`` builds a recorded pack from a
utilization CSV on the fly.  Pack identity is a content hash folded
into the run fingerprint, so recorded-CSV experiments resolve from a
warm ``--store`` exactly like synthetic ones.

Remote execution: ``--service URL`` resolves every run against a
shared ``repro serve`` daemon instead of in-process -- same analysis
code, same artifacts, one store and worker pool shared by all clients.
Naming several members (``--service URL1,URL2,...`` or ``@FILE``)
routes each fingerprint to exactly one daemon of a fleet sharing a
store root, scaling cold-miss execution across hosts (``repro fleet
status`` probes the members).  ``--service`` excludes ``--store`` (the
store is the daemon's), and connection failures exit with a clean
error message.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

import numpy as np

from repro.analysis.lower_bound import comparison_bounds
from repro.analysis.pareto import alpha_sweep, pareto_front
from repro.analysis.sensitivity import (
    format_rows,
    sweep_battery_scale,
    sweep_pv_scale,
    sweep_qos,
)
from repro.experiments.figures import (
    all_figure_reports,
    render,
    table1_rows,
)
from repro.experiments.export import export_all
from repro.experiments.orchestrator import (
    EngineOptions,
    Orchestrator,
    ResultStore,
)
from repro.experiments.runner import (
    run_comparison,
    run_replicated_comparison,
)
from repro.experiments.scenarios import format_outcomes, run_scenarios
from repro.reporting import bar_chart, histogram, series_panel
from repro.service import (
    ExperimentDaemon,
    FleetClient,
    ServiceClient,
    ServiceError,
    parse_fleet_spec,
)
from repro.service.client import ServiceRunError
from repro.sim.config import (
    EngineCoreConfig,
    ExperimentConfig,
    paper_config,
    scaled_config,
)
from repro.sim.metrics import format_comparison, format_replicated_comparison
from repro.store import (
    KNOWN_FORMATS,
    STORE_ENV_VAR,
    SegmentBackend,
    collect_garbage,
    list_documents,
    migrate_store,
    open_backend,
    parse_age,
)
from repro.suite import (
    CampaignDriver,
    CampaignError,
    LedgerError,
    OutputError,
    SuiteSpecError,
    campaign_status,
    generate_outputs,
    load_suite,
)
from repro.workload.packs import TracePack, available_packs, get_pack


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    if args.scale == "paper":
        config = paper_config(seed=args.seed)
    else:
        config = scaled_config(args.scale, seed=args.seed)
    if args.horizon:
        config = config.with_horizon(args.horizon)
    return config


def _progress_printer():
    """A ``(done, total)`` callback streaming run counts to stderr."""

    def report(done: int, total: int) -> None:
        end = "\n" if done >= total else ""
        print(
            f"\r  [{done}/{total}] runs complete",
            end=end,
            file=sys.stderr,
            flush=True,
        )

    return report


def _orchestrator_from(args: argparse.Namespace):
    """Build the execution backend the command's flags describe.

    ``--service URL`` swaps the in-process orchestrator for a
    :class:`~repro.service.client.ServiceClient` against a running
    ``repro serve`` daemon -- same futures surface, so every command
    works unchanged.  Naming several members (``URL1,URL2,...`` or a
    fleet file) builds a
    :class:`~repro.service.fleet.FleetClient` instead, fanning miss
    execution out across the fleet.  The two execution backends are
    mutually exclusive with ``--store`` (the store lives daemon-side).
    """
    show_progress = (
        args.progress if args.progress is not None else sys.stderr.isatty()
    )
    progress = _progress_printer() if show_progress else None
    if args.service:
        if args.store:
            raise SystemExit(
                "error: --service and --store are mutually exclusive "
                "(the result store belongs to the daemon; pass --store "
                "to 'repro serve' instead)"
            )
        if args.jobs != 1:
            raise SystemExit(
                "error: --jobs has no effect with --service (worker "
                "capacity is the daemon's; pass --jobs to 'repro serve')"
            )
        try:
            urls = parse_fleet_spec(args.service)
            if len(urls) > 1:
                client: ServiceClient | FleetClient = FleetClient(
                    urls,
                    use_store=not args.no_cache,
                    progress=progress,
                )
            else:
                client = ServiceClient(
                    urls[0],
                    use_store=not args.no_cache,
                    progress=progress,
                )
            client.ping()
        except ServiceError as error:
            raise SystemExit(f"error: {error}") from None
        return client
    return Orchestrator(
        store=_open_store(args),
        jobs=args.jobs,
        use_store=not args.no_cache,
        progress=progress,
        workload_cache=args.workload_cache,
    )


def _open_store(args: argparse.Namespace) -> ResultStore:
    """The result store the command's flags describe (memory if none).

    An explicit ``--store-backend`` applies whether the root came from
    the flag or from ``$REPRO_RESULT_STORE``.
    """
    root = args.store or os.environ.get(STORE_ENV_VAR)
    if not root:
        return ResultStore()
    path = pathlib.Path(root)
    if path.exists() and not path.is_dir():
        raise SystemExit(f"error: store root {root!r} is not a directory")
    try:
        return ResultStore(path, backend=args.store_backend)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None


def _pack_from(
    args: argparse.Namespace, config: ExperimentConfig
) -> TracePack | None:
    """The workload pack the command's flags select (None = default)."""
    if args.pack and args.pack_csv:
        raise SystemExit("error: --pack and --pack-csv are mutually exclusive")
    if args.pack_csv:
        path = pathlib.Path(args.pack_csv)
        if not path.is_file():
            raise SystemExit(f"error: --pack-csv {args.pack_csv!r} not found")
        try:
            return TracePack.from_csv(
                path, steps_per_slot=config.steps_per_slot
            )
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
    if args.pack:
        try:
            return get_pack(args.pack)
        except KeyError as error:
            raise SystemExit(f"error: {error.args[0]}") from None
    return None


def _options_from(
    args: argparse.Namespace, pack: TracePack | None
) -> EngineOptions:
    """The engine options the command's flags describe.

    Validates ``--engine event`` against the selected pack up front so
    unsupported combinations fail with a flag-level message instead of
    a mid-run engine error (the engine's own check stays authoritative
    for policies and non-CLI callers).
    """
    engine = EngineCoreConfig(kind=args.engine)
    if (
        engine.kind == "event"
        and pack is not None
        and not getattr(pack, "supports_event_core", True)
    ):
        raise SystemExit(
            f"error: pack {pack.name!r} does not support --engine event "
            "yet; rerun with --engine slot"
        )
    return EngineOptions(engine=engine)


def _comparison_from(args: argparse.Namespace) -> list:
    config = _config_from(args)
    pack = _pack_from(args, config)
    return run_comparison(
        config,
        alpha=args.alpha,
        use_cache=not args.no_cache,
        orchestrator=_orchestrator_from(args),
        pack=pack,
        options=_options_from(args, pack),
    )


def cmd_table1(args: argparse.Namespace) -> int:
    """Print the Table I fleet specification."""
    report = table1_rows(_config_from(args))
    print("Table I: DCs number of servers and energy sources")
    for row in report["measured"]:
        print(
            f"  {row['dc']} {row['site']:<10} servers={row['servers']:<6} "
            f"PV={row['pv_kwp']:.1f} kWp  battery={row['battery_kwh']:.1f} kWh"
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Run the four-method comparison and print the summary table.

    With ``--seeds N > 1`` the comparison replicates over seeds
    ``seed .. seed+N-1`` and reports mean / 95 % CI per metric.
    """
    config = _config_from(args)
    if args.seeds > 1:
        pack = _pack_from(args, config)
        replicates = run_replicated_comparison(
            config,
            alpha=args.alpha,
            seeds=tuple(range(args.seed, args.seed + args.seeds)),
            orchestrator=_orchestrator_from(args),
            pack=pack,
            options=_options_from(args, pack),
        )
        print(format_replicated_comparison(replicates))
        return 0
    results = _comparison_from(args)
    print(format_comparison(results))
    print()
    print("normalized operational cost:")
    print(
        bar_chart(
            {
                result.policy_name: result.total_grid_cost_eur()
                for result in results
            },
            fmt="{:.2f}",
        )
    )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Regenerate every figure report (Figs. 1-6) plus ASCII panels."""
    results = _comparison_from(args)
    for report in all_figure_reports(results):
        print(render(report))
        print()
    print("hourly energy (GJ) per method:")
    print(
        series_panel(
            {
                result.policy_name: result.hourly_energy_joules() / 1e9
                for result in results
            }
        )
    )
    print()
    print("response-time distribution (Proposed, seconds):")
    proposed = results[0]
    print(histogram(proposed.response_samples()))
    return 0


def cmd_alpha(args: argparse.Namespace) -> int:
    """Sweep Eq. 5's alpha and mark the Pareto-efficient settings."""
    config = _config_from(args)
    alphas = tuple(float(a) for a in args.alphas.split(","))
    pack = _pack_from(args, config)
    points = alpha_sweep(
        config,
        alphas,
        orchestrator=_orchestrator_from(args),
        pack=pack,
        options=_options_from(args, pack),
    )
    front = {point.alpha for point in pareto_front(points)}
    print(
        f"{'alpha':>6} {'cost EUR':>10} {'energy GJ':>10} "
        f"{'p99 RT s':>9}  Pareto"
    )
    for point in points:
        marker = "*" if point.alpha in front else ""
        print(
            f"{point.alpha:>6.2f} {point.cost_eur:>10.2f} "
            f"{point.energy_gj:>10.3f} {point.response_p99_s:>9.4f}  {marker}"
        )
    return 0


def cmd_bound(args: argparse.Namespace) -> int:
    """Compare each policy's realized cost against the LP oracle."""
    config = _config_from(args)
    pack = _pack_from(args, config)
    bounds = comparison_bounds(
        config,
        alpha=args.alpha,
        orchestrator=_orchestrator_from(args),
        pack=pack,
        options=_options_from(args, pack),
    )
    print(
        f"{'policy':<12} {'cost EUR':>10} {'LP bound':>10} {'gap %':>7}"
    )
    for result, bound in bounds:
        print(
            f"{result.policy_name:<12} {bound.actual_cost_eur:>10.2f} "
            f"{bound.total_cost_eur:>10.2f} {bound.gap_pct:>7.1f}"
        )
    print(
        "\n(gap = how far the realized sourcing cost sits above the"
        " perfect-knowledge offline optimum for the same placement)"
    )
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """Run the workload-mix scenario study."""
    config = _config_from(args)
    pack = _pack_from(args, config)
    outcomes = run_scenarios(
        config,
        alpha=args.alpha,
        orchestrator=_orchestrator_from(args),
        pack=pack,
        options=_options_from(args, pack),
    )
    print(format_outcomes(outcomes))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Write every figure's data series to CSV files."""
    results = _comparison_from(args)
    written = export_all(results, args.directory)
    for path in written:
        print(f"wrote {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a sensitivity sweep (battery / qos / pv)."""
    config = _config_from(args)
    sweeps = {
        "battery": sweep_battery_scale,
        "qos": sweep_qos,
        "pv": sweep_pv_scale,
    }
    pack = _pack_from(args, config)
    rows = sweeps[args.parameter](
        config,
        orchestrator=_orchestrator_from(args),
        pack=pack,
        options=_options_from(args, pack),
    )
    print(format_rows(rows))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the shared experiment daemon until interrupted."""
    store = _open_store(args)
    if store.root is None:
        print(
            "warning: no --store root; serving from a memory-only store "
            "(results vanish with the daemon)",
            file=sys.stderr,
        )
    orchestrator = Orchestrator(
        store=store, jobs=args.jobs, workload_cache=args.workload_cache
    )
    daemon = ExperimentDaemon(
        orchestrator,
        host=args.host,
        port=args.port,
        max_body_bytes=args.max_body_mb << 20,
        daemon_id=args.daemon_id,
    )
    print(
        f"repro service listening on {daemon.url} "
        f"(id={daemon.daemon_id}, jobs={orchestrator.jobs}, store="
        f"{store.root if store.root else 'memory-only'})",
        file=sys.stderr,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        daemon.close()
    return 0


def _workload_cache_cell(stats: dict | None) -> str:
    """Compact per-member workload-cache column for ``fleet status``.

    ``hits/lookups @ MiB`` for an enabled cache, ``off`` when the
    member disabled it, ``-`` for old daemons that don't report one.
    """
    if not stats:
        return "-"
    if not stats.get("enabled"):
        return "off"
    hits = stats.get("hits", 0)
    lookups = hits + stats.get("misses", 0)
    mib = stats.get("bytes", 0) / (1 << 20)
    return f"{hits}/{lookups} @ {mib:.0f}MiB"


def _engine_modes_cell(counts: dict | None) -> str:
    """Compact per-member engine-mode column for ``fleet status``.

    ``slot:N,event:M`` (only modes actually seen, slot first), or
    ``-`` for old daemons that don't report the counts or members
    that haven't decoded a submission yet.
    """
    if not counts:
        return "-"
    order = {"slot": 0, "event": 1}
    modes = sorted(counts, key=lambda mode: (order.get(mode, 99), mode))
    return ",".join(f"{mode}:{counts[mode]}" for mode in modes)


def cmd_fleet_status(args: argparse.Namespace) -> int:
    """Probe every fleet member; exit 0 only when all are alive."""
    fleet = FleetClient(parse_fleet_spec(args.service))
    payload = fleet.status()["fleet"]
    print(
        f"{'member':<28} {'state':<6} {'daemon-id':<20} "
        f"{'jobs':>4} {'inflight':>8} {'queued':>6} {'wl-cache':>14} "
        f"{'engines':>14}"
    )
    for member in payload["members"]:
        if member["alive"]:
            print(
                f"{member['url']:<28} {'up':<6} "
                f"{member['daemon_id'] or '-':<20} "
                f"{member['jobs'] or 0:>4} {member['inflight'] or 0:>8} "
                f"{member['queue_depth'] or 0:>6} "
                f"{_workload_cache_cell(member.get('workload_cache')):>14} "
                f"{_engine_modes_cell(member.get('engine_modes')):>14}"
            )
        else:
            print(
                f"{member['url']:<28} {'down':<6} "
                f"{member['error'] or 'unreachable'}"
            )
    print(f"{payload['alive']}/{payload['total']} members alive")
    fleet.close()
    return 0 if payload["alive"] == payload["total"] else 1


def cmd_packs(args: argparse.Namespace) -> int:
    """List the registered workload trace packs."""
    print(f"{'name':<22} {'kind':<10} {'ver':>3}  sha256")
    for name, pack in available_packs().items():
        print(
            f"{name:<22} {pack.kind:<10} {pack.version:>3}  "
            f"{pack.sha256[:16]}"
        )
    return 0


def _suite_ledger_root(args: argparse.Namespace) -> pathlib.Path:
    """Where this suite campaign's ledger lives.

    Defaults to the store root (the manifest sits next to the
    documents it audits); ``--service`` runs have no local store, so
    they name a ledger root explicitly with ``--ledger``.
    """
    root = args.ledger or args.store or os.environ.get(STORE_ENV_VAR)
    if not root:
        raise SystemExit(
            "error: suite campaigns need a ledger root: pass --store DIR "
            "(in-process) or --ledger DIR (with --service)"
        )
    return pathlib.Path(root)


def _load_suite_or_exit(path: str):
    try:
        return load_suite(path)
    except SuiteSpecError as error:
        raise SystemExit(f"error: {error}") from None


def _run_suite(args: argparse.Namespace, resume: bool) -> int:
    spec = _load_suite_or_exit(args.spec)
    consumer = _orchestrator_from(args)
    driver = CampaignDriver(
        spec,
        consumer,
        _suite_ledger_root(args),
        echo=lambda line: print(line, file=sys.stderr),
    )
    try:
        report = driver.run(resume=resume)
    except (CampaignError, LedgerError) as error:
        raise SystemExit(f"error: {error}") from None
    print(report.summary())
    if spec.has_outputs and not args.no_outputs:
        out_dir = pathlib.Path(args.out or f"reports/suites/{spec.name}")
        try:
            written = generate_outputs(spec, consumer, out_dir)
        except OutputError as error:
            raise SystemExit(f"error: {error}") from None
        print(f"wrote {len(written)} output file(s) under {out_dir}")
    return 0


def cmd_suite_run(args: argparse.Namespace) -> int:
    """Execute a suite spec as a fresh campaign (plus its outputs)."""
    return _run_suite(args, resume=False)


def cmd_suite_resume(args: argparse.Namespace) -> int:
    """Continue an interrupted campaign, skipping store-verified work."""
    return _run_suite(args, resume=True)


def cmd_suite_status(args: argparse.Namespace) -> int:
    """Render per-campaign ledger progress (one line per campaign)."""
    spec = _load_suite_or_exit(args.spec) if args.spec else None
    root = _suite_ledger_root(args)
    try:
        states = campaign_status(root, spec)
    except LedgerError as error:
        raise SystemExit(f"error: {error}") from None
    if not states:
        print(f"no campaign ledgers under {root}")
        return 1
    print(
        f"{'campaign':<28} {'done':>6} {'total':>6} {'failed':>6}  state"
    )
    all_complete = True
    for state in states:
        counts = state.counts()
        if state.complete:
            label = "complete"
        elif counts["failed"]:
            label = "failed"
            all_complete = False
        else:
            label = "in progress"
            all_complete = False
        if state.torn_tail:
            label += " (torn tail)"
        print(
            f"{state.campaign_id or '?':<28} {counts['done']:>6} "
            f"{counts['total']:>6} {counts['failed']:>6}  {label}"
        )
    return 0 if all_complete else 1


def _store_backend_from(args: argparse.Namespace):
    """Open the backend the ``repro store`` flags point at."""
    root = args.store or os.environ.get(STORE_ENV_VAR)
    if not root:
        raise SystemExit(
            "error: no store root (pass --store DIR or set "
            f"${STORE_ENV_VAR})"
        )
    path = pathlib.Path(root)
    if not path.is_dir():
        raise SystemExit(f"error: store root {root!r} is not a directory")
    try:
        return open_backend(path, args.store_backend)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None


def _store_filters(args: argparse.Namespace) -> dict:
    return {
        "pack": args.pack,
        "pack_version": args.pack_version,
        "sha": args.sha,
        "fingerprint": args.fingerprint,
        "campaign": args.campaign,
    }


def cmd_store_ls(args: argparse.Namespace) -> int:
    """List store documents (filtered by pack name/version/sha)."""
    backend = _store_backend_from(args)
    rows = list_documents(backend, **_store_filters(args))
    print(
        f"{'fingerprint':<14} {'policy':<12} {'pack':<22} {'ver':>3}  "
        f"{'pack sha256':<14} {'shard':<14} campaign"
    )
    for info in rows:
        print(
            f"{info.fingerprint[:12]:<14} {info.policy or '-':<12} "
            f"{info.pack_name or '-':<22} "
            f"{info.pack_version if info.pack_version is not None else '-':>3}  "
            f"{(info.pack_sha256 or '-')[:12]:<14} {info.shard or '-':<14} "
            f"{info.campaign or '-'}"
        )
    print(f"{len(rows)} document(s) [{backend.format} backend]")
    return 0


def cmd_store_gc(args: argparse.Namespace) -> int:
    """Garbage-collect store documents matching the filters.

    Retention flags count as filters: ``--older-than 30d`` collects
    only documents at least that old, ``--keep-latest N`` spares the
    N newest documents of every pack name.
    """
    filters = _store_filters(args)
    if args.older_than is not None:
        try:
            filters["older_than"] = parse_age(args.older_than)
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
    filters["keep_latest"] = args.keep_latest
    if not args.all and not any(v is not None for v in filters.values()):
        raise SystemExit(
            "error: refusing to gc everything; pass a filter "
            "(--pack/--pack-version/--sha/--fingerprint/--campaign/"
            "--older-than/--keep-latest) or --all"
        )
    backend = _store_backend_from(args)
    doomed = collect_garbage(backend, dry_run=args.dry_run, **filters)
    verb = "would delete" if args.dry_run else "deleted"
    print(f"{verb} {len(doomed)} document(s)")
    return 0


def cmd_store_migrate(args: argparse.Namespace) -> int:
    """Convert a store root into another backend layout."""
    root = args.store or os.environ.get(STORE_ENV_VAR)
    if not root:
        raise SystemExit(
            "error: no source store root (pass --store DIR or set "
            f"${STORE_ENV_VAR})"
        )
    if not pathlib.Path(root).is_dir():
        raise SystemExit(f"error: store root {root!r} is not a directory")
    try:
        report = migrate_store(
            root, args.dest, to=args.to, source_backend=args.store_backend
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    print(
        f"migrated {report.migrated} document(s) to {args.to} backend "
        f"at {args.dest}"
    )
    if not report.verified:
        print(
            f"error: {len(report.mismatched)} document(s) did not "
            "round-trip bit-identically:",
            file=sys.stderr,
        )
        for fingerprint in report.mismatched[:10]:
            print(f"  {fingerprint}", file=sys.stderr)
        return 1
    print("verified: every document round-tripped bit-identically")
    return 0


def cmd_store_compact(args: argparse.Namespace) -> int:
    """Compact a segment store (reclaim tombstoned/duplicate records)."""
    backend = _store_backend_from(args)
    if not isinstance(backend, SegmentBackend):
        raise SystemExit(
            f"error: compact applies to segment stores; this root holds "
            f"a {backend.format!r} store"
        )
    kept = backend.compact()
    print(f"compacted to {kept} live document(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Pahlevan et al., DATE 2016.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--scale",
            choices=("tiny", "small", "paper"),
            default="small",
            help="fleet scale (paper = literal Table I; slow)",
        )
        sub.add_argument("--horizon", type=int, default=None)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--alpha", type=float, default=0.5)
        sub.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for uncached runs (1 = serial)",
        )
        sub.add_argument(
            "--seeds",
            type=int,
            default=1,
            help="replicate over N seeds and report mean/CI (compare)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="recompute even when the result store has the runs",
        )
        sub.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="persistent result-store root (default: $REPRO_RESULT_STORE)",
        )
        sub.add_argument(
            "--store-backend",
            default="auto",
            choices=("auto", *KNOWN_FORMATS),
            help="store layout for new roots (warm roots auto-detect)",
        )
        sub.add_argument(
            "--progress",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="stream completed/total run counts to stderr "
            "(default: on when stderr is a TTY)",
        )
        sub.add_argument(
            "--pack",
            default=None,
            metavar="NAME",
            help="registered workload trace pack (see the packs command)",
        )
        sub.add_argument(
            "--pack-csv",
            default=None,
            metavar="PATH",
            help="build a recorded trace pack from a utilization CSV",
        )
        sub.add_argument(
            "--service",
            default=None,
            metavar="URLS",
            help="resolve runs against 'repro serve' daemon(s) instead of "
            "in-process: one URL, URL1,URL2,... for a fleet, or @FILE "
            "with one URL per line (mutually exclusive with --store)",
        )
        sub.add_argument(
            "--engine",
            choices=("slot", "event"),
            default="slot",
            help="simulation driver: the slot-stepped reference loop or "
            "the discrete-event core (byte-identical slot ledgers plus "
            "per-request latency percentiles)",
        )
        sub.add_argument(
            "--workload-cache",
            type=int,
            default=None,
            metavar="N",
            help="workload materializations kept warm per process "
            "(0 disables the cache and its shared-memory fan-out; "
            "default: $REPRO_WORKLOAD_CACHE or 4); results are "
            "byte-identical either way",
        )

    table1 = subparsers.add_parser("table1", help="print Table I")
    add_common(table1)
    table1.set_defaults(func=cmd_table1)

    compare = subparsers.add_parser("compare", help="four-method comparison")
    add_common(compare)
    compare.set_defaults(func=cmd_compare)

    figures = subparsers.add_parser("figures", help="regenerate Figs. 1-6")
    add_common(figures)
    figures.set_defaults(func=cmd_figures)

    alpha = subparsers.add_parser("alpha", help="Eq. 5 alpha Pareto sweep")
    add_common(alpha)
    alpha.add_argument(
        "--alphas", default="0.1,0.3,0.5,0.7,0.9", help="comma-separated"
    )
    alpha.set_defaults(func=cmd_alpha)

    bound = subparsers.add_parser("bound", help="LP cost lower bound")
    add_common(bound)
    bound.set_defaults(func=cmd_bound)

    sweep = subparsers.add_parser("sweep", help="sensitivity sweeps")
    add_common(sweep)
    sweep.add_argument("parameter", choices=("battery", "qos", "pv"))
    sweep.set_defaults(func=cmd_sweep)

    scenarios = subparsers.add_parser(
        "scenarios", help="workload-mix scenario study"
    )
    add_common(scenarios)
    scenarios.set_defaults(func=cmd_scenarios)

    export = subparsers.add_parser(
        "export", help="write figure data to CSV files"
    )
    add_common(export)
    export.add_argument("directory", help="output directory for the CSVs")
    export.set_defaults(func=cmd_export)

    packs = subparsers.add_parser(
        "packs", help="list registered workload trace packs"
    )
    packs.set_defaults(func=cmd_packs)

    serve = subparsers.add_parser(
        "serve", help="run the shared experiment daemon"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8123, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for cache misses (1 = serial)",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result-store root (default: $REPRO_RESULT_STORE; "
        "unset = memory-only)",
    )
    serve.add_argument(
        "--store-backend",
        default="auto",
        choices=("auto", *KNOWN_FORMATS),
        help="store layout for new roots (warm roots auto-detect)",
    )
    serve.add_argument(
        "--max-body-mb",
        type=int,
        default=64,
        metavar="MB",
        help="reject request bodies larger than this with HTTP 413 "
        "(encoded recorded-trace packs are the big legitimate payload)",
    )
    serve.add_argument(
        "--daemon-id",
        default=None,
        metavar="ID",
        help="stable member identity for fleet provenance (default: the "
        "bound host:port); echoed in /healthz and /stats and stamped "
        "into every stored artifact's meta",
    )
    serve.add_argument(
        "--workload-cache",
        type=int,
        default=None,
        metavar="N",
        help="workload materializations kept warm per process across "
        "client requests (0 disables; default: $REPRO_WORKLOAD_CACHE "
        "or 4); counters surface in /stats as 'workload_cache'",
    )
    serve.set_defaults(func=cmd_serve)

    fleet = subparsers.add_parser(
        "fleet", help="fleet introspection (status)"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status", help="probe every member; exit 0 when all are alive"
    )
    fleet_status.add_argument(
        "--service",
        required=True,
        metavar="URLS",
        help="fleet members: URL1,URL2,... or @FILE with one URL per line",
    )
    fleet_status.set_defaults(func=cmd_fleet_status)

    suite = subparsers.add_parser(
        "suite",
        help="declarative experiment suites (run/resume/status)",
    )
    suite_sub = suite.add_subparsers(dest="suite_command", required=True)

    def add_suite_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="persistent result-store root (default: "
            "$REPRO_RESULT_STORE); the campaign ledger lives in its "
            "campaigns/ subdirectory",
        )
        sub.add_argument(
            "--store-backend",
            default="auto",
            choices=("auto", *KNOWN_FORMATS),
            help="store layout for new roots (warm roots auto-detect)",
        )
        sub.add_argument(
            "--service",
            default=None,
            metavar="URLS",
            help="execute through 'repro serve' daemon(s): one URL, "
            "URL1,URL2,... for a fleet, or @FILE (mutually exclusive "
            "with --store; pair with --ledger)",
        )
        sub.add_argument(
            "--ledger",
            default=None,
            metavar="DIR",
            help="campaign-ledger root override (required with "
            "--service, where no local store root exists)",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for uncached runs (1 = serial)",
        )
        sub.add_argument(
            "--no-cache",
            action="store_true",
            help="recompute even when the result store has the runs",
        )
        sub.add_argument(
            "--progress",
            action=argparse.BooleanOptionalAction,
            default=None,
            help="stream completed/total run counts to stderr "
            "(default: on when stderr is a TTY)",
        )
        sub.add_argument(
            "--workload-cache",
            type=int,
            default=None,
            metavar="N",
            help="workload materializations kept warm per process",
        )
        sub.add_argument(
            "--out",
            default=None,
            metavar="DIR",
            help="output directory for declared figures/tables "
            "(default: reports/suites/<suite-name>)",
        )
        sub.add_argument(
            "--no-outputs",
            action="store_true",
            help="run the campaign but skip the output stage",
        )

    suite_run = suite_sub.add_parser(
        "run", help="execute a suite spec as a campaign"
    )
    suite_run.add_argument("spec", help="suite spec (TOML)")
    add_suite_common(suite_run)
    suite_run.set_defaults(func=cmd_suite_run)

    suite_resume = suite_sub.add_parser(
        "resume",
        help="continue an interrupted campaign (skips store-verified "
        "fingerprints; zero re-execution)",
    )
    suite_resume.add_argument("spec", help="suite spec (TOML)")
    add_suite_common(suite_resume)
    suite_resume.set_defaults(func=cmd_suite_resume)

    suite_status = suite_sub.add_parser(
        "status", help="render per-campaign ledger progress"
    )
    suite_status.add_argument(
        "spec", nargs="?", default=None,
        help="suite spec (TOML); omit to list every campaign",
    )
    suite_status.add_argument(
        "--store", default=None, metavar="DIR",
        help="store root whose campaigns/ directory holds the ledgers",
    )
    suite_status.add_argument(
        "--ledger", default=None, metavar="DIR",
        help="campaign-ledger root override",
    )
    suite_status.set_defaults(func=cmd_suite_status)

    store = subparsers.add_parser(
        "store", help="result-store maintenance (ls/gc/migrate/compact)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    def add_store_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help="store root (default: $REPRO_RESULT_STORE)",
        )
        sub.add_argument(
            "--store-backend",
            default="auto",
            choices=("auto", *KNOWN_FORMATS),
            help="backend layout (default: auto-detect)",
        )

    def add_store_filters(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--pack", default=None, metavar="NAME",
            help="match documents whose workload pack has this name",
        )
        sub.add_argument(
            "--pack-version", type=int, default=None, metavar="N",
            help="match documents with this pack version",
        )
        sub.add_argument(
            "--sha", default=None, metavar="PREFIX",
            help="match documents whose pack content sha256 starts with this",
        )
        sub.add_argument(
            "--fingerprint", default=None, metavar="PREFIX",
            help="match documents whose run fingerprint starts with this",
        )
        sub.add_argument(
            "--campaign", default=None, metavar="ID",
            help="match documents stamped with this suite campaign id "
            "(in-process suite runs stamp it into the meta envelope)",
        )

    store_ls = store_sub.add_parser("ls", help="list store documents")
    add_store_common(store_ls)
    add_store_filters(store_ls)
    store_ls.set_defaults(func=cmd_store_ls)

    store_gc = store_sub.add_parser(
        "gc", help="garbage-collect store documents"
    )
    add_store_common(store_gc)
    add_store_filters(store_gc)
    store_gc.add_argument(
        "--older-than", default=None, metavar="AGE",
        help="only collect documents at least this old (e.g. 30d, 12h)",
    )
    store_gc.add_argument(
        "--keep-latest", type=int, default=None, metavar="N",
        help="spare the N newest documents of every pack name",
    )
    store_gc.add_argument(
        "--all", action="store_true",
        help="allow collecting with no filters (deletes everything)",
    )
    store_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be deleted without deleting",
    )
    store_gc.set_defaults(func=cmd_store_gc)

    store_migrate = store_sub.add_parser(
        "migrate", help="convert a store root to another backend layout"
    )
    add_store_common(store_migrate)
    store_migrate.add_argument(
        "--dest", required=True, metavar="DIR",
        help="destination store root (created if missing)",
    )
    store_migrate.add_argument(
        "--to", default="segment", choices=KNOWN_FORMATS,
        help="destination backend layout (default: segment)",
    )
    store_migrate.set_defaults(func=cmd_store_migrate)

    store_compact = store_sub.add_parser(
        "compact", help="compact a segment store"
    )
    add_store_common(store_compact)
    store_compact.set_defaults(func=cmd_store_compact)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Service-layer failures (daemon unreachable mid-command, a run that
    failed daemon-side) exit with a clean nonzero status and message
    instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    if getattr(args, "seeds", 1) > 1 and args.func is not cmd_compare:
        raise SystemExit(
            "error: --seeds replication applies to the compare command only"
        )
    try:
        return args.func(args)
    except ServiceError as error:
        raise SystemExit(f"error: {error}") from None
    except ServiceRunError as error:
        raise SystemExit(f"error: run failed on the service: {error}") from None


if __name__ == "__main__":
    raise SystemExit(main())
