"""Latency model: Equations 1-4 and Algorithm 1 of the paper.

The total (worst-case) latency for data converging on destination DC j
(Eq. 1) is::

    L_t^j = max_i (L_l^i + L_g^{i,j}) + L_l^j        (i != j)

with the source-local (Eq. 2), destination-local (Eq. 3) and global
(Eq. 4) terms.  The global term's *data latency* fragments the transfer
into one-second steps, resampling an effective bandwidth
``Be = (1 - BER) * Bbb`` each step (Algorithm 1) -- corrupted data must
be resent, so high-BER seconds move less data.

All latency results are in seconds; volumes are in MB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.ber import BERProcess
from repro.network.topology import GeoTopology
from repro.units import FIBER_LIGHT_SPEED, mb_to_bits


def global_data_latency(
    volume_mb: float,
    backbone_bps: float,
    ber_samples: "np.ndarray | BERSampler",
) -> float:
    """Algorithm 1: data latency (s) of a transfer under time-varying BER.

    Parameters
    ----------
    volume_mb:
        Volume to transfer.
    backbone_bps:
        Raw backbone bandwidth Bbb.
    ber_samples:
        Either a pre-drawn array of per-second BER values (cycled if the
        transfer outlives it) or a :class:`BERSampler`-like callable
        returning one BER per call.

    Returns
    -------
    float
        Seconds needed to push the volume through the lossy link.
    """
    if volume_mb < 0:
        raise ValueError("volume must be non-negative")
    if volume_mb == 0:
        return 0.0

    if isinstance(ber_samples, np.ndarray):
        samples = ber_samples
        if samples.size == 0:
            raise ValueError("ber_samples array must be non-empty")

        def next_ber(step: int) -> float:
            return float(samples[step % samples.size])

    else:

        def next_ber(step: int) -> float:
            return float(ber_samples())

    remaining_bits = mb_to_bits(volume_mb)
    latency = 0.0
    step = 0
    while True:
        effective_bps = (1.0 - next_ber(step)) * backbone_bps
        bits_this_second = effective_bps  # one-second fragments
        if remaining_bits <= bits_this_second:
            latency += remaining_bits / effective_bps
            return latency
        remaining_bits -= bits_this_second
        latency += 1.0
        step += 1


@dataclass(frozen=True)
class DestinationLatency:
    """Breakdown of Eq. 1 for one destination DC."""

    total_s: float
    worst_source: int | None
    source_terms: dict[int, float]
    dest_local_s: float


class LatencyModel:
    """Eq. 1-4 evaluator bound to a topology and a BER process."""

    def __init__(self, topology: GeoTopology, ber: BERProcess | None = None) -> None:
        self.topology = topology
        self.ber = ber or BERProcess()

    def source_local_latency(self, src: int, volume_mb: float) -> float:
        """Eq. 2: time for a source DC to push a volume to its uplink."""
        if volume_mb < 0:
            raise ValueError("volume must be non-negative")
        return mb_to_bits(volume_mb) / self.topology.local_bandwidth_bps(src)

    def dest_local_latency(self, dst: int, total_volume_mb: float) -> float:
        """Eq. 3: time for a destination to store all received data."""
        if total_volume_mb < 0:
            raise ValueError("volume must be non-negative")
        return mb_to_bits(total_volume_mb) / self.topology.local_bandwidth_bps(dst)

    def propagation_latency(self, src: int, dst: int) -> float:
        """Speed-of-light term of Eq. 4."""
        return self.topology.distance_m(src, dst) / FIBER_LIGHT_SPEED

    def global_latency(
        self, src: int, dst: int, volume_mb: float, slot: int
    ) -> float:
        """Eq. 4: propagation plus BER-aware data latency."""
        if src == dst:
            return 0.0
        rng = self.ber.link_rng(slot, src, dst)
        # Pre-draw a generous window of per-second BERs; Algorithm 1
        # cycles if the transfer runs longer.
        samples = np.asarray(self.ber.sample(rng, size=256), dtype=float)
        data_latency = global_data_latency(
            volume_mb, self.topology.backbone_bandwidth_bps, samples
        )
        return self.propagation_latency(src, dst) + data_latency

    def destination_latency(
        self, dst: int, volumes_from_mb: dict[int, float], slot: int
    ) -> DestinationLatency:
        """Eq. 1: worst-case total latency for data converging on ``dst``.

        Parameters
        ----------
        dst:
            Destination DC index.
        volumes_from_mb:
            Mapping source DC index -> MB sent toward ``dst`` this slot.
            Entries for ``dst`` itself (intra-DC data) contribute only
            to the destination-local term.
        slot:
            Slot index (selects the BER realization).
        """
        source_terms: dict[int, float] = {}
        total_in_mb = 0.0
        for src, volume in volumes_from_mb.items():
            if volume < 0:
                raise ValueError("volumes must be non-negative")
            if volume == 0.0:
                continue
            total_in_mb += volume
            if src == dst:
                continue
            source_terms[src] = self.source_local_latency(
                src, volume
            ) + self.global_latency(src, dst, volume, slot)

        worst_source = max(source_terms, key=source_terms.get, default=None)
        worst = source_terms[worst_source] if worst_source is not None else 0.0
        dest_local = self.dest_local_latency(dst, total_in_mb)
        return DestinationLatency(
            total_s=worst + dest_local,
            worst_source=worst_source,
            source_terms=source_terms,
            dest_local_s=dest_local,
        )

    def migration_latency(
        self, src: int, dst: int, volume_mb: float, slot: int
    ) -> float:
        """Latency to migrate VM images totalling ``volume_mb`` src->dst.

        Same path as data transfers: source-local, global, then
        destination-local storage write (Eq. 1 with a single source).
        """
        if src == dst or volume_mb == 0.0:
            return 0.0
        return (
            self.source_local_latency(src, volume_mb)
            + self.global_latency(src, dst, volume_mb, slot)
            + self.dest_local_latency(dst, volume_mb)
        )
