"""Network substrate: geo topology, BER process, latency model.

Implements Section III of the paper:

* a full-mesh backbone between DCs (100 Gb/s optical links) and
  intra-DC local links (10 Gb/s) used to reach network-attached storage,
* bit error rates drawn from the paper's categorical distribution
  (:mod:`repro.network.ber`),
* the total/worst-case destination latency of Eq. 1-4 and the
  BER-fragmented global data latency of Algorithm 1
  (:mod:`repro.network.latency`).
"""

from repro.network.ber import BER_DISTRIBUTION, BERProcess
from repro.network.latency import LatencyModel, global_data_latency
from repro.network.topology import GeoTopology, haversine_m

__all__ = [
    "BER_DISTRIBUTION",
    "BERProcess",
    "GeoTopology",
    "LatencyModel",
    "global_data_latency",
    "haversine_m",
]
