"""Bit-error-rate process for the wide-area links.

Section V-A: "Global links experience a BER that is chosen randomly
from the following distribution: 54% probability of 1e-6, 20% of 1e-5,
15% of 1e-4, 10% of 1e-3, and 1% of 1e-2."

BERs are drawn deterministically per (slot, link, step) so that every
policy compared in one experiment sees identical channel conditions.
"""

from __future__ import annotations

import numpy as np

from repro.seeding import rng_for

#: The paper's categorical BER distribution: (value, probability).
BER_DISTRIBUTION: tuple[tuple[float, float], ...] = (
    (1e-6, 0.54),
    (1e-5, 0.20),
    (1e-4, 0.15),
    (1e-3, 0.10),
    (1e-2, 0.01),
)

_BER_VALUES = np.array([value for value, _ in BER_DISTRIBUTION])
_BER_PROBS = np.array([prob for _, prob in BER_DISTRIBUTION])


class BERProcess:
    """Deterministic BER sampler for (slot, link) channels.

    Parameters
    ----------
    seed:
        Process root; two processes with the same seed produce the same
        channel realizations.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def link_rng(self, slot: int, src: int, dst: int) -> np.random.Generator:
        """RNG for one directed link during one slot."""
        return rng_for(self.seed, "ber", slot, src, dst)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw BER value(s) from the paper's distribution."""
        index = rng.choice(len(_BER_VALUES), size=size, p=_BER_PROBS)
        return _BER_VALUES[index]

    def slot_link_ber(self, slot: int, src: int, dst: int) -> float:
        """Representative BER of the (src -> dst) link during ``slot``."""
        return float(self.sample(self.link_rng(slot, src, dst)))

    def expected_ber(self) -> float:
        """Mean of the distribution (useful for analytic sanity checks)."""
        return float(np.dot(_BER_VALUES, _BER_PROBS))
