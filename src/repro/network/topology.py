"""Geographic full-mesh topology between data centers.

The paper connects its DCs "through 100 Gb/s full duplex peer-to-peer
optical fiber links" in a full mesh, with 10 Gb/s intra-DC links, and
feeds the latency model with the distance between sites and the speed
of light (Section III and V-A).

Distances are derived from site coordinates with the haversine formula
and multiplied by a routing factor, since fiber paths are longer than
great circles.
"""

from __future__ import annotations

import math

import numpy as np

from repro.datacenter.datacenter import DatacenterSpec

#: Mean Earth radius in meters.
EARTH_RADIUS_M = 6.371e6

#: Fiber routes are longer than the great circle; typical factor ~1.3.
DEFAULT_ROUTE_FACTOR = 1.3


def haversine_m(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance in meters between two (lat, lon) points."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


class GeoTopology:
    """Full-mesh backbone over a list of DC specs.

    Parameters
    ----------
    specs:
        The DC fleet, in index order.
    backbone_bandwidth_bps:
        Capacity of every inter-DC link (paper: 100 Gb/s).
    route_factor:
        Fiber-length multiplier over the great-circle distance.
    """

    def __init__(
        self,
        specs: list[DatacenterSpec],
        backbone_bandwidth_bps: float = 100.0e9,
        route_factor: float = DEFAULT_ROUTE_FACTOR,
    ) -> None:
        if len(specs) < 1:
            raise ValueError("at least one DC required")
        if backbone_bandwidth_bps <= 0:
            raise ValueError("backbone bandwidth must be positive")
        if route_factor < 1.0:
            raise ValueError("route_factor must be >= 1")
        self.specs = list(specs)
        self.backbone_bandwidth_bps = backbone_bandwidth_bps
        self.route_factor = route_factor
        n = len(specs)
        self._distances = np.zeros((n, n))
        for i in range(n):
            for j in range(n):
                if i != j:
                    self._distances[i, j] = route_factor * haversine_m(
                        specs[i].latitude,
                        specs[i].longitude,
                        specs[j].latitude,
                        specs[j].longitude,
                    )

    @property
    def n_dcs(self) -> int:
        """Number of data centers in the mesh."""
        return len(self.specs)

    def distance_m(self, src: int, dst: int) -> float:
        """Fiber distance between two DCs (0 for src == dst)."""
        return float(self._distances[src, dst])

    def local_bandwidth_bps(self, dc: int) -> float:
        """Intra-DC (storage) bandwidth B_L of a DC."""
        return self.specs[dc].local_bandwidth_bps

    def distance_matrix_m(self) -> np.ndarray:
        """Copy of the full fiber-distance matrix."""
        return self._distances.copy()
