"""State-of-the-art baselines the paper compares against (Section V-B).

* :class:`~repro.baselines.pri_aware.PriAwarePolicy` -- cost-aware
  placement (Gu et al., ICNC 2015): pack VMs into the DCs with the
  lowest current grid price.
* :class:`~repro.baselines.ener_aware.EnerAwarePolicy` -- energy-aware
  allocation (Kim et al., DATE 2013): FFD clustering across DCs plus
  correlation-aware local consolidation.
* :class:`~repro.baselines.net_aware.NetAwarePolicy` -- network-aware
  placement (Biran et al., CCGRID 2012, GH heuristic): keep
  communicating groups together while balancing traffic and load
  across DCs.

All baselines share the engine's green controller and respect the same
migration latency window, per the paper's experimental protocol.
"""

from repro.baselines.ener_aware import EnerAwarePolicy
from repro.baselines.net_aware import NetAwarePolicy
from repro.baselines.pri_aware import PriAwarePolicy

__all__ = ["EnerAwarePolicy", "NetAwarePolicy", "PriAwarePolicy"]
