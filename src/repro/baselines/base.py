"""Shared machinery for baseline policies.

Every baseline produces a *desired* DC per VM; the shared helpers here

* enforce the same hard migration-latency window the proposed method
  honors (accumulating migration volumes per link and checking Eq. 1
  per destination, like Algorithm 2 does), and
* build per-DC server allocations with a pluggable local allocator.

This keeps the comparison fair: baselines differ only in their
*placement decision rule*, not in the physics they are subjected to.
"""

from __future__ import annotations

import numpy as np

from repro.core.local import ServerAllocation
from repro.core.migration import MigrationMove, destination_within_constraint
from repro.sim.state import FleetPlacement, SlotObservation
from repro.units import gb_to_mb


def enforce_migration_constraint(
    observation: SlotObservation,
    desired: np.ndarray,
) -> tuple[dict[int, int], list[MigrationMove], list[int]]:
    """Turn a desired assignment into a latency-feasible one.

    New VMs take their desired DC directly (no WAN copy).  Existing VMs
    migrate in ascending image-size order (cheap moves first, which
    maximizes the number of executed migrations under the window);
    each candidate is checked against the *accumulated* migration
    volumes converging on its destination (Eq. 1).

    Returns
    -------
    (assignment, moves, rejected_vm_ids)
    """
    vms = observation.vms
    n_dcs = observation.n_dcs
    desired = np.asarray(desired, dtype=int)
    if desired.shape != (len(vms),):
        raise ValueError("desired must have one DC per alive VM")
    if len(vms) and (desired.min() < 0 or desired.max() >= n_dcs):
        raise ValueError("desired DCs out of range")

    previous = observation.previous_array()
    assignment: dict[int, int] = {}
    movers: list[int] = []
    for row, vm in enumerate(vms):
        if previous[row] < 0:
            assignment[vm.vm_id] = int(desired[row])
        else:
            assignment[vm.vm_id] = int(previous[row])
            if desired[row] != previous[row]:
                movers.append(row)

    movers.sort(key=lambda row: (vms[row].image_gb, vms[row].vm_id))
    volumes_mb = np.zeros((n_dcs, n_dcs))
    moves: list[MigrationMove] = []
    rejected: list[int] = []

    for row in movers:
        vm = vms[row]
        src, dst = int(previous[row]), int(desired[row])
        image_mb = gb_to_mb(vm.image_gb)
        volumes_mb[src, dst] += image_mb
        ok, _ = destination_within_constraint(
            observation.latency_model,
            volumes_mb,
            dst,
            observation.slot,
            observation.latency_constraint_s,
        )
        if ok:
            assignment[vm.vm_id] = dst
            moves.append(
                MigrationMove(vm_id=vm.vm_id, src_dc=src, dst_dc=dst, image_mb=image_mb)
            )
        else:
            volumes_mb[src, dst] -= image_mb
            rejected.append(vm.vm_id)

    return assignment, moves, rejected


def build_allocations(
    observation: SlotObservation,
    assignment: dict[int, int],
    allocator,
) -> list[ServerAllocation]:
    """Run the local ``allocator`` per DC over the final assignment.

    ``allocator`` has the signature of
    :func:`repro.core.local.allocate_first_fit`.
    """
    allocations = []
    for dc in observation.dcs:
        member_rows = [
            row
            for row, vm in enumerate(observation.vms)
            if assignment[vm.vm_id] == dc.index
        ]
        allocations.append(
            allocator(
                [observation.vms[row].vm_id for row in member_rows],
                observation.demand_traces[member_rows],
                dc.spec.server_model,
                dc.spec.n_servers,
            )
        )
    return allocations


def finish_placement(
    observation: SlotObservation,
    desired: np.ndarray,
    allocator,
    diagnostics: dict | None = None,
) -> FleetPlacement:
    """Constraint enforcement + local allocation, in one call."""
    assignment, moves, rejected = enforce_migration_constraint(observation, desired)
    placement = FleetPlacement(
        assignment=assignment,
        allocations=build_allocations(observation, assignment, allocator),
        moves=moves,
        diagnostics=dict(diagnostics or {}),
    )
    placement.diagnostics.setdefault("rejected_migrations", rejected)
    return placement


def dc_capacities_cores(
    observation: SlotObservation, headroom: float = 0.9
) -> np.ndarray:
    """Physical core capacity per DC, derated by a packing headroom."""
    if not 0.0 < headroom <= 1.0:
        raise ValueError("headroom must be in (0, 1]")
    return np.array(
        [dc.spec.total_capacity_cores * headroom for dc in observation.dcs]
    )
