"""Cost-aware baseline ("Pri-aware", Gu et al., ICNC 2015).

The cited work minimizes electricity cost by jointly optimizing VM
placement and request distribution with DC resizing.  Its decision rule,
as the paper characterizes it: "the VMs are packed and placed onto DCs
and servers with the lowest current grid price, but it neglects to
maximize free energies usage".

Reimplementation: each slot, DCs are ranked by their *current* grid
price (ascending); VMs -- sorted by decreasing load -- fill the cheapest
DC up to its derated core capacity, then the next, and so on.  The
local phase is a plain (correlation-blind) first-fit-decreasing with
conservative frequency sizing.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import dc_capacities_cores, finish_placement
from repro.core.local import allocate_first_fit
from repro.sim.state import FleetPlacement, PlacementPolicy, SlotObservation


class PriAwarePolicy(PlacementPolicy):
    """Pack VMs into the cheapest-grid-price DCs.

    Parameters
    ----------
    headroom:
        Fraction of each DC's core capacity the packer may fill (keeps
        a safety margin exactly like the other policies' caps).
    """

    name = "Pri-aware"

    def __init__(self, headroom: float = 0.9) -> None:
        self.headroom = headroom

    def place(self, observation: SlotObservation) -> FleetPlacement:
        """Greedy price-ordered packing, then plain FFD per DC."""
        n = len(observation.vms)
        capacities = dc_capacities_cores(observation, self.headroom)
        prices = np.array(
            [dc.grid_price_at(observation.slot) for dc in observation.dcs]
        )
        # Cheapest first; ties broken toward the larger DC.
        dc_order = sorted(
            range(observation.n_dcs),
            key=lambda dc: (prices[dc], -capacities[dc]),
        )

        loads = observation.loads()
        desired = np.zeros(n, dtype=int)
        remaining = capacities.copy()
        for row in np.argsort(-loads, kind="stable"):
            chosen = None
            for dc in dc_order:
                if loads[row] <= remaining[dc]:
                    chosen = dc
                    break
            if chosen is None:
                # Everything full: cheapest DC absorbs the overflow.
                chosen = dc_order[0]
            remaining[chosen] -= loads[row]
            desired[row] = chosen

        return finish_placement(
            observation,
            desired,
            allocate_first_fit,
            diagnostics={"dc_order": dc_order, "prices": prices.tolist()},
        )
