"""Network-aware baseline ("Net-aware", Biran et al., CCGRID 2012).

The cited work's GH (Greedy Heuristic) places communicating VM groups
so that network demand is balanced and intra-group traffic stays local;
the paper characterizes it as "load balancing across DCs which in turn
leads to better exploiting free energies [...] however, this algorithm
does not consider the electricity price diversities".

Reimplementation: VMs are grouped by their communication structure
(connected components of the pairwise-volume graph); groups -- heaviest
internal traffic first -- go to the DC with the largest remaining
*relative* capacity, which keeps chatty VMs co-located while balancing
total load/traffic.  The local phase is plain first-fit-decreasing
(the cited work does not do correlation-aware packing).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import dc_capacities_cores, finish_placement
from repro.core.local import allocate_first_fit
from repro.sim.state import FleetPlacement, PlacementPolicy, SlotObservation


def communication_groups(volumes: np.ndarray, threshold_mb: float = 0.0) -> list[list[int]]:
    """Connected components of the symmetrized volume graph.

    Rows/cols are positional VM indices; an edge exists where the
    bidirectional exchange exceeds ``threshold_mb``.  Singleton VMs form
    their own groups.
    """
    n = volumes.shape[0]
    exchanged = volumes + volumes.T
    visited = [False] * n
    groups: list[list[int]] = []
    for start in range(n):
        if visited[start]:
            continue
        stack = [start]
        visited[start] = True
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            neighbors = np.nonzero(exchanged[node] > threshold_mb)[0]
            for neighbor in neighbors:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    stack.append(int(neighbor))
        groups.append(sorted(component))
    return groups


class NetAwarePolicy(PlacementPolicy):
    """Traffic-group placement with load balancing across DCs.

    Parameters
    ----------
    headroom:
        Fraction of each DC's core capacity the balancer may fill.
    group_threshold_mb:
        Pairs exchanging less than this per slot do not bind VMs into
        the same placement group (filters out light background chatter
        that would otherwise merge everything into one component).
    """

    name = "Net-aware"

    def __init__(self, headroom: float = 0.9, group_threshold_mb: float = 2.0) -> None:
        self.headroom = headroom
        self.group_threshold_mb = group_threshold_mb

    def place(self, observation: SlotObservation) -> FleetPlacement:
        """Group-by-traffic, balance groups over DCs, plain FFD locally."""
        n = len(observation.vms)
        capacities = dc_capacities_cores(observation, self.headroom)
        loads = observation.loads()
        volumes = observation.volumes.volumes

        groups = communication_groups(volumes, self.group_threshold_mb)
        internal_traffic = []
        for group in groups:
            block = volumes[np.ix_(group, group)]
            internal_traffic.append(float(block.sum()))
        order = sorted(
            range(len(groups)), key=lambda g: -internal_traffic[g]
        )

        previous = observation.previous_array()
        desired = np.zeros(n, dtype=int)
        remaining = capacities.copy()
        for group_index in order:
            group = groups[group_index]
            group_load = float(loads[group].sum())
            feasible = np.nonzero(remaining >= group_load)[0]
            # Stability first (the cited heuristic is a *stable* placement):
            # a group stays in the DC hosting most of its members as long
            # as that DC still has room.
            home_votes = previous[group]
            home_votes = home_votes[home_votes >= 0]
            chosen = None
            if home_votes.size:
                home = int(np.bincount(home_votes, minlength=observation.n_dcs).argmax())
                if remaining[home] >= group_load:
                    chosen = home
            if chosen is None:
                # Most relative free capacity: the balancing rule.
                fractions = remaining / capacities
                chosen = int(np.argmax(fractions))
                if feasible.size:
                    chosen = int(feasible[np.argmax(fractions[feasible])])
            remaining[chosen] -= group_load
            for row in group:
                desired[row] = chosen

        return finish_placement(
            observation,
            desired,
            allocate_first_fit,
            diagnostics={"n_groups": len(groups)},
        )
