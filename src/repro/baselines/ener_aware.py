"""Energy-aware baseline ("Ener-aware", Kim et al., DATE 2013).

The cited work is a CPU-load-correlation-aware allocation for a single
DC.  Lifted to the geo-distributed setting exactly as the paper
describes it: "the Ener-aware approach first uses the FFD clustering
heuristic, placing VMs into the first DC in which its load capacity
fits, and then packs the VMs into the minimal number of active servers
based on the CPU-load correlation."

So the global step is first-fit-decreasing over a *fixed* DC order
(no price, renewable or network knowledge), and the local step is the
same correlation-aware consolidation + DVFS the proposed method uses
(:func:`repro.core.local.allocate_correlation_aware`).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import dc_capacities_cores, finish_placement
from repro.core.local import allocate_correlation_aware
from repro.sim.state import FleetPlacement, PlacementPolicy, SlotObservation


class EnerAwarePolicy(PlacementPolicy):
    """FFD DC clustering + correlation-aware local consolidation.

    Parameters
    ----------
    headroom:
        Fraction of each DC's core capacity FFD may fill.
    """

    name = "Ener-aware"

    def __init__(self, headroom: float = 0.9) -> None:
        self.headroom = headroom

    def place(self, observation: SlotObservation) -> FleetPlacement:
        """FFD over DCs in index order, then correlation-aware packing."""
        n = len(observation.vms)
        capacities = dc_capacities_cores(observation, self.headroom)
        loads = observation.loads()

        desired = np.zeros(n, dtype=int)
        remaining = capacities.copy()
        for row in np.argsort(-loads, kind="stable"):
            chosen = None
            for dc in range(observation.n_dcs):
                if loads[row] <= remaining[dc]:
                    chosen = dc
                    break
            if chosen is None:
                chosen = int(np.argmax(remaining))
            remaining[chosen] -= loads[row]
            desired[row] = chosen

        return finish_placement(observation, desired, allocate_correlation_aware)
