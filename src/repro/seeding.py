"""Deterministic hierarchical RNG derivation.

Every stochastic process in the library (traces, data volumes, BER,
weather) derives its generators from ``(root seed, tags...)`` tuples so
that runs are exactly reproducible and every placement policy compared
in one experiment sees the same realizations.  String tags are hashed
to 32-bit words because :class:`numpy.random.SeedSequence` only accepts
integer entropy.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _coerce(part: int | str) -> int:
    """Map a tag to a non-negative 32-bit integer, stably across runs."""
    if isinstance(part, str):
        digest = hashlib.blake2s(part.encode("utf-8"), digest_size=4).digest()
        return int.from_bytes(digest, "little")
    return int(part) & 0xFFFFFFFF


def seed_sequence(*parts: int | str) -> np.random.SeedSequence:
    """Build a :class:`~numpy.random.SeedSequence` from mixed tags."""
    if not parts:
        raise ValueError("at least one seed part required")
    return np.random.SeedSequence([_coerce(part) for part in parts])


def rng_for(*parts: int | str) -> np.random.Generator:
    """Deterministic generator for a tag tuple."""
    return np.random.default_rng(seed_sequence(*parts))
