"""Electricity tariffs.

Section V-A uses a "two-level real electricity price scenario" per DC,
with the sites spread over three time zones (Lisbon UTC+0, Zurich UTC+1,
Helsinki UTC+2).  :class:`TwoLevelTariff` models exactly that: a peak
price during a local-time daytime window and an off-peak price
otherwise.  The phase shift between sites is what the cost-aware
policies exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import SECONDS_PER_HOUR, joules_to_kwh


@dataclass(frozen=True)
class TwoLevelTariff:
    """Two-level (peak / off-peak) electricity tariff.

    Attributes
    ----------
    peak_price:
        Price during the peak window, EUR per kWh.
    offpeak_price:
        Price outside the window, EUR per kWh.
    peak_start_hour / peak_end_hour:
        Local-time peak window (start inclusive, end exclusive).
    tz_offset_hours:
        Site time zone relative to simulation time (UTC).
    """

    peak_price: float = 0.22
    offpeak_price: float = 0.11
    peak_start_hour: float = 8.0
    peak_end_hour: float = 22.0
    tz_offset_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_price < 0 or self.offpeak_price < 0:
            raise ValueError("prices must be non-negative")
        if not 0.0 <= self.peak_start_hour < 24.0:
            raise ValueError("peak_start_hour must be in [0, 24)")
        if not 0.0 < self.peak_end_hour <= 24.0:
            raise ValueError("peak_end_hour must be in (0, 24]")

    def local_hour(self, time_s: float | np.ndarray) -> float | np.ndarray:
        """Local hour of day at absolute UTC seconds (scalar or array)."""
        return (time_s / SECONDS_PER_HOUR + self.tz_offset_hours) % 24.0

    def is_peak(self, time_s: float | np.ndarray) -> bool | np.ndarray:
        """Whether the peak tariff applies at absolute UTC seconds.

        Accepts a scalar (returns ``bool``) or an array of times
        (returns a boolean array) -- the fleet-batched green controller
        evaluates a whole slot's step times in one call.
        """
        hour = self.local_hour(time_s)
        if self.peak_start_hour <= self.peak_end_hour:
            return (self.peak_start_hour <= hour) & (hour < self.peak_end_hour)
        # Window wrapping midnight.
        return (hour >= self.peak_start_hour) | (hour < self.peak_end_hour)

    def price_per_kwh(self, time_s: float | np.ndarray) -> float | np.ndarray:
        """EUR per kWh at absolute UTC seconds (scalar or array)."""
        peak = self.is_peak(time_s)
        if isinstance(peak, np.ndarray):
            return np.where(peak, self.peak_price, self.offpeak_price)
        return self.peak_price if peak else self.offpeak_price

    def price_at_slot(self, slot: int) -> float:
        """EUR per kWh during hour-slot ``slot`` (evaluated mid-slot)."""
        return self.price_per_kwh((slot + 0.5) * SECONDS_PER_HOUR)

    def cost_of(
        self, joules: float | np.ndarray, time_s: float | np.ndarray
    ) -> float | np.ndarray:
        """Cost in EUR of drawing ``joules`` from the grid at a time.

        Scalar or array in both arguments (broadcast elementwise); the
        array path multiplies the exact same per-element factors as the
        scalar path, so batched costs are bit-identical to per-step
        scalar calls.
        """
        if np.any(np.asarray(joules) < 0):
            raise ValueError("energy must be non-negative")
        return joules_to_kwh(joules) * self.price_per_kwh(time_s)
