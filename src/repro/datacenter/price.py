"""Electricity tariffs.

Section V-A uses a "two-level real electricity price scenario" per DC,
with the sites spread over three time zones (Lisbon UTC+0, Zurich UTC+1,
Helsinki UTC+2).  :class:`TwoLevelTariff` models exactly that: a peak
price during a local-time daytime window and an off-peak price
otherwise.  The phase shift between sites is what the cost-aware
policies exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import SECONDS_PER_HOUR, joules_to_kwh


@dataclass(frozen=True)
class TwoLevelTariff:
    """Two-level (peak / off-peak) electricity tariff.

    Attributes
    ----------
    peak_price:
        Price during the peak window, EUR per kWh.
    offpeak_price:
        Price outside the window, EUR per kWh.
    peak_start_hour / peak_end_hour:
        Local-time peak window (start inclusive, end exclusive).
    tz_offset_hours:
        Site time zone relative to simulation time (UTC).
    """

    peak_price: float = 0.22
    offpeak_price: float = 0.11
    peak_start_hour: float = 8.0
    peak_end_hour: float = 22.0
    tz_offset_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_price < 0 or self.offpeak_price < 0:
            raise ValueError("prices must be non-negative")
        if not 0.0 <= self.peak_start_hour < 24.0:
            raise ValueError("peak_start_hour must be in [0, 24)")
        if not 0.0 < self.peak_end_hour <= 24.0:
            raise ValueError("peak_end_hour must be in (0, 24]")

    def local_hour(self, time_s: float) -> float:
        """Local hour of day at absolute UTC seconds."""
        return (time_s / SECONDS_PER_HOUR + self.tz_offset_hours) % 24.0

    def is_peak(self, time_s: float) -> bool:
        """Whether the peak tariff applies at absolute UTC seconds."""
        hour = self.local_hour(time_s)
        if self.peak_start_hour <= self.peak_end_hour:
            return self.peak_start_hour <= hour < self.peak_end_hour
        # Window wrapping midnight.
        return hour >= self.peak_start_hour or hour < self.peak_end_hour

    def price_per_kwh(self, time_s: float) -> float:
        """EUR per kWh at absolute UTC seconds."""
        return self.peak_price if self.is_peak(time_s) else self.offpeak_price

    def price_at_slot(self, slot: int) -> float:
        """EUR per kWh during hour-slot ``slot`` (evaluated mid-slot)."""
        return self.price_per_kwh((slot + 0.5) * SECONDS_PER_HOUR)

    def cost_of(self, joules: float, time_s: float) -> float:
        """Cost in EUR of drawing ``joules`` from the grid at a time."""
        if joules < 0:
            raise ValueError("energy must be non-negative")
        return joules_to_kwh(joules) * self.price_per_kwh(time_s)
