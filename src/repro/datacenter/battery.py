"""Lithium-ion battery bank model.

Table I gives each DC a battery capacity (960/720/480 kWh) "with 50% of
DoD, keeping the remaining capacity in case of outage".  The bank is
modeled with:

* a depth-of-discharge floor: only ``capacity * dod`` is usable;
* charge/discharge efficiencies (round-trip losses);
* C-rate limits on charge and discharge power.

All amounts are Joules at the battery terminals; :meth:`discharge`
returns the energy *delivered to the load* and :meth:`charge` accepts
the energy *taken from the source*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units import kwh_to_joules


@dataclass
class Battery:
    """A stateful battery bank.

    Attributes
    ----------
    capacity_joules:
        Nameplate capacity.
    dod:
        Usable fraction (depth of discharge); the floor below which the
        bank never discharges is ``capacity * (1 - dod)``.
    charge_efficiency / discharge_efficiency:
        One-way efficiencies.
    max_c_rate:
        Maximum charge/discharge power as a multiple of capacity per
        hour (0.5 C means a full charge takes two hours).
    soc_joules:
        Current state of charge; defaults to full.
    """

    capacity_joules: float
    dod: float = 0.5
    charge_efficiency: float = 0.95
    discharge_efficiency: float = 0.95
    max_c_rate: float = 0.5
    soc_joules: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.capacity_joules < 0:
            raise ValueError("capacity must be non-negative")
        if not 0.0 < self.dod <= 1.0:
            raise ValueError("dod must be in (0, 1]")
        if not 0.0 < self.charge_efficiency <= 1.0:
            raise ValueError("charge_efficiency must be in (0, 1]")
        if not 0.0 < self.discharge_efficiency <= 1.0:
            raise ValueError("discharge_efficiency must be in (0, 1]")
        if self.max_c_rate <= 0:
            raise ValueError("max_c_rate must be positive")
        if self.soc_joules < 0:
            self.soc_joules = self.capacity_joules
        if self.soc_joules > self.capacity_joules:
            raise ValueError("soc cannot exceed capacity")

    @classmethod
    def from_kwh(cls, capacity_kwh: float, **kwargs) -> "Battery":
        """Build a bank from a kWh nameplate (Table I units)."""
        return cls(capacity_joules=kwh_to_joules(capacity_kwh), **kwargs)

    @property
    def floor_joules(self) -> float:
        """SoC below which the bank never discharges (outage reserve)."""
        return self.capacity_joules * (1.0 - self.dod)

    @property
    def usable_joules(self) -> float:
        """Energy deliverable to the load right now (efficiency included)."""
        above_floor = max(self.soc_joules - self.floor_joules, 0.0)
        return above_floor * self.discharge_efficiency

    @property
    def headroom_joules(self) -> float:
        """Energy the bank can still absorb (at the terminals)."""
        return self.capacity_joules - self.soc_joules

    def max_discharge_joules(self, duration_s: float) -> float:
        """Deliverable energy over ``duration_s`` given the C-rate limit."""
        rate_limit = self.max_c_rate * self.capacity_joules * duration_s / 3600.0
        return min(self.usable_joules, rate_limit * self.discharge_efficiency)

    def max_charge_joules(self, duration_s: float) -> float:
        """Acceptable source energy over ``duration_s`` (C-rate limited)."""
        rate_limit = self.max_c_rate * self.capacity_joules * duration_s / 3600.0
        if self.charge_efficiency == 0:
            return 0.0
        return min(self.headroom_joules / self.charge_efficiency, rate_limit)

    def discharge(self, requested_joules: float, duration_s: float = 3600.0) -> float:
        """Discharge toward a load request; returns energy delivered."""
        if requested_joules < 0:
            raise ValueError("requested energy must be non-negative")
        deliverable = min(requested_joules, self.max_discharge_joules(duration_s))
        self.soc_joules -= deliverable / self.discharge_efficiency
        return deliverable

    def charge(self, offered_joules: float, duration_s: float = 3600.0) -> float:
        """Charge from an offered source energy; returns energy consumed."""
        if offered_joules < 0:
            raise ValueError("offered energy must be non-negative")
        accepted = min(offered_joules, self.max_charge_joules(duration_s))
        self.soc_joules += accepted * self.charge_efficiency
        return accepted

    def clone(self) -> "Battery":
        """Independent copy with the same parameters and SoC."""
        return Battery(
            capacity_joules=self.capacity_joules,
            dod=self.dod,
            charge_efficiency=self.charge_efficiency,
            discharge_efficiency=self.discharge_efficiency,
            max_c_rate=self.max_c_rate,
            soc_joules=self.soc_joules,
        )


class BatteryArray:
    """Struct-of-arrays view over several banks, for fleet batching.

    The fleet-batched green controller steps every DC's battery at
    once; this class holds the banks' parameters and states of charge
    as parallel arrays and exposes batch variants of
    :meth:`Battery.charge` / :meth:`Battery.discharge` /
    :meth:`Battery.max_charge_joules`.  Every method applies, per
    element, the *same* floating-point expressions in the *same* order
    as the scalar :class:`Battery`, so stepping N banks through one
    :class:`BatteryArray` is bit-identical to stepping N ``Battery``
    objects one by one.

    State is copied in at construction and written back with
    :meth:`store_to`; a zero request/offer leaves an element's SoC
    bit-identical (``x + 0.0 == x`` for the non-negative finite SoC
    range), matching a scalar bank that was never called.
    """

    def __init__(self, batteries: list[Battery]) -> None:
        self.capacity_joules = np.array(
            [battery.capacity_joules for battery in batteries], dtype=float
        )
        self.dod = np.array([battery.dod for battery in batteries], dtype=float)
        self.charge_efficiency = np.array(
            [battery.charge_efficiency for battery in batteries], dtype=float
        )
        self.discharge_efficiency = np.array(
            [battery.discharge_efficiency for battery in batteries], dtype=float
        )
        self.max_c_rate = np.array(
            [battery.max_c_rate for battery in batteries], dtype=float
        )
        self.soc_joules = np.array(
            [battery.soc_joules for battery in batteries], dtype=float
        )
        #: The SoC floor is a pure function of the (fixed) capacity
        #: and DoD arrays; computing it once keeps it off the per-step
        #: path without changing a single bit.
        self._floor_joules = self.capacity_joules * (1.0 - self.dod)
        #: Per-duration C-rate limits; the fleet kernel calls with one
        #: fixed step duration, so the three-op limit expression is
        #: computed once, not once per step.
        self._rate_cache: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    @classmethod
    def from_batteries(cls, batteries: list[Battery]) -> "BatteryArray":
        """Batch view over ``batteries`` (states copied, not aliased)."""
        return cls(batteries)

    def __len__(self) -> int:
        return self.soc_joules.size

    @property
    def floor_joules(self) -> np.ndarray:
        """Per-bank SoC floor (outage reserve), as in :class:`Battery`."""
        return self._floor_joules

    def _rate_limits(self, duration_s: float) -> tuple[np.ndarray, np.ndarray]:
        """C-rate energy limits over ``duration_s``: (raw, discharge)."""
        cached = self._rate_cache.get(duration_s)
        if cached is None:
            rate_limit = self.max_c_rate * self.capacity_joules * duration_s / 3600.0
            cached = (rate_limit, rate_limit * self.discharge_efficiency)
            self._rate_cache[duration_s] = cached
        return cached

    def max_charge_joules(self, duration_s: float) -> np.ndarray:
        """Batch :meth:`Battery.max_charge_joules` (source energy)."""
        rate_limit, _ = self._rate_limits(duration_s)
        headroom = self.capacity_joules - self.soc_joules
        return np.minimum(headroom / self.charge_efficiency, rate_limit)

    def max_discharge_joules(self, duration_s: float) -> np.ndarray:
        """Batch :meth:`Battery.max_discharge_joules` (load energy)."""
        _, rate_discharge = self._rate_limits(duration_s)
        above_floor = np.maximum(self.soc_joules - self._floor_joules, 0.0)
        usable = above_floor * self.discharge_efficiency
        return np.minimum(usable, rate_discharge)

    def charge(
        self,
        offered_joules: np.ndarray,
        duration_s: float = 3600.0,
        max_joules: np.ndarray | None = None,
        out: np.ndarray | None = None,
        check: bool = True,
    ) -> np.ndarray:
        """Batch :meth:`Battery.charge`; returns energy consumed per bank.

        ``max_joules`` may pass a precomputed
        :meth:`max_charge_joules` for the *current* SoC (the fleet
        kernel already needs it to size grid-charge offers); when
        omitted it is computed here, exactly like the scalar method.
        ``out`` receives the accepted energies (a ledger row in the
        fleet kernel), and ``check=False`` skips the non-negativity
        guard for callers whose offers are non-negative by
        construction -- both are per-step hot-path micro-knobs that do
        not change a single result bit.
        """
        if check and np.any(offered_joules < 0):
            raise ValueError("offered energy must be non-negative")
        if max_joules is None:
            max_joules = self.max_charge_joules(duration_s)
        accepted = np.minimum(offered_joules, max_joules, out=out)
        np.add(
            self.soc_joules,
            accepted * self.charge_efficiency,
            out=self.soc_joules,
        )
        return accepted

    def discharge(
        self,
        requested_joules: np.ndarray,
        duration_s: float = 3600.0,
        out: np.ndarray | None = None,
        check: bool = True,
    ) -> np.ndarray:
        """Batch :meth:`Battery.discharge`; returns energy delivered.

        ``out`` / ``check`` are the same hot-path knobs as on
        :meth:`charge`.
        """
        if check and np.any(requested_joules < 0):
            raise ValueError("requested energy must be non-negative")
        deliverable = np.minimum(
            requested_joules, self.max_discharge_joules(duration_s), out=out
        )
        np.subtract(
            self.soc_joules,
            deliverable / self.discharge_efficiency,
            out=self.soc_joules,
        )
        return deliverable

    def store_to(self, batteries: list[Battery]) -> None:
        """Write the batch SoC back into the scalar banks."""
        if len(batteries) != len(self):
            raise ValueError("battery count mismatch")
        for battery, soc in zip(batteries, self.soc_joules):
            battery.soc_joules = float(soc)
