"""Lithium-ion battery bank model.

Table I gives each DC a battery capacity (960/720/480 kWh) "with 50% of
DoD, keeping the remaining capacity in case of outage".  The bank is
modeled with:

* a depth-of-discharge floor: only ``capacity * dod`` is usable;
* charge/discharge efficiencies (round-trip losses);
* C-rate limits on charge and discharge power.

All amounts are Joules at the battery terminals; :meth:`discharge`
returns the energy *delivered to the load* and :meth:`charge` accepts
the energy *taken from the source*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import kwh_to_joules


@dataclass
class Battery:
    """A stateful battery bank.

    Attributes
    ----------
    capacity_joules:
        Nameplate capacity.
    dod:
        Usable fraction (depth of discharge); the floor below which the
        bank never discharges is ``capacity * (1 - dod)``.
    charge_efficiency / discharge_efficiency:
        One-way efficiencies.
    max_c_rate:
        Maximum charge/discharge power as a multiple of capacity per
        hour (0.5 C means a full charge takes two hours).
    soc_joules:
        Current state of charge; defaults to full.
    """

    capacity_joules: float
    dod: float = 0.5
    charge_efficiency: float = 0.95
    discharge_efficiency: float = 0.95
    max_c_rate: float = 0.5
    soc_joules: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.capacity_joules < 0:
            raise ValueError("capacity must be non-negative")
        if not 0.0 < self.dod <= 1.0:
            raise ValueError("dod must be in (0, 1]")
        if not 0.0 < self.charge_efficiency <= 1.0:
            raise ValueError("charge_efficiency must be in (0, 1]")
        if not 0.0 < self.discharge_efficiency <= 1.0:
            raise ValueError("discharge_efficiency must be in (0, 1]")
        if self.max_c_rate <= 0:
            raise ValueError("max_c_rate must be positive")
        if self.soc_joules < 0:
            self.soc_joules = self.capacity_joules
        if self.soc_joules > self.capacity_joules:
            raise ValueError("soc cannot exceed capacity")

    @classmethod
    def from_kwh(cls, capacity_kwh: float, **kwargs) -> "Battery":
        """Build a bank from a kWh nameplate (Table I units)."""
        return cls(capacity_joules=kwh_to_joules(capacity_kwh), **kwargs)

    @property
    def floor_joules(self) -> float:
        """SoC below which the bank never discharges (outage reserve)."""
        return self.capacity_joules * (1.0 - self.dod)

    @property
    def usable_joules(self) -> float:
        """Energy deliverable to the load right now (efficiency included)."""
        above_floor = max(self.soc_joules - self.floor_joules, 0.0)
        return above_floor * self.discharge_efficiency

    @property
    def headroom_joules(self) -> float:
        """Energy the bank can still absorb (at the terminals)."""
        return self.capacity_joules - self.soc_joules

    def max_discharge_joules(self, duration_s: float) -> float:
        """Deliverable energy over ``duration_s`` given the C-rate limit."""
        rate_limit = self.max_c_rate * self.capacity_joules * duration_s / 3600.0
        return min(self.usable_joules, rate_limit * self.discharge_efficiency)

    def max_charge_joules(self, duration_s: float) -> float:
        """Acceptable source energy over ``duration_s`` (C-rate limited)."""
        rate_limit = self.max_c_rate * self.capacity_joules * duration_s / 3600.0
        if self.charge_efficiency == 0:
            return 0.0
        return min(self.headroom_joules / self.charge_efficiency, rate_limit)

    def discharge(self, requested_joules: float, duration_s: float = 3600.0) -> float:
        """Discharge toward a load request; returns energy delivered."""
        if requested_joules < 0:
            raise ValueError("requested energy must be non-negative")
        deliverable = min(requested_joules, self.max_discharge_joules(duration_s))
        self.soc_joules -= deliverable / self.discharge_efficiency
        return deliverable

    def charge(self, offered_joules: float, duration_s: float = 3600.0) -> float:
        """Charge from an offered source energy; returns energy consumed."""
        if offered_joules < 0:
            raise ValueError("offered energy must be non-negative")
        accepted = min(offered_joules, self.max_charge_joules(duration_s))
        self.soc_joules += accepted * self.charge_efficiency
        return accepted

    def clone(self) -> "Battery":
        """Independent copy with the same parameters and SoC."""
        return Battery(
            capacity_joules=self.capacity_joules,
            dod=self.dod,
            charge_efficiency=self.charge_efficiency,
            discharge_efficiency=self.discharge_efficiency,
            max_c_rate=self.max_c_rate,
            soc_joules=self.soc_joules,
        )
