"""The data-center aggregate: fleet + energy sources + site properties.

A :class:`DatacenterSpec` is the static description (Table I row plus
site attributes); a :class:`Datacenter` adds the mutable state used
during simulation (battery charge, forecaster history).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datacenter.battery import Battery
from repro.datacenter.forecast import WCMAForecaster
from repro.datacenter.price import TwoLevelTariff
from repro.datacenter.pue import FreeCoolingPUE
from repro.datacenter.pv import PVArray
from repro.datacenter.server import XEON_E5410, ServerModel
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class DatacenterSpec:
    """Static description of one data center.

    Attributes
    ----------
    name:
        Human-readable site name (e.g. "Lisbon").
    latitude / longitude:
        Site coordinates in degrees; the network model derives
        inter-DC distances from them.
    n_servers:
        Number of (homogeneous) servers.
    server_model:
        The server type (paper: Xeon E5410).
    pv_kwp:
        PV nameplate in kW-peak.
    battery_kwh:
        Battery nameplate in kWh.
    tariff:
        The site's electricity tariff.
    pue_model:
        The site's free-cooling PUE model.
    local_bandwidth_bps:
        Intra-DC (storage access) bandwidth B_L, bits per second.
    tz_offset_hours:
        Site time zone relative to simulation UTC.
    """

    name: str
    latitude: float
    longitude: float
    n_servers: int
    server_model: ServerModel = XEON_E5410
    pv_kwp: float = 0.0
    battery_kwh: float = 0.0
    tariff: TwoLevelTariff = field(default_factory=TwoLevelTariff)
    pue_model: FreeCoolingPUE = field(default_factory=FreeCoolingPUE)
    local_bandwidth_bps: float = 10.0e9
    tz_offset_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError("latitude out of range")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError("longitude out of range")
        if self.local_bandwidth_bps <= 0:
            raise ValueError("local bandwidth must be positive")

    @property
    def total_capacity_cores(self) -> float:
        """Fleet CPU capacity in core units at the highest frequency."""
        return self.n_servers * self.server_model.max_capacity

    def max_it_power_watts(self) -> float:
        """Fleet IT power with every server at peak (highest level)."""
        return self.n_servers * self.server_model.levels[-1].peak_watts

    def max_slot_energy_joules(self) -> float:
        """Upper bound on facility energy in one slot (peak PUE guess)."""
        return self.max_it_power_watts() * self.pue_model.ceiling * SECONDS_PER_HOUR


class Datacenter:
    """A data center with live state (battery, forecaster).

    Parameters
    ----------
    spec:
        The static description.
    index:
        Position of this DC in the fleet (stable across the run; the
        placement vectors index DCs by this number).
    seed:
        Site randomness root (weather).
    """

    def __init__(self, spec: DatacenterSpec, index: int, seed: int = 0) -> None:
        self.spec = spec
        self.index = index
        self.pv = PVArray(
            kwp=spec.pv_kwp,
            tz_offset_hours=spec.tz_offset_hours,
            seed=seed + index,
        )
        self.battery = Battery.from_kwh(spec.battery_kwh) if spec.battery_kwh else (
            Battery(capacity_joules=0.0)
        )
        self.forecaster = WCMAForecaster(self.pv)
        #: Facility energy consumed during the previous slot (Joules);
        #: the last-value demand predictor reads this.
        self.last_slot_energy_joules: float = 0.0

    @property
    def name(self) -> str:
        """Site name from the spec."""
        return self.spec.name

    def renewable_forecast_joules(self, slot: int) -> float:
        """WCMA forecast of PV energy for the upcoming slot."""
        return self.forecaster.forecast(slot)

    def grid_price_at(self, slot: int) -> float:
        """EUR/kWh during ``slot``."""
        return self.spec.tariff.price_at_slot(slot)

    def record_slot(self, slot: int, facility_energy_joules: float,
                    pv_energy_joules: float) -> None:
        """Bookkeeping after a slot: feed forecaster + demand predictor."""
        if facility_energy_joules < 0 or pv_energy_joules < 0:
            raise ValueError("energies must be non-negative")
        self.forecaster.record(slot, pv_energy_joules)
        self.last_slot_energy_joules = facility_energy_joules
