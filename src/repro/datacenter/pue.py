"""Time-varying PUE (Power Usage Effectiveness) model.

The paper uses "a time-varying PUE model, as in [20]" (Kim et al.,
HPCS 2012: free-cooling-aware power management).  The defining property
of a free-cooling PUE is that cooling overhead tracks outside
temperature: when the ambient is below the free-cooling threshold the
chillers are off and PUE approaches the electrical-losses floor; above
it, the overhead grows with the temperature excess.

This module models each site's ambient temperature as a daily sinusoid
around a site mean (with a small seasonal-free weekly wobble) and maps
temperature to PUE piecewise-linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class FreeCoolingPUE:
    """Free-cooling PUE as a function of time.

    Attributes
    ----------
    mean_temp_c:
        Site's mean ambient temperature.
    daily_swing_c:
        Peak-to-mean amplitude of the daily temperature wave.
    free_cooling_threshold_c:
        Below this ambient, cooling runs free (PUE = ``floor``).
    floor:
        PUE with chillers off (electrical distribution losses only).
    slope_per_c:
        PUE increase per degree above the threshold.
    ceiling:
        Upper clamp for the PUE.
    tz_offset_hours:
        Local time zone; temperature peaks mid-afternoon local time.
    """

    mean_temp_c: float = 15.0
    daily_swing_c: float = 6.0
    free_cooling_threshold_c: float = 16.0
    floor: float = 1.12
    slope_per_c: float = 0.035
    ceiling: float = 1.8
    tz_offset_hours: float = 0.0

    def ambient_c(self, time_s: float | np.ndarray) -> np.ndarray:
        """Ambient temperature at absolute simulation time (seconds, UTC)."""
        hours = np.asarray(time_s, dtype=float) / SECONDS_PER_HOUR
        local = hours + self.tz_offset_hours
        # Daily wave peaking at 15:00 local; mild multi-day wobble.
        daily = self.daily_swing_c * np.cos(2.0 * np.pi * (local - 15.0) / 24.0)
        wobble = 1.5 * np.sin(2.0 * np.pi * local / (24.0 * 5.3))
        return self.mean_temp_c + daily + wobble

    def pue(self, time_s: float | np.ndarray) -> np.ndarray:
        """PUE at absolute simulation time (seconds, UTC)."""
        excess = np.maximum(
            self.ambient_c(time_s) - self.free_cooling_threshold_c, 0.0
        )
        return np.minimum(self.floor + self.slope_per_c * excess, self.ceiling)

    def facility_power(
        self, it_watts: float | np.ndarray, time_s: float | np.ndarray
    ) -> np.ndarray:
        """Total facility power (W) for an IT power draw at a time."""
        return np.asarray(it_watts, dtype=float) * self.pue(time_s)


def fleet_pue(
    models: list[FreeCoolingPUE], time_s: np.ndarray
) -> np.ndarray:
    """PUE of several sites at shared times, one 2-D broadcast.

    Returns shape ``(len(models),) + times.shape``; row ``i`` is
    bit-identical to ``models[i].pue(time_s)`` -- the broadcast
    evaluates the exact per-element expressions of
    :meth:`FreeCoolingPUE.ambient_c` / :meth:`FreeCoolingPUE.pue` with
    the per-site parameters lifted into column vectors.
    """
    times = np.asarray(time_s, dtype=float)
    if not models:
        return np.zeros((0,) + times.shape)
    shape = (len(models),) + (1,) * times.ndim

    def column(attribute: str) -> np.ndarray:
        return np.array(
            [getattr(model, attribute) for model in models]
        ).reshape(shape)

    hours = times / SECONDS_PER_HOUR
    local = hours + column("tz_offset_hours")
    daily = column("daily_swing_c") * np.cos(
        2.0 * np.pi * (local - 15.0) / 24.0
    )
    wobble = 1.5 * np.sin(2.0 * np.pi * local / (24.0 * 5.3))
    ambient = column("mean_temp_c") + daily + wobble
    excess = np.maximum(ambient - column("free_cooling_threshold_c"), 0.0)
    return np.minimum(
        column("floor") + column("slope_per_c") * excess, column("ceiling")
    )
