"""Photovoltaic generation model.

Table I assigns each DC a PV module size (150/100/50 kWp).  GreenDataNet
production data is not public, so generation is synthesized as:

``power = kWp * clear_sky(local_hour) * weather(day)``

* ``clear_sky`` is a daylight half-sine raised to an air-mass exponent,
  zero outside sunrise..sunset;
* ``weather`` is a per-day cloudiness factor drawn deterministically per
  (site, day) -- mostly clear days with occasional heavy overcast --
  plus fast small-amplitude cloud noise.

The same object serves both the *real* generation consumed by the green
controller and, through :mod:`repro.datacenter.forecast`, the forecast
the global controller plans with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.seeding import rng_for
from repro.units import SECONDS_PER_HOUR


@dataclass
class PVArray:
    """A PV installation at one site.

    Attributes
    ----------
    kwp:
        Nameplate capacity in kW-peak.
    tz_offset_hours:
        Local time zone (daylight window is in local time).
    sunrise_hour / sunset_hour:
        Local daylight window.
    airmass_exponent:
        Sharpens the half-sine toward a realistic noon peak.
    seed:
        Site randomness root for the weather process.
    """

    kwp: float
    tz_offset_hours: float = 0.0
    sunrise_hour: float = 6.0
    sunset_hour: float = 20.0
    airmass_exponent: float = 1.3
    seed: int = 0
    _weather_cache: dict[int, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.kwp < 0:
            raise ValueError("kwp must be non-negative")
        if not self.sunrise_hour < self.sunset_hour:
            raise ValueError("sunrise must precede sunset")

    def clear_sky_fraction(self, time_s: float | np.ndarray) -> np.ndarray:
        """Clear-sky output fraction (0..1) at absolute UTC seconds."""
        hours = np.asarray(time_s, dtype=float) / SECONDS_PER_HOUR
        local = (hours + self.tz_offset_hours) % 24.0
        span = self.sunset_hour - self.sunrise_hour
        position = (local - self.sunrise_hour) / span
        daylight = (position >= 0.0) & (position <= 1.0)
        shape = np.sin(np.pi * np.clip(position, 0.0, 1.0)) ** self.airmass_exponent
        return np.where(daylight, shape, 0.0)

    def weather_factor(self, day: int) -> float:
        """Cloudiness factor for a day: 1.0 clear, small under overcast."""
        if day not in self._weather_cache:
            rng = rng_for(self.seed, "weather", day)
            if rng.random() < 0.25:
                factor = float(rng.uniform(0.15, 0.55))  # overcast day
            else:
                factor = float(rng.uniform(0.75, 1.0))  # clear-ish day
            self._weather_cache[day] = factor
        return self._weather_cache[day]

    def power_watts(self, time_s: float | np.ndarray) -> np.ndarray:
        """Generated power (W) at absolute UTC seconds.

        Scalar in, 0-d array out; use ``float(...)`` for scalars.
        """
        time_arr = np.asarray(time_s, dtype=float)
        days = (time_arr // (24.0 * SECONDS_PER_HOUR)).astype(int)
        weather = np.vectorize(self.weather_factor)(days) if time_arr.size else days
        clear = self.clear_sky_fraction(time_arr)
        # Fast cloud flicker, deterministic in time.
        flicker = 1.0 - 0.08 * (0.5 + 0.5 * np.sin(time_arr / 522.0))
        return self.kwp * 1000.0 * clear * weather * flicker

    def slot_energy_joules(self, slot: int, steps: int = 60) -> float:
        """Energy generated during one-hour ``slot`` (trapezoidal)."""
        times = slot * SECONDS_PER_HOUR + np.linspace(0.0, SECONDS_PER_HOUR, steps)
        powers = self.power_watts(times)
        return float(np.trapezoid(powers, times))


def fleet_power_watts(
    arrays: list[PVArray], time_s: np.ndarray
) -> np.ndarray:
    """Generated power of several PV arrays at shared times.

    Returns shape ``(len(arrays),) + times.shape``; row ``i`` is
    bit-identical to ``arrays[i].power_watts(time_s)`` (the identical
    per-element expression is evaluated, with the time-only factors --
    day indices and the deterministic cloud flicker -- hoisted out and
    computed once for the whole fleet).  The per-site weather factors
    keep coming from each array's seeded per-day cache, but are drawn
    once per *unique* day instead of once per sample -- a slot's times
    span one or two days, not 720 -- and gathered back per sample,
    which leaves every element exactly the factor
    :meth:`PVArray.weather_factor` returns for its day.
    """
    times = np.asarray(time_s, dtype=float)
    out = np.empty((len(arrays),) + times.shape)
    if not arrays:
        return out
    days = (times // (24.0 * SECONDS_PER_HOUR)).astype(int)
    unique_days, inverse = np.unique(days, return_inverse=True)
    flicker = 1.0 - 0.08 * (0.5 + 0.5 * np.sin(times / 522.0))
    for row, array in enumerate(arrays):
        factors = np.array(
            [array.weather_factor(int(day)) for day in unique_days]
        )
        weather = factors[inverse].reshape(times.shape)
        clear = array.clear_sky_fraction(times)
        out[row] = array.kwp * 1000.0 * clear * weather * flicker
    return out
