"""Data-center substrate: servers, cooling, energy sources, tariffs.

Models every physical element of Table I and Section V-A:

* Intel Xeon E5410-class servers with two DVFS levels and a linear
  utilization power model (:mod:`repro.datacenter.server`),
* a free-cooling, time-varying PUE model (:mod:`repro.datacenter.pue`),
* photovoltaic arrays and a WCMA-style forecast
  (:mod:`repro.datacenter.pv`, :mod:`repro.datacenter.forecast`),
* lithium-ion battery banks with a depth-of-discharge limit
  (:mod:`repro.datacenter.battery`),
* two-level electricity tariffs with per-site time zones
  (:mod:`repro.datacenter.price`),
* the :class:`~repro.datacenter.datacenter.Datacenter` aggregate.
"""

from repro.datacenter.battery import Battery
from repro.datacenter.datacenter import Datacenter, DatacenterSpec
from repro.datacenter.forecast import WCMAForecaster
from repro.datacenter.price import TwoLevelTariff
from repro.datacenter.pue import FreeCoolingPUE
from repro.datacenter.pv import PVArray
from repro.datacenter.server import XEON_E5410, FrequencyLevel, ServerModel

__all__ = [
    "Battery",
    "Datacenter",
    "DatacenterSpec",
    "FreeCoolingPUE",
    "FrequencyLevel",
    "PVArray",
    "ServerModel",
    "TwoLevelTariff",
    "WCMAForecaster",
    "XEON_E5410",
]
