"""Server and power model.

Section V-A targets "an Intel Xeon E5410 server consisting of 8 cores
and two frequency levels (2.0 GHz and 2.3 GHz)", with the power model of
Pedram et al. (ICPPW 2010): power grows linearly with utilization
between an idle floor and a peak, both frequency-dependent.

The paper does not print the coefficients; the values below are chosen
for an E5410-class dual-socket machine (see DESIGN.md "Interpretation
decisions").  Absolute Joules differ from the authors' testbed, but the
comparisons the paper makes are relative between methods that share this
model.

Capacity convention: CPU demand is measured in *core units at the
highest frequency*.  A server at a lower frequency offers
``cores * f / f_max`` core units, which is what makes DVFS an
energy/performance knob for the local controller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FrequencyLevel:
    """One DVFS operating point.

    Attributes
    ----------
    ghz:
        Clock frequency in GHz.
    idle_watts:
        Power draw of an active (non-sleeping) server with no load.
    peak_watts:
        Power draw at 100 % utilization.
    """

    ghz: float
    idle_watts: float
    peak_watts: float

    def __post_init__(self) -> None:
        if self.ghz <= 0:
            raise ValueError("frequency must be positive")
        if not 0 <= self.idle_watts <= self.peak_watts:
            raise ValueError("need 0 <= idle_watts <= peak_watts")


@dataclass(frozen=True)
class ServerModel:
    """A homogeneous server type with a set of DVFS levels.

    Levels must be sorted by ascending frequency.
    """

    name: str
    cores: int
    levels: tuple[FrequencyLevel, ...]
    sleep_watts: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if not self.levels:
            raise ValueError("at least one frequency level required")
        freqs = [level.ghz for level in self.levels]
        if freqs != sorted(freqs):
            raise ValueError("levels must be sorted by ascending frequency")
        if self.sleep_watts < 0:
            raise ValueError("sleep_watts must be non-negative")

    @property
    def max_ghz(self) -> float:
        """Highest available clock frequency."""
        return self.levels[-1].ghz

    @property
    def max_capacity(self) -> float:
        """Core units offered at the highest frequency."""
        return float(self.cores)

    def capacity(self, level: int) -> float:
        """Core units offered at frequency ``level`` (index into levels)."""
        return self.cores * self.levels[level].ghz / self.max_ghz

    def power(self, level: int, load_cores: float) -> float:
        """Power draw (W) at ``level`` under ``load_cores`` demand.

        Load is clipped to the level's capacity: demand beyond capacity
        is performance loss, not extra power.
        """
        if load_cores < 0:
            raise ValueError("load must be non-negative")
        spec = self.levels[level]
        utilization = min(load_cores / self.capacity(level), 1.0)
        return spec.idle_watts + (spec.peak_watts - spec.idle_watts) * utilization

    def power_trace(self, level: int, load_trace: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`power` over a demand trace (core units)."""
        spec = self.levels[level]
        utilization = np.clip(load_trace / self.capacity(level), 0.0, 1.0)
        return spec.idle_watts + (spec.peak_watts - spec.idle_watts) * utilization

    def min_level_for(self, load_cores: float) -> int:
        """Lowest frequency level whose capacity covers ``load_cores``.

        Falls back to the highest level when even that cannot cover the
        demand (the caller then accepts saturation).
        """
        for index in range(len(self.levels)):
            if self.capacity(index) >= load_cores:
                return index
        return len(self.levels) - 1

    def energy_per_core_hour(self, level: int) -> float:
        """Marginal Joules to run one core unit for one hour at ``level``.

        Used to convert DC energy caps (Joules) into CPU-load capacity
        for the clustering phase.
        """
        spec = self.levels[level]
        marginal_watts = (spec.peak_watts - spec.idle_watts) / self.capacity(level)
        return marginal_watts * 3600.0


#: The paper's reference server: Intel Xeon E5410, 8 cores, DVFS levels
#: at 2.0 and 2.3 GHz.  Power coefficients estimated for that class of
#: machine (dual-socket Harpertown, see module docstring).
XEON_E5410 = ServerModel(
    name="Intel Xeon E5410",
    cores=8,
    levels=(
        FrequencyLevel(ghz=2.0, idle_watts=165.0, peak_watts=230.0),
        FrequencyLevel(ghz=2.3, idle_watts=180.0, peak_watts=265.0),
    ),
)
