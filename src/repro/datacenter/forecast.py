"""Renewable energy forecasting (WCMA-style).

The paper implements "the algorithm in [21]" (Bergonzini et al.,
Microelectronics Journal 2010) to forecast PV intake.  That algorithm --
Weather-Conditioned Moving Average (WCMA) -- predicts the next interval
as the historical mean profile for that time of day, scaled by a factor
measuring how today's conditions compare to the profile so far.

:class:`WCMAForecaster` keeps (a) an exponential per-hour-of-day profile
of observed energy and (b) a short window of recent actual/profile
ratios (the "GAP" factor).  It degrades gracefully before any history
exists by falling back to the array's clear-sky prediction.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.datacenter.pv import PVArray
from repro.units import SECONDS_PER_HOUR

#: Number of slots per day (the profile's resolution).
SLOTS_PER_DAY = 24


class WCMAForecaster:
    """Weather-conditioned moving-average PV forecaster.

    Parameters
    ----------
    array:
        The PV installation to forecast (provides the clear-sky prior).
    profile_alpha:
        EWMA weight for updating the per-hour historical profile.
    gap_window:
        Number of recent slots whose actual/profile ratio conditions
        the prediction.
    """

    def __init__(
        self,
        array: PVArray,
        profile_alpha: float = 0.3,
        gap_window: int = 3,
    ) -> None:
        if not 0.0 < profile_alpha <= 1.0:
            raise ValueError("profile_alpha must be in (0, 1]")
        if gap_window < 1:
            raise ValueError("gap_window must be >= 1")
        self.array = array
        self.profile_alpha = profile_alpha
        self._profile: dict[int, float] = {}
        self._ratios: deque[float] = deque(maxlen=gap_window)

    def _clear_sky_energy(self, slot: int) -> float:
        """Clear-sky energy prior for ``slot`` (Joules)."""
        times = slot * SECONDS_PER_HOUR + np.linspace(0.0, SECONDS_PER_HOUR, 13)
        fractions = self.array.clear_sky_fraction(times)
        watts = self.array.kwp * 1000.0 * fractions
        return float(np.trapezoid(watts, times))

    def _profile_energy(self, slot: int) -> float:
        """Historical profile energy for the slot's hour of day."""
        hour = slot % SLOTS_PER_DAY
        if hour in self._profile:
            return self._profile[hour]
        return self._clear_sky_energy(slot)

    def record(self, slot: int, actual_joules: float) -> None:
        """Feed the realized generation of a finished slot."""
        if actual_joules < 0:
            raise ValueError("actual_joules must be non-negative")
        hour = slot % SLOTS_PER_DAY
        prior = self._profile_energy(slot)
        self._profile[hour] = (
            (1.0 - self.profile_alpha) * prior + self.profile_alpha * actual_joules
        )
        if prior > 1.0:  # ignore night slots: ratio is meaningless
            self._ratios.append(actual_joules / prior)

    def gap_factor(self) -> float:
        """Current weather-conditioning factor (1.0 = profile weather)."""
        if not self._ratios:
            return 1.0
        weights = np.arange(1, len(self._ratios) + 1, dtype=float)
        return float(np.average(np.asarray(self._ratios), weights=weights))

    def forecast(self, slot: int) -> float:
        """Predicted generation (Joules) for the upcoming ``slot``."""
        prediction = self._profile_energy(slot) * self.gap_factor()
        return max(prediction, 0.0)
