"""Accuracy evaluation of the WCMA renewable forecaster.

The controller plans with forecasts and the green controller absorbs
the error (Section IV's split).  This module measures how good that
forecast actually is over a horizon -- against the realized generation
and against the naive clear-sky prior -- so the "forecast + rule-based
compensation" design can be judged quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.forecast import WCMAForecaster
from repro.datacenter.pv import PVArray


@dataclass(frozen=True)
class ForecastAccuracy:
    """Error statistics of a forecaster over a horizon.

    All energies in Joules; daylight slots are those whose realized
    generation is positive (night slots are trivially exact and would
    dilute the statistics).
    """

    horizon_slots: int
    daylight_slots: int
    mae_joules: float
    mape_pct: float
    bias_joules: float
    total_generated_joules: float

    @property
    def mae_fraction(self) -> float:
        """MAE relative to the mean daylight generation."""
        if self.daylight_slots == 0 or self.total_generated_joules == 0:
            return 0.0
        mean_generation = self.total_generated_joules / self.daylight_slots
        return self.mae_joules / mean_generation


def evaluate_forecaster(
    array: PVArray,
    horizon_slots: int,
    forecaster: WCMAForecaster | None = None,
    steps_per_slot: int = 60,
) -> ForecastAccuracy:
    """Walk the horizon: forecast each slot, then feed the realization.

    Parameters
    ----------
    array:
        The PV installation to generate/realize from.
    horizon_slots:
        Number of one-hour slots to evaluate.
    forecaster:
        Forecaster under test; a fresh WCMA instance by default.
    steps_per_slot:
        Integration resolution for the realized energy.
    """
    if horizon_slots < 1:
        raise ValueError("horizon_slots must be >= 1")
    forecaster = forecaster or WCMAForecaster(array)

    errors = []
    relatives = []
    signed = []
    total = 0.0
    daylight = 0
    for slot in range(horizon_slots):
        predicted = forecaster.forecast(slot)
        actual = array.slot_energy_joules(slot, steps=steps_per_slot)
        forecaster.record(slot, actual)
        total += actual
        if actual > 0.0:
            daylight += 1
            errors.append(abs(predicted - actual))
            signed.append(predicted - actual)
            relatives.append(abs(predicted - actual) / actual)

    return ForecastAccuracy(
        horizon_slots=horizon_slots,
        daylight_slots=daylight,
        mae_joules=float(np.mean(errors)) if errors else 0.0,
        mape_pct=100.0 * float(np.mean(relatives)) if relatives else 0.0,
        bias_joules=float(np.mean(signed)) if signed else 0.0,
        total_generated_joules=total,
    )
