"""Analysis extensions beyond the paper's figures.

* :mod:`repro.analysis.lower_bound` -- an LP oracle (scipy) for the
  minimum achievable operational cost given perfect knowledge, used to
  measure how much headroom each policy leaves;
* :mod:`repro.analysis.pareto` -- alpha-sweep Pareto fronts for the
  cost/energy/performance trade-off (the Figs. 5-6 axes as curves);
* :mod:`repro.analysis.forecast_eval` -- accuracy metrics for the WCMA
  renewable forecaster;
* :mod:`repro.analysis.sensitivity` -- generic configuration sweeps
  (battery size, QoS window, PV size...).
"""

from repro.analysis.forecast_eval import ForecastAccuracy, evaluate_forecaster
from repro.analysis.lower_bound import (
    CostLowerBound,
    comparison_bounds,
    operational_cost_lower_bound,
)
from repro.analysis.pareto import ParetoPoint, alpha_sweep, pareto_front
from repro.analysis.sensitivity import (
    SweepRow,
    sweep_battery_scale,
    sweep_pv_scale,
    sweep_qos,
)

__all__ = [
    "CostLowerBound",
    "ForecastAccuracy",
    "ParetoPoint",
    "SweepRow",
    "alpha_sweep",
    "comparison_bounds",
    "evaluate_forecaster",
    "operational_cost_lower_bound",
    "pareto_front",
    "sweep_battery_scale",
    "sweep_pv_scale",
    "sweep_qos",
]
