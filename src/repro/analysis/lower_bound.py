"""LP lower bound on operational cost (perfect-knowledge oracle).

The paper's green controller is deliberately myopic ("low-complexity
rule-based").  To quantify what that simplicity costs, this module
solves, per DC, the *offline* energy-sourcing problem as a linear
program with perfect knowledge of the whole horizon:

* the facility demand and PV generation each slot are those actually
  realized by a simulation run (so the bound isolates the *sourcing*
  decisions from the *placement* decisions);
* decision variables per slot: grid-to-load, grid-to-battery,
  PV-to-load, PV-to-battery, battery-to-load, and the state of charge;
* battery physics match :class:`repro.datacenter.battery.Battery`
  (efficiencies, C-rate limits, depth-of-discharge floor);
* the objective is total grid cost under the DC's tariff.

No online controller can pay less for the same demand/PV trajectories,
so ``policy cost / bound`` measures the green controller's optimality
gap.  Solved with :func:`scipy.optimize.linprog` (HiGHS), one LP per DC
(they decouple).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.sim.config import ExperimentConfig
from repro.sim.results import RunResult
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class CostLowerBound:
    """Result of the offline sourcing LP.

    Attributes
    ----------
    total_cost_eur:
        Minimum achievable grid cost over all DCs.
    per_dc_cost_eur:
        The per-DC optimal costs (LPs are independent).
    actual_cost_eur:
        The simulated run's realized cost, for gap computation.
    """

    total_cost_eur: float
    per_dc_cost_eur: tuple[float, ...]
    actual_cost_eur: float

    @property
    def gap_pct(self) -> float:
        """How far the run's cost sits above the bound (percent)."""
        if self.total_cost_eur <= 0:
            return 0.0
        return 100.0 * (self.actual_cost_eur - self.total_cost_eur) / (
            self.total_cost_eur
        )


def _solve_dc_lp(
    demand: np.ndarray,
    pv: np.ndarray,
    prices: np.ndarray,
    capacity: float,
    floor: float,
    soc0: float,
    charge_eff: float,
    discharge_eff: float,
    charge_limit: float,
    discharge_limit: float,
) -> float:
    """Minimum grid cost for one DC; see module docstring for the model.

    Variable layout (T slots): ``[g, gb, pl, pb, b, s]`` blocks of
    length T each -- grid-to-load, grid-to-battery, PV-to-load,
    PV-to-battery, battery-to-load (delivered), end-of-slot SoC.

    The model is solved in kWh with prices in EUR/kWh: with energies
    in Joules the objective coefficients (~3e-8 EUR/J) sit below the
    solver's dual-feasibility tolerance and HiGHS accepts any feasible
    vertex as "optimal".
    """
    horizon = len(demand)
    if horizon == 0:
        return 0.0
    joules_per_kwh = 3.6e6
    demand = np.asarray(demand, dtype=float) / joules_per_kwh
    pv = np.asarray(pv, dtype=float) / joules_per_kwh
    prices = np.asarray(prices, dtype=float) * joules_per_kwh
    capacity /= joules_per_kwh
    floor /= joules_per_kwh
    soc0 /= joules_per_kwh
    charge_limit /= joules_per_kwh
    discharge_limit /= joules_per_kwh
    n = 6 * horizon

    def block(index: int, t: int) -> int:
        return index * horizon + t

    cost = np.zeros(n)
    cost[0:horizon] = prices  # g
    cost[horizon : 2 * horizon] = prices  # gb

    # Equalities: load balance + SoC recurrence.
    a_eq = sparse.lil_matrix((2 * horizon, n))
    b_eq = np.zeros(2 * horizon)
    for t in range(horizon):
        # pl + b + g = demand
        a_eq[t, block(0, t)] = 1.0
        a_eq[t, block(2, t)] = 1.0
        a_eq[t, block(4, t)] = 1.0
        b_eq[t] = demand[t]
        # s_t - s_{t-1} - eff_c*(gb + pb) + b/eff_d = 0
        row = horizon + t
        a_eq[row, block(5, t)] = 1.0
        if t > 0:
            a_eq[row, block(5, t - 1)] = -1.0
        a_eq[row, block(1, t)] = -charge_eff
        a_eq[row, block(3, t)] = -charge_eff
        a_eq[row, block(4, t)] = 1.0 / discharge_eff
        b_eq[row] = soc0 if t == 0 else 0.0

    # Inequalities: PV split and charge-rate coupling.
    a_ub = sparse.lil_matrix((2 * horizon, n))
    b_ub = np.zeros(2 * horizon)
    for t in range(horizon):
        # pl + pb <= pv
        a_ub[t, block(2, t)] = 1.0
        a_ub[t, block(3, t)] = 1.0
        b_ub[t] = pv[t]
        # gb + pb <= charge_limit
        row = horizon + t
        a_ub[row, block(1, t)] = 1.0
        a_ub[row, block(3, t)] = 1.0
        b_ub[row] = charge_limit

    bounds: list[tuple[float, float | None]] = []
    bounds += [(0.0, None)] * horizon  # g
    bounds += [(0.0, charge_limit)] * horizon  # gb
    bounds += [(0.0, None)] * horizon  # pl
    bounds += [(0.0, None)] * horizon  # pb
    bounds += [(0.0, discharge_limit)] * horizon  # b
    bounds += [(floor, capacity)] * horizon  # s

    solution = linprog(
        cost,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        A_eq=a_eq.tocsr(),
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not solution.success:
        raise RuntimeError(f"sourcing LP failed: {solution.message}")
    return float(solution.fun)


def operational_cost_lower_bound(
    result: RunResult, config: ExperimentConfig
) -> CostLowerBound:
    """Offline sourcing bound for a simulated run.

    Parameters
    ----------
    result:
        A finished simulation; its per-slot facility/PV ledgers define
        the demand and generation trajectories.
    config:
        The configuration the run used (tariffs and battery sizing).
    """
    if result.horizon == 0:
        return CostLowerBound(0.0, tuple(), 0.0)
    if len(result.slots[0].dc_records) != config.n_dcs:
        raise ValueError("result and config disagree on the number of DCs")

    from repro.datacenter.battery import Battery  # local to avoid cycles

    per_dc = []
    for dc_index, spec in enumerate(config.specs):
        demand = np.array(
            [slot.dc_records[dc_index].green.facility_energy for slot in result.slots]
        )
        pv = np.array(
            [slot.dc_records[dc_index].green.pv_generated for slot in result.slots]
        )
        prices = np.array(
            [spec.tariff.price_at_slot(slot.slot) for slot in result.slots]
        ) / 3.6e6  # EUR per Joule
        battery = Battery.from_kwh(spec.battery_kwh) if spec.battery_kwh else None
        if battery is None:
            capacity = floor = soc0 = 0.0
            charge_eff = discharge_eff = 1.0
            charge_limit = discharge_limit = 0.0
        else:
            capacity = battery.capacity_joules
            floor = battery.floor_joules
            soc0 = battery.soc_joules
            charge_eff = battery.charge_efficiency
            discharge_eff = battery.discharge_efficiency
            charge_limit = battery.max_c_rate * capacity  # per one-hour slot
            discharge_limit = charge_limit * discharge_eff
        per_dc.append(
            _solve_dc_lp(
                demand,
                pv,
                prices,
                capacity,
                floor,
                soc0,
                charge_eff,
                discharge_eff,
                charge_limit,
                discharge_limit,
            )
        )

    return CostLowerBound(
        total_cost_eur=float(sum(per_dc)),
        per_dc_cost_eur=tuple(per_dc),
        actual_cost_eur=result.total_grid_cost_eur(),
    )


def comparison_bounds(
    config: ExperimentConfig,
    alpha: float = 0.5,
    jobs: int = 1,
    orchestrator=None,
    pack=None,
    options=None,
) -> list[tuple[RunResult, CostLowerBound]]:
    """Four-method comparison with the sourcing bound per policy.

    Obtains the comparison runs through the orchestrator's futures API
    (parallel with ``jobs > 1``, cached by the result store) and solves
    each policy's offline LP *as its run resolves* -- the dependent
    analysis is chained on completion instead of waiting behind the
    slowest policy.  The returned list keeps the comparison's policy
    order.
    """
    from repro.experiments.orchestrator import grid_requests
    from repro.experiments.runner import (
        default_orchestrator,
        default_policies,
    )

    orchestrator = orchestrator or default_orchestrator()
    if jobs != 1:
        orchestrator = orchestrator.with_jobs(jobs)
    futures = orchestrator.submit_many(
        grid_requests(
            [config],
            lambda _: default_policies(alpha),
            pack=pack,
            options=options,
        )
    )
    bounds: dict[object, tuple[RunResult, CostLowerBound]] = {}
    for future in orchestrator.as_done(futures):
        artifact = future.result()
        bounds[future] = (
            artifact.result,
            operational_cost_lower_bound(artifact.result, config),
        )
    return [bounds[future] for future in futures]
