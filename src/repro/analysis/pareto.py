"""Alpha-sweep Pareto analysis of the energy/performance trade-off.

Eq. 5's alpha is the paper's explicit trade-off knob (attraction /
performance vs repulsion / energy).  Figs. 5-6 show two points of the
trade-off space; this module sweeps alpha and extracts the
Pareto-efficient frontier over (cost, energy, worst-case response
time), turning the paper's two scatter plots into full curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import ProposedPolicy
from repro.core.forces import ForceParameters
from repro.experiments.orchestrator import (
    EngineOptions,
    Orchestrator,
    RunRequest,
)
from repro.sim.config import ExperimentConfig
from repro.workload.packs import TracePack

#: Percentile used as the SLA-relevant response-time statistic.
WORST_CASE_PERCENTILE = 99.0


@dataclass(frozen=True)
class ParetoPoint:
    """One alpha's outcome in the objective space."""

    alpha: float
    cost_eur: float
    energy_gj: float
    response_p99_s: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weak Pareto dominance on (cost, energy, response time)."""
        at_least_as_good = (
            self.cost_eur <= other.cost_eur
            and self.energy_gj <= other.energy_gj
            and self.response_p99_s <= other.response_p99_s
        )
        strictly_better = (
            self.cost_eur < other.cost_eur
            or self.energy_gj < other.energy_gj
            or self.response_p99_s < other.response_p99_s
        )
        return at_least_as_good and strictly_better


def alpha_sweep(
    config: ExperimentConfig,
    alphas: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    jobs: int = 1,
    orchestrator: Orchestrator | None = None,
    pack: TracePack | None = None,
    options: EngineOptions | None = None,
) -> list[ParetoPoint]:
    """Run the proposed controller once per alpha over one workload.

    The alphas fan out through the orchestrator's futures layer: with
    ``jobs > 1`` they run in parallel worker processes, previously
    evaluated alphas come back from the result store immediately, and
    progress streams per completion.  The returned list pairs each
    artifact with its alpha by position (``alphas`` order).
    """
    from repro.experiments.runner import default_orchestrator

    orchestrator = orchestrator or default_orchestrator()
    if jobs != 1:
        orchestrator = orchestrator.with_jobs(jobs)
    # Pareto points read only headline aggregates (cost, energy, p99),
    # so a remote orchestrator may ship the projected artifact form.
    artifacts = orchestrator.run_many(
        [
            RunRequest(
                config=config,
                policy=ProposedPolicy(
                    force_params=ForceParameters(alpha=alpha)
                ),
                pack=pack,
                options=options or EngineOptions(),
            )
            for alpha in alphas
        ],
        detail="headline",
    )
    return [
        ParetoPoint(
            alpha=alpha,
            cost_eur=artifact.result.total_grid_cost_eur(),
            energy_gj=artifact.result.total_energy_gj(),
            response_p99_s=artifact.result.percentile_response_s(
                WORST_CASE_PERCENTILE
            ),
        )
        for alpha, artifact in zip(alphas, artifacts)
    ]


def pareto_front(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """The non-dominated subset, sorted by alpha."""
    front = [
        point
        for point in points
        if not any(other.dominates(point) for other in points)
    ]
    return sorted(front, key=lambda point: point.alpha)
