"""Configuration sensitivity sweeps.

Generic helpers that rerun the proposed controller while varying one
infrastructure parameter (battery size, migration QoS window, PV
size), producing tidy rows for tables, examples and the ablation
benchmarks.  Each sweep submits its whole configuration grid as one
orchestrator batch, so sweep points run in parallel with ``jobs > 1``
and repeat evaluations resolve from the result store.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.controller import ProposedPolicy
from repro.experiments.orchestrator import (
    EngineOptions,
    Orchestrator,
    grid_requests,
)
from repro.sim.config import ExperimentConfig
from repro.sim.results import RunResult
from repro.workload.packs import TracePack


@dataclass(frozen=True)
class SweepRow:
    """One sweep point's headline outcomes."""

    parameter: str
    value: float
    cost_eur: float
    energy_gj: float
    renewable_utilization: float
    migrations: int
    response_p99_s: float


def _row_from(result: RunResult, parameter: str, value: float) -> SweepRow:
    return SweepRow(
        parameter=parameter,
        value=value,
        cost_eur=result.total_grid_cost_eur(),
        energy_gj=result.total_energy_gj(),
        renewable_utilization=result.renewable_utilization(),
        migrations=result.total_migrations(),
        response_p99_s=result.percentile_response_s(99.0),
    )


def _run_grid(
    configs: list[ExperimentConfig],
    parameter: str,
    values: tuple[float, ...],
    jobs: int,
    orchestrator: Orchestrator | None,
    pack: TracePack | None = None,
    options: EngineOptions | None = None,
) -> list[SweepRow]:
    from repro.experiments.runner import default_orchestrator

    orchestrator = orchestrator or default_orchestrator()
    if jobs != 1:
        orchestrator = orchestrator.with_jobs(jobs)
    # run_many streams misses through the futures layer (progress
    # fires per completion) and returns artifacts in request order,
    # which is what labels each row: sweep values must pair by
    # *position*, not fingerprint -- two sweep points can collapse to
    # one fingerprint (e.g. battery scales over a zero-battery fleet)
    # yet still deserve their own labeled rows.
    # Sweep rows read only headline aggregates, so a remote
    # orchestrator may ship the projected artifact form.
    artifacts = orchestrator.run_many(
        grid_requests(
            configs,
            lambda _: [ProposedPolicy()],
            pack=pack,
            options=options,
        ),
        detail="headline",
    )
    return [
        _row_from(artifact.result, parameter, value)
        for artifact, value in zip(artifacts, values)
    ]


def sweep_battery_scale(
    config: ExperimentConfig,
    scales: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0),
    jobs: int = 1,
    orchestrator: Orchestrator | None = None,
    pack: TracePack | None = None,
    options: EngineOptions | None = None,
) -> list[SweepRow]:
    """Rerun with every DC's battery scaled by each factor.

    Measures how much of the proposed method's cost advantage comes
    from battery arbitrage (Table I sizing = scale 1.0).
    """
    configs = []
    for scale in scales:
        specs = tuple(
            dataclasses.replace(spec, battery_kwh=spec.battery_kwh * scale)
            for spec in config.specs
        )
        configs.append(dataclasses.replace(config, specs=specs))
    return _run_grid(
        configs, "battery_scale", scales, jobs, orchestrator, pack, options
    )


def sweep_qos(
    config: ExperimentConfig,
    qos_levels: tuple[float, ...] = (0.9995, 0.995, 0.98, 0.95),
    jobs: int = 1,
    orchestrator: Orchestrator | None = None,
    pack: TracePack | None = None,
    options: EngineOptions | None = None,
) -> list[SweepRow]:
    """Rerun with different migration QoS windows (Algorithm 2)."""
    configs = [
        dataclasses.replace(config, qos=qos) for qos in qos_levels
    ]
    return _run_grid(
        configs, "qos", qos_levels, jobs, orchestrator, pack, options
    )


def sweep_pv_scale(
    config: ExperimentConfig,
    scales: tuple[float, ...] = (0.0, 1.0, 2.0),
    jobs: int = 1,
    orchestrator: Orchestrator | None = None,
    pack: TracePack | None = None,
    options: EngineOptions | None = None,
) -> list[SweepRow]:
    """Rerun with every DC's PV array scaled by each factor."""
    configs = []
    for scale in scales:
        specs = tuple(
            dataclasses.replace(spec, pv_kwp=spec.pv_kwp * scale)
            for spec in config.specs
        )
        configs.append(dataclasses.replace(config, specs=specs))
    return _run_grid(
        configs, "pv_scale", scales, jobs, orchestrator, pack, options
    )


def format_rows(rows: list[SweepRow]) -> str:
    """Plain-text table of sweep rows."""
    header = (
        f"{'parameter':<14} {'value':>8} {'cost EUR':>10} {'energy GJ':>10} "
        f"{'renew':>6} {'migs':>6} {'p99 RT s':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.parameter:<14} {row.value:>8.3f} {row.cost_eur:>10.2f} "
            f"{row.energy_gj:>10.3f} {row.renewable_utilization:>6.3f} "
            f"{row.migrations:>6d} {row.response_p99_s:>9.4f}"
        )
    return "\n".join(lines)
