"""Configuration sensitivity sweeps.

Generic helpers that rerun the proposed controller while varying one
infrastructure parameter (battery size, migration QoS window, PV
size), producing tidy rows for tables, examples and the ablation
benchmarks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.controller import ProposedPolicy
from repro.sim.config import ExperimentConfig
from repro.sim.engine import SimulationEngine


@dataclass(frozen=True)
class SweepRow:
    """One sweep point's headline outcomes."""

    parameter: str
    value: float
    cost_eur: float
    energy_gj: float
    renewable_utilization: float
    migrations: int
    response_p99_s: float


def _run(config: ExperimentConfig, parameter: str, value: float) -> SweepRow:
    result = SimulationEngine(config, ProposedPolicy()).run()
    return SweepRow(
        parameter=parameter,
        value=value,
        cost_eur=result.total_grid_cost_eur(),
        energy_gj=result.total_energy_gj(),
        renewable_utilization=result.renewable_utilization(),
        migrations=result.total_migrations(),
        response_p99_s=result.percentile_response_s(99.0),
    )


def sweep_battery_scale(
    config: ExperimentConfig,
    scales: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0),
) -> list[SweepRow]:
    """Rerun with every DC's battery scaled by each factor.

    Measures how much of the proposed method's cost advantage comes
    from battery arbitrage (Table I sizing = scale 1.0).
    """
    rows = []
    for scale in scales:
        specs = tuple(
            dataclasses.replace(spec, battery_kwh=spec.battery_kwh * scale)
            for spec in config.specs
        )
        scaled = dataclasses.replace(config, specs=specs)
        rows.append(_run(scaled, "battery_scale", scale))
    return rows


def sweep_qos(
    config: ExperimentConfig,
    qos_levels: tuple[float, ...] = (0.9995, 0.995, 0.98, 0.95),
) -> list[SweepRow]:
    """Rerun with different migration QoS windows (Algorithm 2)."""
    rows = []
    for qos in qos_levels:
        scaled = dataclasses.replace(config, qos=qos)
        rows.append(_run(scaled, "qos", qos))
    return rows


def sweep_pv_scale(
    config: ExperimentConfig,
    scales: tuple[float, ...] = (0.0, 1.0, 2.0),
) -> list[SweepRow]:
    """Rerun with every DC's PV array scaled by each factor."""
    rows = []
    for scale in scales:
        specs = tuple(
            dataclasses.replace(spec, pv_kwp=spec.pv_kwp * scale)
            for spec in config.specs
        )
        scaled = dataclasses.replace(config, specs=specs)
        rows.append(_run(scaled, "pv_scale", scale))
    return rows


def format_rows(rows: list[SweepRow]) -> str:
    """Plain-text table of sweep rows."""
    header = (
        f"{'parameter':<14} {'value':>8} {'cost EUR':>10} {'energy GJ':>10} "
        f"{'renew':>6} {'migs':>6} {'p99 RT s':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.parameter:<14} {row.value:>8.3f} {row.cost_eur:>10.2f} "
            f"{row.energy_gj:>10.3f} {row.renewable_utilization:>6.3f} "
            f"{row.migrations:>6d} {row.response_p99_s:>9.4f}"
        )
    return "\n".join(lines)
