"""The campaign manifest: an append-only JSONL provenance ledger.

One file per campaign, living next to the result store
(``<root>/campaigns/<campaign-id>.jsonl``).  Every line is one JSON
record; the file is only ever appended to, so a crashed writer leaves
at worst a torn final line, which replay tolerates and drops (the
``FactLedger`` discipline from the related gps-genealogy repo: the
ledger is the authoritative event log, derived state is recomputed by
replay).

Record types, in the order a healthy campaign emits them::

    {"type": "campaign", "campaign": ..., "suite": ..., "suite_sha": ...,
     "code_sha": ..., "total": N, ...}          # exactly one header
    {"type": "plan_batch", "runs": [{"fingerprint": ..., "labels": {...},
     "pack_sha": ...}, ...]}                    # the planned grid
    {"type": "status_batch", "status": "submitted",
     "fingerprints": [...]}                     # one per submit_many call
    {"type": "status_batch", "status": "done", "suite_sha": ...,
     "code_sha": ..., "records": [{"fingerprint": ..., "source": ...,
     "elapsed_s": ..., "daemon": ..., "engine": ..., "pack_sha": ...,
     "time": ...}, ...]}                        # one per flush batch
    {"type": "status", "fingerprint": ..., "status": "failed",
     "error": ...}                              # failures land solo

Batch records exist for throughput: a 1k-run warm sweep resolves in
a couple hundred milliseconds, and per-run JSON lines would tax that
measurably (see ``benchmarks/bench_suite.py``).  Replay *unrolls*
every batch -- envelope fields (``status``, ``suite_sha``,
``code_sha``, ``time``) merge into each entry -- so folded state is
identical to what per-run ``plan``/``status`` records (also accepted)
would produce, and every done entry still carries its full
provenance.

Durability contract: records are flushed (not fsynced) per append.  A
power cut may lose the buffered tail, but every lost ``done`` merely
re-submits on resume and dedups against the store -- re-execution is
idempotent by construction (deterministic runs + content-addressed
store), so the ledger can stay cheap on the hot path.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import IO, Iterator

__all__ = [
    "CampaignLedger",
    "CampaignState",
    "LedgerError",
    "list_campaigns",
]

#: Subdirectory of the store root holding campaign ledgers.  Store
#: backends scan their own layouts (``*.json`` files, ``segments/``)
#: and ignore this directory, so ledgers ride next to the documents
#: they describe without perturbing any backend.
CAMPAIGNS_DIR = "campaigns"

_STATUSES = ("submitted", "done", "failed")

#: Shared encoder for the write path.  Ledger records are flat dicts
#: built in-process, so circular-reference tracking is pure overhead;
#: key order is irrelevant to replay, so no sort either.  Together
#: these keep a 1k-run warm sweep's bookkeeping inside the
#: ``bench_suite`` overhead gate.
_encode = json.JSONEncoder(
    separators=(",", ":"), check_circular=False
).encode


class LedgerError(RuntimeError):
    """A structurally broken ledger (not a torn tail -- those heal)."""


@dataclass
class CampaignState:
    """Derived campaign state: the fold of one ledger's records.

    ``planned`` preserves planning order (dict insertion order);
    ``status`` keeps the *latest* status record per fingerprint, with
    ``done`` sticky -- a late ``failed`` from a racing duplicate never
    demotes a completed run.
    """

    path: str
    header: dict | None = None
    planned: dict[str, dict] = field(default_factory=dict)
    status: dict[str, dict] = field(default_factory=dict)
    torn_tail: bool = False

    @property
    def campaign_id(self) -> str | None:
        return self.header.get("campaign") if self.header else None

    @property
    def suite_sha(self) -> str | None:
        return self.header.get("suite_sha") if self.header else None

    def fingerprints(self, status: str) -> list[str]:
        """Planned fingerprints currently in ``status``, planning order."""
        if status == "planned":
            return [
                fp for fp in self.planned if fp not in self.status
            ]
        return [
            fp
            for fp in self.planned
            if self.status.get(fp, {}).get("status") == status
        ]

    def pending(self) -> list[str]:
        """Planned fingerprints not yet done, in planning order."""
        return [
            fp
            for fp in self.planned
            if self.status.get(fp, {}).get("status") != "done"
        ]

    def counts(self) -> dict:
        """Per-status tallies (total/planned/submitted/done/failed)."""
        counts = {
            "total": len(self.planned),
            "planned": 0,
            "submitted": 0,
            "done": 0,
            "failed": 0,
        }
        for fp in self.planned:
            record = self.status.get(fp)
            key = record["status"] if record else "planned"
            counts[key] = counts.get(key, 0) + 1
        return counts

    @property
    def complete(self) -> bool:
        return bool(self.planned) and not self.pending()

    def _fold(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "campaign":
            # Last header wins; resume appends a fresh header so the
            # ledger records every driver that touched the campaign.
            if (
                self.header is not None
                and record.get("campaign") != self.header.get("campaign")
            ):
                raise LedgerError(
                    f"{self.path}: ledger mixes campaigns "
                    f"{self.header.get('campaign')!r} and "
                    f"{record.get('campaign')!r}"
                )
            self.header = record
        elif kind == "plan":
            fp = record["fingerprint"]
            self.planned.setdefault(fp, record)
        elif kind == "plan_batch":
            for entry in record.get("runs", ()):
                self.planned.setdefault(
                    entry["fingerprint"], {"type": "plan", **entry}
                )
        elif kind == "status":
            self._fold_status(record["fingerprint"], record)
        elif kind == "status_batch":
            # Unroll to per-fingerprint status records: envelope
            # fields (status, shas, time) merge into each entry, entry
            # fields win, so downstream folding stays uniform.
            shared = {
                key: value
                for key, value in record.items()
                if key not in ("type", "fingerprints", "records")
            }
            for fp in record.get("fingerprints", ()):
                self._fold_status(
                    fp, {"type": "status", **shared, "fingerprint": fp}
                )
            for entry in record.get("records", ()):
                merged = {"type": "status", **shared, **entry}
                self._fold_status(merged["fingerprint"], merged)

    def _fold_status(self, fp: str, record: dict) -> None:
        current = self.status.get(fp)
        if current is not None and current.get("status") == "done":
            return  # done is terminal
        self.status[fp] = record


class CampaignLedger:
    """Append-only JSONL writer/replayer for one campaign manifest."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._handle: IO[str] | None = None

    @classmethod
    def for_store(
        cls, root: str | pathlib.Path, campaign_id: str
    ) -> "CampaignLedger":
        return cls(
            pathlib.Path(root) / CAMPAIGNS_DIR / f"{campaign_id}.jsonl"
        )

    def exists(self) -> bool:
        """Whether this campaign has ever written a ledger file."""
        return self.path.exists()

    # -- writing -----------------------------------------------------------

    def _open(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: dict) -> None:
        """Append one record; flushed so readers see it immediately."""
        handle = self._open()
        handle.write(_encode(record) + "\n")
        handle.flush()

    def append_many(self, records: list[dict]) -> None:
        """Append a batch under one write+flush.

        The hot-path variant for records that land together anyway
        (the campaign header, the planned grid, a batch of
        ``submitted`` transitions): one syscall per batch instead of
        per record keeps ledger overhead off the warm sweep's critical
        path, with the same torn-tail crash contract.
        """
        if not records:
            return
        handle = self._open()
        handle.write(
            "".join(_encode(record) + "\n" for record in records)
        )
        handle.flush()

    def status(self, fingerprint: str, status: str, **provenance) -> None:
        """Append one status transition for ``fingerprint``."""
        if status not in _STATUSES:
            raise ValueError(
                f"unknown status {status!r} (use {_STATUSES})"
            )
        self.append(
            {
                "type": "status",
                "fingerprint": fingerprint,
                "status": status,
                **provenance,
            }
        )

    def close(self) -> None:
        """Close the write handle (appends reopen it on demand)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replay ------------------------------------------------------------

    def records(self) -> Iterator[tuple[dict | None, bool]]:
        """Yield ``(record, torn)`` per line; a torn line yields (None, True).

        Only the *final* line may legitimately be torn (a crashed
        writer); a malformed line with records after it means the file
        was edited or corrupted, which replay reports as
        :class:`LedgerError`.
        """
        try:
            with open(self.path, encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if number == len(lines):
                    yield None, True
                    return
                raise LedgerError(
                    f"{self.path}:{number}: corrupt ledger record "
                    f"(not the final line, so not a torn tail)"
                ) from None
            yield record, False

    def replay(self) -> CampaignState:
        """Fold the ledger into a :class:`CampaignState` (torn-tail safe)."""
        state = CampaignState(path=str(self.path))
        for record, torn in self.records():
            if torn:
                state.torn_tail = True
                break
            state._fold(record)
        return state


def list_campaigns(root: str | pathlib.Path) -> list[CampaignLedger]:
    """Every campaign ledger under a store root, name order."""
    directory = pathlib.Path(root) / CAMPAIGNS_DIR
    if not directory.is_dir():
        return []
    return [
        CampaignLedger(path)
        for path in sorted(directory.glob("*.jsonl"))
    ]


def remove_campaign(root: str | pathlib.Path, campaign_id: str) -> bool:
    """Delete one campaign's ledger file (used by campaign GC)."""
    ledger = CampaignLedger.for_store(root, campaign_id)
    try:
        os.remove(ledger.path)
        return True
    except FileNotFoundError:
        return False
