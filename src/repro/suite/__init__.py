"""Declarative experiment suites with crash-safe resumable campaigns.

The suite layer turns the orchestration stack (fingerprinted
``RunRequest``s, the result store, the service/fleet clients) into
"regenerate the whole paper from one config file":

* :mod:`repro.suite.spec` -- the TOML suite spec: ``[matrix]`` axes
  crossed into a deterministic run grid, ``[outputs]`` declaring the
  figures/tables the suite regenerates, every semantic error located
  as ``file:line: [section].key``.
* :mod:`repro.suite.ledger` -- the campaign manifest: an append-only
  JSONL provenance ledger next to the store
  (``planned -> submitted -> done/failed`` per fingerprint, with
  suite/code/pack shas, daemon id, engine kind and wall time).
* :mod:`repro.suite.campaign` -- the driver behind ``repro suite
  run/resume``: executes through any orchestrator-surface consumer,
  skips ledger-done *store-verified* fingerprints on resume.
* :mod:`repro.suite.outputs` -- the output stage: declared
  figures/tables/CSV exports rebuilt purely from stored artifacts.
"""

from repro.suite.campaign import (
    CampaignDriver,
    CampaignError,
    CampaignReport,
    campaign_status,
    code_sha,
)
from repro.suite.ledger import CampaignLedger, CampaignState, LedgerError
from repro.suite.outputs import OutputError, generate_outputs
from repro.suite.spec import (
    COMPARISON_POLICIES,
    SuiteCell,
    SuiteRun,
    SuiteSpec,
    SuiteSpecError,
    load_suite,
    parse_suite,
)

__all__ = [
    "COMPARISON_POLICIES",
    "CampaignDriver",
    "CampaignError",
    "CampaignLedger",
    "CampaignReport",
    "CampaignState",
    "LedgerError",
    "OutputError",
    "SuiteCell",
    "SuiteRun",
    "SuiteSpec",
    "SuiteSpecError",
    "campaign_status",
    "code_sha",
    "generate_outputs",
    "load_suite",
    "parse_suite",
]
