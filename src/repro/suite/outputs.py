"""The output stage: regenerate a suite's declared figures/tables.

Outputs are rebuilt **purely from the store** -- the stage resolves
every comparison fingerprint through the consumer's ``lookup`` (a
warm-only read; nothing executes here) and fails loudly if a cell is
incomplete.  That separation is the point of the suite layer: runs
are expensive and campaign-managed, outputs are cheap derived views
that any later session (or the nightly CI job) can regenerate from
stored artifacts alone.

Layout, under ``--out DIR`` (default ``reports/suites/<suite>``)::

    <out>/<cell>/fig1.txt ... fig6.txt   # rendered figure reports
    <out>/<cell>/table1.txt              # Table I fleet spec
    <out>/<cell>/fig1_cost.csv ...       # export_all CSV series
    <out>/MANIFEST.json                  # what was written, from which
                                         # fingerprints

with one ``<cell>`` directory per (pack x engine x vectorized x qos)
combination in the suite matrix.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.export import export_all
from repro.experiments.figures import (
    fig1_operational_cost,
    fig2_energy,
    fig3_response_time,
    fig4_totals,
    fig5_cost_performance,
    fig6_energy_performance,
    render,
    table1_rows,
)
from repro.suite.spec import SuiteCell, SuiteSpec

__all__ = ["OutputError", "generate_outputs"]

_FIGURES = {
    1: fig1_operational_cost,
    2: fig2_energy,
    3: fig3_response_time,
    4: fig4_totals,
    5: fig5_cost_performance,
    6: fig6_energy_performance,
}


class OutputError(RuntimeError):
    """A declared output cannot be regenerated from the store."""


def _render_table1(report: dict) -> str:
    lines = [f"== {report['id']} =="]
    for block in ("measured", "paper"):
        lines.append(f"  [{block}]")
        for row in report.get(block, ()):
            cells = " ".join(
                f"{key}={value}" for key, value in row.items() if key != "dc"
            )
            lines.append(f"    {row.get('dc', '?')}: {cells}")
    return "\n".join(lines)


def _cell_results(cell: SuiteCell, consumer) -> list:
    """The four comparison results for one cell, store-only."""
    results = []
    for run in cell.runs:
        future = consumer.lookup(run.request, run.fingerprint)
        if future is None:
            raise OutputError(
                f"output cell {cell.key!r} is incomplete: "
                f"{run.labels['policy']} run "
                f"{run.fingerprint[:12]}... is not in the store "
                f"(run the campaign first)"
            )
        results.append(future.result().result)
    return results


def generate_outputs(
    spec: SuiteSpec,
    consumer,
    directory: str | pathlib.Path,
) -> list[str]:
    """Write every declared output; returns written paths (relative).

    ``consumer`` is anything with the orchestrator's ``lookup``
    surface -- the in-process orchestrator reads its store directly,
    ``ServiceClient``/``FleetClient`` read the daemon's store over the
    wire.  Raises :class:`OutputError` on any store miss rather than
    executing: the output stage never simulates.
    """
    directory = pathlib.Path(directory)
    written: list[str] = []
    manifest: dict = {
        "suite": spec.name,
        "suite_sha": spec.sha256,
        "campaign": spec.campaign_id,
        "cells": {},
    }
    for cell in spec.output_cells():
        cell_dir = directory / cell.key
        cell_dir.mkdir(parents=True, exist_ok=True)
        results = _cell_results(cell, consumer)
        cell_written: list[str] = []

        for number in spec.figures:
            report = _FIGURES[number](results)
            path = cell_dir / f"fig{number}.txt"
            path.write_text(render(report) + "\n")
            cell_written.append(str(path.relative_to(directory)))
        for number in spec.tables:
            path = cell_dir / f"table{number}.txt"
            path.write_text(_render_table1(table1_rows(cell.config)) + "\n")
            cell_written.append(str(path.relative_to(directory)))
        if spec.export:
            for path in export_all(results, cell_dir):
                cell_written.append(
                    str(pathlib.Path(path).relative_to(directory))
                )

        manifest["cells"][cell.key] = {
            "fingerprints": cell.fingerprints(),
            "files": cell_written,
        }
        written.extend(cell_written)

    if written:
        manifest_path = directory / "MANIFEST.json"
        manifest_path.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        written.append(str(manifest_path.relative_to(directory)))
    return written
